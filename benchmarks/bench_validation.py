"""E3 — bound validation: packet-level simulation vs the analytic bound."""

import pytest

from repro.experiments.validation import run_validation


@pytest.fixture(scope="module")
def validation_rows():
    return run_validation(duration=0.4)


def test_validation_regeneration(benchmark, validation_rows):
    rows = benchmark.pedantic(
        run_validation, kwargs=dict(duration=0.2), rounds=1, iterations=1
    )
    assert len(rows) == 6
    # E3's claim: the analytic bound dominates every observed delay.
    for row in validation_rows:
        assert row.holds and row.batches > 0


def test_every_bound_dominates(validation_rows):
    for row in validation_rows:
        assert row.holds, (
            f"{row.conn_id}: observed {row.observed_max} exceeds "
            f"bound {row.analytic_bound}"
        )


def test_observed_delays_nontrivial(validation_rows):
    # The simulation must actually exercise the path (no zero-delay fluke).
    for row in validation_rows:
        assert row.batches > 0
        assert row.observed_max > 0


def test_print_rows(validation_rows, capsys):
    with capsys.disabled():
        print()
        for r in validation_rows:
            print(
                f"  {r.conn_id}: bound={r.analytic_bound * 1e3:.2f}ms "
                f"observed={r.observed_max * 1e3:.2f}ms ratio={r.tightness:.3f}"
            )
