"""E2 — Figure 8: admission probability vs system load.

Regenerates the Figure 8 series and checks the paper's claims: AP decreases
as the utilization increases, and beta = 0.5 is much better than beta = 0
or 1 when the load is heavy.
"""

import pytest

from repro.experiments.figure8 import run_figure8
from repro.experiments.common import format_table

UTILS = (0.1, 0.3, 0.6, 0.9)


@pytest.fixture(scope="module")
def figure8_series(quick_settings):
    return run_figure8(quick_settings, betas=(0.0, 0.5, 1.0), utilizations=UTILS)


def test_figure8_regeneration(benchmark, quick_settings, figure8_series):
    series = benchmark.pedantic(
        run_figure8,
        kwargs=dict(
            settings=quick_settings, betas=(0.5,), utilizations=(0.1, 0.9)
        ),
        rounds=1,
        iterations=1,
    )
    assert len(series) == 1 and len(series[0].ys) == 2
    # Qualitative claims of Figure 8 on the full fixture series: AP falls
    # with load and beta=0.5 is not dominated by the extremes when heavy.
    mid = next(s for s in figure8_series if s.label == "beta=0.5")
    assert mid.ys[0] > mid.ys[-1]
    at = {s.label: s.ys[-1] for s in figure8_series}
    assert at["beta=0.5"] >= at["beta=1"]


def test_ap_decreases_with_load(figure8_series):
    mid = next(s for s in figure8_series if s.label == "beta=0.5")
    # Allow small sampling noise but require a clear downward trend.
    assert mid.ys[0] > mid.ys[-1]
    assert mid.ys[0] - mid.ys[-1] > 0.1


def test_beta_half_beats_extremes_at_heavy_load(figure8_series):
    at = {s.label: s.ys[-1] for s in figure8_series}
    assert at["beta=0.5"] >= at["beta=1"]
    assert at["beta=0.5"] >= at["beta=0"] - 0.05


def test_print_series(figure8_series, capsys):
    with capsys.disabled():
        print()
        print(format_table("U", figure8_series))
