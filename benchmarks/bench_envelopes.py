"""E6b — envelope-algebra micro-benchmarks.

The envelope operations are the inner loop of every CAC decision; these
benches track their throughput on representative curve sizes.
"""

import pytest

from repro.envelopes import (
    busy_interval,
    deconvolve,
    horizontal_deviation,
    timed_token_staircase,
    vertical_deviation,
)
from repro.traffic import DualPeriodicTraffic
from repro.units import MBIT

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


@pytest.fixture(scope="module")
def arrival():
    return TRAFFIC.envelope(horizon=0.5)


@pytest.fixture(scope="module")
def service():
    return timed_token_staircase(0.0012, 0.008, 100 * MBIT, n_steps=64)


def test_bench_horizontal_deviation(benchmark, arrival, service):
    d = benchmark(horizontal_deviation, arrival, service)
    assert d > 0


def test_bench_vertical_deviation(benchmark, arrival, service):
    v = benchmark(vertical_deviation, arrival, service, 0.5)
    assert v > 0


def test_bench_busy_interval(benchmark, arrival, service):
    b = benchmark(busy_interval, arrival, service)
    assert b > 0


def test_bench_deconvolve(benchmark, arrival, service):
    b = busy_interval(arrival, service)
    out = benchmark(deconvolve, arrival, service, b)
    assert out.final_slope == pytest.approx(arrival.final_slope)


def test_bench_curve_addition(benchmark, arrival):
    total = benchmark(lambda: arrival + arrival + arrival)
    assert total(0.1) == pytest.approx(3 * arrival(0.1))


def test_bench_mac_analysis(benchmark, arrival):
    from repro.fddi import FDDIMacServer

    server = FDDIMacServer(0.0012, 0.008, 100 * MBIT)
    result = benchmark(server.analyze, arrival)
    assert result.delay_bound > 0


def test_bench_end_to_end_delay(benchmark):
    from repro.config import build_network
    from repro.core.delay import ConnectionLoad, DelayAnalyzer
    from repro.network.connection import ConnectionSpec
    from repro.network.routing import compute_route

    topo = build_network()
    spec = ConnectionSpec("c", "host1-1", "host2-1", TRAFFIC, 0.09)
    load = ConnectionLoad(spec, compute_route(topo, "host1-1", "host2-1"), 0.0015, 0.0015)

    def fresh_compute():
        # New analyzer each call: measures the uncached full analysis.
        return DelayAnalyzer(topo).compute([load])["c"].total_delay

    d = benchmark.pedantic(fresh_compute, rounds=5, iterations=1)
    assert d > 0
