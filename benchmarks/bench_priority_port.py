"""E6d — FIFO vs static-priority output port for a real-time class.

The paper's chain multiplexes all connections FIFO (refs [2, 14] also cover
priority scheduling).  This bench quantifies what a priority port would buy
a hard real-time class sharing a link with heavy best-effort traffic.
"""

import pytest

from repro.atm import AtmLink, OutputPortServer, PriorityOutputPortServer
from repro.envelopes.curve import Curve
from repro.traffic import DualPeriodicTraffic
from repro.units import MBIT

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


@pytest.fixture(scope="module")
def scenario():
    link = AtmLink("l", rate=155.52 * MBIT)
    tagged = TRAFFIC.envelope(0.5)
    best_effort = [Curve.affine(2_000_000.0, 60 * MBIT)]
    return link, tagged, best_effort


def test_bench_fifo_port(benchmark, scenario):
    link, tagged, cross = scenario
    port = OutputPortServer(link)
    result = benchmark(port.analyze_tagged, tagged, cross)
    assert result.delay_bound > 0


def test_bench_priority_port(benchmark, scenario):
    link, tagged, cross = scenario
    port = PriorityOutputPortServer(link)
    result = benchmark(
        port.analyze_tagged, tagged, [], [], cross
    )
    assert result.delay_bound > 0


def test_priority_wins_for_realtime_class(scenario):
    link, tagged, cross = scenario
    fifo = OutputPortServer(link).analyze_tagged(tagged, cross)
    prio = PriorityOutputPortServer(link).analyze_tagged(
        tagged, [], higher_class=[], lower_class=cross
    )
    # With 60 Mbps + 2 Mb burst of best-effort on the link, the real-time
    # class's FIFO bound is dominated by the cross burst; priority cuts it
    # to (roughly) the single-cell blocking term.
    assert prio.delay_bound < fifo.delay_bound / 3


def test_priority_port_buffer_figures(scenario):
    link, tagged, cross = scenario
    analysis = PriorityOutputPortServer(link).analyze_classes(
        {0: [tagged], 1: cross}
    )
    assert analysis[0].backlog_bound >= 0
    assert analysis[1].delay_bound > analysis[0].delay_bound
