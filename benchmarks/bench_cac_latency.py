"""E6a — CAC decision latency.

The paper argues the CAC "can make a connection admission decision
effectively and efficiently"; this bench measures one full admission
decision (feasibility check at max-avail + two binary searches) against a
partially loaded network.
"""

import pytest

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


def preloaded_controller():
    topo = build_network()
    cac = AdmissionController(topo, cac_config=CACConfig(beta=0.5))
    pairs = [
        ("host1-1", "host2-1"),
        ("host2-2", "host3-2"),
        ("host3-3", "host1-3"),
    ]
    for i, (src, dst) in enumerate(pairs):
        res = cac.request(ConnectionSpec(f"bg{i}", src, dst, TRAFFIC, 0.09))
        assert res.admitted
    return cac


def test_admission_decision_latency(benchmark):
    cac = preloaded_controller()
    counter = [0]

    def one_decision():
        counter[0] += 1
        cid = f"probe-{counter[0]}"
        res = cac.request(
            ConnectionSpec(cid, "host1-2", "host2-3", TRAFFIC, 0.09)
        )
        if res.admitted:
            cac.release(cid)
        return res

    result = benchmark.pedantic(one_decision, rounds=10, iterations=1, warmup_rounds=2)
    assert result is not None


def test_rejection_decision_latency(benchmark):
    """A hopeless request (sub-2-TTRT deadline) must be rejected quickly."""
    cac = preloaded_controller()

    def one_rejection():
        return cac.request(
            ConnectionSpec("nope", "host1-2", "host2-3", TRAFFIC, 0.012)
        )

    result = benchmark.pedantic(one_rejection, rounds=5, iterations=1)
    assert not result.admitted
