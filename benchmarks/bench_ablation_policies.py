"""E4 — allocation-policy ablation.

Compares the paper's beta rule against the strawmen of Section 5.3
(grant-everything, pure extremes), the origin-ray search-line variant, and
the FDDI-only local rule of refs [1, 24].
"""

import pytest

from repro.experiments.ablations import PolicyVariant, run_policy_ablation
from repro.experiments.common import format_table
from repro.config import CACConfig
from repro.core.policies import MaxAvailPolicy

VARIANTS = (
    PolicyVariant("beta=0.5", cac_config=CACConfig(beta=0.5)),
    PolicyVariant("min-need (beta=0)", cac_config=CACConfig(beta=0.0)),
    PolicyVariant("max-avail", make_policy=MaxAvailPolicy),
    PolicyVariant(
        "origin-ray beta=0.5", cac_config=CACConfig(beta=0.5, use_origin_ray=True)
    ),
)


@pytest.fixture(scope="module")
def ablation_series(quick_settings):
    return run_policy_ablation(
        quick_settings, utilizations=(0.3, 0.9), variants=VARIANTS
    )


def test_ablation_regeneration(benchmark, quick_settings, ablation_series):
    series = benchmark.pedantic(
        run_policy_ablation,
        kwargs=dict(
            settings=quick_settings, utilizations=(0.9,), variants=VARIANTS[:2]
        ),
        rounds=1,
        iterations=1,
    )
    assert len(series) == 2
    # Section 5.3's claim: granting everything starves future requests.
    at_heavy = {s.label: s.ys[-1] for s in ablation_series}
    assert at_heavy["max-avail"] <= at_heavy["beta=0.5"]


def test_max_avail_is_worst_at_heavy_load(ablation_series):
    """Section 5.3: granting everything starves future requests."""
    at_heavy = {s.label: s.ys[-1] for s in ablation_series}
    assert at_heavy["max-avail"] <= at_heavy["beta=0.5"]


def test_beta_rule_at_least_matches_min_need(ablation_series):
    at_heavy = {s.label: s.ys[-1] for s in ablation_series}
    assert at_heavy["beta=0.5"] >= at_heavy["min-need (beta=0)"] - 0.05


def test_origin_ray_comparable(ablation_series):
    """The two readings of Step 3 should perform in the same ballpark."""
    at = {s.label: s.ys for s in ablation_series}
    for i in range(len(at["beta=0.5"])):
        assert abs(at["beta=0.5"][i] - at["origin-ray beta=0.5"][i]) < 0.35


def test_print_series(ablation_series, capsys):
    with capsys.disabled():
        print()
        print(format_table("U", ablation_series))
