"""E5 — workload-sensitivity ablation: deadline tightness and burstiness."""

import pytest

from repro.experiments.ablations import run_workload_ablation
from repro.experiments.common import format_table


@pytest.fixture(scope="module")
def workload_results(quick_settings):
    return run_workload_ablation(
        quick_settings,
        utilization=0.6,
        deadline_scales=(0.75, 1.0, 2.0),
        burst_ratios=(1.0, 2.0),
    )


def test_workload_ablation_regeneration(benchmark, quick_settings, workload_results):
    results = benchmark.pedantic(
        run_workload_ablation,
        kwargs=dict(
            settings=quick_settings,
            utilization=0.6,
            deadline_scales=(1.0,),
            burst_ratios=(2.0,),
        ),
        rounds=1,
        iterations=1,
    )
    assert set(results) == {"deadline", "burstiness"}
    # Looser deadlines must not hurt admission.
    series = workload_results["deadline"][0]
    by_scale = dict(zip(series.xs, series.ys))
    assert by_scale[2.0] >= by_scale[0.75] - 0.05


def test_looser_deadlines_help(workload_results):
    series = workload_results["deadline"][0]
    by_scale = dict(zip(series.xs, series.ys))
    # Doubling every deadline should not hurt admission.
    assert by_scale[2.0] >= by_scale[0.75] - 0.05


def test_print_series(workload_results, capsys):
    with capsys.disabled():
        print()
        print("deadline scale sweep:")
        print(format_table("scale", workload_results["deadline"]))
        print("burstiness sweep:")
        print(format_table("ratio", workload_results["burstiness"]))
