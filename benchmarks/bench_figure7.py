"""E1 — Figure 7: admission probability vs beta at three loads.

Regenerates the paper's Figure 7 series and checks its qualitative claims:

* an interior beta beats both extremes under heavy load;
* the system performs near its best across a wide beta band;
* sensitivity to beta grows with load.
"""

import pytest

from repro.experiments.figure7 import run_figure7
from repro.experiments.common import format_table


@pytest.fixture(scope="module")
def figure7_series(quick_settings):
    return run_figure7(
        quick_settings, utilizations=(0.3, 0.9), betas=(0.0, 0.3, 0.5, 0.7, 1.0)
    )


def test_figure7_regeneration(benchmark, quick_settings, figure7_series):
    series = benchmark.pedantic(
        run_figure7,
        kwargs=dict(
            settings=quick_settings,
            utilizations=(0.9,),
            betas=(0.0, 0.5, 1.0),
        ),
        rounds=1,
        iterations=1,
    )
    assert len(series) == 1 and len(series[0].ys) == 3
    # Qualitative claims of Figure 7, checked on the full fixture series:
    # an interior beta beats both extremes under heavy load, and beta=1
    # never dominates.
    heavy = next(s for s in figure7_series if s.label == "U=0.9")
    by_beta = dict(zip(heavy.xs, heavy.ys))
    interior_best = max(v for k, v in by_beta.items() if 0.0 < k < 1.0)
    assert interior_best >= by_beta[0.0]
    assert interior_best >= by_beta[1.0]


def test_interior_beta_wins_at_heavy_load(figure7_series):
    heavy = next(s for s in figure7_series if s.label == "U=0.9")
    by_beta = dict(zip(heavy.xs, heavy.ys))
    interior_best = max(v for k, v in by_beta.items() if 0.0 < k < 1.0)
    assert interior_best >= by_beta[0.0]
    assert interior_best >= by_beta[1.0]


def test_beta_one_never_dominates(figure7_series):
    for s in figure7_series:
        by_beta = dict(zip(s.xs, s.ys))
        assert max(by_beta.values()) >= by_beta[1.0]


def test_print_series(figure7_series, capsys):
    with capsys.disabled():
        print()
        print(format_table("beta", figure7_series))
