"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one experiment from DESIGN.md's per-experiment
index.  The simulation benches run with the "quick" settings (one seed,
fewer requests) so the whole suite completes in minutes; the printed series
still show the paper's qualitative shapes.  For publication-grade numbers
run ``python -m repro.experiments <name>`` without ``--quick``.
"""

import pytest

from repro.experiments.common import ExperimentSettings


@pytest.fixture(scope="session")
def quick_settings() -> ExperimentSettings:
    """Small single-seed runs so the whole bench suite finishes in minutes.

    The qualitative assertions (who wins, in which direction) are stable at
    this size; for smoother curves run ``python -m repro.experiments`` with
    the default settings.
    """
    return ExperimentSettings(n_requests=100, warmup_requests=10, seeds=(1,))
