"""E6c — sensitivity of the delay engine to its own approximation knobs.

The engine has two conservative approximations: envelopes are coarsened to
``max_envelope_segments`` breakpoints between stages, and port delays are
rounded up to ``output_delay_quantum`` before advancing output envelopes.
Both must only ever *increase* the reported bound (safety) — this bench
measures how much accuracy each knob costs and how much time it buys.
"""

import pytest

from repro.config import AnalysisConfig, build_network
from repro.core.delay import ConnectionLoad, DelayAnalyzer
from repro.network.connection import ConnectionSpec
from repro.network.routing import compute_route
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


def make_loads(topo):
    pairs = [
        ("host1-1", "host2-1"),
        ("host1-2", "host3-1"),
        ("host2-2", "host3-2"),
        ("host3-3", "host1-3"),
    ]
    loads = []
    for i, (src, dst) in enumerate(pairs):
        spec = ConnectionSpec(f"c{i}", src, dst, TRAFFIC, 0.2)
        loads.append(
            ConnectionLoad(spec, compute_route(topo, src, dst), 0.0015, 0.0015)
        )
    return loads


def bound_with(topo, loads, **analysis_kwargs):
    analyzer = DelayAnalyzer(
        topo, analysis_config=AnalysisConfig(**analysis_kwargs)
    )
    return {cid: r.total_delay for cid, r in analyzer.compute(loads).items()}


@pytest.fixture(scope="module")
def network_and_loads():
    topo = build_network()
    return topo, make_loads(topo)


def test_coarsening_is_conservative(network_and_loads):
    topo, loads = network_and_loads
    fine = bound_with(topo, loads, max_envelope_segments=256)
    coarse = bound_with(topo, loads, max_envelope_segments=32)
    for cid in fine:
        assert coarse[cid] >= fine[cid] - 1e-9
        # ...but not absurdly looser (within 2x; at 16 segments the loss
        # grows to ~75%, which is why the default is 96).
        assert coarse[cid] <= fine[cid] * 2.0


def test_delay_quantum_is_conservative(network_and_loads):
    topo, loads = network_and_loads
    exact = bound_with(topo, loads, output_delay_quantum=0.0)
    quantized = bound_with(topo, loads, output_delay_quantum=1e-3)
    for cid in exact:
        assert quantized[cid] >= exact[cid] - 1e-9
        assert quantized[cid] <= exact[cid] * 1.25


def test_bench_fine_analysis(benchmark, network_and_loads):
    topo, loads = network_and_loads

    def run():
        return bound_with(topo, loads, max_envelope_segments=256,
                          output_delay_quantum=0.0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) == 4


def test_bench_default_analysis(benchmark, network_and_loads):
    topo, loads = network_and_loads

    def run():
        return bound_with(topo, loads)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) == 4
