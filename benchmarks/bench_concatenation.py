"""E6e — additive decomposition (Eq. 7) vs concatenation bound.

The paper sums per-server worst-case delays; network calculus can instead
convolve per-server service curves and pay the source burst once.  This
bench reports both bounds on the paper's network and checks each remains a
valid upper bound of the packet-level simulation.
"""

import pytest

from repro.config import build_network
from repro.core.concatenation import ConcatenationAnalyzer
from repro.core.delay import ConnectionLoad
from repro.network.connection import ConnectionSpec
from repro.network.routing import compute_route
from repro.sim.packet_sim import PacketLevelSimulator
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)

PAIRS = [
    ("host1-1", "host2-1"),
    ("host1-2", "host3-1"),
    ("host2-2", "host3-2"),
    ("host3-3", "host1-3"),
]


@pytest.fixture(scope="module")
def comparison():
    topo = build_network()
    loads = []
    for i, (src, dst) in enumerate(PAIRS):
        spec = ConnectionSpec(f"c{i}", src, dst, TRAFFIC, 0.3)
        loads.append(
            ConnectionLoad(spec, compute_route(topo, src, dst), 0.0015, 0.0015)
        )
    reports = ConcatenationAnalyzer(topo).analyze(loads)
    observed = PacketLevelSimulator(topo, loads, adversarial_phase=True).run(0.3)
    return reports, observed


def test_bench_concatenation_analysis(benchmark):
    topo = build_network()
    loads = []
    for i, (src, dst) in enumerate(PAIRS):
        spec = ConnectionSpec(f"c{i}", src, dst, TRAFFIC, 0.3)
        loads.append(
            ConnectionLoad(spec, compute_route(topo, src, dst), 0.0015, 0.0015)
        )
    analyzer = ConcatenationAnalyzer(topo)
    reports = benchmark.pedantic(analyzer.analyze, args=(loads,), rounds=3, iterations=1)
    assert len(reports) == len(PAIRS)


def test_both_bounds_dominate_observation(comparison):
    reports, observed = comparison
    for cid, rep in reports.items():
        assert observed.max_delay[cid] <= rep.additive_bound + 1e-9
        assert observed.max_delay[cid] <= rep.concatenated_bound + 1e-9


def test_bounds_within_factor_of_each_other(comparison):
    # Neither technique should be wildly looser on this route shape.
    reports, _ = comparison
    for rep in reports.values():
        assert 0.2 < rep.improvement < 5.0


def test_print_comparison(comparison, capsys):
    reports, observed = comparison
    with capsys.disabled():
        print()
        print(
            f"  {'conn':6s} {'additive(ms)':>13s} {'concat(ms)':>11s} "
            f"{'observed(ms)':>13s} {'add/concat':>10s}"
        )
        for cid, rep in sorted(reports.items()):
            print(
                f"  {cid:6s} {rep.additive_bound * 1e3:13.2f} "
                f"{rep.concatenated_bound * 1e3:11.2f} "
                f"{observed.max_delay[cid] * 1e3:13.2f} "
                f"{rep.improvement:10.2f}"
            )
