"""Quickstart: admit real-time connections over an FDDI-ATM-FDDI network.

Builds the paper's reference topology (three FDDI rings bridged by an ATM
backbone), requests a few hard real-time connections through the CAC, and
prints the granted synchronous-bandwidth allocations and the per-hop
worst-case delay decomposition (Eq. 7 of the paper).

Run:  python examples/quickstart.py
"""

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic


def main() -> None:
    # The paper's evaluation network: 3 FDDI rings x 4 hosts, 3 interface
    # devices, 3 ATM switches, 155 Mbps backbone links.
    topology = build_network()
    cac = AdmissionController(topology, cac_config=CACConfig(beta=0.5))

    # A dual-periodic source (Eq. 37): at most 120 kbit per 15 ms, bursting
    # up to 60 kbit per 5 ms inside each window -> 8 Mbps sustained.
    traffic = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)

    requests = [
        ("video-1", "host1-1", "host2-1", 0.080),
        ("video-2", "host2-2", "host3-1", 0.080),
        ("sensor-feed", "host3-2", "host1-2", 0.060),
    ]

    print("=== Admission requests ===")
    for conn_id, src, dst, deadline in requests:
        result = cac.request(
            ConnectionSpec(conn_id, src, dst, traffic, deadline)
        )
        if result.admitted:
            rec = result.record
            print(
                f"{conn_id}: ADMITTED  H_S={rec.h_source * 1e3:.3f} ms/rot, "
                f"H_R={rec.h_dest * 1e3:.3f} ms/rot, "
                f"worst-case delay {rec.delay_bound * 1e3:.2f} ms "
                f"(deadline {deadline * 1e3:.0f} ms)"
            )
        else:
            print(f"{conn_id}: REJECTED ({result.reason})")

    # The decomposition behind the bound: every server on the route
    # contributes a worst-case delay (Section 4).
    print("\n=== Per-hop decomposition of video-1 ===")
    from repro.core.delay import ConnectionLoad

    loads = [
        ConnectionLoad(r.spec, r.route, r.h_source, r.h_dest)
        for r in cac.connections.values()
    ]
    report = cac.analyzer.compute(loads)["video-1"]
    for hop, delay in report.per_hop:
        print(f"  {hop:34s} {delay * 1e6:10.1f} us")
    print(f"  {'TOTAL':34s} {report.total_delay * 1e6:10.1f} us")

    # Ring ledgers: the synchronous-bandwidth budget the CAC manages.
    print("\n=== Ring synchronous-bandwidth ledgers ===")
    for ring in topology.rings.values():
        print(
            f"  {ring.ring_id}: allocated {ring.allocated_sync_time * 1e3:.3f} ms "
            f"of {ring.ttrt * 1e3:.1f} ms TTRT "
            f"({ring.available_sync_time * 1e3:.3f} ms free)"
        )

    # Tear one down and show the budget return.
    cac.release("video-2")
    print("\nAfter releasing video-2:")
    for ring in topology.rings.values():
        print(
            f"  {ring.ring_id}: {ring.available_sync_time * 1e3:.3f} ms free"
        )


if __name__ == "__main__":
    main()
