"""Failover drill: a backbone link dies, connections get re-established.

Fault tolerance is the natural operational question for a hard real-time
network (the authors studied it for FDDI in their RTSS'95 paper, the
paper's ref [4]).  This drill:

1. fills the network with admitted connections on all three backbone links;
2. fails the s1 <-> s2 link;
3. lets the :class:`FailoverManager` tear down the displaced connections,
   reroute them over the surviving triangle side, and re-run full admission
   control on the detour (the rerouted connection must not break anyone
   else's deadline);
4. verifies every surviving contract and prints the report.

Run:  python examples/failover_drill.py
"""

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.core.failover import FailoverManager
from repro.core.report import network_state
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)

CONNECTIONS = [
    ("cam-12a", "host1-1", "host2-1", 0.120),
    ("cam-12b", "host1-2", "host2-2", 0.120),
    ("cam-13", "host1-3", "host3-1", 0.120),
    ("cam-23", "host2-3", "host3-2", 0.120),
    ("tight-12", "host1-4", "host2-4", 0.080),
]


def main() -> None:
    topology = build_network()
    cac = AdmissionController(topology, cac_config=CACConfig(beta=0.4))

    print("=== Filling the network ===")
    for cid, src, dst, deadline in CONNECTIONS:
        res = cac.request(ConnectionSpec(cid, src, dst, TRAFFIC, deadline))
        path = " -> ".join(res.record.route.switch_path) if res.admitted else "-"
        print(f"  {cid:10s} {'admitted' if res.admitted else 'REJECTED':9s} via {path}")

    print("\n=== Link s1 <-> s2 fails ===")
    manager = FailoverManager(cac)
    report = manager.fail_link("s1", "s2")
    print(report.format())

    print("\n=== Post-failover verification ===")
    state = network_state(cac)
    all_ok = True
    for c in sorted(state.connections, key=lambda c: c.conn_id):
        ok = c.slack >= 0
        all_ok &= ok
        route = cac.connections[c.conn_id].route
        print(
            f"  {c.conn_id:10s} via {' -> '.join(route.switch_path):14s} "
            f"bound {c.delay_bound * 1e3:6.2f} ms / deadline "
            f"{c.deadline * 1e3:5.1f} ms  {'OK' if ok else 'VIOLATED'}"
        )
    print(
        "\nEvery surviving connection still meets its deadline."
        if all_ok
        else "\nDEADLINE VIOLATION after failover — bug!"
    )

    print("\n=== Link repaired ===")
    manager.restore_link("s1", "s2")
    res = cac.request(
        ConnectionSpec("post-repair", "host1-1", "host2-3", TRAFFIC, 0.120)
    )
    print(
        f"  post-repair request admitted={res.admitted} via "
        f"{' -> '.join(res.record.route.switch_path) if res.admitted else '-'}"
    )


if __name__ == "__main__":
    main()
