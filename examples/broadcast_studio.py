"""Broadcast studio: MPEG feeds, a breaking-news preemption, and VCs.

A studio distributes MPEG program feeds between production sites on three
FDDI LANs.  This scenario exercises three extensions together:

* :class:`repro.traffic.MPEGTraffic` — GOP-structured video sources;
* :class:`repro.atm.VirtualCircuitManager` — every admitted feed gets a
  real VPI/VCI label chain through the backbone;
* :class:`repro.core.PreemptiveAdmission` — when the network is full, a
  breaking-news feed (highest importance) evicts the least important
  program to get on air.

Run:  python examples/broadcast_studio.py
"""

from repro.atm import VirtualCircuitManager
from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.core.preemption import PreemptiveAdmission
from repro.network.connection import ConnectionSpec
from repro.traffic import MPEGTraffic

#: Program feed: 6-frame GOP at 30 fps, ~2.3 Mbps.
PROGRAM = MPEGTraffic(
    frame_bits=[200_000, 40_000, 40_000, 100_000, 40_000, 40_000], fps=30
)
#: News feed: higher-quality I-heavy stream, ~4 Mbps.
NEWS = MPEGTraffic(
    frame_bits=[300_000, 80_000, 80_000, 160_000], fps=25
)

FEEDS = [
    ("morning-show", "host1-1", "host2-1", 0.9),
    ("daytime-a", "host1-2", "host3-1", 0.5),
    ("daytime-b", "host2-2", "host3-2", 0.5),
    ("rerun-channel", "host3-3", "host1-3", 0.1),
    ("shopping", "host2-3", "host1-4", 0.1),
]
DEADLINE = 0.120


def main() -> None:
    topology = build_network()
    # Generous grants (beta = 1) so the schedule genuinely fills the rings.
    cac = AdmissionController(topology, cac_config=CACConfig(beta=1.0))
    admission = PreemptiveAdmission(cac)
    circuits = VirtualCircuitManager(topology)

    print("=== Scheduling the day's programs ===")
    for name, src, dst, importance in FEEDS:
        res = admission.request(
            ConnectionSpec(name, src, dst, PROGRAM, DEADLINE), importance
        )
        if res.admitted:
            vc = circuits.setup(name, res.result.record.route)
            labels = ", ".join(f"{h.link_id}#{h.vci}" for h in vc.hops)
            print(f"  {name:14s} on air (VC: {labels})")
        else:
            print(f"  {name:14s} refused: {res.result.reason}")

    print("\n=== Breaking news from site 1 to site 3 ===")
    res = admission.request(
        ConnectionSpec("breaking-news", "host1-1", "host3-4", NEWS, 0.080),
        importance=10.0,
    )
    if res.admitted:
        for victim in res.preempted:
            circuits.teardown(victim)
            print(f"  {victim} pulled off air (preempted)")
        vc = circuits.setup("breaking-news", res.result.record.route)
        print(
            f"  breaking-news on air, bound "
            f"{res.result.record.delay_bound * 1e3:.1f} ms, "
            f"{len(vc.hops)} VC hops"
        )
    else:
        print(f"  could not air: {res.result.reason}")

    print("\n=== Switch s1 VC table ===")
    for in_vci, in_link, out_vci, out_link in circuits.translation_table("s1"):
        print(f"  {in_link}#{in_vci}  ->  {out_link}#{out_vci}")


if __name__ == "__main__":
    main()
