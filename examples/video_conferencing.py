"""Multi-site video conferencing: the beta trade-off in action.

Scenario from the paper's motivation: sites on three FDDI LANs hold video
conferences across the ATM backbone.  Each conference needs a video stream
(bursty, dual-periodic) and an audio stream (packetized CBR) with hard
end-to-end deadlines.

The script admits conferences one by one under three allocation policies —
beta = 0 (minimum needed), beta = 0.5 (the paper's recommendation) and
beta = 1 (maximum useful) — and shows how over- or under-allocation costs
admissions as the network fills (Section 5.3's argument).

Run:  python examples/video_conferencing.py
"""

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.network.connection import ConnectionSpec
from repro.traffic import CBRTraffic, DualPeriodicTraffic

#: 4 Mbps motion-JPEG-era video: 60 kbit frames every 15 ms, up to two
#: frames back to back inside a window.
VIDEO = DualPeriodicTraffic(c1=60_000.0, p1=0.015, c2=30_000.0, p2=0.005)
#: 256 kbps audio in 1 kbit packets.
AUDIO = CBRTraffic(rate=256_000.0, packet_bits=1_000.0)

#: (conference, source, destination) — round-robin across the rings.
CONFERENCES = [
    ("conf-A", "host1-1", "host2-1"),
    ("conf-B", "host2-2", "host3-1"),
    ("conf-C", "host3-2", "host1-2"),
    ("conf-D", "host1-3", "host3-3"),
    ("conf-E", "host2-3", "host1-4"),
    ("conf-F", "host3-4", "host2-4"),
]

VIDEO_DEADLINE = 0.080   # 80 ms end-to-end for video
AUDIO_DEADLINE = 0.060   # 60 ms for audio


def run_policy(beta: float) -> None:
    topology = build_network()
    cac = AdmissionController(topology, cac_config=CACConfig(beta=beta))
    admitted_conferences = 0
    print(f"\n--- beta = {beta:g} ---")
    for name, src, dst in CONFERENCES:
        video = cac.request(
            ConnectionSpec(f"{name}/video", src, dst, VIDEO, VIDEO_DEADLINE)
        )
        if not video.admitted:
            print(f"{name}: REJECTED (video: {video.reason})")
            continue
        audio = cac.request(
            ConnectionSpec(f"{name}/audio", dst, src, AUDIO, AUDIO_DEADLINE)
        )
        if not audio.admitted:
            # All-or-nothing: a conference without audio is useless.
            cac.release(f"{name}/video")
            print(f"{name}: REJECTED (audio: {audio.reason})")
            continue
        admitted_conferences += 1
        print(
            f"{name}: admitted  video bound "
            f"{video.record.delay_bound * 1e3:.1f} ms, audio bound "
            f"{audio.record.delay_bound * 1e3:.1f} ms"
        )
    total_sync = sum(
        ring.allocated_sync_time for ring in topology.rings.values()
    )
    print(
        f"=> {admitted_conferences}/{len(CONFERENCES)} conferences admitted; "
        f"{total_sync * 1e3:.2f} ms of synchronous time allocated network-wide"
    )


def main() -> None:
    print("Video conferencing across an FDDI-ATM-FDDI campus network")
    print("==========================================================")
    for beta in (0.0, 0.5, 1.0):
        run_policy(beta)
    print(
        "\nbeta=1 over-allocates (few conferences fit); beta=0 leaves zero "
        "slack (later\nconferences disturb earlier ones and get rejected); "
        "the paper's interior beta\nadmits the most."
    )


if __name__ == "__main__":
    main()
