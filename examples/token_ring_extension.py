"""Section 7 extension: an IEEE 802.5 token ring as the LAN segment.

The paper closes with: "if the LAN segments are IEEE 802.5 token rings, one
only needs to analyze an 802.5_MAC server in addition to the servers that
have been analyzed in this paper."  This example does exactly that — it
bounds the end-to-end worst-case delay of a connection whose *source* LAN
is a 16 Mbps 802.5 ring, crossing the same ATM backbone, by composing the
library's server analyses directly:

    802.5 MAC -> ID_S stages (Theorem 2) -> ATM output port -> propagation
    -> ID_R stages -> destination FDDI MAC -> delay line

Run:  python examples/token_ring_extension.py
"""

from repro.atm import AtmLink, OutputPortServer
from repro.fddi import FDDIMacServer, TokenRing8025MacServer
from repro.interface_device import (
    CellFrameConversionServer,
    FrameCellConversionServer,
)
from repro.servers import ConstantDelayServer, ServerChain
from repro.traffic import PeriodicTraffic
from repro.units import MBIT, US


def main() -> None:
    # The connection: 2 Mbps of sensor data in 40 kbit messages every 20 ms.
    traffic = PeriodicTraffic(c=40_000.0, p=0.020)
    envelope = traffic.envelope(horizon=0.5)

    # --- Source LAN: a 16 Mbps 802.5 ring with 5 stations -----------------
    # Our station holds the token for 1 ms per cycle; the full cycle
    # (everyone's holding time + token walk) is 6 ms.
    source_mac = TokenRing8025MacServer.for_ring(
        holding_times=[0.001, 0.002, 0.001, 0.001, 0.0005],
        station_index=0,
        bandwidth=16 * MBIT,
        walk_time=0.0005,
        name="802.5-mac:src",
    )

    # --- Interface device, ATM hop, receiving device ----------------------
    uplink = AtmLink("id->s1", rate=155.52 * MBIT, propagation_delay=10 * US)
    chain = ServerChain(
        [
            source_mac,
            ConstantDelayServer(50 * US, name="802.5 delay line"),
            ConstantDelayServer(10 * US, name="ID_S input port"),
            ConstantDelayServer(10 * US, name="ID_S frame switch"),
            FrameCellConversionServer(
                frame_bits=16_000.0, processing_delay=20 * US, name="frame->cell"
            ),
        ],
        name="source-side",
    )
    source_side = chain.analyze(envelope)

    # The shared ATM port: our cells compete with 60 Mbps of cross traffic.
    port = OutputPortServer(uplink, port_latency=3 * US)
    from repro.envelopes.curve import Curve

    cross_traffic = [Curve.affine(100_000.0, 60 * MBIT)]
    port_result = port.analyze_tagged(source_side.output, cross_traffic)

    receive_chain = ServerChain(
        [
            ConstantDelayServer(10 * US, name="ID_R input port"),
            CellFrameConversionServer(
                frame_bits=16_000.0, processing_delay=20 * US, name="cell->frame"
            ),
            ConstantDelayServer(10 * US, name="ID_R frame switch"),
            # Destination LAN is a standard FDDI ring (heterogeneous mix!).
            FDDIMacServer(
                sync_time=0.0008,
                ttrt=0.008,
                bandwidth=100 * MBIT,
                name="fddi-mac:dst",
            ),
            ConstantDelayServer(50 * US, name="FDDI delay line"),
        ],
        name="receive-side",
    )
    receive_side = receive_chain.analyze(port_result.output)

    total = (
        source_side.delay_bound
        + port_result.delay_bound
        + uplink.propagation_delay
        + receive_side.delay_bound
    )

    print("802.5 -> ATM -> FDDI worst-case delay decomposition")
    print("====================================================")
    breakdown, _ = chain.analyze_per_hop(envelope)
    for name, r in breakdown:
        print(f"  {name:26s} {r.delay_bound * 1e3:8.3f} ms")
    print(f"  {'ATM output port':26s} {port_result.delay_bound * 1e3:8.3f} ms")
    print(f"  {'link propagation':26s} {uplink.propagation_delay * 1e3:8.3f} ms")
    rx_breakdown, _ = receive_chain.analyze_per_hop(port_result.output)
    for name, r in rx_breakdown:
        print(f"  {name:26s} {r.delay_bound * 1e3:8.3f} ms")
    print("  " + "-" * 38)
    print(f"  {'END-TO-END BOUND':26s} {total * 1e3:8.3f} ms")
    print(
        "\nOnly the first server changed relative to the FDDI analysis — "
        "the rest of the\npipeline (and the CAC built on it) is reused "
        "unchanged, exactly as Section 7\npromises."
    )


if __name__ == "__main__":
    main()
