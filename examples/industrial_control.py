"""Industrial control: hard deadlines validated against a packet-level run.

A plant floor has sensors and controllers on different FDDI segments of a
heterogeneous campus network.  Control loops need *guaranteed* bounds —
a missed deadline is a plant fault, not a quality-of-service hiccup.

The script:

1. admits periodic sensor->controller and controller->actuator flows with
   tight deadlines through the CAC;
2. replays greedy worst-case traffic through the packet-level simulator;
3. verifies that no observed delay ever exceeds the analytic bound the CAC
   promised (the contract the paper's Theorem 1 machinery underwrites).

Run:  python examples/industrial_control.py
"""

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.core.delay import ConnectionLoad
from repro.network.connection import ConnectionSpec
from repro.sim.packet_sim import PacketLevelSimulator
from repro.traffic import PeriodicTraffic

#: Sensor scans: 40 kbit of readings every 20 ms (2 Mbps sustained).
SENSOR_SCAN = PeriodicTraffic(c=40_000.0, p=0.020)
#: Actuator commands: 16 kbit every 10 ms.
ACTUATOR_CMD = PeriodicTraffic(c=16_000.0, p=0.010)

FLOWS = [
    ("press-line/sensors", "host1-1", "host2-1", SENSOR_SCAN, 0.060),
    ("press-line/actuate", "host2-1", "host1-2", ACTUATOR_CMD, 0.050),
    ("paint-shop/sensors", "host2-2", "host3-1", SENSOR_SCAN, 0.060),
    ("paint-shop/actuate", "host3-1", "host2-3", ACTUATOR_CMD, 0.050),
    ("assembly/sensors", "host3-2", "host1-3", SENSOR_SCAN, 0.060),
]


def main() -> None:
    topology = build_network()
    cac = AdmissionController(topology, cac_config=CACConfig(beta=0.5))

    print("=== Admitting control loops ===")
    for name, src, dst, traffic, deadline in FLOWS:
        result = cac.request(ConnectionSpec(name, src, dst, traffic, deadline))
        status = (
            f"bound {result.record.delay_bound * 1e3:.1f} ms "
            f"<= deadline {deadline * 1e3:.0f} ms"
            if result.admitted
            else f"REJECTED: {result.reason}"
        )
        print(f"  {name:22s} {status}")

    loads = [
        ConnectionLoad(r.spec, r.route, r.h_source, r.h_dest)
        for r in cac.connections.values()
    ]
    print("\n=== Worst-case replay through the packet-level simulator ===")
    sim = PacketLevelSimulator(topology, loads)
    observed = sim.run(duration=0.5)

    all_ok = True
    for conn_id, record in sorted(cac.connections.items()):
        max_seen = observed.max_delay.get(conn_id, 0.0)
        ok = max_seen <= record.delay_bound + 1e-9
        all_ok &= ok
        print(
            f"  {conn_id:22s} observed {max_seen * 1e3:7.2f} ms | "
            f"promised {record.delay_bound * 1e3:7.2f} ms | "
            f"{'OK' if ok else 'VIOLATED'}"
        )
    print(
        "\nContract verified: every observed delay stayed within the "
        "CAC's analytic bound."
        if all_ok
        else "\nBOUND VIOLATION — this would be a bug in the analysis."
    )


if __name__ == "__main__":
    main()
