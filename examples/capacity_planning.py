"""Capacity planning: mapping the feasible region and stress-testing beta.

A network architect wants to know (a) what allocations are even feasible
for a new connection class — the (H_S, H_R) feasible region of Theorems
3/4 — and (b) how many such connections the network can carry under each
allocation policy before the CAC starts refusing.

Run:  python examples/capacity_planning.py
"""

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.core.delay import ConnectionLoad
from repro.core.feasible_region import feasibility_grid, lower_boundary_on_ray
from repro.network.connection import ConnectionSpec
from repro.network.routing import compute_route
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)
DEADLINE = 0.070


def map_feasible_region() -> None:
    """ASCII map of the feasible region for the first connection."""
    topology = build_network()
    cac = AdmissionController(topology)
    spec = ConnectionSpec("probe", "host1-1", "host2-1", TRAFFIC, DEADLINE)
    route = compute_route(topology, "host1-1", "host2-1")

    def feasible(h_s: float, h_r: float) -> bool:
        if h_s <= 0 or h_r <= 0:
            return False
        return cac.check_feasible(ConnectionLoad(spec, route, h_s, h_r)) is not None

    hi = topology.rings["ring1"].available_sync_time
    sample = feasibility_grid(feasible, (0.0004, hi), (0.0004, hi), resolution=14)

    print(f"Feasible (H_S, H_R) region for one {DEADLINE * 1e3:.0f} ms connection")
    print("('#' feasible, '.' infeasible; axes in ms of synchronous time)\n")
    for i in range(len(sample.h_s_values) - 1, -1, -1):
        h_s = sample.h_s_values[i]
        row = "".join("#" if ok else "." for ok in sample.feasible[i])
        print(f"  H_S={h_s * 1e3:5.2f} | {row}")
    labels = [f"{v * 1e3:.1f}" for v in sample.h_r_values[:: len(sample.h_r_values) - 1]]
    print(f"            H_R: {labels[0]} ms ... {labels[-1]} ms")
    print(f"  ({sample.fraction_feasible() * 100:.0f}% of the sampled rectangle is feasible)")

    boundary = lower_boundary_on_ray(feasible, (hi, hi))
    if boundary:
        print(
            f"  minimum needed allocation on the diagonal: "
            f"H_S = H_R = {boundary[0] * 1e3:.2f} ms"
        )


def packing_comparison() -> None:
    """How many identical connections fit under each policy."""
    print("\nHow many 8 Mbps connections fit before the first rejection?")
    sources = [
        ("host1-1", "host2-1"), ("host2-1", "host3-1"), ("host3-1", "host1-1"),
        ("host1-2", "host2-2"), ("host2-2", "host3-2"), ("host3-2", "host1-2"),
        ("host1-3", "host2-3"), ("host2-3", "host3-3"), ("host3-3", "host1-3"),
        ("host1-4", "host2-4"), ("host2-4", "host3-4"), ("host3-4", "host1-4"),
    ]
    for beta in (0.0, 0.5, 1.0):
        topology = build_network()
        cac = AdmissionController(topology, cac_config=CACConfig(beta=beta))
        packed = 0
        for i, (src, dst) in enumerate(sources):
            res = cac.request(
                ConnectionSpec(f"c{i}", src, dst, TRAFFIC, DEADLINE)
            )
            if not res.admitted:
                break
            packed += 1
        print(f"  beta={beta:g}: {packed} connections before the first rejection")


def main() -> None:
    map_feasible_region()
    packing_comparison()


if __name__ == "__main__":
    main()
