"""Property tests for the declarative topology layer.

Generated specs must validate, lower to routable topologies, and survive
the strict scenario codec repr-exactly; on feed-forward load sets the
fixed-point solver must reproduce the chain analysis bit for bit.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import AnalysisConfig, NetworkConfig, build_network
from repro.core.delay import ConnectionLoad, DelayAnalyzer
from repro.errors import ScenarioSpecError, TopologyError
from repro.network import compute_route
from repro.network.connection import ConnectionSpec
from repro.scenario import codec
from repro.scenario.spec import ArrivalsSpec, ScenarioSpec
from repro.topo import (
    BackboneLinkSpec,
    DeviceSpec,
    RingSpec,
    SwitchSpec,
    TopologySpec,
)
from repro.topo import generators
from repro.traffic import PeriodicTraffic

_relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: family name -> hypothesis strategy over its kwargs.
_FAMILY_ARGS = {
    "paper_triangle": st.fixed_dictionaries(
        {"n_rings": st.integers(1, 8), "hosts_per_ring": st.integers(1, 4)}
    ),
    "line": st.fixed_dictionaries(
        {"n_rings": st.integers(2, 16), "hosts_per_ring": st.integers(1, 3)}
    ),
    "ring_of_switches": st.fixed_dictionaries(
        {
            "n_rings": st.integers(3, 16),
            "hosts_per_ring": st.integers(1, 3),
            "unidirectional": st.booleans(),
        }
    ),
    "star": st.fixed_dictionaries(
        {"n_rings": st.integers(2, 12), "hosts_per_ring": st.integers(1, 3)}
    ),
    "partial_mesh": st.fixed_dictionaries(
        {
            "n_rings": st.integers(4, 12),
            "hosts_per_ring": st.integers(1, 3),
            "chord_stride": st.integers(2, 5),
        }
    ),
    "multi_ring_per_switch": st.fixed_dictionaries(
        {
            "n_switches": st.integers(1, 6),
            "rings_per_switch": st.integers(1, 3),
            "hosts_per_ring": st.integers(1, 3),
        }
    ),
}

_family_and_args = st.sampled_from(sorted(_FAMILY_ARGS)).flatmap(
    lambda name: st.tuples(st.just(name), _FAMILY_ARGS[name])
)


def _arrivals():
    return ArrivalsSpec(utilization=0.3, n_requests=5, warmup_requests=0)


def _endpoint_hosts(spec):
    """First host of the first ring, first host of the last ring."""
    return spec.rings[0].host_ids()[0], spec.rings[-1].host_ids()[0]


class TestGeneratedSpecsValidate:
    @_relaxed
    @given(_family_and_args)
    def test_families_validate_and_build(self, family_args):
        name, kwargs = family_args
        spec = generators.FAMILIES[name](**kwargs)
        spec.validate()  # must not raise
        topo = spec.build()
        topo.validate()
        assert len(topo.rings) == spec.n_rings
        assert len(topo.switches) == spec.n_switches
        assert len(topo.hosts) == sum(r.n_hosts for r in spec.rings)

    @_relaxed
    @given(_family_and_args)
    def test_cross_ring_routes_resolve(self, family_args):
        name, kwargs = family_args
        spec = generators.FAMILIES[name](**kwargs)
        if spec.n_rings < 2:
            return
        topo = spec.build()
        src, dst = _endpoint_hosts(spec)
        route = compute_route(topo, src, dst)
        assert route.source_ring == spec.rings[0].ring_id
        assert route.dest_ring == spec.rings[-1].ring_id
        assert len(route.switch_path) >= 1

    @_relaxed
    @given(_family_and_args)
    def test_generators_are_deterministic(self, family_args):
        name, kwargs = family_args
        assert generators.FAMILIES[name](**kwargs) == generators.FAMILIES[
            name
        ](**kwargs)

    def test_paper_triangle_matches_reference_mesh(self):
        # The default family at n=3 must describe exactly the hand-built
        # reference network: same hosts, same backbone edges.
        spec = generators.paper_triangle()
        built = spec.build()
        reference = build_network(NetworkConfig())
        assert set(built.hosts) == set(reference.hosts)
        assert set(built.rings) == set(reference.rings)
        assert set(built.switches) == set(reference.switches)
        assert set(built._switch_links) == set(reference._switch_links)


class TestCodecRoundTrip:
    @_relaxed
    @given(
        _family_and_args,
        st.floats(min_value=1e-4, max_value=1e-1, allow_nan=False),
    )
    def test_topo_specs_round_trip_exactly(self, family_args, ttrt):
        name, kwargs = family_args
        topo = generators.FAMILIES[name](**kwargs)
        # Perturb one entry with an awkward float to exercise repr-exact
        # encoding of the optional per-entry parameters.
        topo = dataclasses.replace(
            topo,
            rings=(dataclasses.replace(topo.rings[0], ttrt=ttrt),)
            + topo.rings[1:],
        )
        spec = ScenarioSpec(name="t", topo=topo, arrivals=_arrivals())
        back = codec.loads(codec.dumps(spec))
        assert back == spec
        assert back.topo == topo
        assert codec.spec_hash(back) == codec.spec_hash(spec)

    def test_unknown_topo_field_rejected(self):
        spec = ScenarioSpec(
            name="t", topo=generators.line(3), arrivals=_arrivals()
        )
        payload = codec.dumps(spec).replace(
            '"rings"', '"surprise": [], "rings"', 1
        )
        with pytest.raises(ScenarioSpecError):
            codec.loads(payload)


class TestValidationRejects:
    def _base(self, **overrides):
        fields = dict(
            rings=(RingSpec("ring1", n_hosts=1), RingSpec("ring2", n_hosts=1)),
            switches=(SwitchSpec("s1"), SwitchSpec("s2")),
            devices=(
                DeviceSpec("id1", "ring1", "s1"),
                DeviceSpec("id2", "ring2", "s2"),
            ),
            links=(BackboneLinkSpec("s1", "s2"),),
        )
        fields.update(overrides)
        return TopologySpec(**fields)

    def test_base_is_valid(self):
        self._base().validate()

    def test_duplicate_ring_id(self):
        spec = self._base(
            rings=(RingSpec("ring1", n_hosts=1), RingSpec("ring1", n_hosts=1))
        )
        with pytest.raises(TopologyError, match="duplicate ring"):
            spec.validate()

    def test_colliding_host_prefixes(self):
        spec = self._base(
            rings=(
                RingSpec("ring1", n_hosts=2, host_prefix="h"),
                RingSpec("ring2", n_hosts=2, host_prefix="h"),
            )
        )
        with pytest.raises(TopologyError, match="duplicate host"):
            spec.validate()

    def test_dangling_device_ring(self):
        spec = self._base(
            devices=(
                DeviceSpec("id1", "ring1", "s1"),
                DeviceSpec("id2", "ghost", "s2"),
            )
        )
        with pytest.raises(TopologyError, match="unknown ring"):
            spec.validate()

    def test_unbridged_ring(self):
        spec = self._base(devices=(DeviceSpec("id1", "ring1", "s1"),))
        with pytest.raises(TopologyError, match="no interface device"):
            spec.validate()

    def test_doubly_bridged_ring(self):
        spec = self._base(
            devices=(
                DeviceSpec("id1", "ring1", "s1"),
                DeviceSpec("id2", "ring2", "s2"),
                DeviceSpec("id3", "ring1", "s2"),
            )
        )
        with pytest.raises(TopologyError, match="bridged by both"):
            spec.validate()

    def test_disconnected_backbone(self):
        spec = self._base(links=())
        with pytest.raises(TopologyError, match="strongly connected"):
            spec.validate()

    def test_one_way_pair_not_strongly_connected(self):
        spec = self._base(
            links=(BackboneLinkSpec("s1", "s2", bidirectional=False),)
        )
        with pytest.raises(TopologyError, match="strongly connected"):
            spec.validate()

    def test_duplicate_directed_link(self):
        spec = self._base(
            links=(
                BackboneLinkSpec("s1", "s2"),
                BackboneLinkSpec("s2", "s1", bidirectional=False),
            )
        )
        with pytest.raises(TopologyError, match="duplicate backbone link"):
            spec.validate()

    def test_scenario_spec_surfaces_topo_errors(self):
        with pytest.raises(ScenarioSpecError, match="topo"):
            ScenarioSpec(name="t", topo=self._base(links=()))


class TestFixedPointFeedForwardEquivalence:
    @_relaxed
    @given(
        st.sampled_from(["paper_triangle", "line", "star"]),
        st.integers(3, 6),
    )
    def test_forced_fixed_point_bit_identical(self, family, n_rings):
        # These families route feed-forward; forcing every shared port
        # through the fixed-point solver must change nothing at all.
        kwargs = {"n_rings": n_rings, "hosts_per_ring": 2}
        spec = generators.FAMILIES[family](**kwargs)
        traffic = PeriodicTraffic(c=20_000.0, p=0.02)

        def loads_for(topo):
            loads = []
            ring_ids = [r.ring_id for r in spec.rings]
            for i, ring_id in enumerate(ring_ids):
                src = spec.ring(ring_id).host_ids()[0]
                dst_ring = ring_ids[(i + 1) % len(ring_ids)]
                dst = spec.ring(dst_ring).host_ids()[-1]
                conn = ConnectionSpec(f"c{i}", src, dst, traffic, 0.5)
                loads.append(
                    ConnectionLoad(
                        conn, compute_route(topo, src, dst), 0.001, 0.001
                    )
                )
            return loads

        topo_plain = spec.build()
        topo_forced = spec.build()
        plain = DelayAnalyzer(topo_plain).compute(loads_for(topo_plain))
        forced = DelayAnalyzer(
            topo_forced,
            analysis_config=AnalysisConfig(force_fixed_point=True),
        ).compute(loads_for(topo_forced))
        assert set(plain) == set(forced)
        for cid in plain:
            assert plain[cid].total_delay == forced[cid].total_delay
            assert plain[cid].per_hop == forced[cid].per_hop
            assert (
                plain[cid].output.fingerprint()
                == forced[cid].output.fingerprint()
            )
