"""Tests for the retry-with-backoff re-admission machinery."""

import random

import pytest

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.core.failover import FailoverManager
from repro.errors import ConfigurationError
from repro.faults.retry import RetryOrchestrator, RetryPolicy
from repro.network.connection import ConnectionSpec
from repro.sim.engine import Simulator
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            base_delay=1.0, factor=2.0, max_delay=10.0, jitter=0.0
        )
        delays = [policy.delay(a) for a in range(1, 7)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 10.0, 10.0]

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=2.0, factor=1.0, jitter=0.5)
        rng_a, rng_b = random.Random(9), random.Random(9)
        a = [policy.delay(1, rng_a) for _ in range(20)]
        b = [policy.delay(1, rng_b) for _ in range(20)]
        assert a == b  # same seed, same jitter sequence
        assert all(2.0 <= d < 3.0 for d in a)
        assert len(set(a)) > 1  # jitter actually varies

    def test_schedule_deterministic_under_random_streams_substreams(self):
        """The admission service derives BUSY/TIMEOUT retry hints from a
        per-connection RandomStreams substream: same master seed + same
        stream name must give the same jittered schedule, and distinct
        names must diverge (no cross-connection coupling)."""
        from repro.sim.random import RandomStreams

        policy = RetryPolicy(
            base_delay=0.05, factor=2.0, max_delay=5.0, jitter=0.1
        )
        a1 = policy.schedule(6, RandomStreams(7).stream("retry:conn-a"))
        a2 = policy.schedule(6, RandomStreams(7).stream("retry:conn-a"))
        b = policy.schedule(6, RandomStreams(7).stream("retry:conn-b"))
        other_seed = policy.schedule(6, RandomStreams(8).stream("retry:conn-a"))
        assert a1 == a2
        assert a1 != b
        assert a1 != other_seed
        # Jitter never breaks the exponential envelope.
        for attempt, delay in enumerate(a1, start=1):
            bare = min(5.0, 0.05 * 2.0 ** (attempt - 1))
            assert bare <= delay <= bare * 1.1

    def test_schedule_length_and_validation(self):
        policy = RetryPolicy(jitter=0.0, max_attempts=4)
        assert policy.schedule() == policy.schedule(4)
        assert policy.schedule(0) == []
        with pytest.raises(ConfigurationError):
            policy.schedule(-1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay(0)


def displaced_setup(policy):
    """A loaded network with one connection displaced by a link failure."""
    topo = build_network()
    cac = AdmissionController(topo, cac_config=CACConfig(beta=0.4))
    res = cac.request(
        ConnectionSpec("vic", "host1-1", "host2-1", TRAFFIC, 0.12)
    )
    assert res.admitted, res.reason
    sim = Simulator()
    manager = FailoverManager(cac)
    orch = RetryOrchestrator(sim, cac, policy)
    return topo, cac, sim, manager, orch


class TestRetryOrchestrator:
    def test_reconnects_on_degraded_topology(self):
        policy = RetryPolicy(base_delay=3.0, jitter=0.0)
        topo, cac, sim, manager, orch = displaced_setup(policy)
        specs = manager.displace_link("s1", "s2")
        assert [s.conn_id for s in specs] == ["vic"]
        for spec in specs:
            orch.enqueue(spec)
        sim.run()
        assert orch.metrics.n_reconnected == 1
        assert orch.metrics.time_to_recover.mean == pytest.approx(3.0)
        # Re-admitted over the surviving triangle side.
        assert cac.connections["vic"].route.switch_path == ["s1", "s3", "s2"]

    def test_gives_up_after_max_attempts(self):
        policy = RetryPolicy(base_delay=1.0, factor=1.0, max_attempts=3, jitter=0.0)
        topo, cac, sim, manager, orch = displaced_setup(policy)
        # Cut ring1 off entirely: no retry can ever succeed.
        abandoned = []
        orch.on_abandoned = lambda entry: abandoned.append(entry.conn_id)
        for spec in manager.displace_node("id1"):
            orch.enqueue(spec)
        sim.run()
        assert abandoned == ["vic"]
        assert orch.metrics.n_abandoned == 1
        assert orch.metrics.n_retry_attempts == 3
        assert len(orch) == 0
        assert "vic" not in cac.connections
        # A clean rejection each time, never a crash, never a leak.
        for leak in cac.audit_allocations().values():
            assert leak == pytest.approx(0.0, abs=1e-12)

    def test_expires_when_lifetime_ends_while_queued(self):
        policy = RetryPolicy(base_delay=5.0, factor=1.0, jitter=0.0)
        topo, cac, sim, manager, orch = displaced_setup(policy)
        expired = []
        orch.on_expired = lambda entry: expired.append(entry.conn_id)
        for spec in manager.displace_node("id1"):
            orch.enqueue(spec, expires_at=2.0)  # lifetime ends before retry
        sim.run()
        assert expired == ["vic"]
        assert orch.metrics.n_expired == 1
        assert orch.metrics.n_retry_attempts == 0

    def test_kick_all_attempts_tightest_deadline_first(self):
        topo = build_network()
        cac = AdmissionController(topo, cac_config=CACConfig(beta=0.4))
        for cid, src, dst, dl in [
            ("loose", "host1-1", "host2-1", 0.12),
            ("tight", "host1-2", "host2-2", 0.08),
        ]:
            assert cac.request(
                ConnectionSpec(cid, src, dst, TRAFFIC, dl)
            ).admitted
        sim = Simulator()
        manager = FailoverManager(cac)
        policy = RetryPolicy(base_delay=100.0, jitter=0.0)
        attempts = []
        orch = RetryOrchestrator(
            sim,
            cac,
            policy,
            on_reconnected=lambda e, r: attempts.append(e.conn_id),
        )
        for spec in manager.displace_link("s1", "s2"):
            orch.enqueue(spec)
        # Repair at t=1, long before the first backoff timer at t=100.
        sim.schedule(1.0, lambda: manager.restore_link("s1", "s2"))
        sim.schedule(1.0, orch.kick_all)
        sim.run_until(2.0)
        assert attempts == ["tight", "loose"]
        assert sim.now == 2.0
        # The backoff timers were cancelled: nothing left to run.
        assert sim.peek_time() is None

    def test_duplicate_enqueue_rejected(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.0)
        topo, cac, sim, manager, orch = displaced_setup(policy)
        specs = manager.displace_link("s1", "s2")
        orch.enqueue(specs[0])
        with pytest.raises(ConfigurationError):
            orch.enqueue(specs[0])
