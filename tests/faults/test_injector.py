"""Tests for scripted and stochastic fault injection."""

import pytest

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.core.failover import FailoverManager
from repro.errors import ConfigurationError
from repro.faults.injector import (
    FaultConfig,
    FaultInjector,
    FaultScript,
    ScriptedFault,
)
from repro.network.connection import ConnectionSpec
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


def loaded():
    topo = build_network()
    cac = AdmissionController(topo, cac_config=CACConfig(beta=0.4))
    for cid, src, dst, dl in [
        ("r12", "host1-1", "host2-1", 0.12),
        ("r13", "host1-2", "host3-1", 0.12),
    ]:
        assert cac.request(ConnectionSpec(cid, src, dst, TRAFFIC, dl)).admitted
    return topo, cac


class TestFaultConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(link_mtbf=-1.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(link_mttr=0.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(distribution="weibull")

    def test_any_enabled(self):
        assert not FaultConfig().any_enabled
        assert FaultConfig(link_mtbf=10.0).any_enabled
        assert FaultConfig(device_mtbf=10.0).any_enabled


class TestScriptedInjection:
    def test_script_fails_and_repairs_on_schedule(self):
        topo, cac = loaded()
        sim = Simulator()
        log = []
        script = FaultScript(
            [
                ScriptedFault(20.0, "repair", ("s1", "s2")),
                ScriptedFault(5.0, "fail", ("s1", "s2")),
            ]
        )
        injector = FaultInjector(
            sim,
            FailoverManager(cac),
            script=script,
            on_displaced=lambda kind, target, specs: log.append(
                ("fail", sim.now, kind, sorted(s.conn_id for s in specs))
            ),
            on_repaired=lambda kind, target: log.append(
                ("repair", sim.now, kind)
            ),
        )
        injector.start()
        sim.run()
        assert log == [
            ("fail", 5.0, "link", ["r12"]),
            ("repair", 20.0, "link", ),
        ]
        assert injector.n_failures == 1 and injector.n_repairs == 1
        assert not topo.is_link_failed("s1", "s2")
        # Displacement released the victim's resources.
        assert "r12" not in cac.connections
        for leak in cac.audit_allocations().values():
            assert leak == pytest.approx(0.0, abs=1e-12)

    def test_scripted_node_failure_displaces_ring(self):
        topo, cac = loaded()
        sim = Simulator()
        displaced = []
        script = FaultScript([ScriptedFault(1.0, "fail", "id1")])
        FaultInjector(
            sim,
            FailoverManager(cac),
            script=script,
            on_displaced=lambda kind, target, specs: displaced.extend(
                s.conn_id for s in specs
            ),
        ).start()
        sim.run()
        assert sorted(displaced) == ["r12", "r13"]
        assert topo.is_node_failed("id1")

    def test_script_validation(self):
        with pytest.raises(ConfigurationError):
            ScriptedFault(1.0, "explode", ("s1", "s2"))
        with pytest.raises(ConfigurationError):
            ScriptedFault(-1.0, "fail", ("s1", "s2"))

    def test_needs_config_or_script(self):
        topo, cac = loaded()
        with pytest.raises(ConfigurationError):
            FaultInjector(Simulator(), FailoverManager(cac))

    def test_double_start_rejected(self):
        topo, cac = loaded()
        injector = FaultInjector(
            Simulator(),
            FailoverManager(cac),
            script=FaultScript([]),
        )
        injector.start()
        with pytest.raises(ConfigurationError):
            injector.start()


class TestStochasticInjection:
    def run_failure_times(self, seed, horizon=2000.0):
        topo, cac = loaded()
        sim = Simulator()
        times = []
        injector = FaultInjector(
            sim,
            FailoverManager(cac),
            streams=RandomStreams(seed),
            config=FaultConfig(link_mtbf=200.0, link_mttr=20.0),
            on_displaced=lambda kind, target, specs: times.append(
                (round(sim.now, 9), target)
            ),
        )
        injector.start()
        sim.run_until(horizon)
        return times

    def test_same_seed_same_schedule(self):
        assert self.run_failure_times(5) == self.run_failure_times(5)
        assert len(self.run_failure_times(5)) > 0

    def test_different_seeds_differ(self):
        assert self.run_failure_times(5) != self.run_failure_times(6)

    def test_fault_streams_do_not_touch_workload_streams(self):
        # The injector draws only from "faults:*" substreams: the workload
        # streams must be byte-identical with and without fault draws.
        clean = RandomStreams(11)
        baseline = [clean.exponential("arrivals", 1.0) for _ in range(50)]

        topo, cac = loaded()
        streams = RandomStreams(11)
        injector = FaultInjector(
            Simulator(),
            FailoverManager(cac),
            streams=streams,
            config=FaultConfig(link_mtbf=50.0, link_mttr=5.0),
        )
        injector.start()  # consumes fault-stream draws
        assert [
            streams.exponential("arrivals", 1.0) for _ in range(50)
        ] == baseline

    def test_deterministic_distribution_fires_at_mean(self):
        topo, cac = loaded()
        sim = Simulator()
        log = []
        injector = FaultInjector(
            sim,
            FailoverManager(cac),
            streams=RandomStreams(1),
            config=FaultConfig(
                link_mtbf=100.0, link_mttr=10.0, distribution="deterministic"
            ),
        )
        injector.on_displaced = lambda kind, target, specs: log.append(
            (sim.now, "fail", target)
        )
        injector.on_repaired = lambda kind, target: log.append(
            (sim.now, "repair", target)
        )
        injector.start()
        sim.run_until(115.0)
        # All three links fail together at t=100, repair at t=110.
        assert [t for t, action, _ in log if action == "fail"] == [
            100.0,
            100.0,
            100.0,
        ]
        assert [t for t, action, _ in log if action == "repair"] == [
            110.0,
            110.0,
            110.0,
        ]
