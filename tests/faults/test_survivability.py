"""End-to-end survivability: fail -> retry -> restore -> re-admit.

The key invariant (and the reason the CAC release/re-admit path is
transactional): after a full outage-and-recovery cycle, the allocations on
both FDDI rings and the delays through every ATM port must exactly match a
fresh admission of the same connection set — nothing leaked, nothing
double-counted.
"""

import math

import pytest

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.core.failover import FailoverManager
from repro.faults.audit import audit_controller
from repro.faults.injector import FaultConfig, FaultInjector, FaultScript, ScriptedFault
from repro.faults.retry import RetryOrchestrator, RetryPolicy
from repro.network.connection import ConnectionSpec
from repro.sim.connection_sim import ConnectionSimConfig, ConnectionSimulator
from repro.sim.engine import Simulator
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)

#: (conn_id, source, dest, deadline) — r12 has the tightest deadline so the
#: deadline-ordered re-admission pass must bring it back first.
WORKLOAD = [
    ("r12", "host1-1", "host2-1", 0.10),
    ("r13", "host1-2", "host3-1", 0.12),
    ("r23", "host2-2", "host3-2", 0.12),
]


def admit_all(cac, order):
    by_id = {cid: (cid, src, dst, dl) for cid, src, dst, dl in WORKLOAD}
    for cid in order:
        cid, src, dst, dl = by_id[cid]
        res = cac.request(ConnectionSpec(cid, src, dst, TRAFFIC, dl))
        assert res.admitted, f"{cid}: {res.reason}"


class TestFullCycleNoLeak:
    def test_fail_retry_restore_readmit_matches_fresh_admission(self):
        topo = build_network()
        cac = AdmissionController(topo, cac_config=CACConfig(beta=0.4))
        admit_all(cac, ["r12", "r13", "r23"])

        sim = Simulator()
        manager = FailoverManager(cac)
        # No jitter and a flat 2 s backoff: attempts at t=3,5,7,9 all fail
        # (device id1 is down, ring1 is unreachable), then the repair at
        # t=10 kicks the queue and both connections come back.
        policy = RetryPolicy(
            base_delay=2.0, factor=1.0, max_attempts=50, jitter=0.0
        )
        reconnected = []
        orch = RetryOrchestrator(
            sim,
            cac,
            policy,
            on_reconnected=lambda e, r: reconnected.append(
                (sim.now, e.conn_id)
            ),
        )
        injector = FaultInjector(
            sim,
            manager,
            script=FaultScript(
                [
                    ScriptedFault(1.0, "fail", "id1"),
                    ScriptedFault(10.0, "repair", "id1"),
                ]
            ),
            on_displaced=lambda kind, target, specs: [
                orch.enqueue(s) for s in specs
            ],
            on_repaired=lambda kind, target: orch.kick_all(),
        )
        injector.start()
        sim.run()

        # Both displaced connections survived, tightest deadline first,
        # immediately on repair (not at the next backoff timer).
        assert reconnected == [(10.0, "r12"), (10.0, "r13")]
        assert orch.metrics.n_displaced == 2
        assert orch.metrics.survival_rate == 1.0
        assert orch.metrics.time_to_recover.mean == pytest.approx(9.0)
        # 4 failed attempts while down (t=3,5,7,9) + the kick that landed.
        assert orch.metrics.retries_per_reconnect.mean == pytest.approx(5.0)

        # --- The invariant: the whole outage cycle (displacement, four
        # failed re-admission attempts on the dead topology, restore,
        # deadline-ordered kick) must leave state bit-for-bit identical to
        # a plain release-and-readmit on a CAC that never saw a fault.
        # BetaPolicy grants depend on the live set at admission time, so
        # the reference replays the same admission sequence: original
        # order, release the displaced pair, re-admit in recovery order.
        fresh_topo = build_network()
        fresh = AdmissionController(fresh_topo, cac_config=CACConfig(beta=0.4))
        admit_all(fresh, ["r12", "r13", "r23"])
        fresh.release("r12")
        fresh.release("r13")
        admit_all(fresh, [cid for _, cid in reconnected])

        assert set(cac.connections) == set(fresh.connections)
        for cid, rec in cac.connections.items():
            ref = fresh.connections[cid]
            assert rec.h_source == ref.h_source, cid
            assert rec.h_dest == ref.h_dest, cid
            assert rec.delay_bound == ref.delay_bound, cid
            assert rec.route.switch_path == ref.route.switch_path, cid
        # Ring synchronous-bandwidth ledgers match exactly.
        for rid, ring in topo.rings.items():
            assert (
                ring.allocated_sync_time
                == fresh_topo.rings[rid].allocated_sync_time
            ), rid
        # ATM ports carry no per-connection state: the recomputed
        # end-to-end delays (which traverse every port) must agree too.
        assert cac.current_delays() == fresh.current_delays()

        audit = audit_controller(cac)
        assert audit.ok, audit.format()
        assert audit.leaked_sync_time == pytest.approx(0.0, abs=1e-12)
        assert not audit.deadline_violations


class TestSimulatorUnderFaults:
    FAULTY = dict(
        utilization=0.5,
        beta=0.5,
        seed=3,
        n_requests=40,
        warmup_requests=10,
        faults=FaultConfig(link_mtbf=120.0, link_mttr=40.0),
        retry=RetryPolicy(
            base_delay=5.0, factor=2.0, max_delay=60.0, max_attempts=8
        ),
    )

    _first_run = None

    @classmethod
    def faulty_run(cls):
        if cls._first_run is None:
            cls._first_run = ConnectionSimulator(
                ConnectionSimConfig(**cls.FAULTY)
            ).run()
        return cls._first_run

    def test_deterministic_replay(self):
        # Satellite: same seed => bit-for-bit identical survivability
        # metrics, admission probability, and simulated time.
        a = self.faulty_run()
        b = ConnectionSimulator(ConnectionSimConfig(**self.FAULTY)).run()
        assert a.survivability.summary() == b.survivability.summary()
        assert a.admission_probability == b.admission_probability
        assert a.sim_time == b.sim_time
        assert a.metrics.n_requests == b.metrics.n_requests

    def test_faults_actually_fire_and_audit_passes(self):
        result = self.faulty_run()
        sv = result.survivability
        assert sv.n_link_failures > 0
        assert sv.n_displaced > 0
        assert sv.n_reconnected > 0
        assert 0.0 <= sv.survival_rate <= 1.0
        assert not math.isnan(sv.mean_time_to_recover)
        # Graceful degradation, never a crash — and never a leak.
        assert result.audit is not None
        assert result.audit.ok, result.audit.format()

    def test_fault_free_run_untouched(self):
        cfg = ConnectionSimConfig(
            utilization=0.5, beta=0.5, seed=3, n_requests=40, warmup_requests=10
        )
        result = ConnectionSimulator(cfg).run()
        assert result.survivability is None
        assert result.audit is None
        # A FaultConfig with every MTBF at 0 is the same as no faults.
        assert not ConnectionSimConfig(
            utilization=0.5, faults=FaultConfig()
        ).faults_enabled


class TestSurvivabilityExperiment:
    def test_run_survivability_tiny(self, tmp_path):
        from repro.experiments.common import ExperimentSettings
        from repro.experiments.survivability import main, run_survivability

        settings = ExperimentSettings(
            n_requests=25, warmup_requests=5, seeds=(1,)
        )
        series, audit_failures = run_survivability(
            settings,
            utilizations=(0.5,),
            faults=FaultConfig(link_mtbf=100.0, link_mttr=20.0),
            retry=RetryPolicy(base_delay=2.0, max_attempts=8),
        )
        assert audit_failures == []
        labels = [s.label for s in series]
        assert labels == [
            "AP no-faults",
            "AP faults",
            "survival",
            "mean TTR (s)",
            "retries/reconnect",
        ]
        ap_clean, ap_faults = series[0], series[1]
        assert ap_clean.xs == [0.5] and ap_faults.xs == [0.5]
        assert 0.0 <= ap_clean.ys[0] <= 1.0
        assert 0.0 <= ap_faults.ys[0] <= 1.0

    def test_main_writes_csv(self, tmp_path):
        from repro.experiments.common import ExperimentSettings
        from repro.experiments.survivability import main

        settings = ExperimentSettings(
            n_requests=20, warmup_requests=2, seeds=(1,)
        )
        text = main(settings, csv_dir=str(tmp_path), utilizations=(0.3,))
        assert "Survivability" in text
        assert "AP faults" in text
        assert (tmp_path / "survivability.csv").exists()
        header = (tmp_path / "survivability.csv").read_text().splitlines()[0]
        assert "survival" in header
