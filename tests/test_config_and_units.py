"""Tests for configuration validation, units and the error hierarchy."""

import math

import pytest

from repro import errors
from repro.config import (
    AnalysisConfig,
    CACConfig,
    NetworkConfig,
    SimulationConfig,
    build_network,
)
from repro.errors import ConfigurationError
from repro import units


class TestUnits:
    def test_rate_helpers(self):
        assert units.mbps(155.52) == 155_520_000.0
        assert units.kbps(64.0) == 64_000.0

    def test_time_helpers(self):
        assert units.milliseconds(8.0) == pytest.approx(0.008)
        assert units.microseconds(50.0) == pytest.approx(5e-5)
        assert units.seconds_to_ms(0.008) == pytest.approx(8.0)

    def test_byte_helpers(self):
        assert units.bytes_to_bits(53) == 424.0
        assert units.bits_to_bytes(424.0) == 53.0


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.ConfigurationError,
            errors.CurveError,
            errors.UnstableSystemError,
            errors.BufferOverflowError,
            errors.TopologyError,
            errors.RoutingError,
            errors.AdmissionError,
            errors.CyclicDependencyError,
            errors.SimulationError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_routing_is_topology_error(self):
        assert issubclass(errors.RoutingError, errors.TopologyError)

    def test_admission_error_reason(self):
        e = errors.AdmissionError("too busy")
        assert e.reason == "too busy"


class TestNetworkConfig:
    def test_defaults_match_paper(self):
        cfg = NetworkConfig()
        assert cfg.n_rings == 3
        assert cfg.hosts_per_ring == 4
        assert cfg.atm_link_rate == pytest.approx(155.52e6)
        assert cfg.fddi_bandwidth == pytest.approx(100e6)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(n_rings=0)

    def test_invalid_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(ring_overhead=0.009)  # >= TTRT


class TestAnalysisConfig:
    def test_defaults(self):
        cfg = AnalysisConfig()
        assert cfg.envelope_horizon > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AnalysisConfig(envelope_horizon=0.0)
        with pytest.raises(ConfigurationError):
            AnalysisConfig(max_envelope_segments=2)
        with pytest.raises(ConfigurationError):
            AnalysisConfig(output_delay_quantum=-1.0)


class TestCACConfig:
    def test_beta_bounds(self):
        with pytest.raises(ConfigurationError):
            CACConfig(beta=-0.1)
        with pytest.raises(ConfigurationError):
            CACConfig(beta=1.1)

    def test_tolerance_bounds(self):
        with pytest.raises(ConfigurationError):
            CACConfig(search_tolerance=0.0)
        with pytest.raises(ConfigurationError):
            CACConfig(delay_equality_rtol=0.0)


class TestSimulationConfig:
    def test_arrival_rate_formula(self):
        # U = (lambda / (n mu)) rho / C  ->  lambda = U n mu C / rho.
        sim = SimulationConfig()
        net = NetworkConfig()
        lam = sim.arrival_rate_for_utilization(0.5, net)
        rho = sim.workload.mean_rate
        mu = 1.0 / sim.mean_lifetime
        assert lam == pytest.approx(0.5 * 3 * mu * net.atm_link_rate / rho)

    def test_link_count_is_pairwise_mesh(self):
        # Regression: n_links was miscounted as n (rings) instead of the
        # mesh's n(n-1)/2 backbone links.  Correct only by accident at
        # n = 3; a 4-ring mesh has 6 links, a 2-ring mesh has 1.
        sim = SimulationConfig()
        rho = sim.workload.mean_rate
        mu = 1.0 / sim.mean_lifetime
        for n_rings, n_links in ((2, 1), (3, 3), (4, 6), (6, 15)):
            net = NetworkConfig(n_rings=n_rings)
            lam = sim.arrival_rate_for_utilization(0.5, net)
            assert lam == pytest.approx(
                0.5 * n_links * mu * net.atm_link_rate / rho
            ), f"n_rings={n_rings}"

    def test_mesh_count_matches_built_topology(self):
        # The formula's n(n-1)/2 * C must equal what the built mesh
        # actually reports as aggregate backbone capacity.
        sim = SimulationConfig()
        for n_rings in (2, 3, 4):
            net = NetworkConfig(n_rings=n_rings)
            topo = build_network(net)
            assert sim.arrival_rate_for_utilization(
                0.5, net
            ) == pytest.approx(
                sim.arrival_rate_for_utilization(
                    0.5, net, backbone_capacity=topo.backbone_capacity()
                )
            )

    def test_explicit_backbone_capacity_overrides(self):
        sim = SimulationConfig()
        rho = sim.workload.mean_rate
        mu = 1.0 / sim.mean_lifetime
        lam = sim.arrival_rate_for_utilization(0.5, None, backbone_capacity=1e9)
        assert lam == pytest.approx(0.5 * mu * 1e9 / rho)
        with pytest.raises(ConfigurationError):
            sim.arrival_rate_for_utilization(0.5, None, backbone_capacity=0.0)

    def test_load_scale_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(load_scale=0.0)

    def test_lifetime_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(mean_lifetime=-1.0)


class TestBuildNetworkDefaults:
    def test_default_is_validated(self):
        topo = build_network()
        topo.validate()  # must not raise

    def test_two_ring_variant(self):
        topo = build_network(NetworkConfig(n_rings=2, hosts_per_ring=3))
        assert topo.backbone_path("s1", "s2") == ["s1", "s2"]
