"""Tests for the interface-device stages (Theorem 2 and the mirror)."""

import math

import numpy as np
import pytest

from repro.atm import AtmLink, CELL_PAYLOAD_BITS
from repro.envelopes.curve import Curve
from repro.errors import ConfigurationError, TopologyError
from repro.interface_device import (
    CellFrameConversionServer,
    FrameCellConversionServer,
    InterfaceDevice,
)
from repro.units import MBIT


class TestFrameCellConversion:
    def test_cells_per_frame(self):
        s = FrameCellConversionServer(frame_bits=1000.0)
        assert s.cells_per_frame == math.ceil(1000 / 384)
        assert s.bits_out_per_frame == s.cells_per_frame * CELL_PAYLOAD_BITS

    def test_eq21_shape(self):
        # A(I) = one 1000-bit frame: output = 3 cells * 384 bits.
        s = FrameCellConversionServer(frame_bits=1000.0)
        r = s.analyze(Curve.constant(1000.0))
        assert r.output(0.0) == pytest.approx(3 * 384.0)

    def test_output_dominates_eq21(self):
        s = FrameCellConversionServer(frame_bits=1000.0, horizon=0.1)
        arrival = Curve.affine(500.0, 100_000.0)
        r = s.analyze(arrival)
        for t in np.linspace(0, 0.2, 100):
            a = arrival(float(t))
            eq21 = math.ceil(a / 1000.0 - 1e-12) * 3 * 384.0
            assert r.output(float(t)) >= eq21 - 1e-6

    def test_processing_delay_is_bound(self):
        s = FrameCellConversionServer(frame_bits=1000.0, processing_delay=2e-5)
        assert s.analyze(Curve.zero()).delay_bound == 2e-5

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            FrameCellConversionServer(frame_bits=0.0)
        with pytest.raises(ConfigurationError):
            FrameCellConversionServer(frame_bits=1.0, processing_delay=-1.0)
        with pytest.raises(ConfigurationError):
            FrameCellConversionServer(frame_bits=1.0, horizon=0.0)


class TestCellFrameConversion:
    def test_reassembly_quantum(self):
        s = CellFrameConversionServer(frame_bits=1000.0)
        assert s.bits_in_per_frame == 3 * 384.0

    def test_round_trip_preserves_frame_count(self):
        # frames -> cells -> frames: totals match frame-for-frame.
        fwd = FrameCellConversionServer(frame_bits=1000.0)
        back = CellFrameConversionServer(frame_bits=1000.0)
        arrival = Curve.constant(2000.0)  # 2 frames
        cells = fwd.analyze(arrival).output
        frames = back.analyze(cells).output
        assert frames(0.0) == pytest.approx(2000.0)

    def test_delay_is_processing_only(self):
        s = CellFrameConversionServer(frame_bits=1000.0, processing_delay=1e-5)
        assert s.analyze(Curve.constant(384.0)).delay_bound == 1e-5


class TestInterfaceDevice:
    def make_device(self, **kw):
        return InterfaceDevice(
            "id1",
            "ring1",
            input_port_delay=1e-5,
            frame_switch_delay=2e-5,
            frame_processing_delay=3e-5,
            **kw,
        )

    def test_constant_stage_servers(self):
        dev = self.make_device()
        assert dev.input_port_server().delay == 1e-5
        assert dev.frame_switch_server().delay == 2e-5

    def test_uplink_attachment(self):
        dev = self.make_device()
        port = dev.attach_uplink(AtmLink("id1->s1", rate=155 * MBIT))
        assert dev.uplink_port is port
        assert dev.uplink.link_id == "id1->s1"

    def test_double_uplink_rejected(self):
        dev = self.make_device()
        dev.attach_uplink(AtmLink("a", rate=1.0))
        with pytest.raises(TopologyError):
            dev.attach_uplink(AtmLink("b", rate=1.0))

    def test_missing_uplink_rejected(self):
        with pytest.raises(TopologyError):
            _ = self.make_device().uplink_port

    def test_rejects_negative_delays(self):
        with pytest.raises(ConfigurationError):
            InterfaceDevice("x", "r", input_port_delay=-1.0)
