"""Tests for the static-priority output port."""

import math

import pytest

from repro.atm import AtmLink
from repro.atm.priority_port import PriorityOutputPortServer
from repro.atm.output_port import OutputPortServer
from repro.envelopes.curve import Curve
from repro.envelopes.operations import token_bucket_majorant
from repro.errors import ConfigurationError, UnstableSystemError
from repro.units import MBIT


def make_port(**kw):
    return PriorityOutputPortServer(AtmLink("l", rate=155.52 * MBIT), **kw)


class TestTokenBucketMajorant:
    def test_affine_curve_is_its_own_majorant(self):
        sigma, rho = token_bucket_majorant(Curve.affine(100.0, 5.0))
        assert sigma == pytest.approx(100.0)
        assert rho == pytest.approx(5.0)

    def test_staircase_majorant(self):
        stair = Curve([0.0, 1.0], [10.0, 20.0], [0.0, 10.0])
        sigma, rho = token_bucket_majorant(stair)
        # rho = 10; sigma must cover the left limit at t=1: 10 - 10*1 = 0,
        # and the initial burst 10 at t=0.
        assert rho == 10.0
        assert sigma == pytest.approx(10.0)

    def test_majorant_dominates(self):
        import numpy as np

        c = Curve([0.0, 0.5, 2.0], [5.0, 9.0, 12.0], [0.0, 0.0, 3.0])
        sigma, rho = token_bucket_majorant(c)
        for t in np.linspace(0, 10, 101):
            assert sigma + rho * t >= c(float(t)) - 1e-9


class TestPriorityClasses:
    def test_high_priority_unaffected_by_low(self):
        port = make_port()
        high = Curve.constant(100_000.0)
        low = Curve.constant(5_000_000.0)
        alone = port.analyze_classes({0: [high]})[0].delay_bound
        with_low = port.analyze_classes({0: [high], 1: [low]})[0].delay_bound
        # Only the single-cell blocking term separates them (already in both).
        assert with_low == pytest.approx(alone, rel=1e-9)

    def test_low_priority_pays_for_high(self):
        port = make_port()
        tagged = Curve.constant(100_000.0)
        heavy_high = Curve.affine(500_000.0, 50 * MBIT)
        alone = port.analyze_classes({1: [tagged]})[1].delay_bound
        crowded = port.analyze_classes({0: [heavy_high], 1: [tagged]})[1].delay_bound
        assert crowded > alone

    def test_priority_beats_fifo_for_high_class(self):
        link = AtmLink("l", rate=155.52 * MBIT)
        prio = PriorityOutputPortServer(link)
        fifo = OutputPortServer(link)
        tagged = Curve.constant(100_000.0)
        cross = Curve.constant(2_000_000.0)
        d_fifo = fifo.analyze_tagged(tagged, [cross]).delay_bound
        d_prio = prio.analyze_tagged(tagged, [], higher_class=[], lower_class=[cross]).delay_bound
        assert d_prio < d_fifo

    def test_overload_raises(self):
        port = make_port()
        with pytest.raises(UnstableSystemError):
            port.analyze_classes({0: [Curve.affine(0.0, 200 * MBIT)]})

    def test_cascade_overload_detected_at_lower_class(self):
        port = make_port()
        high = Curve.affine(0.0, 100 * MBIT)
        low = Curve.affine(0.0, 60 * MBIT)  # 160 total > 140.8 payload
        with pytest.raises(UnstableSystemError):
            port.analyze_classes({0: [high], 1: [low]})

    def test_port_latency_added(self):
        base = make_port().analyze_classes({0: [Curve.constant(1000.0)]})[0]
        slow = make_port(port_latency=0.001).analyze_classes(
            {0: [Curve.constant(1000.0)]}
        )[0]
        assert slow.delay_bound == pytest.approx(base.delay_bound + 0.001)

    def test_blocking_term_present(self):
        # Even the highest class waits for one cell already on the wire.
        port = make_port()
        res = port.analyze_classes({0: [Curve.constant(384.0)]})[0]
        assert res.leftover_latency > 0

    def test_tagged_output_capped(self):
        port = make_port()
        res = port.analyze_tagged(
            Curve.constant(500_000.0), [], higher_class=[Curve.constant(1000.0)]
        )
        assert res.output(0.0) == pytest.approx(0.0)

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            make_port(port_latency=-1.0)
        with pytest.raises(ConfigurationError):
            make_port(blocking_bits=-1.0)
