"""Tests for the GCRA policer."""

import pytest

from repro.atm.gcra import GCRA, police_stream
from repro.errors import ConfigurationError


class TestConformance:
    def test_evenly_spaced_stream_conforms(self):
        g = GCRA(increment=0.001, tolerance=0.0)
        assert all(g.check(i * 0.001) for i in range(100))

    def test_slightly_fast_stream_dropped(self):
        g = GCRA(increment=0.001, tolerance=0.0)
        assert g.check(0.0)
        # Next cell 10% early: non-conforming.
        assert not g.check(0.0009)
        # But on schedule it conforms.
        assert g.check(0.001)

    def test_tolerance_allows_jitter(self):
        g = GCRA(increment=0.001, tolerance=0.0005)
        assert g.check(0.0)
        assert g.check(0.0006)  # 0.4 ms early, within tau

    def test_burst_with_tau(self):
        # tau = 3T allows 4 back-to-back cells.
        g = GCRA.for_rate(cell_rate=1000.0, burst_cells=4)
        results = [g.check(0.0) for _ in range(5)]
        assert results == [True, True, True, True, False]

    def test_nonconforming_cell_leaves_state_unchanged(self):
        g = GCRA(increment=0.001, tolerance=0.0)
        g.check(0.0)
        g.check(0.0005)  # dropped
        assert g.check(0.001)  # still on the original schedule

    def test_out_of_order_rejected(self):
        g = GCRA(increment=0.001, tolerance=0.0)
        g.check(1.0)
        with pytest.raises(ConfigurationError):
            g.check(0.5)

    def test_reset(self):
        g = GCRA.for_rate(1000.0)
        g.check(0.0)
        assert not g.check(0.0)
        g.reset()
        assert g.check(0.0)

    def test_idle_period_does_not_accumulate_credit_beyond_tau(self):
        g = GCRA(increment=0.001, tolerance=0.001)
        assert g.check(0.0)
        # Long silence, then a burst: only 1 + tau/T = 2 cells conform.
        results = [g.check(10.0) for _ in range(4)]
        assert results == [True, True, False, False]


class TestBridges:
    def test_max_cells_in_window(self):
        g = GCRA(increment=0.001, tolerance=0.002)
        # window 0: 1 + floor(0.002/0.001) = 3 back-to-back cells.
        assert g.max_cells_in_window(0.0) == 3
        assert g.max_cells_in_window(0.01) == 13

    def test_equivalent_descriptor_rates(self):
        g = GCRA(increment=0.001, tolerance=0.002)
        d = g.equivalent_descriptor(cell_bits=384.0)
        assert d.rho == pytest.approx(384_000.0)
        assert d.sigma == pytest.approx(3 * 384.0)

    def test_descriptor_bounds_conforming_stream(self):
        g = GCRA(increment=0.001, tolerance=0.002)
        d = g.equivalent_descriptor(cell_bits=384.0)
        env = d.envelope(1.0)
        # Greedy conforming stream: burst then steady.
        stream = [0.0, 0.0, 0.0] + [0.001 * k for k in range(1, 200)]
        probe = GCRA(increment=0.001, tolerance=0.002)
        ok, dropped = police_stream(probe, stream)
        assert not dropped
        # Count cells in sliding windows; each must be within the envelope.
        for start in (0.0, 0.0005, 0.05):
            for width in (0.0, 0.005, 0.05):
                cells = sum(1 for t in ok if start <= t <= start + width)
                assert cells * 384.0 <= env(width) + 1e-9

    def test_for_rate_validation(self):
        with pytest.raises(ConfigurationError):
            GCRA.for_rate(0.0)
        with pytest.raises(ConfigurationError):
            GCRA.for_rate(1000.0, burst_cells=0.5)

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            GCRA(increment=0.0, tolerance=0.0)
        with pytest.raises(ConfigurationError):
            GCRA(increment=1.0, tolerance=-1.0)

    def test_police_stream_splits(self):
        g = GCRA(increment=0.001, tolerance=0.0)
        ok, dropped = police_stream(g, [0.0, 0.0005, 0.001, 0.0015, 0.002])
        assert ok == [0.0, 0.001, 0.002]
        assert dropped == [0.0005, 0.0015]
