"""Tests for ATM virtual-circuit management."""

import pytest

from repro.atm.vc import VcExhaustedError, VirtualCircuitManager
from repro.config import build_network
from repro.errors import TopologyError
from repro.network.routing import compute_route


@pytest.fixture()
def topo():
    return build_network()


@pytest.fixture()
def manager(topo):
    return VirtualCircuitManager(topo, vcis_per_link=4, first_vci=32)


class TestSetup:
    def test_circuit_spans_route(self, topo, manager):
        route = compute_route(topo, "host1-1", "host2-1")
        vc = manager.setup("c1", route)
        assert vc.path_links == ["id1->s1", "s1->s2", "s2->id2"]
        assert all(h.vci >= 32 for h in vc.hops)

    def test_local_route_needs_no_labels(self, topo, manager):
        route = compute_route(topo, "host1-1", "host1-2")
        vc = manager.setup("c1", route)
        assert vc.hops == ()

    def test_labels_unique_per_link(self, topo, manager):
        route = compute_route(topo, "host1-1", "host2-1")
        vc1 = manager.setup("c1", route)
        route2 = compute_route(topo, "host1-2", "host2-2")
        vc2 = manager.setup("c2", route2)
        assert vc1.hops[0].link_id == vc2.hops[0].link_id
        assert vc1.hops[0].vci != vc2.hops[0].vci

    def test_duplicate_circuit_rejected(self, topo, manager):
        route = compute_route(topo, "host1-1", "host2-1")
        manager.setup("c1", route)
        with pytest.raises(TopologyError):
            manager.setup("c1", route)

    def test_exhaustion_raises_and_rolls_back(self, topo):
        manager = VirtualCircuitManager(topo, vcis_per_link=2, first_vci=32)
        route = compute_route(topo, "host1-1", "host2-1")
        manager.setup("a", route)
        manager.setup("b", compute_route(topo, "host1-2", "host2-2"))
        with pytest.raises(VcExhaustedError):
            manager.setup("c", compute_route(topo, "host1-3", "host2-3"))
        # Roll-back: no labels leaked on any link of the failed attempt.
        assert manager.labels_in_use("id1->s1") == 2
        assert manager.circuit_of("c") is None


class TestTeardown:
    def test_teardown_frees_labels(self, topo, manager):
        route = compute_route(topo, "host1-1", "host2-1")
        manager.setup("c1", route)
        assert manager.labels_in_use("id1->s1") == 1
        manager.teardown("c1")
        assert manager.labels_in_use("id1->s1") == 0
        assert manager.circuit_of("c1") is None

    def test_teardown_unknown_rejected(self, manager):
        with pytest.raises(TopologyError):
            manager.teardown("ghost")

    def test_labels_reusable_after_teardown(self, topo):
        manager = VirtualCircuitManager(topo, vcis_per_link=1, first_vci=32)
        route = compute_route(topo, "host1-1", "host2-1")
        manager.setup("a", route)
        manager.teardown("a")
        vc = manager.setup("b", compute_route(topo, "host1-2", "host2-2"))
        assert vc.hops[0].vci == 32


class TestTranslationTable:
    def test_switch_table_rows(self, topo, manager):
        route = compute_route(topo, "host1-1", "host2-1")
        vc = manager.setup("c1", route)
        # s1 translates (id1->s1, vci) into (s1->s2, vci').
        rows = manager.translation_table("s1")
        assert rows == [(vc.hops[0].vci, "id1->s1", vc.hops[1].vci, "s1->s2")]
        rows2 = manager.translation_table("s2")
        assert rows2 == [(vc.hops[1].vci, "s1->s2", vc.hops[2].vci, "s2->id2")]

    def test_two_hop_backbone_path(self, topo, manager):
        topo.fail_link("s1", "s2")
        route = compute_route(topo, "host1-1", "host2-1")
        assert route.switch_path == ["s1", "s3", "s2"]
        vc = manager.setup("c1", route)
        assert len(vc.hops) == 4  # uplink, s1->s3, s3->s2, downlink
        assert len(manager.translation_table("s3")) == 1

    def test_validation(self, topo):
        with pytest.raises(TopologyError):
            VirtualCircuitManager(topo, vcis_per_link=0)
        with pytest.raises(TopologyError):
            VirtualCircuitManager(topo, first_vci=-1)
