"""Tests for the ATM substrate: cells, links, output ports, switches."""

import math

import pytest

from repro.atm import (
    AtmLink,
    AtmSwitch,
    CELL_BITS,
    CELL_PAYLOAD_BITS,
    OutputPortServer,
    WIRE_EXPANSION,
    cells_for_frame,
    payload_bits_for_frame,
)
from repro.envelopes.curve import Curve
from repro.errors import (
    BufferOverflowError,
    ConfigurationError,
    TopologyError,
    UnstableSystemError,
)
from repro.units import MBIT


class TestCellArithmetic:
    def test_constants(self):
        assert CELL_BITS == 424
        assert CELL_PAYLOAD_BITS == 384
        assert WIRE_EXPANSION == pytest.approx(424 / 384)

    def test_cells_for_frame(self):
        assert cells_for_frame(384.0) == 1
        assert cells_for_frame(385.0) == 2
        assert cells_for_frame(768.0) == 2

    def test_payload_bits_include_padding(self):
        assert payload_bits_for_frame(400.0) == 768.0

    def test_rejects_nonpositive_frame(self):
        with pytest.raises(ConfigurationError):
            cells_for_frame(0.0)


class TestAtmLink:
    def test_payload_rate_scaled(self):
        link = AtmLink("l1", rate=155.52 * MBIT)
        assert link.payload_rate == pytest.approx(155.52 * MBIT * 384 / 424)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            AtmLink("l1", rate=0.0)

    def test_rejects_negative_propagation(self):
        with pytest.raises(ConfigurationError):
            AtmLink("l1", rate=1.0, propagation_delay=-1.0)


def make_port(rate=155.52 * MBIT, **kw):
    return OutputPortServer(AtmLink("l1", rate=rate), **kw)


class TestOutputPort:
    def test_single_burst_delay(self):
        port = make_port()
        burst = Curve.constant(1_000_000.0)  # 1 Mb burst
        r = port.analyze_tagged(burst, [])
        assert r.delay_bound == pytest.approx(1_000_000.0 / port.service_rate)

    def test_cross_traffic_increases_delay(self):
        port = make_port()
        tagged = Curve.constant(100_000.0)
        alone = port.analyze_tagged(tagged, []).delay_bound
        crowded = port.analyze_tagged(
            tagged, [Curve.constant(500_000.0)]
        ).delay_bound
        assert crowded > alone

    def test_unstable_aggregate_raises(self):
        port = make_port(rate=10 * MBIT)
        heavy = Curve.affine(0.0, 20 * MBIT)
        with pytest.raises(UnstableSystemError):
            port.analyze_tagged(heavy, [])

    def test_buffer_overflow_raises(self):
        port = make_port(buffer_bits=1000.0)
        with pytest.raises(BufferOverflowError):
            port.analyze_tagged(Curve.constant(10_000.0), [])

    def test_output_capped_at_link_rate(self):
        port = make_port()
        r = port.analyze_tagged(Curve.constant(1_000_000.0), [])
        assert r.output(0.0) == pytest.approx(0.0)
        for i in [1e-4, 1e-3]:
            assert r.output(i) <= port.service_rate * i + 1e-3

    def test_port_latency_adds(self):
        fast = make_port().analyze_tagged(Curve.constant(1000.0), []).delay_bound
        slow = make_port(port_latency=0.001).analyze_tagged(
            Curve.constant(1000.0), []
        ).delay_bound
        assert slow == pytest.approx(fast + 0.001, rel=1e-6)

    def test_empty_port_zero_delay(self):
        port = make_port()
        r = port.analyze_tagged(Curve.zero(), [])
        assert r.delay_bound == 0.0

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            make_port(port_latency=-1.0)
        with pytest.raises(ConfigurationError):
            make_port(buffer_bits=0.0)


class TestAtmSwitch:
    def test_attach_and_get_port(self):
        sw = AtmSwitch("s1", fabric_delay=1e-5)
        link = AtmLink("s1->s2", rate=155 * MBIT)
        port = sw.attach_link(link)
        assert sw.port("s1->s2") is port
        assert sw.link("s1->s2") is link

    def test_double_attach_rejected(self):
        sw = AtmSwitch("s1")
        link = AtmLink("l", rate=1.0)
        sw.attach_link(link)
        with pytest.raises(TopologyError):
            sw.attach_link(link)

    def test_unknown_port_rejected(self):
        with pytest.raises(TopologyError):
            AtmSwitch("s1").port("nope")

    def test_negative_fabric_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            AtmSwitch("s1", fabric_delay=-1.0)
