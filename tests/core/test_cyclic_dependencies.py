"""Tests for the cyclic-interference handling of the propagation engine.

A unidirectional backbone ring (s1 -> s2 -> s3 -> s1) with one two-hop
connection per ring produces the classic cyclic port-dependency pattern:
port (s1,s2) cannot be analyzed before (s3,s1), which waits on (s2,s3),
which waits on (s1,s2).  The feed-forward worklist cannot order these;
the engine resolves them with the monotone fixed-point iteration and the
resulting bounds must be finite, deterministic, and conservative (each
connection's bound is at least what its acyclic subset analysis gives).
"""

import pytest

from repro.atm import AtmSwitch
from repro.config import AnalysisConfig
from repro.core.delay import ConnectionLoad, DelayAnalyzer
from repro.errors import FixedPointDivergenceError, UnstableSystemError
from repro.fddi import FDDIRing
from repro.interface_device import InterfaceDevice
from repro.network import NetworkTopology, compute_route
from repro.network.connection import ConnectionSpec
from repro.traffic import PeriodicTraffic
from repro.units import MBIT


def unidirectional_ring_topology():
    topo = NetworkTopology()
    for i in (1, 2, 3):
        topo.add_ring(FDDIRing(f"ring{i}", ttrt=0.008, bandwidth=100 * MBIT))
        topo.add_host(f"host{i}", f"ring{i}")
    for i in (1, 2, 3):
        topo.add_switch(AtmSwitch(f"s{i}"))
    for i in (1, 2, 3):
        topo.add_device(
            InterfaceDevice(f"id{i}", f"ring{i}"),
            switch_id=f"s{i}",
            uplink_rate=155.52 * MBIT,
        )
    # One-way ring: the ONLY backbone paths are clockwise two-hop detours.
    topo.connect_switches("s1", "s2", rate=155.52 * MBIT, bidirectional=False)
    topo.connect_switches("s2", "s3", rate=155.52 * MBIT, bidirectional=False)
    topo.connect_switches("s3", "s1", rate=155.52 * MBIT, bidirectional=False)
    return topo


def cyclic_loads(topo):
    traffic = PeriodicTraffic(c=40_000.0, p=0.02)
    loads = []
    for i, (src, dst) in enumerate(
        [("host1", "host3"), ("host2", "host1"), ("host3", "host2")]
    ):
        spec = ConnectionSpec(f"c{i}", src, dst, traffic, 0.2)
        loads.append(
            ConnectionLoad(spec, compute_route(topo, src, dst), 0.001, 0.001)
        )
    return loads


class TestCyclicFixedPoint:
    def test_two_hop_routes_exist(self):
        topo = unidirectional_ring_topology()
        route = compute_route(topo, "host1", "host3")
        assert route.switch_path == ["s1", "s2", "s3"]

    def test_cycle_analyzed_with_finite_bounds(self):
        topo = unidirectional_ring_topology()
        analyzer = DelayAnalyzer(topo)
        reports, usage = analyzer.compute_with_resources(cyclic_loads(topo))
        assert len(reports) == 3
        for report in reports.values():
            assert 0.0 < report.total_delay < float("inf")
        # Every directed backbone port plus uplinks/downlinks got analyzed.
        assert {"s1->s2", "s2->s3", "s3->s1"} <= {
            name.split(":")[-1] for name in usage.port_delays
        } or len(usage.port_delays) >= 3

    def test_cycle_results_deterministic(self):
        topo = unidirectional_ring_topology()
        r1 = DelayAnalyzer(topo).compute(cyclic_loads(topo))
        r2 = DelayAnalyzer(topo).compute(cyclic_loads(topo))
        for cid in r1:
            assert r1[cid].total_delay == r2[cid].total_delay
            assert r1[cid].per_hop == r2[cid].per_hop

    def test_cycle_bound_dominates_acyclic_subset(self):
        # Removing one flow breaks the cycle; with less competition the
        # remaining flows' bounds can only shrink, so the full cyclic
        # bounds must dominate the subset's.
        topo = unidirectional_ring_topology()
        loads = cyclic_loads(topo)
        full = DelayAnalyzer(topo).compute(loads)
        subset = DelayAnalyzer(topo).compute(loads[:2])
        for cid in subset:
            assert full[cid].total_delay >= subset[cid].total_delay - 1e-12

    def test_divergence_raises_and_is_unstable(self):
        topo = unidirectional_ring_topology()
        analyzer = DelayAnalyzer(
            topo, analysis_config=AnalysisConfig(fixed_point_max_iterations=1)
        )
        with pytest.raises(FixedPointDivergenceError) as excinfo:
            analyzer.compute(cyclic_loads(topo))
        # CAC rejection path: divergence is a flavour of instability.
        assert isinstance(excinfo.value, UnstableSystemError)

    def test_acyclic_subset_analyzable(self):
        # Two of the three flows leave the dependency graph acyclic.
        topo = unidirectional_ring_topology()
        analyzer = DelayAnalyzer(topo)
        reports = analyzer.compute(cyclic_loads(topo)[:2])
        assert len(reports) == 2


class TestForcedFixedPointEquivalence:
    def test_feed_forward_bit_identical(self):
        # On an acyclic load set the fixed point must reproduce the chain
        # analysis exactly — same delays, same hops, same output curves.
        topo_a = unidirectional_ring_topology()
        topo_b = unidirectional_ring_topology()
        loads_a = cyclic_loads(topo_a)[:2]
        loads_b = cyclic_loads(topo_b)[:2]
        plain = DelayAnalyzer(topo_a).compute(loads_a)
        forced = DelayAnalyzer(
            topo_b, analysis_config=AnalysisConfig(force_fixed_point=True)
        ).compute(loads_b)
        assert set(plain) == set(forced)
        for cid in plain:
            assert plain[cid].total_delay == forced[cid].total_delay
            assert plain[cid].per_hop == forced[cid].per_hop
            assert (
                plain[cid].output.fingerprint()
                == forced[cid].output.fingerprint()
            )
