"""Tests for the feed-forward check of the envelope-propagation engine.

A unidirectional backbone ring (s1 -> s2 -> s3 -> s1) with one two-hop
connection per ring produces the classic cyclic port-dependency pattern:
port (s1,s2) cannot be analyzed before (s3,s1), which waits on (s2,s3),
which waits on (s1,s2).  The engine must detect this and refuse rather
than produce a wrong bound.
"""

import pytest

from repro.atm import AtmSwitch
from repro.config import NetworkConfig
from repro.core.delay import ConnectionLoad, DelayAnalyzer
from repro.errors import CyclicDependencyError
from repro.fddi import FDDIRing
from repro.interface_device import InterfaceDevice
from repro.network import NetworkTopology, compute_route
from repro.network.connection import ConnectionSpec
from repro.traffic import PeriodicTraffic
from repro.units import MBIT


def unidirectional_ring_topology():
    topo = NetworkTopology()
    for i in (1, 2, 3):
        topo.add_ring(FDDIRing(f"ring{i}", ttrt=0.008, bandwidth=100 * MBIT))
        topo.add_host(f"host{i}", f"ring{i}")
    for i in (1, 2, 3):
        topo.add_switch(AtmSwitch(f"s{i}"))
    for i in (1, 2, 3):
        topo.add_device(
            InterfaceDevice(f"id{i}", f"ring{i}"),
            switch_id=f"s{i}",
            uplink_rate=155.52 * MBIT,
        )
    # One-way ring: the ONLY backbone paths are clockwise two-hop detours.
    topo.connect_switches("s1", "s2", rate=155.52 * MBIT, bidirectional=False)
    topo.connect_switches("s2", "s3", rate=155.52 * MBIT, bidirectional=False)
    topo.connect_switches("s3", "s1", rate=155.52 * MBIT, bidirectional=False)
    return topo


class TestCyclicDetection:
    def test_two_hop_routes_exist(self):
        topo = unidirectional_ring_topology()
        route = compute_route(topo, "host1", "host3")
        assert route.switch_path == ["s1", "s2", "s3"]

    def test_cycle_detected(self):
        topo = unidirectional_ring_topology()
        analyzer = DelayAnalyzer(topo)
        traffic = PeriodicTraffic(c=40_000.0, p=0.02)
        loads = []
        for i, (src, dst) in enumerate(
            [("host1", "host3"), ("host2", "host1"), ("host3", "host2")]
        ):
            spec = ConnectionSpec(f"c{i}", src, dst, traffic, 0.2)
            loads.append(
                ConnectionLoad(spec, compute_route(topo, src, dst), 0.001, 0.001)
            )
        with pytest.raises(CyclicDependencyError):
            analyzer.compute(loads)

    def test_acyclic_subset_analyzable(self):
        # Two of the three flows leave the dependency graph acyclic.
        topo = unidirectional_ring_topology()
        analyzer = DelayAnalyzer(topo)
        traffic = PeriodicTraffic(c=40_000.0, p=0.02)
        loads = []
        for i, (src, dst) in enumerate([("host1", "host3"), ("host2", "host1")]):
            spec = ConnectionSpec(f"c{i}", src, dst, traffic, 0.2)
            loads.append(
                ConnectionLoad(spec, compute_route(topo, src, dst), 0.001, 0.001)
            )
        reports = analyzer.compute(loads)
        assert len(reports) == 2
