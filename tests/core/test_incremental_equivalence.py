"""The incremental engine must be observationally identical to full
recomputation — bit-for-bit, not approximately.

A randomized admit/release/fault workload is driven through two admission
controllers that differ only in ``CACConfig.incremental``; every
externally visible number (decisions, delay bounds, probe counts, refresh
results, AP counters, the allocation audit) must match exactly.

Also home to the :class:`repro.core.LRUCache` unit tests, including the
regression for the old clear-at-limit behavior (which threw the whole
working set away at 20k entries and tanked the hit rate mid-sweep).
"""

import random

import pytest

from repro.config import CACConfig, build_network
from repro.core import AdmissionController, LRUCache
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=240_000.0, p1=0.030, c2=80_000.0, p2=0.005)
BURSTY = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)

HOSTS = [f"host{r}-{h}" for r in (1, 2, 3) for h in (1, 2, 3, 4)]


def run_sequence(incremental: bool, seed: int, steps: int = 36) -> list:
    """Drive one controller with a seeded workload; return the full trace."""
    rng = random.Random(seed)
    cac = AdmissionController(
        build_network(),
        cac_config=CACConfig(beta=0.5, incremental=incremental),
    )
    trace = []
    active = []
    for step in range(steps):
        op = rng.random()
        if op < 0.55 or not active:
            cid = f"c{step}"
            src, dst = rng.sample(HOSTS, 2)
            deadline = rng.choice([0.07, 0.10, 0.15])
            traffic = TRAFFIC if rng.random() < 0.7 else BURSTY
            try:
                res = cac.request(ConnectionSpec(cid, src, dst, traffic, deadline))
            except Exception as exc:
                trace.append(("raise", cid, type(exc).__name__))
                continue
            trace.append(
                (
                    "req",
                    cid,
                    res.admitted,
                    res.delay_bound,
                    res.h_min_need,
                    res.h_max_need,
                    res.n_probes,
                )
            )
            if res.admitted:
                active.append(cid)
        elif op < 0.85:
            cid = active.pop(rng.randrange(len(active)))
            cac.release(cid)
            trace.append(
                (
                    "rel",
                    cid,
                    tuple(
                        sorted(
                            (c, r.delay_bound) for c, r in cac.connections.items()
                        )
                    ),
                )
            )
        elif op < 0.93:
            cac.topology.fail_link("s1", "s2")
            trace.append(("fail", "s1", "s2"))
        else:
            cac.topology.restore_link("s1", "s2")
            trace.append(("restore", "s1", "s2"))
    trace.append(
        (
            "final",
            cac.n_requests,
            cac.n_admitted,
            tuple(sorted(cac.audit_allocations().items())),
            tuple(sorted((c, r.delay_bound) for c, r in cac.connections.items())),
        )
    )
    return trace


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 7])
    def test_random_sequences_bit_identical(self, seed):
        full = run_sequence(incremental=False, seed=seed)
        incr = run_sequence(incremental=True, seed=seed)
        assert len(full) == len(incr)
        for step_full, step_incr in zip(full, incr):
            assert step_full == step_incr  # exact — including float bounds

    def test_engine_actually_reuses_components(self):
        """The equivalence above must not hold vacuously (all-full)."""
        cac = AdmissionController(
            build_network(), cac_config=CACConfig(beta=0.5, incremental=True)
        )
        # Two disjoint interference components: ring1<->ring2 traffic and a
        # ring3-local connection.
        assert cac.request(
            ConnectionSpec("ab", "host1-1", "host2-1", TRAFFIC, 0.15)
        ).admitted
        assert cac.request(
            ConnectionSpec("cc", "host3-1", "host3-2", TRAFFIC, 0.15)
        ).admitted
        assert cac.request(
            ConnectionSpec("ab2", "host1-2", "host2-2", TRAFFIC, 0.15)
        ).admitted
        stats = cac.engine.stats()
        assert stats["loads_reused"] > 0
        assert stats["partial_computations"] > 0


class TestLRUCache:
    def test_basic_get_put_and_eviction_order(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1  # refreshes "a"
        c.put("c", 3)  # evicts "b", the least recently used
        assert c.get("b") is None
        assert c.get("a") == 1
        assert c.get("c") == 3
        assert c.stats()["evictions"] == 1

    def test_put_existing_refreshes(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)
        c.put("c", 3)  # "b" is now the oldest
        assert c.get("a") == 10
        assert c.get("b") is None

    def test_hit_rate_survives_the_limit(self):
        """Regression: the old clear-at-limit cache dropped *everything*
        at the threshold, so a working set one entry over the limit hit 0%
        after the clear.  The LRU keeps the hot entries resident."""
        c = LRUCache(100)
        for i in range(100):
            c.put(i, i)
        # Stream 10x more insertions than capacity while re-touching a
        # small hot set: the hot keys must keep hitting throughout.
        for i in range(1000):
            for hot in range(10):
                assert c.get(hot) == hot
            c.put(f"cold-{i}", i)
        assert c.hit_rate > 0.9

    def test_stats_shape(self):
        c = LRUCache(4)
        c.put("x", 1)
        c.get("x")
        c.get("missing")
        s = c.stats()
        assert s["hits"] == 1 and s["misses"] == 1
        assert s["size"] == 1 and s["maxsize"] == 4
        assert 0.0 <= c.hit_rate <= 1.0
