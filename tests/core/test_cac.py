"""Tests for the admission controller (Section 5.3)."""

import math

import pytest

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.errors import ConfigurationError
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=240_000.0, p1=0.030, c2=80_000.0, p2=0.005)


def make_cac(beta=0.5, **kw):
    topo = build_network()
    return AdmissionController(topo, cac_config=CACConfig(beta=beta, **kw))


def spec(conn_id, src="host1-1", dst="host2-1", deadline=0.15, traffic=TRAFFIC):
    return ConnectionSpec(conn_id, src, dst, traffic, deadline)


class TestBasicAdmission:
    def test_single_connection_admitted(self):
        cac = make_cac()
        res = cac.request(spec("c1"))
        assert res.admitted
        assert res.record.delay_bound <= 0.15
        assert res.record.h_source > 0 and res.record.h_dest > 0

    def test_admission_updates_ring_ledgers(self):
        cac = make_cac()
        res = cac.request(spec("c1"))
        ring1 = cac.topology.rings["ring1"]
        ring2 = cac.topology.rings["ring2"]
        assert ring1.allocation_of("c1") == res.record.h_source
        assert ring2.allocation_of("c1") == res.record.h_dest

    def test_release_frees_bandwidth(self):
        cac = make_cac()
        cac.request(spec("c1"))
        before = cac.topology.rings["ring1"].available_sync_time
        cac.release("c1")
        after = cac.topology.rings["ring1"].available_sync_time
        assert after > before
        assert "c1" not in cac.connections

    def test_duplicate_id_rejected(self):
        cac = make_cac()
        cac.request(spec("c1"))
        with pytest.raises(ConfigurationError):
            cac.request(spec("c1"))

    def test_release_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cac().release("ghost")

    def test_impossible_deadline_rejected(self):
        cac = make_cac()
        res = cac.request(spec("c1", deadline=0.001))  # < 2 TTRT alone
        assert not res.admitted
        assert "infeasible" in res.reason

    def test_admission_probability_counter(self):
        cac = make_cac()
        cac.request(spec("c1"))
        cac.request(spec("c2", src="host1-2", deadline=0.001))
        assert cac.n_requests == 2
        assert cac.n_admitted == 1
        assert cac.admission_probability == pytest.approx(0.5)

    def test_local_route_admission(self):
        cac = make_cac()
        res = cac.request(spec("c1", src="host1-1", dst="host1-2"))
        assert res.admitted
        assert res.record.h_dest == 0.0
        # Only the source ring is charged.
        assert cac.topology.rings["ring1"].allocation_of("c1") > 0


class TestAllocationGeometry:
    def test_min_need_below_max_need(self):
        cac = make_cac(beta=0.5)
        res = cac.request(spec("c1"))
        assert res.h_min_need is not None and res.h_max_need is not None
        assert res.h_min_need[0] <= res.h_max_need[0] + 1e-12
        assert res.h_min_need[1] <= res.h_max_need[1] + 1e-12

    def test_beta_zero_grants_min_need(self):
        cac = make_cac(beta=0.0)
        res = cac.request(spec("c1"))
        assert res.record.h_source == pytest.approx(res.h_min_need[0], rel=1e-9)

    def test_beta_one_grants_max_need(self):
        cac = make_cac(beta=1.0)
        res = cac.request(spec("c1"))
        assert res.record.h_source == pytest.approx(res.h_max_need[0], rel=1e-9)

    def test_beta_orders_grants(self):
        grants = {}
        for beta in (0.0, 0.5, 1.0):
            cac = make_cac(beta=beta)
            res = cac.request(spec("c1"))
            grants[beta] = res.record.h_source
        assert grants[0.0] <= grants[0.5] <= grants[1.0]

    def test_grant_within_available(self):
        cac = make_cac()
        res = cac.request(spec("c1"))
        assert res.record.h_source <= res.h_max_avail[0] + 1e-12
        assert res.record.h_dest <= res.h_max_avail[1] + 1e-12

    def test_tight_deadline_needs_more_bandwidth(self):
        loose = make_cac(beta=0.0).request(spec("c1", deadline=0.19))
        tight = make_cac(beta=0.0).request(spec("c1", deadline=0.08))
        assert loose.admitted and tight.admitted
        assert tight.record.h_source > loose.record.h_source


class TestMultipleAdmissions:
    def test_existing_deadlines_protected(self):
        # Admit c1 with beta=0 (zero slack), then a second connection whose
        # cross-traffic at the shared uplink would push c1 past its deadline:
        # the CAC must reject or allocate so c1 still meets it.
        cac = make_cac(beta=0.0)
        r1 = cac.request(spec("c1", src="host1-1", dst="host2-1"))
        assert r1.admitted
        cac.request(spec("c2", src="host1-2", dst="host2-2"))
        delays = cac.current_delays()
        assert delays["c1"] <= cac.connections["c1"].spec.deadline + 1e-9

    def test_ring_budget_exhaustion(self):
        # Grant everything to one connection; the next from the same ring
        # must be rejected for lack of synchronous bandwidth.
        from repro.core.policies import MaxAvailPolicy

        topo = build_network()
        cac = AdmissionController(topo, policy=MaxAvailPolicy())
        r1 = cac.request(spec("c1", src="host1-1", dst="host2-1"))
        assert r1.admitted
        r2 = cac.request(spec("c2", src="host1-2", dst="host3-1"))
        assert not r2.admitted
        assert "no synchronous bandwidth" in r2.reason

    def test_fill_until_rejection(self):
        cac = make_cac(beta=0.5)
        admitted = 0
        for i in range(12):
            ring = (i % 3) + 1
            dst_ring = ring % 3 + 1
            res = cac.request(
                spec(
                    f"c{i}",
                    src=f"host{ring}-{i // 3 + 1}",
                    dst=f"host{dst_ring}-{i // 3 + 1}",
                    deadline=0.10,
                )
            )
            admitted += res.admitted
        assert 0 < admitted
        # Every admitted connection still meets its deadline.
        delays = cac.current_delays()
        for cid, d in delays.items():
            assert d <= cac.connections[cid].spec.deadline + 1e-9

    def test_release_enables_future_admission(self):
        from repro.core.policies import MaxAvailPolicy

        topo = build_network()
        cac = AdmissionController(topo, policy=MaxAvailPolicy())
        cac.request(spec("c1", src="host1-1", dst="host2-1"))
        r2 = cac.request(spec("c2", src="host1-2", dst="host3-1"))
        assert not r2.admitted
        cac.release("c1")
        r3 = cac.request(spec("c3", src="host1-2", dst="host3-1"))
        assert r3.admitted


class TestOriginRayVariant:
    def test_origin_ray_also_admits(self):
        cac = make_cac(use_origin_ray=True)
        res = cac.request(spec("c1"))
        assert res.admitted
        # Rule 2: grant proportional to the max-available ratio (equal here).
        assert res.record.h_source == pytest.approx(res.record.h_dest, rel=1e-6)
