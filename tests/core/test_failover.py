"""Tests for backbone-link failover."""

import pytest

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.core.failover import FailoverManager
from repro.errors import TopologyError
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


def loaded_network():
    topo = build_network()
    cac = AdmissionController(topo, cac_config=CACConfig(beta=0.3))
    requests = [
        ("r12", "host1-1", "host2-1", 0.12),   # uses s1-s2
        ("r13", "host1-2", "host3-1", 0.12),   # uses s1-s3
        ("r23", "host2-2", "host3-2", 0.12),   # uses s2-s3
    ]
    for cid, src, dst, dl in requests:
        res = cac.request(ConnectionSpec(cid, src, dst, TRAFFIC, dl))
        assert res.admitted, res.reason
    return topo, cac


class TestTopologyFailure:
    def test_fail_and_restore(self):
        topo = build_network()
        topo.fail_link("s1", "s2")
        assert topo.is_link_failed("s1", "s2")
        assert topo.is_link_failed("s2", "s1")
        # Routing detours via s3.
        assert topo.backbone_path("s1", "s2") == ["s1", "s3", "s2"]
        topo.restore_link("s1", "s2")
        assert topo.backbone_path("s1", "s2") == ["s1", "s2"]

    def test_double_fail_rejected(self):
        topo = build_network()
        topo.fail_link("s1", "s2")
        with pytest.raises(TopologyError):
            topo.fail_link("s1", "s2")

    def test_restore_unfailed_rejected(self):
        with pytest.raises(TopologyError):
            build_network().restore_link("s1", "s2")

    def test_unknown_link_rejected(self):
        with pytest.raises(TopologyError):
            build_network().fail_link("s1", "ghost")

    def test_failed_links_listed(self):
        topo = build_network()
        topo.fail_link("s1", "s3")
        assert ("s1", "s3") in topo.failed_links
        assert ("s3", "s1") in topo.failed_links


class TestFailover:
    def test_unaffected_connections_untouched(self):
        topo, cac = loaded_network()
        report = FailoverManager(cac).fail_link("s1", "s2")
        assert "r13" in report.unaffected
        assert "r23" in report.unaffected
        assert "r13" in cac.connections

    def test_displaced_connection_rerouted(self):
        topo, cac = loaded_network()
        report = FailoverManager(cac).fail_link("s1", "s2")
        assert report.rerouted == ["r12"] or "r12" in report.dropped
        if "r12" in cac.connections:
            # The detour route goes through s3 now.
            assert cac.connections["r12"].route.switch_path == ["s1", "s3", "s2"]

    def test_rerouted_connections_meet_deadlines(self):
        topo, cac = loaded_network()
        FailoverManager(cac).fail_link("s1", "s2")
        for cid, d in cac.current_delays().items():
            assert d <= cac.connections[cid].spec.deadline + 1e-9

    def test_survival_rate(self):
        topo, cac = loaded_network()
        report = FailoverManager(cac).fail_link("s1", "s2")
        assert 0.0 <= report.survival_rate <= 1.0

    def test_bandwidth_conserved_for_dropped(self):
        # Every ring's ledger must equal the sum of recorded allocations,
        # whatever happened during failover.
        topo, cac = loaded_network()
        FailoverManager(cac).fail_link("s1", "s2")
        for ring in topo.rings.values():
            expected = sum(
                rec.h_source
                for rec in cac.connections.values()
                if rec.route.source_ring == ring.ring_id
            ) + sum(
                rec.h_dest
                for rec in cac.connections.values()
                if rec.route.dest_ring == ring.ring_id
            )
            assert ring.allocated_sync_time == pytest.approx(expected)

    def test_restore_allows_direct_routes_again(self):
        topo, cac = loaded_network()
        manager = FailoverManager(cac)
        manager.fail_link("s1", "s2")
        manager.restore_link("s1", "s2")
        res = cac.request(
            ConnectionSpec("fresh", "host1-3", "host2-3", TRAFFIC, 0.12)
        )
        assert res.admitted
        assert res.record.route.switch_path == ["s1", "s2"]

    def test_report_formatting(self):
        topo, cac = loaded_network()
        report = FailoverManager(cac).fail_link("s1", "s2")
        text = report.format()
        assert "s1<->s2" in text
        assert "rerouted" in text
