"""Tests for backbone-link failover."""

import pytest

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.core.failover import FailoverManager
from repro.errors import TopologyError
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


def loaded_network():
    topo = build_network()
    cac = AdmissionController(topo, cac_config=CACConfig(beta=0.3))
    requests = [
        ("r12", "host1-1", "host2-1", 0.12),   # uses s1-s2
        ("r13", "host1-2", "host3-1", 0.12),   # uses s1-s3
        ("r23", "host2-2", "host3-2", 0.12),   # uses s2-s3
    ]
    for cid, src, dst, dl in requests:
        res = cac.request(ConnectionSpec(cid, src, dst, TRAFFIC, dl))
        assert res.admitted, res.reason
    return topo, cac


class TestTopologyFailure:
    def test_fail_and_restore(self):
        topo = build_network()
        topo.fail_link("s1", "s2")
        assert topo.is_link_failed("s1", "s2")
        assert topo.is_link_failed("s2", "s1")
        # Routing detours via s3.
        assert topo.backbone_path("s1", "s2") == ["s1", "s3", "s2"]
        topo.restore_link("s1", "s2")
        assert topo.backbone_path("s1", "s2") == ["s1", "s2"]

    def test_double_fail_is_idempotent_noop(self):
        topo = build_network()
        topo.fail_link("s1", "s2")
        topo.fail_link("s1", "s2")  # no error, no state change
        assert topo.is_link_failed("s1", "s2")
        topo.restore_link("s1", "s2")
        assert not topo.is_link_failed("s1", "s2")
        assert topo.backbone_path("s1", "s2") == ["s1", "s2"]

    def test_double_restore_is_idempotent_noop(self):
        topo = build_network()
        topo.fail_link("s1", "s2")
        topo.restore_link("s1", "s2")
        topo.restore_link("s1", "s2")  # no error
        assert topo.backbone_path("s1", "s2") == ["s1", "s2"]

    def test_restore_unfailed_is_noop(self):
        topo = build_network()
        topo.restore_link("s1", "s2")
        assert topo.backbone_path("s1", "s2") == ["s1", "s2"]

    def test_unknown_link_rejected(self):
        with pytest.raises(TopologyError, match="s1->ghost"):
            build_network().fail_link("s1", "ghost")

    def test_unknown_link_restore_rejected(self):
        with pytest.raises(TopologyError, match="ghost"):
            build_network().restore_link("ghost", "s2")

    def test_failed_links_listed(self):
        topo = build_network()
        topo.fail_link("s1", "s3")
        assert ("s1", "s3") in topo.failed_links
        assert ("s3", "s1") in topo.failed_links


class TestNodeFailure:
    def test_fail_switch_removes_routes(self):
        topo = build_network()
        topo.fail_node("s3")
        assert topo.is_node_failed("s3")
        # Direct s1<->s2 routing still works; anything via s3 does not.
        assert topo.backbone_path("s1", "s2") == ["s1", "s2"]
        with pytest.raises(TopologyError):
            topo.backbone_path("s1", "s3")

    def test_fail_and_restore_switch(self):
        topo = build_network()
        topo.fail_node("s2")
        topo.restore_node("s2")
        assert not topo.is_node_failed("s2")
        assert topo.backbone_path("s1", "s2") == ["s1", "s2"]

    def test_node_failure_idempotent(self):
        topo = build_network()
        topo.fail_node("s1")
        topo.fail_node("s1")
        topo.restore_node("s1")
        topo.restore_node("s1")
        assert topo.failed_nodes == []
        assert topo.backbone_path("s1", "s3") == ["s1", "s3"]

    def test_unknown_node_rejected(self):
        with pytest.raises(TopologyError):
            build_network().fail_node("ghost")
        with pytest.raises(TopologyError):
            build_network().restore_node("ghost")

    def test_link_failed_under_downed_switch_stays_failed(self):
        # A link failure while its endpoint switch is down must survive the
        # switch's repair: the link itself is still broken.
        topo = build_network()
        topo.fail_node("s1")
        topo.fail_link("s1", "s2")
        topo.restore_node("s1")
        assert topo.is_link_failed("s1", "s2")
        assert topo.backbone_path("s1", "s2") == ["s1", "s3", "s2"]
        topo.restore_link("s1", "s2")
        assert topo.backbone_path("s1", "s2") == ["s1", "s2"]

    def test_restore_link_waits_for_switch(self):
        topo = build_network()
        topo.fail_node("s1")
        topo.fail_link("s1", "s2")
        topo.restore_link("s1", "s2")  # link up, switch still down
        with pytest.raises(TopologyError):
            topo.backbone_path("s1", "s2")
        topo.restore_node("s1")
        assert topo.backbone_path("s1", "s2") == ["s1", "s2"]

    def test_failed_device_blocks_routing(self):
        from repro.errors import RoutingError
        from repro.network.routing import compute_route

        topo = build_network()
        topo.fail_node("id1")
        with pytest.raises(RoutingError, match="id1"):
            compute_route(topo, "host1-1", "host2-1")
        # Ring-local routes on the orphaned ring still work.
        route = compute_route(topo, "host1-1", "host1-2")
        assert not route.crosses_backbone
        topo.restore_node("id1")
        assert compute_route(topo, "host1-1", "host2-1").crosses_backbone


class TestFailover:
    def test_unaffected_connections_untouched(self):
        topo, cac = loaded_network()
        report = FailoverManager(cac).fail_link("s1", "s2")
        assert "r13" in report.unaffected
        assert "r23" in report.unaffected
        assert "r13" in cac.connections

    def test_displaced_connection_rerouted(self):
        topo, cac = loaded_network()
        report = FailoverManager(cac).fail_link("s1", "s2")
        assert report.rerouted == ["r12"] or "r12" in report.dropped
        if "r12" in cac.connections:
            # The detour route goes through s3 now.
            assert cac.connections["r12"].route.switch_path == ["s1", "s3", "s2"]

    def test_rerouted_connections_meet_deadlines(self):
        topo, cac = loaded_network()
        FailoverManager(cac).fail_link("s1", "s2")
        for cid, d in cac.current_delays().items():
            assert d <= cac.connections[cid].spec.deadline + 1e-9

    def test_survival_rate(self):
        topo, cac = loaded_network()
        report = FailoverManager(cac).fail_link("s1", "s2")
        assert 0.0 <= report.survival_rate <= 1.0

    def test_bandwidth_conserved_for_dropped(self):
        # Every ring's ledger must equal the sum of recorded allocations,
        # whatever happened during failover.
        topo, cac = loaded_network()
        FailoverManager(cac).fail_link("s1", "s2")
        for ring in topo.rings.values():
            expected = sum(
                rec.h_source
                for rec in cac.connections.values()
                if rec.route.source_ring == ring.ring_id
            ) + sum(
                rec.h_dest
                for rec in cac.connections.values()
                if rec.route.dest_ring == ring.ring_id
            )
            assert ring.allocated_sync_time == pytest.approx(expected)

    def test_restore_allows_direct_routes_again(self):
        topo, cac = loaded_network()
        manager = FailoverManager(cac)
        manager.fail_link("s1", "s2")
        manager.restore_link("s1", "s2")
        res = cac.request(
            ConnectionSpec("fresh", "host1-3", "host2-3", TRAFFIC, 0.12)
        )
        assert res.admitted
        assert res.record.route.switch_path == ["s1", "s2"]

    def test_report_formatting(self):
        topo, cac = loaded_network()
        report = FailoverManager(cac).fail_link("s1", "s2")
        text = report.format()
        assert "s1<->s2" in text
        assert "rerouted" in text

    def test_readmit_pass_is_exception_safe(self):
        # A re-admission attempt that blows up mid-pass must not abort the
        # pass: the raising connection is reported dropped, later specs
        # still get their re-admission attempt, and the ledgers stay
        # consistent with the recorded connections.
        topo, cac = loaded_network()
        # Two connections over s1-s2 so the failure displaces a batch.
        res = cac.request(
            ConnectionSpec("r12b", "host1-3", "host2-3", TRAFFIC, 0.11)
        )
        assert res.admitted, res.reason
        original_request = cac.request
        blown = []

        def flaky_request(spec):
            if not blown:
                blown.append(spec.conn_id)
                raise TopologyError("injected mid-pass explosion")
            return original_request(spec)

        cac.request = flaky_request
        report = FailoverManager(cac).fail_link("s1", "s2")
        cac.request = original_request

        # The blown-up connection is dropped with the failure recorded...
        assert blown[0] in report.dropped
        assert "explosion" in report.dropped[blown[0]]
        # ...the other displaced connection still got its attempt...
        assert set(report.rerouted) | set(report.dropped) == {"r12", "r12b"}
        # ...and no synchronous bandwidth leaked anywhere.
        for leak in cac.audit_allocations().values():
            assert leak == pytest.approx(0.0, abs=1e-12)

    def test_node_failover_displaces_ring_connections(self):
        topo, cac = loaded_network()
        report = FailoverManager(cac).fail_node("id1")
        # Both connections touching ring1 are displaced; with the bridge
        # down neither can come back until repair.
        assert set(report.dropped) == {"r12", "r13"}
        assert "r23" in report.unaffected
        for leak in cac.audit_allocations().values():
            assert leak == pytest.approx(0.0, abs=1e-12)

    def test_node_failover_switch_reroutes_transit(self):
        topo, cac = loaded_network()
        report = FailoverManager(cac).fail_node("s3")
        # r13 and r23 terminate at ring3 (bridged via s3): unrecoverable
        # while s3 is down.  r12 never touched s3 and is unaffected.
        assert set(report.dropped) == {"r13", "r23"}
        assert report.unaffected == ["r12"]
        manager = FailoverManager(cac)
        manager.restore_node("s3")
        res = cac.request(
            ConnectionSpec("r13-again", "host1-2", "host3-1", TRAFFIC, 0.12)
        )
        assert res.admitted, res.reason
