"""Tests for allocation policies and feasible-region utilities."""

import pytest

from repro.config import CACConfig, build_network
from repro.core import AdmissionController, FDDILocalPolicy, MaxAvailPolicy
from repro.core.feasible_region import (
    convexity_violations,
    feasibility_grid,
    lower_boundary_on_ray,
)
from repro.core.policies import BetaPolicy, FixedPolicy
from repro.core.delay import ConnectionLoad
from repro.network.connection import ConnectionSpec
from repro.network.routing import compute_route
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=240_000.0, p1=0.030, c2=80_000.0, p2=0.005)


def spec(conn_id, src="host1-1", dst="host2-1", deadline=0.15):
    return ConnectionSpec(conn_id, src, dst, TRAFFIC, deadline)


class TestPolicies:
    def test_beta_policy_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            BetaPolicy(1.5)

    def test_max_avail_policy_grants_everything(self):
        topo = build_network()
        cac = AdmissionController(topo, policy=MaxAvailPolicy())
        res = cac.request(spec("c1"))
        assert res.admitted
        assert res.record.h_source == pytest.approx(res.h_max_avail[0])

    def test_fddi_local_policy_admits_simple_case(self):
        topo = build_network()
        cac = AdmissionController(topo, policy=FDDILocalPolicy(headroom=3.0))
        res = cac.request(spec("c1"))
        assert res.admitted

    def test_fddi_local_policy_rejects_without_search(self):
        # With a too-small headroom the local grant starves the connection
        # (can't meet its deadline) and the policy gives up — no search.
        topo = build_network()
        cac = AdmissionController(topo, policy=FDDILocalPolicy(headroom=1.05))
        res = cac.request(spec("c1", deadline=0.05))
        topo2 = build_network()
        cac2 = AdmissionController(topo2, cac_config=CACConfig(beta=0.5))
        res2 = cac2.request(spec("c1", deadline=0.05))
        # The paper's searching CAC admits what the local rule cannot.
        assert res2.admitted
        assert not res.admitted

    def test_fixed_policy_exact_grant(self):
        topo = build_network()
        cac = AdmissionController(topo, policy=FixedPolicy(0.002, 0.002))
        res = cac.request(spec("c1"))
        assert res.admitted
        assert res.record.h_source == 0.002

    def test_fixed_policy_infeasible_point_rejected(self):
        topo = build_network()
        cac = AdmissionController(topo, policy=FixedPolicy(0.0007, 0.0007))
        res = cac.request(spec("c1", deadline=0.04))
        assert not res.admitted

    def test_local_policy_headroom_validation(self):
        with pytest.raises(ValueError):
            FDDILocalPolicy(headroom=0.0)


class _Oracle:
    """Feasibility oracle over a fresh network for one candidate spec."""

    def __init__(self, deadline=0.15):
        self.topo = build_network()
        self.cac = AdmissionController(self.topo)
        self.spec = spec("cand", deadline=deadline)
        self.route = compute_route(self.topo, "host1-1", "host2-1")

    def __call__(self, h_s: float, h_r: float) -> bool:
        if h_s <= 0 or h_r <= 0:
            return False
        load = ConnectionLoad(self.spec, self.route, h_s, h_r)
        return self.cac.check_feasible(load) is not None


class TestFeasibleRegion:
    def test_grid_has_feasible_and_infeasible_cells(self):
        oracle = _Oracle(deadline=0.08)
        sample = feasibility_grid(
            oracle, (0.0003, 0.0079), (0.0003, 0.0079), resolution=6
        )
        frac = sample.fraction_feasible()
        assert 0.0 < frac < 1.0

    def test_region_is_upper_right_closed(self):
        # Theorem 3 geometry: more bandwidth never leaves the region.
        oracle = _Oracle(deadline=0.10)
        sample = feasibility_grid(
            oracle, (0.0005, 0.0079), (0.0005, 0.0079), resolution=5
        )
        grid = sample.feasible
        n = len(grid)
        for i in range(n):
            for j in range(n):
                if grid[i][j]:
                    assert all(grid[k][j] for k in range(i, n))
                    assert all(grid[i][k] for k in range(j, n))

    def test_convexity_no_violations(self):
        oracle = _Oracle(deadline=0.10)
        sample = feasibility_grid(
            oracle, (0.0005, 0.0079), (0.0005, 0.0079), resolution=5
        )
        violations = convexity_violations(sample, oracle, n_checks=24, seed=7)
        assert violations == []

    def test_lower_boundary_on_ray(self):
        oracle = _Oracle(deadline=0.10)
        pt = lower_boundary_on_ray(oracle, (0.0079, 0.0079), tolerance=0.01)
        assert pt is not None
        h_s, h_r = pt
        assert oracle(h_s, h_r)
        # Just below the boundary is infeasible.
        assert not oracle(h_s * 0.7, h_r * 0.7)

    def test_lower_boundary_none_when_infeasible(self):
        oracle = _Oracle(deadline=0.001)
        assert lower_boundary_on_ray(oracle, (0.0079, 0.0079)) is None

    def test_grid_resolution_validated(self):
        with pytest.raises(ValueError):
            feasibility_grid(lambda a, b: True, (0, 1), (0, 1), resolution=1)

    def test_lower_boundary_curve_shape(self):
        """Figure 6: the bottom of the region is a (weakly) decreasing
        trade-off curve — more receiver bandwidth never *raises* the
        sender's minimum requirement."""
        from repro.core.feasible_region import lower_boundary_curve

        oracle = _Oracle(deadline=0.085)
        h_r_values = [0.001, 0.002, 0.004, 0.0079]
        boundary = lower_boundary_curve(
            oracle, h_r_values, h_s_max=0.0079, tolerance=0.01
        )
        found = [(hr, hs) for hr, hs in boundary if hs is not None]
        assert len(found) >= 3
        for (hr1, hs1), (hr2, hs2) in zip(found, found[1:]):
            assert hs2 <= hs1 + 1e-4  # weakly decreasing

    def test_lower_boundary_none_where_infeasible(self):
        from repro.core.feasible_region import lower_boundary_curve

        oracle = _Oracle(deadline=0.085)
        # A vanishing H_R cannot be compensated by any H_S.
        boundary = lower_boundary_curve(
            oracle, [1e-6], h_s_max=0.0079, tolerance=0.05
        )
        assert boundary[0][1] is None
