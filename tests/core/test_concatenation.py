"""Tests for the concatenation (pay-bursts-only-once) analysis."""

import math

import pytest

from repro.config import build_network
from repro.core.concatenation import (
    ConcatenationAnalyzer,
    ConcatenationReport,
    RateLatency,
)
from repro.core.delay import ConnectionLoad
from repro.errors import UnstableSystemError
from repro.network.connection import ConnectionSpec
from repro.network.routing import compute_route
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


def make_loads(topo, pairs, h=0.0015):
    loads = []
    for i, (src, dst) in enumerate(pairs):
        spec = ConnectionSpec(f"c{i}", src, dst, TRAFFIC, 0.2)
        loads.append(ConnectionLoad(spec, compute_route(topo, src, dst), h, h))
    return loads


class TestRateLatency:
    def test_convolution_closed_form(self):
        a = RateLatency(rate=10.0, latency=1.0)
        b = RateLatency(rate=5.0, latency=2.0)
        c = a.convolve(b)
        assert c.rate == 5.0
        assert c.latency == 3.0

    def test_infinite_rate_is_pure_delay(self):
        a = RateLatency(rate=math.inf, latency=0.5)
        b = RateLatency(rate=7.0, latency=1.0)
        c = a.convolve(b)
        assert c.rate == 7.0
        assert c.latency == 1.5

    def test_to_curve(self):
        curve = RateLatency(rate=4.0, latency=2.0).to_curve()
        assert curve(2.0) == 0.0
        assert curve(3.0) == pytest.approx(4.0)


class TestConcatenatedBound:
    def test_both_bounds_finite_and_positive(self):
        topo = build_network()
        analyzer = ConcatenationAnalyzer(topo)
        loads = make_loads(topo, [("host1-1", "host2-1")])
        report = analyzer.analyze(loads)["c0"]
        assert 0 < report.concatenated_bound < math.inf
        assert 0 < report.additive_bound < math.inf

    def test_concatenated_bound_valid_vs_simulation(self):
        # The concatenated number must also upper-bound reality.
        from repro.sim.packet_sim import PacketLevelSimulator

        topo = build_network()
        loads = make_loads(topo, [("host1-1", "host2-1"), ("host1-2", "host3-1")])
        reports = ConcatenationAnalyzer(topo).analyze(loads)
        observed = PacketLevelSimulator(topo, loads, adversarial_phase=True).run(
            duration=0.3
        )
        for cid, rep in reports.items():
            assert observed.max_delay[cid] <= rep.concatenated_bound + 1e-9
            assert observed.max_delay[cid] <= rep.additive_bound + 1e-9

    def test_end_to_end_rate_is_bottleneck(self):
        topo = build_network()
        loads = make_loads(topo, [("host1-1", "host2-1")], h=0.001)
        report = ConcatenationAnalyzer(topo).analyze(loads)["c0"]
        # The MACs (12.5 Mbps at H=1 ms) are the bottleneck, not the
        # 140 Mbps payload links.
        mac_rate = 0.001 * 100e6 / 0.008
        assert report.end_to_end_rate == pytest.approx(mac_rate)

    def test_latency_accumulates_constants(self):
        topo = build_network()
        loads = make_loads(topo, [("host1-1", "host2-1")])
        report = ConcatenationAnalyzer(topo).analyze(loads)["c0"]
        # At least the two token-wait terms (2 * 2 * TTRT = 32 ms).
        assert report.end_to_end_latency >= 0.032

    def test_improvement_ratio_defined(self):
        topo = build_network()
        loads = make_loads(topo, [("host1-1", "host2-1")])
        report = ConcatenationAnalyzer(topo).analyze(loads)["c0"]
        assert report.improvement > 0

    def test_cross_traffic_reduces_leftover(self):
        topo = build_network()
        alone = ConcatenationAnalyzer(topo).analyze(
            make_loads(topo, [("host1-1", "host2-1")])
        )["c0"]
        topo2 = build_network()
        crowded = ConcatenationAnalyzer(topo2).analyze(
            make_loads(
                topo2, [("host1-1", "host2-1"), ("host1-2", "host2-2")]
            )
        )["c0"]
        assert crowded.concatenated_bound >= alone.concatenated_bound - 1e-9

    def test_overload_raises(self):
        topo = build_network()
        analyzer = ConcatenationAnalyzer(topo)
        # H too small for the traffic: unstable.
        loads = make_loads(topo, [("host1-1", "host2-1")], h=0.0001)
        with pytest.raises(UnstableSystemError):
            analyzer.analyze(loads)

    def test_local_route_supported(self):
        topo = build_network()
        spec = ConnectionSpec("loc", "host1-1", "host1-2", TRAFFIC, 0.2)
        load = ConnectionLoad(
            spec, compute_route(topo, "host1-1", "host1-2"), 0.0015, 0.0
        )
        report = ConcatenationAnalyzer(topo).analyze([load])["loc"]
        assert math.isfinite(report.concatenated_bound)
