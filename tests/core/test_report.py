"""Tests for the network-state report."""

import pytest

from repro.config import build_network
from repro.core import AdmissionController
from repro.core.report import network_state
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


@pytest.fixture()
def loaded_cac():
    topo = build_network()
    cac = AdmissionController(topo)
    cac.request(ConnectionSpec("a", "host1-1", "host2-1", TRAFFIC, 0.09))
    cac.request(ConnectionSpec("b", "host2-2", "host3-1", TRAFFIC, 0.07))
    return cac


class TestNetworkState:
    def test_all_connections_listed(self, loaded_cac):
        report = network_state(loaded_cac)
        assert {c.conn_id for c in report.connections} == {"a", "b"}

    def test_slack_positive_for_admitted(self, loaded_cac):
        report = network_state(loaded_cac)
        for c in report.connections:
            assert c.slack >= 0
            assert 0 <= c.slack_fraction < 1

    def test_tightest_connection(self, loaded_cac):
        report = network_state(loaded_cac)
        tight = report.tightest_connection
        assert tight.slack == min(c.slack for c in report.connections)

    def test_ring_occupancy(self, loaded_cac):
        report = network_state(loaded_cac)
        busiest = report.busiest_ring
        assert 0 < busiest.occupancy < 1
        assert len(report.rings) == 3

    def test_refresh_matches_recorded(self, loaded_cac):
        fresh = network_state(loaded_cac, refresh=True)
        recorded = network_state(loaded_cac, refresh=False)
        by_id = {c.conn_id: c for c in recorded.connections}
        for c in fresh.connections:
            assert c.delay_bound == pytest.approx(
                by_id[c.conn_id].delay_bound, rel=1e-12
            )

    def test_empty_network(self):
        cac = AdmissionController(build_network())
        report = network_state(cac)
        assert report.connections == []
        assert report.tightest_connection is None
        assert "none" in report.format()

    def test_format_contains_key_facts(self, loaded_cac):
        text = network_state(loaded_cac).format()
        assert "a" in text and "host1-1->host2-1" in text
        assert "ring1" in text and "%" in text


class TestPublicApi:
    def test_top_level_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
