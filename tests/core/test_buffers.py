"""Tests for buffer dimensioning (core/buffers)."""

import pytest

from repro.config import build_network
from repro.core import AdmissionController
from repro.core.buffers import BufferPlan, dimension_buffers
from repro.core.delay import ConnectionLoad
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


def admitted_state(pairs, deadline=0.09):
    topo = build_network()
    cac = AdmissionController(topo)
    for i, (src, dst) in enumerate(pairs):
        res = cac.request(ConnectionSpec(f"c{i}", src, dst, TRAFFIC, deadline))
        assert res.admitted
    loads = [
        ConnectionLoad(r.spec, r.route, r.h_source, r.h_dest)
        for r in cac.connections.values()
    ]
    return topo, cac, loads


class TestDimensioning:
    def test_every_resource_appears(self):
        topo, cac, loads = admitted_state([("host1-1", "host2-1")])
        plan = dimension_buffers(topo, loads)
        assert any("ring1" in k for k in plan.mac_buffers)  # source MAC
        assert any("ring2" in k for k in plan.mac_buffers)  # ID_R MAC
        assert any("uplink" in k for k in plan.port_buffers)
        assert any("frame-cell" in k for k in plan.conversion_buffers)

    def test_mac_backlog_positive_and_bounded(self):
        topo, cac, loads = admitted_state([("host1-1", "host2-1")])
        plan = dimension_buffers(topo, loads)
        for name, bits in plan.mac_buffers.items():
            assert 0 < bits < 4e6  # within the configured MAC buffer

    def test_mac_buffer_within_configured_limit(self):
        # The CAC admitted these connections, so Theorem 1's F <= S must
        # hold at every MAC with the configured buffer size.
        from repro.config import NetworkConfig

        topo, cac, loads = admitted_state(
            [("host1-1", "host2-1"), ("host1-2", "host3-1")]
        )
        plan = dimension_buffers(topo, loads)
        limit = NetworkConfig().mac_buffer_bits
        for bits in plan.mac_buffers.values():
            assert bits <= limit + 1e-9

    def test_more_connections_need_more_port_buffer(self):
        topo1, _, loads1 = admitted_state([("host1-1", "host2-1")])
        one = dimension_buffers(topo1, loads1)
        topo2, _, loads2 = admitted_state(
            [("host1-1", "host2-1"), ("host1-2", "host2-2")]
        )
        two = dimension_buffers(topo2, loads2)
        uplink1 = next(v for k, v in one.port_buffers.items() if "id1" in k)
        uplink2 = next(v for k, v in two.port_buffers.items() if "id1" in k)
        assert uplink2 >= uplink1 - 1e-9

    def test_total_and_worst_port(self):
        topo, cac, loads = admitted_state([("host1-1", "host2-1")])
        plan = dimension_buffers(topo, loads)
        assert plan.total_bits > 0
        name, bits = plan.worst_port()
        assert bits == max(plan.port_buffers.values())

    def test_empty_state(self):
        topo = build_network()
        plan = dimension_buffers(topo, [])
        assert plan.total_bits == 0.0
        assert plan.worst_port() is None

    def test_report_formatting(self):
        topo, cac, loads = admitted_state([("host1-1", "host2-1")])
        plan = dimension_buffers(topo, loads)
        report = plan.format_report()
        assert "MAC transmit queues" in report
        assert "TOTAL" in report
