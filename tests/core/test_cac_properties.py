"""Property-based tests of CAC invariants (hypothesis)."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic


@st.composite
def workloads(draw):
    """Random but valid dual-periodic sources in the feasible ballpark."""
    p1 = draw(st.sampled_from([0.010, 0.015, 0.020, 0.030]))
    p2 = draw(st.sampled_from([0.002, 0.005]))
    rho = draw(st.floats(2e6, 12e6))
    c1 = rho * p1
    # inner rate between rho and 3*rho, capped at c1 per window
    inner = draw(st.floats(1.0, 3.0)) * rho
    c2 = min(c1, inner * p2)
    return DualPeriodicTraffic(c1=c1, p1=p1, c2=c2, p2=p2)


hosts = st.sampled_from(
    [f"host{i}-{j}" for i in range(1, 4) for j in range(1, 5)]
)


class TestAdmissionInvariants:
    @given(
        workloads(),
        st.floats(0.05, 0.25),
        st.floats(0.0, 1.0),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_admitted_connection_meets_deadline(self, traffic, deadline, beta):
        topo = build_network()
        cac = AdmissionController(topo, cac_config=CACConfig(beta=beta))
        res = cac.request(
            ConnectionSpec("p", "host1-1", "host2-1", traffic, deadline)
        )
        if res.admitted:
            assert res.record.delay_bound <= deadline + 1e-9
            assert res.record.h_source > 0
            assert res.record.h_dest > 0
            # Ledgers are consistent with the grant.
            assert topo.rings["ring1"].allocation_of("p") == res.record.h_source

    @given(workloads(), st.floats(0.05, 0.2))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_release_is_inverse_of_admit(self, traffic, deadline):
        topo = build_network()
        cac = AdmissionController(topo)
        before = topo.rings["ring1"].available_sync_time
        res = cac.request(
            ConnectionSpec("p", "host1-1", "host2-1", traffic, deadline)
        )
        if res.admitted:
            cac.release("p")
        assert topo.rings["ring1"].available_sync_time == pytest.approx(before)

    @given(workloads())
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_grant_monotone_in_beta(self, traffic):
        grants = []
        for beta in (0.0, 0.5, 1.0):
            topo = build_network()
            cac = AdmissionController(topo, cac_config=CACConfig(beta=beta))
            res = cac.request(
                ConnectionSpec("p", "host1-1", "host2-1", traffic, 0.12)
            )
            if not res.admitted:
                return  # infeasible workload draw — nothing to compare
            grants.append(res.record.h_source)
        assert grants[0] <= grants[1] + 1e-12
        assert grants[1] <= grants[2] + 1e-12

    @given(workloads(), st.floats(0.05, 0.2))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_rejection_leaves_no_trace(self, traffic, deadline):
        topo = build_network()
        cac = AdmissionController(topo)
        snapshot = {
            rid: ring.available_sync_time for rid, ring in topo.rings.items()
        }
        res = cac.request(
            ConnectionSpec("p", "host1-1", "host2-1", traffic, deadline * 0.1)
        )
        if not res.admitted:
            for rid, ring in topo.rings.items():
                assert ring.available_sync_time == snapshot[rid]
            assert "p" not in cac.connections
