"""Regression tests for the CAC accounting and staleness fixes.

Two bugs fixed together with the incremental engine:

* a request that *raises* (duplicate connection id) used to inflate
  ``n_requests`` anyway, silently depressing the admission probability;
* ``release()`` used to leave the survivors' recorded ``delay_bound``
  at its pre-departure value, so anything reading the records directly
  (metrics, failover, the fault audit) saw stale, loose bounds.
"""

import pytest

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.errors import ConfigurationError
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=240_000.0, p1=0.030, c2=80_000.0, p2=0.005)


def make_cac(**kw):
    return AdmissionController(
        build_network(), cac_config=CACConfig(beta=0.5, **kw)
    )


def spec(conn_id, src="host1-1", dst="host2-1", deadline=0.15):
    return ConnectionSpec(conn_id, src, dst, TRAFFIC, deadline)


class TestDuplicateIdAccounting:
    def test_duplicate_does_not_inflate_counters(self):
        cac = make_cac()
        cac.request(spec("c1"))
        n_requests, n_admitted = cac.n_requests, cac.n_admitted
        history_len = len(cac.history)
        ap = cac.admission_probability
        with pytest.raises(ConfigurationError):
            cac.request(spec("c1"))
        assert cac.n_requests == n_requests
        assert cac.n_admitted == n_admitted
        assert len(cac.history) == history_len
        assert cac.admission_probability == ap

    def test_unroutable_request_does_not_inflate_counters(self):
        cac = make_cac()
        cac.request(spec("c1"))
        with pytest.raises(Exception):
            cac.request(spec("ghost", src="host1-1", dst="no-such-host"))
        assert cac.n_requests == 1
        assert len(cac.history) == 1

    def test_duplicate_leaves_active_set_usable(self):
        cac = make_cac()
        cac.request(spec("c1"))
        with pytest.raises(ConfigurationError):
            cac.request(spec("c1"))
        # The controller still admits and accounts correctly afterwards.
        res = cac.request(spec("c2", src="host2-2", dst="host3-1"))
        assert res.admitted
        assert cac.n_requests == 2
        assert cac.n_admitted == 2


class TestReleaseRefreshesBounds:
    @pytest.mark.parametrize("incremental", [False, True])
    def test_survivor_bound_tightens_after_release(self, incremental):
        cac = make_cac(incremental=incremental)
        # Two cross-backbone connections sharing the s1->s2 output port.
        assert cac.request(spec("a", "host1-1", "host2-1")).admitted
        bound_alone = cac.connections["a"].delay_bound
        assert cac.request(spec("b", "host1-2", "host2-2")).admitted
        bound_loaded = cac.connections["a"].delay_bound
        assert bound_loaded >= bound_alone  # interference only adds delay
        cac.release("b")
        refreshed = cac.connections["a"].delay_bound
        # The stale value would still be bound_loaded; the refreshed one
        # must equal the bound "a" had when it was alone.
        assert refreshed == pytest.approx(bound_alone, rel=0, abs=0)

    def test_release_refresh_matches_current_delays(self):
        cac = make_cac()
        for i, (src, dst) in enumerate(
            [("host1-1", "host2-1"), ("host1-2", "host2-2"), ("host2-3", "host3-1")]
        ):
            assert cac.request(spec(f"c{i}", src, dst)).admitted
        cac.release("c1")
        live = cac.current_delays()
        for cid, rec in cac.connections.items():
            assert rec.delay_bound == live[cid]
