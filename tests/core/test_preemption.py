"""Tests for preemptive admission."""

import pytest

from repro.config import build_network
from repro.core import AdmissionController
from repro.core.policies import MaxAvailPolicy
from repro.core.preemption import PreemptiveAdmission
from repro.errors import ConfigurationError
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


def spec(cid, src="host1-1", dst="host2-1", deadline=0.12):
    return ConnectionSpec(cid, src, dst, TRAFFIC, deadline)


def saturated_manager():
    """A network where ring1's budget is fully granted to one connection."""
    topo = build_network()
    cac = AdmissionController(topo, policy=MaxAvailPolicy())
    manager = PreemptiveAdmission(cac)
    res = manager.request(spec("hog", "host1-1", "host2-1"), importance=1.0)
    assert res.admitted
    return manager


class TestPreemption:
    def test_no_preemption_when_capacity_exists(self):
        topo = build_network()
        manager = PreemptiveAdmission(AdmissionController(topo))
        res = manager.request(spec("a"), importance=5.0)
        assert res.admitted
        assert res.preempted == ()

    def test_critical_request_evicts_lesser(self):
        manager = saturated_manager()
        res = manager.request(
            spec("critical", "host1-2", "host3-1"), importance=10.0
        )
        assert res.admitted
        assert res.preempted == ("hog",)
        assert "hog" not in manager.cac.connections

    def test_equal_importance_not_evicted(self):
        manager = saturated_manager()  # hog has importance 1.0
        res = manager.request(
            spec("peer", "host1-2", "host3-1"), importance=1.0
        )
        assert not res.admitted
        assert "hog" in manager.cac.connections

    def test_lower_importance_not_evicted(self):
        manager = saturated_manager()
        res = manager.request(
            spec("minor", "host1-2", "host3-1"), importance=0.5
        )
        assert not res.admitted
        assert "hog" in manager.cac.connections

    def test_rollback_restores_victims(self):
        manager = saturated_manager()
        # Even with the hog gone, a sub-2-TTRT deadline is hopeless; the
        # hog must be restored afterwards.
        res = manager.request(
            spec("impossible", "host1-2", "host3-1", deadline=0.012),
            importance=10.0,
        )
        assert not res.admitted
        assert res.preempted == ()
        assert "hog" in manager.cac.connections
        assert "hog" in res.restored

    def test_importance_tracked_across_lifecycle(self):
        manager = saturated_manager()
        assert manager.importance_of("hog") == 1.0
        manager.release("hog")
        assert manager.importance_of("hog") == 0.0

    def test_eviction_order_is_least_important_first(self):
        topo = build_network()
        from repro.config import CACConfig

        cac = AdmissionController(topo, cac_config=CACConfig(beta=1.0))
        manager = PreemptiveAdmission(cac)
        victims = [
            ("low", "host1-1", 0.1),
            ("mid", "host1-2", 0.5),
            ("high", "host1-3", 0.9),
        ]
        for cid, src, imp in victims:
            r = manager.request(spec(cid, src, "host2-1"), importance=imp)
            assert r.admitted
        # Force a big request that needs at least one eviction.
        res = manager.request(
            spec("vip", "host1-4", "host3-1"), importance=5.0
        )
        if res.preempted:
            assert res.preempted[0] == "low"

    def test_validation(self):
        manager = saturated_manager()
        with pytest.raises(ConfigurationError):
            manager.request(spec("x", "host1-2", "host3-1"), 1.0, max_preemptions=-1)
