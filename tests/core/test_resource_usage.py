"""Tests for ResourceUsage (port-level figures from the delay engine)."""

import pytest

from repro.config import build_network
from repro.core.delay import ConnectionLoad, DelayAnalyzer
from repro.network.connection import ConnectionSpec
from repro.network.routing import compute_route
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


def loads_for(topo, pairs):
    out = []
    for i, (src, dst) in enumerate(pairs):
        spec = ConnectionSpec(f"c{i}", src, dst, TRAFFIC, 0.2)
        out.append(ConnectionLoad(spec, compute_route(topo, src, dst), 0.0015, 0.0015))
    return out


class TestResourceUsage:
    def test_all_traversed_ports_reported(self):
        topo = build_network()
        analyzer = DelayAnalyzer(topo)
        loads = loads_for(topo, [("host1-1", "host2-1")])
        _, usage = analyzer.compute_with_resources(loads)
        assert set(usage.port_delays) == {"id1:uplink", "s1:s1->s2", "s2:s2->id2"}
        assert set(usage.port_backlogs) == set(usage.port_delays)
        assert set(usage.port_busy_intervals) == set(usage.port_delays)

    def test_port_inputs_keyed_by_connection(self):
        topo = build_network()
        analyzer = DelayAnalyzer(topo)
        loads = loads_for(topo, [("host1-1", "host2-1"), ("host1-2", "host3-1")])
        _, usage = analyzer.compute_with_resources(loads)
        # Both connections share id1's uplink.
        assert set(usage.port_inputs["id1:uplink"]) == {"c0", "c1"}
        # Only c0 reaches s1->s2.
        assert set(usage.port_inputs["s1:s1->s2"]) == {"c0"}

    def test_port_delay_consistent_with_per_hop(self):
        topo = build_network()
        analyzer = DelayAnalyzer(topo)
        loads = loads_for(topo, [("host1-1", "host2-1")])
        reports, usage = analyzer.compute_with_resources(loads)
        hop = dict(reports["c0"].per_hop)
        for name, delay in usage.port_delays.items():
            assert hop[name] == pytest.approx(delay)

    def test_empty_loads(self):
        topo = build_network()
        reports, usage = DelayAnalyzer(topo).compute_with_resources([])
        assert reports == {}
        assert usage.port_delays == {}

    def test_backlogs_positive_when_loaded(self):
        topo = build_network()
        analyzer = DelayAnalyzer(topo)
        loads = loads_for(topo, [("host1-1", "host2-1")])
        _, usage = analyzer.compute_with_resources(loads)
        assert all(b > 0 for b in usage.port_backlogs.values())
