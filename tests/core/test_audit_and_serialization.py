"""Tests for the CAC audit trail and curve serialization."""

import json

import pytest

from repro.config import build_network
from repro.core import AdmissionController
from repro.envelopes.curve import Curve
from repro.errors import CurveError
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


class TestAuditTrail:
    def test_every_decision_recorded(self):
        cac = AdmissionController(build_network())
        cac.request(ConnectionSpec("ok", "host1-1", "host2-1", TRAFFIC, 0.09))
        cac.request(ConnectionSpec("no", "host1-2", "host2-2", TRAFFIC, 0.001))
        assert [cid for cid, _ in cac.history] == ["ok", "no"]
        assert cac.history[0][1].admitted
        assert not cac.history[1][1].admitted

    def test_history_carries_diagnostics(self):
        cac = AdmissionController(build_network())
        cac.request(ConnectionSpec("ok", "host1-1", "host2-1", TRAFFIC, 0.09))
        _, result = cac.history[0]
        assert result.h_max_avail is not None
        assert result.h_min_need is not None

    def test_history_bounded(self):
        cac = AdmissionController(build_network())
        cac.history_limit = 10
        for i in range(25):
            cac.request(
                ConnectionSpec(f"x{i}", "host1-1", "host2-1", TRAFFIC, 0.001)
            )
        assert len(cac.history) <= 11  # halved on overflow


class TestCurveSerialization:
    def test_round_trip(self):
        c = Curve.from_points([(0.0, 1.0), (2.0, 5.0)], final_slope=0.5)
        back = Curve.from_dict(c.to_dict())
        assert back.equals(c)

    def test_json_compatible(self):
        c = Curve.affine(10.0, 3.0)
        blob = json.dumps(c.to_dict())
        back = Curve.from_dict(json.loads(blob))
        assert back(2.0) == pytest.approx(c(2.0))

    def test_from_dict_validates(self):
        with pytest.raises(CurveError):
            Curve.from_dict({"xs": [0.0]})  # missing keys
        with pytest.raises(CurveError):
            Curve.from_dict({"xs": [1.0], "ys": [0.0], "slopes": [0.0]})

    def test_staircase_round_trip(self):
        from repro.envelopes.staircase import timed_token_staircase

        s = timed_token_staircase(0.001, 0.008, 1e8, n_steps=8)
        back = Curve.from_dict(s.to_dict())
        assert back.equals(s)
