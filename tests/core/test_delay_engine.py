"""Tests for the decomposition delay engine (Eq. 7)."""

import math

import pytest

from repro.config import AnalysisConfig, NetworkConfig, build_network
from repro.core.delay import ConnectionLoad, DelayAnalyzer
from repro.errors import UnstableSystemError
from repro.network.connection import ConnectionSpec
from repro.network.routing import compute_route
from repro.traffic import DualPeriodicTraffic, PeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=240_000.0, p1=0.030, c2=80_000.0, p2=0.005)


@pytest.fixture()
def topo():
    return build_network()


@pytest.fixture()
def analyzer(topo):
    return DelayAnalyzer(topo)


def load(topo, conn_id, src, dst, h_s=0.002, h_r=0.002, deadline=0.2, traffic=TRAFFIC):
    spec = ConnectionSpec(conn_id, src, dst, traffic, deadline)
    return ConnectionLoad(spec, compute_route(topo, src, dst), h_s, h_r)


class TestStageConstruction:
    def test_backbone_route_stage_sequence(self, topo, analyzer):
        ld = load(topo, "c1", "host1-1", "host2-1")
        stages = analyzer.build_stages(ld)
        names = [s.name for s in stages]
        # The decomposition of Section 4: MAC, delay line, ID_S stages,
        # uplink port, backbone, ID_R stages, destination MAC, delay line.
        assert names[0].startswith("fddi-mac:ring1")
        assert any("frame-cell" in n for n in names)
        assert any("uplink" in n for n in names)
        assert any("cell-frame" in n for n in names)
        assert names[-1] == "delay-line:ring2"

    def test_local_route_is_two_stages(self, topo, analyzer):
        ld = load(topo, "c1", "host1-1", "host1-2", h_r=0.0)
        stages = analyzer.build_stages(ld)
        assert len(stages) == 2

    def test_frame_bits_capped_by_max_frame(self, analyzer):
        big_h = 0.005  # 500 kbit/rotation >> max frame
        assert analyzer.frame_bits_for(big_h) == analyzer.network_config.max_frame_bits

    def test_frame_bits_proportional_to_h(self, analyzer):
        cfg = analyzer.network_config
        small_h = 0.0002
        assert analyzer.frame_bits_for(small_h) == pytest.approx(
            small_h * cfg.fddi_bandwidth
        )


class TestSingleConnection:
    def test_end_to_end_is_sum_of_hops(self, topo, analyzer):
        ld = load(topo, "c1", "host1-1", "host2-1")
        report = analyzer.compute([ld])["c1"]
        assert report.total_delay == pytest.approx(
            sum(d for _, d in report.per_hop)
        )

    def test_mac_delays_dominate(self, topo, analyzer):
        ld = load(topo, "c1", "host1-1", "host2-1")
        report = analyzer.compute([ld])["c1"]
        mac = report.hop_delay("fddi-mac")
        assert mac > 0.5 * report.total_delay

    def test_local_route_cheaper_than_backbone(self, topo, analyzer):
        local = load(topo, "c1", "host1-1", "host1-2", h_r=0.0)
        remote = load(topo, "c2", "host1-1", "host2-1")
        d_local = analyzer.compute([local])["c1"].total_delay
        d_remote = analyzer.compute([remote])["c2"].total_delay
        assert d_local < d_remote

    def test_more_bandwidth_never_hurts(self, topo, analyzer):
        # 0.0008 s/rotation = 10 Mbps guaranteed (traffic is 8 Mbps).
        slow = load(topo, "c1", "host1-1", "host2-1", h_s=0.0008, h_r=0.0008)
        fast = load(topo, "c1", "host1-1", "host2-1", h_s=0.004, h_r=0.004)
        d_slow = analyzer.compute([slow])["c1"].total_delay
        d_fast = analyzer.compute([fast])["c1"].total_delay
        assert d_fast <= d_slow + 1e-9

    def test_unstable_allocation_raises(self, topo, analyzer):
        # 0.1 ms/rotation = 1.25 Mbps << 8 Mbps of traffic.
        ld = load(topo, "c1", "host1-1", "host2-1", h_s=0.0001, h_r=0.002)
        with pytest.raises(UnstableSystemError):
            analyzer.compute([ld])


class TestMultipleConnections:
    def test_disjoint_connections_independent(self, topo, analyzer):
        # ring1->ring2 and ring2->ring3 share no output port in the triangle.
        a = load(topo, "a", "host1-1", "host2-1")
        b = load(topo, "b", "host2-2", "host3-1")
        together = analyzer.compute([a, b])
        alone_a = analyzer.compute([a])["a"].total_delay
        assert together["a"].total_delay == pytest.approx(alone_a, rel=1e-9)

    def test_shared_uplink_increases_delay(self, topo, analyzer):
        # Two connections from ring1 share id1's uplink port.
        a = load(topo, "a", "host1-1", "host2-1")
        b = load(topo, "b", "host1-2", "host3-1")
        together = analyzer.compute([a, b])
        alone = analyzer.compute([a])
        assert together["a"].total_delay >= alone["a"].total_delay - 1e-12
        assert together["a"].hop_delay("uplink") >= alone["a"].hop_delay("uplink")

    def test_all_twelve_hosts_active(self, topo, analyzer):
        loads = []
        hosts = [f"host{i}-{j}" for i in range(1, 4) for j in range(1, 5)]
        for k, src in enumerate(hosts):
            ring = int(src[4])
            dst_ring = ring % 3 + 1
            dst = f"host{dst_ring}-{(k % 4) + 1}"
            loads.append(load(topo, f"c{k}", src, dst, h_s=0.0008, h_r=0.0008))
        reports = analyzer.compute(loads)
        assert len(reports) == 12
        assert all(math.isfinite(r.total_delay) for r in reports.values())

    def test_deterministic_across_orderings(self, topo, analyzer):
        a = load(topo, "a", "host1-1", "host2-1")
        b = load(topo, "b", "host1-2", "host2-2")
        d1 = analyzer.compute([a, b])
        d2 = analyzer.compute([b, a])
        assert d1["a"].total_delay == pytest.approx(d2["a"].total_delay, rel=1e-12)
        assert d1["b"].total_delay == pytest.approx(d2["b"].total_delay, rel=1e-12)


class TestCaching:
    def test_cache_hits_do_not_change_results(self, topo):
        fresh = DelayAnalyzer(topo)
        ld = load(topo, "c1", "host1-1", "host2-1")
        first = fresh.compute([ld])["c1"].total_delay
        second = fresh.compute([ld])["c1"].total_delay
        assert first == second

    def test_different_h_different_result(self, topo, analyzer):
        lo = load(topo, "c1", "host1-1", "host2-1", h_s=0.0008, h_r=0.002)
        hi = load(topo, "c1", "host1-1", "host2-1", h_s=0.003, h_r=0.002)
        d_lo = analyzer.compute([lo])["c1"].total_delay
        d_hi = analyzer.compute([hi])["c1"].total_delay
        assert d_lo != d_hi
