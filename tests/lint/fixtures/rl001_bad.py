"""Known-bad determinism fixture (scoped as repro/sim/... by the tests)."""

import random
import time
from datetime import datetime
from random import randint

import numpy as np


def stamp():
    return time.time(), datetime.now()


def draw():
    jitter = random.random()
    pick = randint(0, 10)
    rng = np.random.default_rng(42)
    return jitter, pick, rng.normal()
