"""Known-bad float-safety fixture (scoped as repro/core/... by the tests)."""


def check(delay: float, bound: float, slack):
    if slack == 0.0:
        return True
    if delay == bound:
        return True
    return slack != 1.5
