"""Known-bad unit-discipline fixture: inline conversions and bad suffixes."""

from repro.units import bits_to_bytes, milliseconds


def convert(frame_bytes, rate, delay):
    frame_bits = frame_bytes * 8
    rate_mbps = rate / 1e6
    cells = frame_bits / 424
    delay_ms = delay * 1e-3
    return frame_bits, rate_mbps, cells, delay_ms


def mismatched(raw):
    ttrt_ms = milliseconds(raw)
    size_bits = bits_to_bytes(raw)
    return ttrt_ms, size_bits
