"""Known-good unit-discipline fixture: named units only."""

from repro.units import CELL_BITS, MBIT, MS, bytes_to_bits, milliseconds


def convert(frame_bytes, rate):
    frame_bits = bytes_to_bits(frame_bytes)
    cells = frame_bits / CELL_BITS
    ttrt = 8 * MS
    backbone = 155.52 * MBIT
    return frame_bits, cells, ttrt, backbone


def matched(raw):
    ttrt_s = milliseconds(raw)
    return ttrt_s
