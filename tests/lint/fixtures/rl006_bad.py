"""RL006 must-flag fixture: the pre-PR-9 ``connect_switches`` body.

Linted under the virtual path ``repro/network/topology.py`` — the
registered transactional scope.  The bug: validation happens *inside*
the mutation loop, so the second iteration can raise after the first
iteration already attached a link, leaving a half-connected backbone.
Flow-wise the mutation facts reach the ``raise`` through the loop back
edge.
"""


class HeterogeneousTopology:
    def connect_switches(
        self, a, b, rate, propagation_delay=0.0, bidirectional=True
    ) -> None:
        """Create the directed link(s) between two backbone switches."""
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for src, dst in pairs:
            if src not in self.switches or dst not in self.switches:
                raise TopologyError(f"unknown switch in pair ({src!r}, {dst!r})")
            if (src, dst) in self._switch_links:
                raise TopologyError(f"link {src}->{dst} already exists")
            link = AtmLink(
                f"{src}->{dst}", rate=rate, propagation_delay=propagation_delay
            )
            self.switches[src].attach_link(link)
            self._switch_links[(src, dst)] = link
            self.change_count += 1
            self._backbone.add_edge(src, dst, weight=propagation_delay + 1.0)
