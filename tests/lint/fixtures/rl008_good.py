"""RL008 clean fixture: dimensionally sound arithmetic.

Time*rate -> data, data/rate -> time, same-dimension ratios are
dimensionless, and dimensionless literals absorb freely — none of this
may be flagged.  Unknown dimensions stay silent (RL002 is the lexical
fallback there).
"""

from repro.units import mbps


def latency(frame_bits, bandwidth):
    service_s = frame_bits / bandwidth
    return service_s + 0.001


def budget(ttrt, overhead_s):
    spare_s = ttrt - overhead_s
    utilization = spare_s / ttrt
    return utilization * 2.0


def throughput(window_s, rate):
    data_bits = window_s * rate
    return data_bits / mbps(1.0)


def opaque(x, y):
    return x + y  # both unknown: silent
