"""Known-bad cache-purity fixture (scoped as repro/core/delay.py)."""


class Engine:
    def poison(self, key, extra):
        cached = self._stage_cache.get(key)
        if cached is not None:
            cached.append(extra)
            cached[0] = extra
            cached.total = extra
        report = self._reports[key]
        report.update(extra)
        del report["stale"]
        return cached

    def poison_breakpoints(self, curve, delta):
        xs = curve.breakpoints()
        xs[0] = delta
        xs += delta
        xs.sort()
        import numpy as np

        np.add(xs, delta, out=xs)
        return xs
