"""Known-good float-safety fixture: sentinels and tolerance helpers."""

import math


def check(delay: float, bound: float, latency, count: int):
    if latency == 0:  # exact integer sentinel: "left at default"
        return True
    if count == 3:
        return False
    return math.isclose(delay, bound, rel_tol=1e-9)
