"""Known-good determinism fixture: injected RNGs and reporting timers."""

import random
import time


def draw(streams, rng=None):
    if rng is None:
        rng = random.Random(7)
    return streams.uniform("arrivals", 0.0, 1.0) + rng.random()


def timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
