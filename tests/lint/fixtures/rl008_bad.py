"""RL008 must-flag fixture: definite cross-dimension arithmetic.

Dimensions are seeded from parameter suffixes/conventional names and
the repro.units helpers, then propagated through assignment — the
mismatches below survive inference with *concrete* differing dimensions.
"""

from repro.units import bytes_to_bits, mbps


def window(deadline_s, frame_bits):
    budget = deadline_s * 0.5
    return budget + frame_bits  # seconds + bits


def feasible(bandwidth, ttrt):
    return bandwidth < ttrt  # bits/s vs seconds


def occupancy(payload_bytes, link_rate_bps):
    size = bytes_to_bits(payload_bytes)
    rate = mbps(100.0)
    spare = link_rate_bps - rate
    return size - spare  # bits - bits/s
