"""RL007 must-flag fixture: a minimal await-spanning unguarded mutation.

Linted under a virtual path inside ``repro/service``.  The duplicate
check reads shared state, the ``await`` yields the event loop with no
lock held (any other task may admit the same id meanwhile), and the
write then acts on the stale read.
"""

import asyncio


class Service:
    async def admit(self, conn_id):
        if conn_id in self.state.active:
            return None
        await asyncio.sleep(0)
        self.state.commit_admit(conn_id)
        return conn_id

    async def bump(self):
        count = self.counters.total
        await self._flush()
        self.counters.total = count + 1
