"""Known-good cache-purity fixture: copy before mutating, re-put."""


class Engine:
    def refresh(self, key, extra):
        cached = self._stage_cache.get(key)
        if cached is None:
            fresh = [extra]
        else:
            fresh = list(cached)
            fresh.append(extra)
        self._stage_cache.put(key, fresh)
        return fresh
