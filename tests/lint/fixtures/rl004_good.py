"""Known-good cache-purity fixture: copy before mutating, re-put."""


class Engine:
    def refresh(self, key, extra):
        cached = self._stage_cache.get(key)
        if cached is None:
            fresh = [extra]
        else:
            fresh = list(cached)
            fresh.append(extra)
        self._stage_cache.put(key, fresh)
        return fresh

    def shifted_breakpoints(self, curve, delta):
        import numpy as np

        xs = np.array(curve.breakpoints())
        xs += delta  # mutates the private copy, not the curve's array
        shifted = curve.breakpoints() + delta  # new array, no in-place op
        return xs, shifted
