"""RL006 clean fixture: transactional idioms that must NOT be flagged.

``connect_switches`` is the PR-9 fix (validate everything, then mutate
everything); ``_decide`` is the CAC two-ring idiom — the second
allocation may raise, but the handler rolls back the first before
re-raising, and the exception edge carries the *pre-statement* state so
the second allocation's own fact is not live in the handler.
"""


class HeterogeneousTopology:
    def connect_switches(
        self, a, b, rate, propagation_delay=0.0, bidirectional=True
    ) -> None:
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for src, dst in pairs:
            if src not in self.switches or dst not in self.switches:
                raise TopologyError(f"unknown switch in pair ({src!r}, {dst!r})")
            if (src, dst) in self._switch_links:
                raise TopologyError(f"link {src}->{dst} already exists")
        for src, dst in pairs:
            link = AtmLink(
                f"{src}->{dst}", rate=rate, propagation_delay=propagation_delay
            )
            self.switches[src].attach_link(link)
            self._switch_links[(src, dst)] = link
            self.change_count += 1
            self._backbone.add_edge(src, dst, weight=propagation_delay + 1.0)


class Controller:
    def _decide(self, spec, h_source, h_dest):  # reprolint: transactional
        ring_s = self.topology.rings[spec.source_ring]
        ring_r = self.topology.rings[spec.dest_ring]
        ring_s.allocate(spec.conn_id, h_source)
        try:
            ring_r.allocate(spec.conn_id, h_dest)
        except Exception:
            ring_s.release(spec.conn_id)
            raise
        self.connections[spec.conn_id] = spec
