"""RL007 clean fixture: the sanctioned async idioms.

* read-await-write under an ``async with`` lock;
* manual ``acquire``/``release`` held across the suspension;
* claim-then-await: the shared handle is nulled *before* the await, so
  no stale read supports a later write.
"""

import asyncio


class Service:
    async def admit(self, conn_id):
        async with self._structure_lock:
            if conn_id in self.state.active:
                return None
            await asyncio.sleep(0)
            self.state.commit_admit(conn_id)
        return conn_id

    async def rebalance(self, shard):
        await shard.lock.acquire()
        try:
            if self.state.total > 0:
                await self._flush()
                self.state.total = 0
        finally:
            shard.lock.release()

    async def stop(self):
        dispatcher = self._dispatcher
        self._dispatcher = None
        if dispatcher is not None:
            await dispatcher
