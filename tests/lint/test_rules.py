"""Fixture-driven tests for the reprolint rule classes (RL001-RL004)."""

from pathlib import Path

import pytest

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, virtual_path: str):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, name, virtual_path=virtual_path)


def codes(findings):
    return sorted({f.code for f in findings})


class TestRL001Determinism:
    def test_bad_fixture_is_flagged(self):
        findings = lint_fixture("rl001_bad.py", "repro/sim/fixture.py")
        assert codes(findings) == ["RL001"]
        messages = "\n".join(f.message for f in findings)
        assert "time.time" in messages
        assert "datetime" in messages
        assert "numpy.random.default_rng" in messages
        assert len(findings) >= 5

    def test_good_fixture_is_clean(self):
        assert lint_fixture("rl001_good.py", "repro/sim/fixture.py") == []

    def test_out_of_scope_package_is_ignored(self):
        findings = lint_fixture(
            "rl001_bad.py", "repro/experiments/fixture.py"
        )
        assert findings == []

    def test_random_streams_module_is_exempt(self):
        source = "import random\nx = random.getrandbits(8)\n"
        assert lint_source(source, "x.py", virtual_path="repro/sim/random.py") == []
        assert lint_source(source, "x.py", virtual_path="repro/sim/engine.py") != []


class TestRL002UnitDiscipline:
    def test_bad_fixture_is_flagged(self):
        findings = lint_fixture(
            "rl002_bad.py", "repro/interface_device/fixture.py"
        )
        assert codes(findings) == ["RL002"]
        flagged = {f.line for f in findings}
        # one finding per smell: *8, /1e6, /424, *1e-3, two suffix mismatches
        assert len(findings) == 6, findings
        assert len(flagged) == 6

    def test_good_fixture_is_clean(self):
        findings = lint_fixture(
            "rl002_good.py", "repro/interface_device/fixture.py"
        )
        assert findings == []

    def test_units_module_is_exempt(self):
        source = "BYTE = 8.0\nCELL_BITS = 53 * 8\n"
        assert lint_source(source, "u.py", virtual_path="repro/units.py") == []

    def test_magnitude_times_named_unit_is_allowed(self):
        source = "from repro.units import MS\nttrt = 8 * MS\n"
        assert (
            lint_source(source, "c.py", virtual_path="repro/config.py") == []
        )


class TestRL003FloatSafety:
    def test_bad_fixture_is_flagged(self):
        findings = lint_fixture("rl003_bad.py", "repro/core/fixture.py")
        assert codes(findings) == ["RL003"]
        assert len(findings) == 3

    def test_good_fixture_is_clean(self):
        assert lint_fixture("rl003_good.py", "repro/core/fixture.py") == []

    def test_scope_is_core_and_envelopes_only(self):
        source = "def f(x: float):\n    return x == 0.5\n"
        assert lint_source(source, "f.py", virtual_path="repro/envelopes/f.py")
        assert (
            lint_source(source, "f.py", virtual_path="repro/traffic/f.py")
            == []
        )


class TestRL004CachePurity:
    def test_bad_fixture_is_flagged(self):
        findings = lint_fixture("rl004_bad.py", "repro/core/delay.py")
        assert codes(findings) == ["RL004"]
        # 5 cache-entry mutations + 4 breakpoints()-array mutations
        # (subscript store, augmented assign, .sort(), ufunc out=).
        assert len(findings) == 9, findings

    def test_good_fixture_is_clean(self):
        assert lint_fixture("rl004_good.py", "repro/core/delay.py") == []

    def test_cache_taints_scoped_to_the_two_engine_files(self):
        source = (
            "def f(self, k):\n"
            "    v = self._stage_cache.get(k)\n"
            "    v.append(1)\n"
        )
        assert lint_source(source, "d.py", virtual_path="repro/core/delay.py")
        assert (
            lint_source(source, "d.py", virtual_path="repro/core/cac.py")
            == []
        )

    def test_breakpoints_taints_apply_tree_wide(self):
        source = (
            "def f(curve):\n"
            "    xs = curve.breakpoints()\n"
            "    xs[0] = 0.0\n"
        )
        # Flagged in any repro module, not just the two engine files ...
        for where in ("repro/core/cac.py", "repro/traffic/source.py"):
            findings = lint_source(source, "b.py", virtual_path=where)
            assert codes(findings) == ["RL004"], where
        # ... but not outside the package.
        assert lint_source(source, "b.py", virtual_path="scripts/b.py") == []

    def test_breakpoints_copy_is_clean(self):
        source = (
            "import numpy as np\n"
            "def f(curve):\n"
            "    xs = np.array(curve.breakpoints())\n"
            "    xs[0] = 0.0\n"
            "    return xs\n"
        )
        assert (
            lint_source(source, "b.py", virtual_path="repro/core/cac.py")
            == []
        )


class TestSuppressions:
    def test_trailing_pragma_suppresses(self):
        source = (
            "import time\n"
            "t = time.time()  # reprolint: disable=RL001 -- reporting only\n"
        )
        assert lint_source(source, "s.py", virtual_path="repro/sim/s.py") == []

    def test_comment_line_pragma_covers_next_line(self):
        source = (
            "import time\n"
            "# reprolint: disable=RL001 -- reporting only\n"
            "t = time.time()\n"
        )
        assert lint_source(source, "s.py", virtual_path="repro/sim/s.py") == []

    def test_file_wide_pragma(self):
        source = (
            "# reprolint: disable-file=RL001 -- scripted chaos module\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        assert lint_source(source, "s.py", virtual_path="repro/sim/s.py") == []

    def test_wrong_code_does_not_suppress(self):
        source = (
            "import time\n"
            "t = time.time()  # reprolint: disable=RL002 -- wrong code\n"
        )
        findings = lint_source(source, "s.py", virtual_path="repro/sim/s.py")
        # The RL001 still fires, and the RL002 pragma — suppressing
        # nothing — is reported stale.
        assert codes(findings) == ["RL001", "RL005"]
        assert any("stale suppression" in f.message for f in findings)

    def test_unjustified_pragma_reports_rl005(self):
        source = (
            "import time\n"
            "t = time.time()  # reprolint: disable=RL001\n"
        )
        findings = lint_source(source, "s.py", virtual_path="repro/sim/s.py")
        # The RL001 itself is suppressed, but the bare pragma is flagged.
        assert codes(findings) == ["RL005"]
        assert findings[0].line == 2

    def test_syntax_error_reports_rl000(self):
        findings = lint_source("def broken(:\n", "b.py", virtual_path="repro/core/b.py")
        assert codes(findings) == ["RL000"]


class TestFindingFormat:
    def test_format_includes_position_code_and_hint(self):
        findings = lint_fixture("rl003_bad.py", "repro/core/fixture.py")
        line = findings[0].format()
        assert "rl003_bad.py:" in line
        assert "RL003" in line
        assert "[fix:" in line

    def test_select_rules_rejects_unknown_codes(self):
        from repro.lint import select_rules

        with pytest.raises(ValueError):
            select_rules(["RL999"])
        assert [r.code for r in select_rules(["rl001"])] == ["RL001"]
