"""The repo must lint itself clean — the linter's ultimate fixture.

These tests enforce the invariant the CI lint job relies on: every rule
runs over ``src`` and finds nothing (or only explicitly justified
suppressions).
"""

import json
import subprocess
import sys
from pathlib import Path

import repro.lint.__main__ as lint_cli
from repro.lint import format_report, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_src_tree_is_lint_clean():
    findings = lint_paths([str(SRC)])
    assert findings == [], "\n" + format_report(findings)


def test_cli_exits_zero_on_repo():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "reprolint: clean" in proc.stdout


def test_cli_exits_nonzero_on_findings(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nt0 = time.time()\n", encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(tmp_path)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "RL001" in proc.stdout


def test_standalone_tool_runs():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "reprolint"), "--list-rules"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    for code in (
        "RL001",
        "RL002",
        "RL003",
        "RL004",
        "RL006",
        "RL007",
        "RL008",
    ):
        assert code in proc.stdout


def test_cli_json_format_and_output_artifact(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nt0 = time.time()\n", encoding="utf-8")
    report_path = tmp_path / "report.json"
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "lint",
            str(tmp_path / "repro"),
            "--format",
            "json",
            "--output",
            str(report_path),
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["schema"] == "reprolint-report"
    assert payload["summary"]["clean"] is False
    assert any(f["code"] == "RL001" for f in payload["findings"])
    # --output writes the same JSON report regardless of --format
    assert report_path.read_text(encoding="utf-8") == proc.stdout


def test_cli_exits_two_on_internal_error(monkeypatch, capsys):
    def boom(paths, rules=None):
        raise RuntimeError("synthetic linter bug")

    monkeypatch.setattr(lint_cli, "lint_paths", boom)
    assert lint_cli.main(["src"]) == 2
    err = capsys.readouterr().err
    assert "reprolint: internal error" in err
    assert "synthetic linter bug" in err
