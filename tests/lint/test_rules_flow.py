"""Fixture-driven tests for the flow-aware rules (RL006-RL008)."""

import json
import shutil
import textwrap
from pathlib import Path

from repro.lint import format_json_report, lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, virtual_path: str):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, name, virtual_path=virtual_path)


def codes(findings):
    return sorted({f.code for f in findings})


class TestRL006Transactionality:
    """The pre-PR-9 ``connect_switches`` body is the golden must-flag."""

    def test_pre_pr9_connect_switches_is_flagged(self):
        findings = lint_fixture("rl006_bad.py", "repro/network/topology.py")
        assert codes(findings) == ["RL006"]
        # both validation raises are reachable (via the loop back edge)
        # with iteration-1 mutations still uncommitted
        assert len(findings) == 2
        for f in findings:
            assert "uncommitted mutation" in f.message
            assert "connect_switches" in f.message
            assert "self._switch_links" in f.message

    def test_fixed_and_rollback_idioms_are_clean(self):
        # validate-then-mutate, and the CAC release-on-failure handler
        assert lint_fixture("rl006_good.py", "repro/network/topology.py") == []

    def test_out_of_scope_path_is_ignored(self):
        findings = lint_fixture("rl006_bad.py", "repro/experiments/fixture.py")
        assert "RL006" not in codes(findings)

    def test_marker_comment_registers_a_scope(self):
        source = textwrap.dedent(
            """
            class Store:
                def put(self, key, value):  # reprolint: transactional
                    self.items[key] = value
                    if not self.validate(key):
                        raise ValueError(key)
            """
        )
        findings = lint_source(
            source, "x.py", virtual_path="repro/network/other.py"
        )
        assert codes(findings) == ["RL006"]

    def test_unmarked_function_outside_registry_is_not_judged(self):
        source = textwrap.dedent(
            """
            class Store:
                def put(self, key, value):
                    self.items[key] = value
                    if not self.validate(key):
                        raise ValueError(key)
            """
        )
        findings = lint_source(
            source, "x.py", virtual_path="repro/network/other.py"
        )
        assert "RL006" not in codes(findings)


class TestRL007AsyncAtomicity:
    def test_await_spanning_mutations_are_flagged(self):
        findings = lint_fixture("rl007_bad.py", "repro/service/fixture.py")
        assert codes(findings) == ["RL007"]
        assert len(findings) == 2
        messages = "\n".join(f.message for f in findings)
        assert "self.state" in messages
        assert "self.counters.total" in messages
        assert "no lock held" in messages

    def test_locked_and_claim_then_await_idioms_are_clean(self):
        # async-with lock, manual acquire/release, claim-then-await
        assert lint_fixture("rl007_good.py", "repro/service/fixture.py") == []

    def test_outside_service_package_is_ignored(self):
        findings = lint_fixture("rl007_bad.py", "repro/network/fixture.py")
        assert "RL007" not in codes(findings)

    def test_sync_methods_are_not_judged(self):
        source = textwrap.dedent(
            """
            class S:
                def admit(self, conn_id):
                    if conn_id in self.state.active:
                        return None
                    self.state.commit_admit(conn_id)
            """
        )
        findings = lint_source(
            source, "x.py", virtual_path="repro/service/fixture.py"
        )
        assert "RL007" not in codes(findings)

    def test_read_and_write_without_await_between_is_clean(self):
        source = textwrap.dedent(
            """
            class S:
                async def admit(self, conn_id):
                    if conn_id in self.state.active:
                        return None
                    self.state.commit_admit(conn_id)
                    await self._flush()
            """
        )
        findings = lint_source(
            source, "x.py", virtual_path="repro/service/fixture.py"
        )
        assert "RL007" not in codes(findings)


class TestRL008DimensionInference:
    def test_definite_mismatches_are_flagged(self):
        findings = lint_fixture("rl008_bad.py", "repro/core/fixture.py")
        assert codes(findings) == ["RL008"]
        messages = sorted(f.message for f in findings)
        assert messages == [
            "dimension mismatch in comparison: bits/s vs seconds",
            "dimension mismatch: bits - bits/s",
            "dimension mismatch: seconds + bits",
        ]

    def test_sound_arithmetic_and_unknowns_are_clean(self):
        assert lint_fixture("rl008_good.py", "repro/core/fixture.py") == []

    def test_units_module_itself_is_exempt(self):
        source = (FIXTURES / "rl008_bad.py").read_text(encoding="utf-8")
        assert (
            lint_source(source, "units.py", virtual_path="repro/units.py")
            == []
        )

    def test_division_changes_dimension_soundly(self):
        source = textwrap.dedent(
            """
            def f(frame_bits, window_s):
                rate = frame_bits / window_s
                return rate + frame_bits
            """
        )
        findings = lint_source(
            source, "x.py", virtual_path="repro/core/fixture.py"
        )
        assert [f.message for f in findings] == [
            "dimension mismatch: bits/s + bits"
        ]


class TestJsonReport:
    def test_schema_and_summary(self):
        findings = lint_fixture("rl008_bad.py", "repro/core/fixture.py")
        payload = json.loads(format_json_report(findings))
        assert payload["schema"] == "reprolint-report"
        assert payload["version"] == 1
        assert payload["summary"]["total"] == 3
        assert payload["summary"]["by_code"] == {"RL008": 3}
        assert payload["summary"]["clean"] is False
        first = payload["findings"][0]
        assert set(first) == {"path", "line", "col", "code", "message", "hint"}

    def test_report_is_byte_stable(self):
        a = format_json_report(
            lint_fixture("rl006_bad.py", "repro/network/topology.py")
        )
        b = format_json_report(
            lint_fixture("rl006_bad.py", "repro/network/topology.py")
        )
        assert a == b
        assert a.endswith("\n")

    def test_empty_report_is_clean(self):
        payload = json.loads(format_json_report([]))
        assert payload["summary"] == {
            "total": 0,
            "by_code": {},
            "clean": True,
        }


class TestDeterminism:
    def test_two_runs_over_src_are_identical(self):
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        first = lint_paths([repo_src])
        second = lint_paths([repo_src])
        assert first == second

    def test_two_runs_over_a_dirty_tree_are_identical(self, tmp_path):
        # stage the must-flag fixtures at their in-scope module paths
        layout = {
            "rl006_bad.py": "repro/network/topology.py",
            "rl007_bad.py": "repro/service/server.py",
            "rl008_bad.py": "repro/core/budget.py",
        }
        for fixture, rel in layout.items():
            dest = tmp_path / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(FIXTURES / fixture, dest)
        first = lint_paths([str(tmp_path)])
        second = lint_paths([str(tmp_path)])
        assert first and first == second
        assert codes(first) == ["RL006", "RL007", "RL008"]
        assert format_json_report(first) == format_json_report(second)
