"""The lint bench gate must catch drift in the committed artifact."""

import copy

from repro.lint.bench import check_lint_payload


def _payload():
    return {
        "suite": "lint",
        "quick": False,
        "rules": ["RL001", "RL002", "RL006"],
        "n_files": 10,
        "findings_total": 0,
        "findings_by_code": {},
        "clean": True,
        "deterministic": True,
        "rounds": 5,
        "median_s": 0.5,
        "p90_s": 0.6,
        "per_file_ms": 50.0,
        "budget_s": 10.0,
    }


def test_identical_payloads_pass():
    assert check_lint_payload(_payload(), _payload()) == []


def test_dirty_tree_fails():
    current = _payload()
    current["clean"] = False
    current["findings_total"] = 3
    current["findings_by_code"] = {"RL006": 3}
    problems = check_lint_payload(current, _payload())
    assert any("not lint-clean" in p for p in problems)


def test_nondeterminism_fails():
    current = _payload()
    current["deterministic"] = False
    problems = check_lint_payload(current, _payload())
    assert any("diverged" in p for p in problems)


def test_rule_catalog_drift_fails():
    current = _payload()
    current["rules"] = current["rules"] + ["RL009"]
    problems = check_lint_payload(current, _payload())
    assert any("catalog drifted" in p for p in problems)


def test_budget_blowout_fails():
    current = _payload()
    current["median_s"] = 11.0
    problems = check_lint_payload(current, _payload())
    assert any("latency budget" in p for p in problems)


def test_generous_budget_tolerates_jitter():
    current = _payload()
    current["median_s"] = 2.0  # 4x slower but inside the ceiling
    committed = copy.deepcopy(_payload())
    assert check_lint_payload(current, committed) == []
