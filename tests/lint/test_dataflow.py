"""Fixed-point driver tests over a tiny reaching-assignments analysis."""

import ast
import textwrap

import pytest

from repro.lint.cfg import EVENT_TEST, build_cfg, function_defs
from repro.lint.dataflow import (
    Analysis,
    DataflowDivergenceError,
    reached_events,
    replay,
    run_forward,
)


class Assigned(Analysis):
    """May-analysis: the set of names that may have been assigned."""

    def initial_state(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, state, event):
        node = event.node
        if isinstance(node, ast.Assign):
            names = {
                t.id for t in node.targets if isinstance(t, ast.Name)
            }
            return state | frozenset(names)
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            return state | frozenset({node.target.id})
        return state


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(function_defs(tree)[0])


def block_assigning(cfg, name):
    for block in cfg.blocks.values():
        for event in block.events:
            node = event.node
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
            ):
                return block
    raise AssertionError(f"no block assigns {name!r}")


class TestJoins:
    def test_branch_join_unions_both_arms(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    b = 2
                c = 3
            """
        )
        result = run_forward(cfg, Assigned())
        join_in = result.block_in[block_assigning(cfg, "c").block_id]
        assert join_in == frozenset({"a", "b"})

    def test_exit_state_accumulates_everything(self):
        cfg = cfg_of(
            """
            def f(x):
                a = 1
                if x:
                    b = 2
            """
        )
        result = run_forward(cfg, Assigned())
        assert result.block_in[cfg.exit_id] == frozenset({"a", "b"})


class TestLoopFixpoint:
    def test_back_edge_feeds_the_loop_head(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    x = 1
            """
        )
        result = run_forward(cfg, Assigned())
        head = next(
            b
            for b in cfg.blocks.values()
            if any(e.kind == EVENT_TEST for e in b.events)
        )
        # iteration-1 facts are visible at the head for iteration 2
        assert result.block_in[head.block_id] == frozenset({"x"})
        assert result.visits > len(
            [b for b in cfg.blocks if b in result.block_in]
        ) - 1, "the loop head must be visited more than once"

    def test_divergence_guard_raises(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    x = 1
                    y = 2
            """
        )
        with pytest.raises(DataflowDivergenceError):
            run_forward(cfg, Assigned(), max_visits=1)


class TestExceptionEdges:
    def test_handler_receives_pre_statement_state(self):
        cfg = cfg_of(
            """
            def f(self):
                try:
                    a = 1
                    b = 2
                except ValueError:
                    h = 3
            """
        )
        result = run_forward(cfg, Assigned())
        handler_in = result.block_in[block_assigning(cfg, "h").block_id]
        # ``a = 1`` completed before ``b = 2`` could raise, but the
        # raising statement's own effect must NOT reach the handler.
        assert "a" in handler_in
        assert "b" not in handler_in


class TestReplay:
    def test_replay_visits_pre_event_states_in_block_order(self):
        cfg = cfg_of(
            """
            def f(x):
                a = 1
                b = 2
            """
        )
        result = run_forward(cfg, Assigned())
        seen = []
        replay(cfg, result, Assigned(), lambda s, e: seen.append(s))
        # before ``a = 1``: nothing; before ``b = 2``: {a}
        assert seen[0] == frozenset()
        assert frozenset({"a"}) in seen

    def test_unreachable_blocks_are_skipped(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                a = 2
            """
        )
        result = run_forward(cfg, Assigned())
        events = reached_events(cfg, result)
        assert all(
            not (
                isinstance(e.node, ast.Assign)
                and e.node.targets[0].id == "a"
            )
            for e in events
        )
