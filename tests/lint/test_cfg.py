"""Structural tests for the per-function CFG builder."""

import ast
import textwrap

from repro.lint.cfg import (
    EVENT_STMT,
    EVENT_TEST,
    EVENT_WITH_ENTER,
    EVENT_WITH_EXIT,
    build_cfg,
    contains_await,
    function_defs,
    walk_in_function,
)


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    funcs = function_defs(tree)
    assert funcs, "fixture source must define a function"
    return build_cfg(funcs[0])


def blocks_with_kind(cfg, kind):
    return [
        block
        for block in cfg.blocks.values()
        if any(event.kind == kind for event in block.events)
    ]


def reachable_ids(cfg):
    seen = set()
    stack = [cfg.entry]
    while stack:
        bid = stack.pop()
        if bid in seen:
            continue
        seen.add(bid)
        block = cfg.blocks[bid]
        stack.extend(block.succ)
        stack.extend(block.except_targets)
    return seen


class TestLinearFlow:
    def test_straight_line_chains_to_exit(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                b = 2
                c = a + b
            """
        )
        stmts = [e for b in cfg.blocks.values() for e in b.events]
        assert [e.kind for e in stmts] == [EVENT_STMT] * 3
        assert cfg.exit_id in reachable_ids(cfg)

    def test_unprotected_entry_and_exit(self):
        cfg = cfg_of("def f():\n    pass\n")
        assert cfg.blocks[cfg.entry].except_targets == []
        assert cfg.blocks[cfg.exit_id].except_targets == []


class TestBranches:
    def test_if_else_branches_rejoin(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    y = 1
                else:
                    y = 2
                z = 3
            """
        )
        (head,) = blocks_with_kind(cfg, EVENT_TEST)
        assert len(head.succ) == 2
        preds = cfg.predecessors()
        # the join block (holding ``z = 3``) has both arms as preds
        join = next(
            b
            for b in cfg.blocks.values()
            if any(
                isinstance(e.node, ast.Assign)
                and isinstance(e.node.targets[0], ast.Name)
                and e.node.targets[0].id == "z"
                for e in b.events
            )
        )
        assert len(preds[join.block_id]) == 2

    def test_if_without_else_falls_through(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    y = 1
                z = 2
            """
        )
        (head,) = blocks_with_kind(cfg, EVENT_TEST)
        assert len(head.succ) == 2  # then-arm and fall-through


class TestLoops:
    def test_while_has_back_edge(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    n = n - 1
            """
        )
        (head,) = blocks_with_kind(cfg, EVENT_TEST)
        back = [
            b
            for b in cfg.blocks.values()
            if head.block_id in b.succ and b.block_id != cfg.entry
            and b.block_id > head.block_id
        ]
        assert back, "loop body must edge back to the head"

    def test_for_loop_head_is_the_for_node(self):
        cfg = cfg_of(
            """
            def f(xs):
                for x in xs:
                    y = x
            """
        )
        (head,) = blocks_with_kind(cfg, EVENT_TEST)
        assert isinstance(head.events[0].node, ast.For)

    def test_break_targets_loop_exit(self):
        cfg = cfg_of(
            """
            def f(xs):
                for x in xs:
                    break
                z = 1
            """
        )
        assert cfg.exit_id in reachable_ids(cfg)


class TestTryExcept:
    def test_try_body_statements_carry_handler_targets(self):
        cfg = cfg_of(
            """
            def f(self):
                try:
                    a = 1
                    b = 2
                except ValueError:
                    h = 3
            """
        )
        body_blocks = [
            b
            for b in cfg.blocks.values()
            if b.except_targets and b.events
        ]
        # each protected statement opens its own block
        assert len(body_blocks) >= 2
        handler_targets = {t for b in body_blocks for t in b.except_targets}
        assert len(handler_targets) == 1
        (handler_entry,) = handler_targets
        assert handler_entry in reachable_ids(cfg)

    def test_raise_without_protection_edges_to_exit(self):
        cfg = cfg_of(
            """
            def f():
                raise ValueError("boom")
            """
        )
        raisers = [
            b
            for b in cfg.blocks.values()
            if any(isinstance(e.node, ast.Raise) for e in b.events)
        ]
        assert raisers and cfg.exit_id in raisers[0].succ


class TestFinally:
    def test_return_routes_through_finally(self):
        cfg = cfg_of(
            """
            def f(self):
                try:
                    return 1
                finally:
                    c = 3
            """
        )
        ret_block = next(
            b
            for b in cfg.blocks.values()
            if any(isinstance(e.node, ast.Return) for e in b.events)
        )
        (finally_entry,) = ret_block.succ
        fin = cfg.blocks[finally_entry]
        assert any(
            isinstance(e.node, ast.Assign) for e in fin.events
        ), "return must flow into the finally body, not the exit"
        # the finally both falls through and re-raises toward the exit
        assert cfg.exit_id in fin.succ

    def test_handler_is_protected_by_finally(self):
        cfg = cfg_of(
            """
            def f(self):
                try:
                    a = 1
                except ValueError:
                    h = 2
                finally:
                    c = 3
            """
        )
        handler = next(
            b
            for b in cfg.blocks.values()
            if any(
                isinstance(e.node, ast.Assign)
                and e.node.targets[0].id == "h"
                for e in b.events
            )
        )
        assert handler.except_targets, (
            "an exception raised inside the handler must still run finally"
        )


class TestWithEvents:
    def test_with_produces_paired_events(self):
        cfg = cfg_of(
            """
            def f(lock):
                with lock:
                    x = 1
            """
        )
        kinds = [e.kind for b in cfg.blocks.values() for e in b.events]
        assert kinds.count(EVENT_WITH_ENTER) == 1
        assert kinds.count(EVENT_WITH_EXIT) == 1


class TestHelpers:
    def test_function_defs_in_source_order(self):
        tree = ast.parse(
            "def b():\n    pass\n\ndef a():\n    pass\n"
        )
        assert [f.name for f in function_defs(tree)] == ["b", "a"]

    def test_contains_await_ignores_nested_defs(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                async def outer():
                    async def inner():
                        await thing()
                    return inner
                """
            )
        )
        outer = function_defs(tree)[0]
        assert outer.name == "outer"
        assert not contains_await(outer)

    def test_walk_in_function_stops_at_class_defs(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def f():
                    class C:
                        hidden = 1
                    visible = 2
                """
            )
        )
        func = function_defs(tree)[0]
        names = {
            n.id for n in walk_in_function(func) if isinstance(n, ast.Name)
        }
        assert "visible" in names
        assert "hidden" not in names
