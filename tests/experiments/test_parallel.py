"""The parallel sweep runner must reproduce the serial results exactly."""

import pytest

from repro.config import SimulationConfig
from repro.core.policies import MaxAvailPolicy
from repro.experiments.ablations import POLICY_VARIANTS, run_policy_ablation
from repro.experiments.common import ExperimentSettings
from repro.experiments.figure7 import run_figure7
from repro.experiments.parallel import (
    SimTask,
    SweepCellError,
    default_jobs,
    run_sims,
)
from repro.sim.connection_sim import ConnectionSimConfig


class ExplodingPolicy(MaxAvailPolicy):
    """Module-level (hence picklable) policy that fails on first use."""

    def select(self, ctx):
        raise RuntimeError("boom in worker")


def tiny_settings():
    return ExperimentSettings(
        n_requests=25, warmup_requests=5, seeds=(11,), calibrate_load=False
    )


def tiny_config(seed=11, utilization=0.3, beta=0.5):
    return ConnectionSimConfig(
        utilization=utilization,
        beta=beta,
        seed=seed,
        n_requests=25,
        warmup_requests=5,
        simulation=SimulationConfig(load_scale=0.15),
    )


def series_key(series):
    return [(s.label, s.xs, s.ys, s.spreads) for s in series]


class TestRunSims:
    def test_results_in_task_order(self):
        tasks = [SimTask(tiny_config(seed=s)) for s in (1, 2, 3)]
        serial = run_sims(tasks, jobs=1)
        parallel = run_sims(tasks, jobs=2)
        assert [r.config.seed for r in parallel] == [1, 2, 3]
        assert [r.admission_probability for r in parallel] == [
            r.admission_probability for r in serial
        ]

    def test_single_task_runs_inline(self):
        (res,) = run_sims([SimTask(tiny_config())], jobs=8)
        assert 0.0 <= res.admission_probability <= 1.0

    def test_unpicklable_task_falls_back_to_serial(self):
        from repro.core.policies import MaxAvailPolicy

        class LocalPolicy(MaxAvailPolicy):
            # A class defined inside a function cannot be pickled, so the
            # runner must quietly run these tasks in-process instead.
            pass

        tasks = [
            SimTask(tiny_config(seed=1)),
            SimTask(tiny_config(seed=2), policy=LocalPolicy()),
        ]
        results = run_sims(tasks, jobs=2)
        assert len(results) == 2
        assert all(0.0 <= r.admission_probability <= 1.0 for r in results)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_worker_crash_names_the_failed_cell(self):
        tasks = [
            SimTask(tiny_config(seed=1)),
            SimTask(tiny_config(seed=2), policy=ExplodingPolicy()),
            SimTask(tiny_config(seed=3)),
        ]
        with pytest.raises(SweepCellError) as excinfo:
            run_sims(tasks, jobs=2)
        err = excinfo.value
        assert err.index == 1
        assert "seed=2" in err.cell
        assert err.exc_name == "RuntimeError"
        # The worker's formatted traceback travels back to the parent.
        assert "boom in worker" in str(err)
        assert "Traceback" in str(err)

    def test_worker_crash_in_serial_mode_raises_directly(self):
        tasks = [SimTask(tiny_config(seed=2), policy=ExplodingPolicy())]
        with pytest.raises(RuntimeError, match="boom in worker"):
            run_sims(tasks, jobs=1)


class TestSweepEquivalence:
    def test_figure7_parallel_matches_serial(self):
        settings = tiny_settings()
        serial = run_figure7(
            settings, utilizations=(0.3,), betas=(0.0, 1.0), jobs=1
        )
        parallel = run_figure7(
            settings, utilizations=(0.3,), betas=(0.0, 1.0), jobs=2
        )
        assert series_key(serial) == series_key(parallel)

    def test_policy_ablation_with_closure_policy_parallel(self):
        """The fddi-local variant builds its policy from a lambda; the
        instance (not the lambda) must cross into the workers."""
        settings = tiny_settings()
        variants = [v for v in POLICY_VARIANTS if v.name in ("beta=0.5", "fddi-local x3")]
        serial = run_policy_ablation(
            settings, utilizations=(0.3,), variants=variants, jobs=1
        )
        parallel = run_policy_ablation(
            settings, utilizations=(0.3,), variants=variants, jobs=2
        )
        assert series_key(serial) == series_key(parallel)
