"""Tests for the experiment harness (fast, single-seed runs)."""

import pytest

from repro.experiments.common import (
    ExperimentSettings,
    SeriesResult,
    format_table,
    mean_and_spread,
)
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.validation import run_validation
from repro.experiments.ablations import (
    PolicyVariant,
    run_policy_ablation,
    run_workload_ablation,
)
from repro.config import CACConfig


TINY = ExperimentSettings(n_requests=30, warmup_requests=3, seeds=(1,))


class TestCommon:
    def test_quick_settings(self):
        q = ExperimentSettings.quick()
        assert q.n_requests < ExperimentSettings().n_requests

    def test_mean_and_spread(self):
        m, s = mean_and_spread([1.0, 3.0])
        assert m == 2.0 and s == 1.0

    def test_mean_and_spread_empty(self):
        import math

        m, s = mean_and_spread([])
        assert math.isnan(m) and s == 0.0

    def test_format_table_alignment(self):
        s1 = SeriesResult("a")
        s1.add(0.1, 0.5)
        s2 = SeriesResult("b")
        s2.add(0.1, 0.25, 0.05)
        table = format_table("x", [s1, s2])
        assert "a" in table and "b" in table
        assert "0.500" in table and "±0.050" in table

    def test_calibration_toggle(self):
        on = ExperimentSettings(calibrate_load=True).simulation_config()
        off = ExperimentSettings(calibrate_load=False).simulation_config()
        assert on.load_scale < off.load_scale == 1.0


class TestFigureRuns:
    def test_figure7_shape(self):
        series = run_figure7(TINY, utilizations=(0.3,), betas=(0.0, 1.0))
        assert len(series) == 1
        assert series[0].xs == [0.0, 1.0]
        assert all(0.0 <= y <= 1.0 for y in series[0].ys)

    def test_figure8_shape(self):
        series = run_figure8(TINY, betas=(0.5,), utilizations=(0.1, 0.9))
        assert len(series) == 1
        assert series[0].label == "beta=0.5"

    def test_figure7_main_prints(self):
        out = __import__(
            "repro.experiments.figure7", fromlist=["main"]
        ).main(TINY)
        assert "Figure 7" in out and "best beta" in out


class TestValidationRun:
    def test_rows_and_domination(self):
        rows = run_validation(duration=0.2)
        assert len(rows) == 6
        assert all(r.holds for r in rows)

    def test_main_output(self):
        from repro.experiments.validation import main

        out = main()
        assert "All bounds dominate observed delays: True" in out


class TestAblations:
    def test_policy_ablation_runs(self):
        variants = (
            PolicyVariant("beta=0.5", cac_config=CACConfig(beta=0.5)),
            PolicyVariant("beta=0", cac_config=CACConfig(beta=0.0)),
        )
        series = run_policy_ablation(TINY, utilizations=(0.3,), variants=variants)
        assert [s.label for s in series] == ["beta=0.5", "beta=0"]

    def test_workload_ablation_runs(self):
        results = run_workload_ablation(
            TINY, utilization=0.3, deadline_scales=(1.0,), burst_ratios=(2.0,)
        )
        assert set(results) == {"deadline", "burstiness"}
        assert len(results["deadline"][0].ys) == 1


class TestCLI:
    def test_cli_validation(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["validation"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "E3" in captured.out
