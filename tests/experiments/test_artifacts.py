"""Tests for CSV experiment artifacts."""

import os

import pytest

from repro.experiments.artifacts import read_series_csv, write_series_csv
from repro.experiments.common import SeriesResult


def sample_series():
    a = SeriesResult("U=0.3")
    a.add(0.0, 0.9, 0.01)
    a.add(0.5, 0.95, 0.02)
    b = SeriesResult("U=0.9")
    b.add(0.0, 0.4, 0.0)
    b.add(0.5, 0.55, 0.03)
    b.add(1.0, 0.45, 0.01)
    return [a, b]


class TestCsvRoundTrip:
    def test_write_creates_file(self, tmp_path):
        path = write_series_csv(str(tmp_path / "fig.csv"), "beta", sample_series())
        assert os.path.exists(path)

    def test_round_trip_preserves_values(self, tmp_path):
        path = write_series_csv(str(tmp_path / "fig.csv"), "beta", sample_series())
        x_label, series = read_series_csv(path)
        assert x_label == "beta"
        assert [s.label for s in series] == ["U=0.3", "U=0.9"]
        b = series[1]
        assert b.xs == [0.0, 0.5, 1.0]
        assert b.ys[1] == pytest.approx(0.55)
        assert b.spreads[2] == pytest.approx(0.01)

    def test_missing_points_skipped(self, tmp_path):
        # U=0.3 has no x=1.0 point; reading back must not invent one.
        path = write_series_csv(str(tmp_path / "fig.csv"), "beta", sample_series())
        _, series = read_series_csv(path)
        assert 1.0 not in series[0].xs

    def test_nested_directory_created(self, tmp_path):
        path = write_series_csv(
            str(tmp_path / "deep" / "dir" / "fig.csv"), "x", sample_series()
        )
        assert os.path.exists(path)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("")
        with pytest.raises(ValueError):
            read_series_csv(str(p))


class TestCliCsvOption:
    def test_figure_main_writes_csv(self, tmp_path):
        from repro.experiments.common import ExperimentSettings
        from repro.experiments.figure8 import main

        tiny = ExperimentSettings(n_requests=15, warmup_requests=2, seeds=(1,))
        out = main(tiny, csv_dir=str(tmp_path))
        assert "figure8.csv" in out
        assert os.path.exists(tmp_path / "figure8.csv")
