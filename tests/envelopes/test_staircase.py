"""Unit tests for staircase constructors and Theorem-2 quantization."""

import math

import numpy as np
import pytest

from repro.envelopes.curve import Curve
from repro.envelopes.staircase import (
    ceiling_quantize,
    periodic_burst_staircase,
    timed_token_staircase,
)
from repro.errors import CurveError


def true_timed_token(t, h, ttrt, bw):
    return max(0.0, (math.floor(t / ttrt) - 1) * h * bw)


class TestTimedTokenStaircase:
    def test_matches_formula_within_horizon(self):
        h, ttrt, bw = 0.002, 0.01, 100e6
        s = timed_token_staircase(h, ttrt, bw, n_steps=32)
        for t in np.linspace(0.0, 0.3, 400):
            assert s(float(t)) == pytest.approx(
                true_timed_token(t, h, ttrt, bw), abs=1e-3
            )

    def test_zero_until_two_rotations(self):
        s = timed_token_staircase(0.001, 0.008, 100e6)
        assert s(0.0) == 0.0
        assert s(0.0159) == 0.0
        assert s(0.016) == pytest.approx(0.001 * 100e6)

    def test_tail_never_exceeds_true_staircase(self):
        h, ttrt, bw = 0.001, 0.008, 100e6
        s = timed_token_staircase(h, ttrt, bw, n_steps=8)
        for t in np.linspace(0.0, 1.0, 2000):
            assert s(float(t)) <= true_timed_token(t, h, ttrt, bw) + 1e-3

    def test_zero_bandwidth_gives_zero_curve(self):
        s = timed_token_staircase(0.0, 0.008, 100e6)
        assert s(10.0) == 0.0

    def test_rejects_bad_params(self):
        with pytest.raises(CurveError):
            timed_token_staircase(0.001, -1.0, 100e6)
        with pytest.raises(CurveError):
            timed_token_staircase(-0.001, 1.0, 100e6)

    def test_long_term_rate(self):
        h, ttrt, bw = 0.002, 0.01, 100e6
        s = timed_token_staircase(h, ttrt, bw, n_steps=16)
        assert s.final_slope == pytest.approx(h * bw / ttrt)


class TestPeriodicBurstStaircase:
    def test_instantaneous_bursts(self):
        a = periodic_burst_staircase(100.0, 1.0, n_periods=10)
        assert a(0.0) == 100.0   # burst lands immediately
        assert a(0.99) == 100.0
        assert a(1.0) == 200.0
        assert a(2.5) == 300.0

    def test_tail_dominates_true_staircase(self):
        a = periodic_burst_staircase(100.0, 1.0, n_periods=5)
        for t in np.linspace(0, 50, 1000):
            true = 100.0 * (math.floor(t / 1.0) + 1)
            assert a(float(t)) >= true - 1e-6

    def test_zero_burst(self):
        a = periodic_burst_staircase(0.0, 1.0)
        assert a(100.0) == 0.0

    def test_finite_peak_rate_ramps(self):
        # 100 bits per 1s period at peak 1000 bits/s: ramp lasts 0.1s.
        a = periodic_burst_staircase(100.0, 1.0, n_periods=10, peak_rate=1000.0)
        assert a(0.0) == pytest.approx(0.0)
        assert a(0.05) == pytest.approx(50.0)
        assert a(0.1) == pytest.approx(100.0)
        assert a(0.5) == pytest.approx(100.0)
        assert a(1.05) == pytest.approx(150.0)

    def test_peak_rate_slower_than_average(self):
        # Peak rate can't deliver C within P: degenerate constant-rate source.
        a = periodic_burst_staircase(100.0, 1.0, peak_rate=50.0)
        assert a(2.0) == pytest.approx(100.0)

    def test_long_term_rate(self):
        a = periodic_burst_staircase(100.0, 0.5, n_periods=8)
        assert a.final_slope == pytest.approx(200.0)

    def test_rejects_bad_period(self):
        with pytest.raises(CurveError):
            periodic_burst_staircase(1.0, 0.0)


class TestCeilingQuantize:
    def test_constant_input(self):
        # 2.5 frames -> 3 frames worth of cells.
        f = Curve.constant(2.5)
        g = ceiling_quantize(f, quantum_in=1.0, quantum_out=10.0, t_max=10.0)
        assert g(0.0) == pytest.approx(30.0)

    def test_exact_multiples_not_rounded_up(self):
        f = Curve.constant(3.0)
        g = ceiling_quantize(f, 1.0, 10.0, t_max=5.0)
        assert g(0.0) == pytest.approx(30.0)

    def test_staircase_structure(self):
        # Linear input at rate 1 with quantum 1: steps at 0+,1,2,...
        f = Curve.affine(0.0, 1.0)
        g = ceiling_quantize(f, 1.0, 1.0, t_max=5.0)
        assert g(0.5) == pytest.approx(1.0)
        assert g(1.5) == pytest.approx(2.0)
        assert g(4.5) == pytest.approx(5.0)

    def test_dominates_true_quantization(self):
        f = Curve.affine(2.0, 3.0)
        g = ceiling_quantize(f, 4.0, 5.0, t_max=20.0)
        for t in np.linspace(0, 50, 500):
            true = math.ceil(f(float(t)) / 4.0 - 1e-12) * 5.0
            assert g(float(t)) >= true - 1e-6

    def test_fallback_linear_bound_when_too_many_steps(self):
        f = Curve.affine(0.0, 1e9)
        g = ceiling_quantize(f, 1.0, 1.0, t_max=10.0, max_steps=16)
        # Linear bound: f + 1 quantum.
        assert g(1.0) == pytest.approx(1e9 + 1.0)

    def test_rejects_bad_quanta(self):
        with pytest.raises(CurveError):
            ceiling_quantize(Curve.zero(), 0.0, 1.0, 1.0)
        with pytest.raises(CurveError):
            ceiling_quantize(Curve.zero(), 1.0, -1.0, 1.0)

    def test_zero_input_maps_to_zero(self):
        g = ceiling_quantize(Curve.zero(), 1.0, 1.0, t_max=5.0)
        assert g(0.0) == pytest.approx(0.0)
