"""Unit tests for deviation / deconvolution operations."""

import math

import pytest

from repro.envelopes.curve import Curve
from repro.envelopes.operations import (
    busy_interval,
    deconvolve,
    horizontal_deviation,
    vertical_deviation,
)


class TestBusyInterval:
    def test_no_backlog_returns_zero(self):
        arrival = Curve.affine(0.0, 1.0)
        service = Curve.affine(0.0, 2.0)
        assert busy_interval(arrival, service) == 0.0

    def test_burst_drains_linearly(self):
        # 10 bits at t=0, service 2 bits/s: clears at t=5.
        arrival = Curve.constant(10.0)
        service = Curve.affine(0.0, 2.0)
        assert busy_interval(arrival, service) == pytest.approx(5.0)

    def test_unstable_returns_inf(self):
        arrival = Curve.affine(5.0, 3.0)
        service = Curve.affine(0.0, 2.0)
        assert math.isinf(busy_interval(arrival, service))

    def test_staircase_service(self):
        # Burst of 10; service steps of 4 at t=1,2,3...
        arrival = Curve.constant(10.0)
        service = Curve(
            [0.0, 1.0, 2.0, 3.0], [0.0, 4.0, 8.0, 12.0], [0.0, 0.0, 0.0, 4.0]
        )
        # Caught up at t=3 (12 >= 10)... actually at the t=3 jump.
        assert busy_interval(arrival, service) == pytest.approx(3.0)

    def test_crossing_inside_segment(self):
        # Arrival: burst 10 then rate 1; service rate 3 -> crossing at t=5.
        arrival = Curve.affine(10.0, 1.0)
        service = Curve.affine(0.0, 3.0)
        assert busy_interval(arrival, service) == pytest.approx(5.0)

    def test_equal_rates_with_backlog_is_inf(self):
        arrival = Curve.affine(1.0, 2.0)
        service = Curve.affine(0.0, 2.0)
        assert math.isinf(busy_interval(arrival, service))


class TestVerticalDeviation:
    def test_simple_burst(self):
        arrival = Curve.constant(10.0)
        service = Curve.affine(0.0, 2.0)
        assert vertical_deviation(arrival, service) == pytest.approx(10.0)

    def test_zero_when_service_dominates(self):
        arrival = Curve.affine(0.0, 1.0)
        service = Curve.affine(5.0, 2.0)
        assert vertical_deviation(arrival, service) == 0.0

    def test_unstable_is_inf(self):
        arrival = Curve.affine(0.0, 3.0)
        service = Curve.affine(0.0, 2.0)
        assert math.isinf(vertical_deviation(arrival, service))

    def test_supremum_before_service_jump(self):
        # Arrival climbs at rate 2; service jumps by 10 every 2s starting t=2.
        arrival = Curve.affine(0.0, 2.0)
        service = Curve([0.0, 2.0, 4.0], [0.0, 10.0, 20.0], [0.0, 0.0, 5.0])
        # Just before t=2 the backlog is 4; just before t=4, 8-10<0...
        assert vertical_deviation(arrival, service, t_max=4.0) == pytest.approx(4.0)

    def test_bounded_horizon(self):
        arrival = Curve.affine(0.0, 3.0)
        service = Curve.affine(0.0, 2.0)
        assert vertical_deviation(arrival, service, t_max=10.0) == pytest.approx(10.0)


class TestHorizontalDeviation:
    def test_burst_over_link(self):
        # 10-bit burst, 2 bit/s link: last bit leaves after 5s.
        arrival = Curve.constant(10.0)
        service = Curve.affine(0.0, 2.0)
        assert horizontal_deviation(arrival, service) == pytest.approx(5.0)

    def test_token_bucket_through_rate_latency(self):
        # Classic result: delay = latency + burst / rate.
        arrival = Curve.affine(4.0, 1.0)
        service = Curve.rate_latency(rate=2.0, latency=3.0)
        assert horizontal_deviation(arrival, service) == pytest.approx(3.0 + 4.0 / 2.0)

    def test_zero_delay_when_service_instant(self):
        arrival = Curve.affine(0.0, 1.0)
        service = Curve.affine(100.0, 10.0)
        assert horizontal_deviation(arrival, service) == 0.0

    def test_unstable_is_inf(self):
        arrival = Curve.affine(0.0, 3.0)
        service = Curve.affine(0.0, 2.0)
        assert math.isinf(horizontal_deviation(arrival, service))

    def test_service_plateau_below_arrival_is_inf(self):
        arrival = Curve.constant(10.0)
        service = Curve.constant(5.0)  # never reaches 10
        assert math.isinf(horizontal_deviation(arrival, service))

    def test_staircase_service_delay(self):
        # One 10-bit burst at t=0; token staircase gives 6 bits at t=2, 12 at t=4.
        arrival = Curve.constant(10.0)
        service = Curve([0.0, 2.0, 4.0], [0.0, 6.0, 12.0], [0.0, 0.0, 3.0])
        assert horizontal_deviation(arrival, service) == pytest.approx(4.0)

    def test_continuous_arrival_across_plateau(self):
        # Arrival rate 1; staircase service: 5 at t=1, 10 at t=6 ...
        # A bit arriving just after t=5 (cumulative just over 5) waits until
        # t=6: delay just under 1.0 but the sup is ~1.0 (non-attained).
        arrival = Curve.affine(0.0, 1.0)
        service = Curve([0.0, 1.0, 6.0], [0.0, 5.0, 10.0], [0.0, 0.0, 1.0])
        d = horizontal_deviation(arrival, service)
        assert d == pytest.approx(1.0, abs=1e-6)


class TestDeconvolve:
    def test_infinite_busy_interval_rejected(self):
        a = Curve.affine(0.0, 2.0)
        s = Curve.affine(0.0, 1.0)
        with pytest.raises(ValueError):
            deconvolve(a, s, math.inf)

    def test_burst_through_link(self):
        # Burst 10 through a 2 bit/s link; busy interval 5.
        arrival = Curve.constant(10.0)
        service = Curve.affine(0.0, 2.0)
        out = deconvolve(arrival, service, t_limit=5.0)
        # Output in any window of length I is at most min(10, ...) and at
        # I=0 the whole backlog could already be in flight: O(0) >= A(0) - 0.
        assert out(0.0) >= 10.0 - 1e-9
        assert out.final_slope == pytest.approx(0.0)

    def test_output_dominates_necessary_lower_bound(self):
        # The output envelope must be at least A(I) - backlog-cleared bound;
        # in particular O(I) >= A(I) - A(0) shape-wise.  Check dominance over
        # a few sampled points against a brute-force sup.
        arrival = Curve.from_points([(0.0, 4.0), (2.0, 6.0)], final_slope=1.0)
        service = Curve.affine(0.0, 3.0)
        b = busy_interval(arrival, service)
        out = deconvolve(arrival, service, t_limit=b)
        import numpy as np

        for big_i in np.linspace(0.0, 8.0, 33):
            ts = np.linspace(0.0, b, 200)
            brute = max(arrival(t + big_i) - service(t) for t in ts)
            assert out(big_i) >= brute - 1e-6

    def test_smoothing_by_zero_busy_interval(self):
        # t_limit=0 reduces to O(I) = A(I).
        arrival = Curve.affine(5.0, 1.0)
        service = Curve.affine(0.0, 100.0)
        out = deconvolve(arrival, service, t_limit=0.0)
        for t in [0.0, 1.0, 3.0]:
            assert out(t) == pytest.approx(arrival(t))

    def test_monotone_nondecreasing(self):
        arrival = Curve.from_points([(0.0, 2.0), (1.0, 2.0), (1.5, 5.0)], final_slope=0.5)
        service = Curve.affine(0.0, 2.0)
        b = busy_interval(arrival, service)
        out = deconvolve(arrival, service, t_limit=b)
        import numpy as np

        grid = np.linspace(0, 10, 101)
        vals = out(grid)
        assert all(vals[i + 1] >= vals[i] - 1e-9 for i in range(len(vals) - 1))
