"""Vectorized kernels vs. the pure-Python reference oracle.

Every hot kernel rewritten as a numpy array operation is checked here
against the transparent per-segment implementation in
:mod:`repro.envelopes.reference`, on randomized curves, within
``MONOTONE_RTOL``.  A second group pins the conservativeness contract of
``Curve.coarsen`` in both directions, and a third the symmetric-tolerance
semantics of ``Curve.dominates``.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envelopes import reference as ref
from repro.envelopes.curve import MONOTONE_RTOL, Curve, sum_curves
from repro.envelopes.operations import (
    busy_interval,
    deconvolve,
    horizontal_deviation,
    vertical_deviation,
)

RTOL = MONOTONE_RTOL


@st.composite
def staircase_curves(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    gaps = draw(
        st.lists(st.floats(0.1, 5.0), min_size=n - 1, max_size=n - 1)
        if n > 1
        else st.just([])
    )
    xs = [0.0]
    for g in gaps:
        xs.append(xs[-1] + g)
    jumps = draw(st.lists(st.floats(0.0, 10.0), min_size=n, max_size=n))
    ys = []
    acc = 0.0
    for j in jumps:
        acc += j
        ys.append(acc)
    slopes = [0.0] * (n - 1) + [draw(st.floats(0.0, 5.0))]
    return Curve(xs, ys, slopes)


@st.composite
def pl_curves(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    gaps = draw(st.lists(st.floats(0.1, 5.0), min_size=n, max_size=n))
    slopes = draw(st.lists(st.floats(0.0, 8.0), min_size=n, max_size=n))
    points = [(0.0, draw(st.floats(0.0, 5.0)))]
    for i in range(n - 1):
        x, y = points[-1]
        points.append((x + gaps[i], y + slopes[i] * gaps[i]))
    return Curve.from_points(points, final_slope=slopes[-1])


curves = st.one_of(staircase_curves(), pl_curves())


def _probe_grid(*cs: Curve) -> np.ndarray:
    """Breakpoints of all curves plus segment midpoints and a tail point."""
    xs = np.unique(np.concatenate([c.xs for c in cs]))
    mids = (xs[:-1] + xs[1:]) / 2.0 if len(xs) > 1 else np.empty(0)
    return np.unique(np.concatenate([xs, mids, [float(xs[-1]) + 3.0]]))


def _assert_curves_agree(a: Curve, b: Curve, *, context: str) -> None:
    for t in _probe_grid(a, b):
        va, vb = a(float(t)), b(float(t))
        assert abs(va - vb) <= RTOL * max(1.0, abs(va), abs(vb)), (
            f"{context}: mismatch at t={t}: {va} vs {vb}"
        )


class TestKernelsMatchOracle:
    @given(curves)
    @settings(max_examples=50, deadline=None)
    def test_eval_and_left_limit(self, c):
        for t in _probe_grid(c):
            t = float(t)
            assert abs(c(t) - ref.ref_eval(c, t)) <= RTOL * max(1.0, abs(c(t)))
            ll = c.left_limit(t)
            assert abs(ll - ref.ref_left_limit(c, t)) <= RTOL * max(1.0, abs(ll))

    @given(curves, curves)
    @settings(max_examples=50, deadline=None)
    def test_add(self, a, b):
        _assert_curves_agree(a + b, ref.ref_add(a, b), context="add")

    @given(st.lists(curves, min_size=0, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_sum_curves(self, cs):
        _assert_curves_agree(sum_curves(cs), ref.ref_sum(cs), context="sum")

    @given(curves, curves)
    @settings(max_examples=50, deadline=None)
    def test_min_max(self, a, b):
        _assert_curves_agree(a.minimum(b), ref.ref_minimum(a, b), context="min")
        _assert_curves_agree(a.maximum(b), ref.ref_maximum(a, b), context="max")

    @given(curves, st.floats(0.0, 5.0))
    @settings(max_examples=50, deadline=None)
    def test_shifts(self, c, d):
        _assert_curves_agree(
            c.shift_right(d), ref.ref_shift_right(c, d), context="shift_right"
        )
        _assert_curves_agree(
            c.shift_left(d), ref.ref_shift_left(c, d), context="shift_left"
        )

    @given(curves)
    @settings(max_examples=50, deadline=None)
    def test_pseudo_inverse(self, c):
        top = c(float(c.last_breakpoint) + 5.0)
        for y in np.linspace(0.0, top + 1.0, 17):
            got = c.pseudo_inverse(float(y))
            want = ref.ref_pseudo_inverse(c, float(y))
            if math.isinf(want):
                assert math.isinf(got)
            else:
                assert abs(got - want) <= RTOL * max(1.0, abs(want))

    @given(curves)
    @settings(max_examples=50, deadline=None)
    def test_pseudo_inverse_many_matches_scalar(self, c):
        top = c(float(c.last_breakpoint) + 5.0)
        ys = np.linspace(0.0, top + 1.0, 17)
        many = c.pseudo_inverse_many(ys)
        for y, got in zip(ys, many):
            assert float(got) == c.pseudo_inverse(float(y))


class TestDeviationsMatchOracle:
    @given(curves, curves)
    @settings(max_examples=40, deadline=None)
    def test_busy_interval(self, a, s):
        got = busy_interval(a, s)
        want = ref.ref_busy_interval(a, s)
        if math.isinf(want):
            assert math.isinf(got)
        else:
            assert abs(got - want) <= RTOL * max(1.0, abs(want))

    @given(curves, curves)
    @settings(max_examples=40, deadline=None)
    def test_vertical_deviation(self, a, s):
        horizon = float(max(a.last_breakpoint, s.last_breakpoint)) + 5.0
        got = vertical_deviation(a, s, t_max=horizon)
        want = ref.ref_vertical_deviation(a, s, t_max=horizon)
        assert abs(got - want) <= RTOL * max(1.0, abs(want))

    @given(curves, curves)
    @settings(max_examples=40, deadline=None)
    def test_horizontal_deviation(self, a, s):
        got = horizontal_deviation(a, s)
        want = ref.ref_horizontal_deviation(a, s)
        if math.isinf(want):
            assert math.isinf(got)
        else:
            assert abs(got - want) <= RTOL * max(1.0, abs(want))

    @given(curves, curves)
    @settings(max_examples=25, deadline=None)
    def test_deconvolve(self, a, s):
        b = busy_interval(a, s)
        if math.isinf(b):
            return
        got = deconvolve(a, s, t_limit=b)
        want = ref.ref_deconvolve(a, s, t_limit=b)
        _assert_curves_agree(got, want, context="deconvolve")


class TestCoarsenConservative:
    @given(curves, st.integers(8, 16))
    @settings(max_examples=50, deadline=None)
    def test_upper_dominates_input(self, c, n):
        coarse = c.coarsen(n, direction="upper")
        assert len(coarse.xs) <= n
        assert coarse.dominates(c, tol=1e-7)
        # Explicit pointwise check at every merged breakpoint.
        for x in np.unique(np.concatenate([c.xs, coarse.xs])):
            x = float(x)
            assert coarse(x) >= c(x) - 1e-7 * max(1.0, abs(c(x)))

    @given(curves, st.integers(8, 16))
    @settings(max_examples=50, deadline=None)
    def test_lower_is_dominated_by_input(self, c, n):
        coarse = c.coarsen(n, direction="lower")
        assert len(coarse.xs) <= n
        assert c.dominates(coarse, tol=1e-7)
        for x in np.unique(np.concatenate([c.xs, coarse.xs])):
            x = float(x)
            assert coarse(x) <= c(x) + 1e-7 * max(1.0, abs(c(x)))

    @given(curves, st.integers(8, 16))
    @settings(max_examples=30, deadline=None)
    def test_both_directions_preserve_final_slope(self, c, n):
        # Stability checks downstream read final_slope; coarsening must not
        # change the long-term rate in either direction.
        for direction in ("upper", "lower"):
            coarse = c.coarsen(n, direction=direction)
            assert coarse.final_slope == c.final_slope


class TestDominatesSymmetricTolerance:
    """Regression tests for the RL003-consistent symmetric scale in
    ``Curve.dominates`` (near-equal curves at segment boundaries)."""

    def test_near_equal_large_curves_dominate_each_other(self):
        # Two staircases that differ by 5e-7 relative at a boundary of
        # magnitude 2e6 — inside the default 1e-6 tolerance, so domination
        # must hold in BOTH directions (the check is symmetric in scale).
        a = Curve([0.0, 1.0], [2e6, 4e6], [0.0, 0.0])
        b = Curve([0.0, 1.0], [2e6 - 1.0, 4e6 - 2.0], [0.0, 0.0])
        assert a.dominates(b)
        assert b.dominates(a)
        assert a.equals(b, tol=1e-6)

    def test_clear_domination_is_one_sided(self):
        a = Curve([0.0], [10.0], [1.0])
        b = Curve([0.0], [5.0], [1.0])
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_boundary_jump_within_tolerance(self):
        # b jumps a hair *later* than a; at the shared boundary the left
        # limits differ by a relative 1e-9 — far below tol, so the curves
        # still count as mutually dominating.
        a = Curve([0.0, 1.0], [0.0, 1e9], [0.0, 0.0])
        b = Curve([0.0, 1.0], [0.0, 1e9 * (1 - 1e-9)], [0.0, 0.0])
        assert a.dominates(b)
        assert b.dominates(a)

    def test_violation_beyond_tolerance_detected(self):
        a = Curve([0.0, 1.0], [0.0, 1e9], [0.0, 0.0])
        c = Curve([0.0, 1.0], [0.0, 1e9 * (1 - 1e-4)], [0.0, 0.0])
        assert a.dominates(c)
        assert not c.dominates(a)
