"""Unit tests for the piecewise-linear Curve class."""

import math

import numpy as np
import pytest

from repro.envelopes.curve import Curve, sum_curves
from repro.errors import CurveError


class TestConstruction:
    def test_zero_curve_is_zero_everywhere(self):
        z = Curve.zero()
        assert z(0.0) == 0.0
        assert z(123.4) == 0.0

    def test_constant_curve(self):
        c = Curve.constant(5.0)
        assert c(0.0) == 5.0
        assert c(100.0) == 5.0

    def test_constant_rejects_negative(self):
        with pytest.raises(CurveError):
            Curve.constant(-1.0)

    def test_affine_curve(self):
        a = Curve.affine(2.0, 3.0)
        assert a(0.0) == 2.0
        assert a(1.0) == 5.0
        assert a(10.0) == 32.0

    def test_affine_rejects_negative_rate(self):
        with pytest.raises(CurveError):
            Curve.affine(0.0, -1.0)

    def test_rate_latency(self):
        s = Curve.rate_latency(rate=10.0, latency=2.0)
        assert s(0.0) == 0.0
        assert s(2.0) == 0.0
        assert s(3.0) == pytest.approx(10.0)

    def test_rate_latency_zero_latency(self):
        s = Curve.rate_latency(rate=4.0, latency=0.0)
        assert s(1.0) == 4.0

    def test_from_points(self):
        c = Curve.from_points([(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)], final_slope=1.0)
        assert c(0.5) == pytest.approx(1.0)
        assert c(2.0) == pytest.approx(2.0)
        assert c(4.0) == pytest.approx(3.0)

    def test_from_points_rejects_unsorted(self):
        with pytest.raises(CurveError):
            Curve.from_points([(0.0, 0.0), (2.0, 1.0), (1.0, 2.0)], final_slope=0.0)

    def test_first_breakpoint_must_be_zero(self):
        with pytest.raises(CurveError):
            Curve([1.0], [0.0], [0.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CurveError):
            Curve([0.0, 1.0], [0.0], [0.0, 0.0])

    def test_decreasing_jump_rejected(self):
        with pytest.raises(CurveError):
            Curve([0.0, 1.0], [5.0, 1.0], [0.0, 0.0])

    def test_negative_slope_rejected(self):
        with pytest.raises(CurveError):
            Curve([0.0], [0.0], [-1.0])


class TestEvaluation:
    def test_right_continuity_at_jump(self):
        # Jump from 0 to 10 at t=1.
        c = Curve([0.0, 1.0], [0.0, 10.0], [0.0, 0.0])
        assert c(1.0) == 10.0
        assert c.left_limit(1.0) == 0.0

    def test_negative_time_is_zero(self):
        c = Curve.constant(7.0)
        assert c(-1.0) == 0.0

    def test_vectorized_evaluation(self):
        c = Curve.affine(1.0, 2.0)
        vals = c(np.array([0.0, 1.0, 2.0]))
        assert np.allclose(vals, [1.0, 3.0, 5.0])

    def test_left_limit_within_segment(self):
        c = Curve.affine(0.0, 2.0)
        assert c.left_limit(3.0) == pytest.approx(6.0)

    def test_final_slope(self):
        c = Curve.from_points([(0.0, 0.0), (1.0, 1.0)], final_slope=9.0)
        assert c.final_slope == 9.0

    def test_pseudo_inverse_basic(self):
        c = Curve.affine(0.0, 2.0)
        assert c.pseudo_inverse(4.0) == pytest.approx(2.0)

    def test_pseudo_inverse_with_jump(self):
        c = Curve([0.0, 1.0], [0.0, 10.0], [0.0, 0.0])
        # Values in (0, 10] are first reached exactly at the jump t=1.
        assert c.pseudo_inverse(5.0) == pytest.approx(1.0)
        assert c.pseudo_inverse(10.0) == pytest.approx(1.0)

    def test_pseudo_inverse_unreachable(self):
        c = Curve.constant(3.0)
        assert math.isinf(c.pseudo_inverse(4.0))

    def test_pseudo_inverse_at_or_below_start(self):
        c = Curve.constant(3.0)
        assert c.pseudo_inverse(0.0) == 0.0
        assert c.pseudo_inverse(3.0) == 0.0

    def test_pseudo_inverse_flat_then_rising(self):
        c = Curve.from_points([(0.0, 0.0), (2.0, 0.0)], final_slope=1.0)
        assert c.pseudo_inverse(3.0) == pytest.approx(5.0)


class TestArithmetic:
    def test_addition_of_curves(self):
        a = Curve.affine(1.0, 1.0)
        b = Curve.affine(2.0, 3.0)
        c = a + b
        for t in [0.0, 0.7, 5.0]:
            assert c(t) == pytest.approx(a(t) + b(t))

    def test_addition_merges_breakpoints(self):
        a = Curve.from_points([(0.0, 0.0), (1.0, 1.0)], final_slope=0.0)
        b = Curve.from_points([(0.0, 0.0), (2.0, 4.0)], final_slope=0.0)
        c = a + b
        assert c(1.5) == pytest.approx(a(1.5) + b(1.5))

    def test_add_scalar(self):
        a = Curve.affine(0.0, 1.0)
        c = a + 5.0
        assert c(2.0) == pytest.approx(7.0)

    def test_scale(self):
        a = Curve.affine(1.0, 2.0)
        c = a * 3.0
        assert c(2.0) == pytest.approx(15.0)

    def test_scale_negative_rejected(self):
        with pytest.raises(CurveError):
            Curve.affine(1.0, 2.0) * -1.0

    def test_sum_curves_empty(self):
        z = sum_curves([])
        assert z(10.0) == 0.0

    def test_sum_curves_many(self):
        curves = [Curve.affine(i, i) for i in range(1, 5)]
        total = sum_curves(curves)
        assert total(2.0) == pytest.approx(sum(i + 2 * i for i in range(1, 5)))


class TestShifts:
    def test_shift_right_delays(self):
        a = Curve.affine(5.0, 1.0)
        d = a.shift_right(2.0)
        assert d(1.0) == 0.0
        assert d(2.0) == pytest.approx(5.0)
        assert d(3.0) == pytest.approx(6.0)

    def test_shift_right_zero_is_identity(self):
        a = Curve.affine(5.0, 1.0)
        assert a.shift_right(0.0) is a

    def test_shift_left_advances(self):
        a = Curve.from_points([(0.0, 0.0), (2.0, 4.0)], final_slope=0.0)
        s = a.shift_left(1.0)
        assert s(0.0) == pytest.approx(a(1.0))
        assert s(1.0) == pytest.approx(a(2.0))
        assert s(5.0) == pytest.approx(a(6.0))

    def test_shift_left_beyond_breakpoints(self):
        a = Curve.from_points([(0.0, 0.0), (1.0, 3.0)], final_slope=2.0)
        s = a.shift_left(10.0)
        assert s(0.0) == pytest.approx(a(10.0))
        assert s(4.0) == pytest.approx(a(14.0))

    def test_shift_negative_rejected(self):
        a = Curve.affine(0.0, 1.0)
        with pytest.raises(CurveError):
            a.shift_right(-1.0)
        with pytest.raises(CurveError):
            a.shift_left(-1.0)


class TestMinMax:
    def test_min_of_crossing_lines(self):
        a = Curve.affine(0.0, 2.0)   # 2t
        b = Curve.affine(3.0, 1.0)   # 3 + t
        m = a.minimum(b)
        # Cross at t=3.
        assert m(1.0) == pytest.approx(2.0)
        assert m(3.0) == pytest.approx(6.0)
        assert m(5.0) == pytest.approx(8.0)

    def test_max_of_crossing_lines(self):
        a = Curve.affine(0.0, 2.0)
        b = Curve.affine(3.0, 1.0)
        m = a.maximum(b)
        assert m(1.0) == pytest.approx(4.0)
        assert m(5.0) == pytest.approx(10.0)

    def test_min_with_staircase(self):
        stair = Curve([0.0, 1.0, 2.0], [1.0, 2.0, 3.0], [0.0, 0.0, 0.0])
        line = Curve.affine(0.0, 1.5)
        m = stair.minimum(line)
        for t in [0.0, 0.4, 0.8, 1.0, 1.5, 2.5, 4.0]:
            assert m(t) == pytest.approx(min(stair(t), line(t)))

    def test_min_is_commutative(self):
        a = Curve.from_points([(0.0, 1.0), (2.0, 3.0)], final_slope=0.5)
        b = Curve.affine(0.0, 2.0)
        assert a.minimum(b).equals(b.minimum(a))


class TestDominance:
    def test_dominates_itself(self):
        a = Curve.affine(1.0, 2.0)
        assert a.dominates(a)

    def test_strictly_above_dominates(self):
        lo = Curve.affine(0.0, 1.0)
        hi = Curve.affine(1.0, 2.0)
        assert hi.dominates(lo)
        assert not lo.dominates(hi)

    def test_final_slope_matters(self):
        lo = Curve.affine(0.0, 1.0)
        hi = Curve.affine(100.0, 0.5)
        # hi starts above but falls behind eventually.
        assert not hi.dominates(lo)

    def test_equals(self):
        a = Curve.affine(1.0, 1.0)
        b = Curve.from_points([(0.0, 1.0), (5.0, 6.0)], final_slope=1.0)
        assert a.equals(b)


class TestSimplify:
    def test_simplify_merges_collinear(self):
        c = Curve.from_points(
            [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)], final_slope=1.0
        )
        s = c.simplify()
        assert len(s.xs) == 1
        assert s(2.5) == pytest.approx(2.5)

    def test_simplify_keeps_jumps(self):
        c = Curve([0.0, 1.0], [0.0, 5.0], [0.0, 0.0])
        s = c.simplify()
        assert len(s.xs) == 2

    def test_coarsen_returns_dominating_curve(self):
        xs = [float(k) for k in range(20)]
        ys = [float(k * k) for k in range(20)]
        slopes = [0.0] * 20
        c = Curve(xs, ys, slopes)
        coarse = c.coarsen(5)
        assert len(coarse.xs) <= 5
        assert coarse.dominates(c)

    def test_coarsen_noop_when_small(self):
        c = Curve.affine(1.0, 1.0)
        assert c.coarsen(10) is c
