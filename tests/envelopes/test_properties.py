"""Property-based tests (hypothesis) for the envelope algebra.

These check structural invariants that every operation must preserve:
monotonicity, conservativeness of bounds against brute-force evaluation,
and algebraic identities.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envelopes.curve import Curve, sum_curves
from repro.envelopes.operations import (
    busy_interval,
    deconvolve,
    horizontal_deviation,
    vertical_deviation,
)
from repro.envelopes.staircase import periodic_burst_staircase, timed_token_staircase

finite_pos = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)


@st.composite
def staircase_curves(draw):
    """Random non-decreasing staircases with a final slope."""
    n = draw(st.integers(min_value=1, max_value=6))
    gaps = draw(
        st.lists(st.floats(0.1, 5.0), min_size=n - 1, max_size=n - 1)
        if n > 1
        else st.just([])
    )
    xs = [0.0]
    for g in gaps:
        xs.append(xs[-1] + g)
    jumps = draw(st.lists(st.floats(0.0, 10.0), min_size=n, max_size=n))
    ys = []
    acc = 0.0
    for j in jumps:
        acc += j
        ys.append(acc)
    final_slope = draw(st.floats(0.0, 5.0))
    slopes = [0.0] * (n - 1) + [final_slope]
    return Curve(xs, ys, slopes)


@st.composite
def pl_curves(draw):
    """Random continuous non-decreasing piecewise-linear curves."""
    n = draw(st.integers(min_value=1, max_value=6))
    gaps = draw(st.lists(st.floats(0.1, 5.0), min_size=n, max_size=n))
    slopes = draw(st.lists(st.floats(0.0, 8.0), min_size=n, max_size=n))
    points = [(0.0, draw(st.floats(0.0, 5.0)))]
    for i in range(n - 1):
        x, y = points[-1]
        points.append((x + gaps[i], y + slopes[i] * gaps[i]))
    return Curve.from_points(points, final_slope=slopes[-1])


curves = st.one_of(staircase_curves(), pl_curves())


class TestCurveProperties:
    @given(curves)
    @settings(max_examples=60, deadline=None)
    def test_curves_are_nondecreasing(self, c):
        grid = np.linspace(0, float(c.last_breakpoint) + 10.0, 200)
        vals = c(grid)
        assert all(vals[i + 1] >= vals[i] - 1e-9 for i in range(len(vals) - 1))

    @given(curves, curves)
    @settings(max_examples=60, deadline=None)
    def test_addition_pointwise(self, a, b):
        s = a + b
        for t in np.linspace(0, 20, 41):
            assert abs(s(float(t)) - (a(float(t)) + b(float(t)))) < 1e-6 * max(
                1.0, a(float(t)) + b(float(t))
            )

    @given(curves, curves)
    @settings(max_examples=60, deadline=None)
    def test_min_max_pointwise(self, a, b):
        lo = a.minimum(b)
        hi = a.maximum(b)
        for t in np.linspace(0, 20, 41):
            va, vb = a(float(t)), b(float(t))
            scale = max(1.0, abs(va), abs(vb))
            assert abs(lo(float(t)) - min(va, vb)) < 1e-6 * scale
            assert abs(hi(float(t)) - max(va, vb)) < 1e-6 * scale

    @given(curves)
    @settings(max_examples=60, deadline=None)
    def test_simplify_preserves_values(self, c):
        s = c.simplify()
        for t in np.linspace(0, 20, 41):
            assert abs(s(float(t)) - c(float(t))) < 1e-6 * max(1.0, c(float(t)))

    @given(curves, st.floats(0.0, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_shift_right_identity(self, c, d):
        shifted = c.shift_right(d)
        for t in np.linspace(d, d + 20, 21):
            # `t - d` can land a float-ulp on the wrong side of a jump;
            # accept either side's value.
            lo = min(c(float(t) - d - 1e-9), c(float(t) - d + 1e-9))
            hi = max(c(float(t) - d - 1e-9), c(float(t) - d + 1e-9))
            val = shifted(float(t))
            assert lo - 1e-6 * max(1.0, hi) <= val <= hi + 1e-6 * max(1.0, hi)

    @given(curves, st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_coarsen_dominates(self, c, n):
        coarse = c.coarsen(n)
        assert coarse.dominates(c, tol=1e-5)

    @given(st.lists(curves, min_size=0, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_sum_curves_matches_fold(self, cs):
        total = sum_curves(cs)
        for t in np.linspace(0, 10, 11):
            expected = sum(c(float(t)) for c in cs)
            assert abs(total(float(t)) - expected) < 1e-6 * max(1.0, expected)

    @given(curves)
    @settings(max_examples=60, deadline=None)
    def test_pseudo_inverse_is_inverse(self, c):
        for y in np.linspace(0, c(30.0), 12):
            t = c.pseudo_inverse(float(y))
            if math.isfinite(t):
                assert c(t) >= y - 1e-6 * max(1.0, y)
                # No earlier time reaches y (check a nudge before t).
                if t > 1e-9:
                    assert c(t * (1 - 1e-9)) <= y + 1e-6 * max(1.0, y) or c.left_limit(
                        t
                    ) <= y + 1e-6 * max(1.0, y)


class TestDeviationProperties:
    @given(curves, curves)
    @settings(max_examples=60, deadline=None)
    def test_vdev_bounds_brute_force(self, a, s):
        horizon = float(max(a.last_breakpoint, s.last_breakpoint)) + 5.0
        v = vertical_deviation(a, s, t_max=horizon)
        grid = np.linspace(1e-9, horizon, 300)
        brute = float(np.max(a(grid) - s(grid)))
        assert v >= brute - 1e-6 * max(1.0, abs(brute))

    @given(curves, curves)
    @settings(max_examples=60, deadline=None)
    def test_hdev_bounds_brute_force(self, a, s):
        d = horizontal_deviation(a, s)
        if math.isinf(d):
            return
        # Every bit is served within d: S(t + d) >= A(t) for all t.
        horizon = float(max(a.last_breakpoint, s.last_breakpoint)) + 5.0
        for t in np.linspace(0, horizon, 200):
            assert s(float(t) + d + 1e-6) >= a(float(t)) - 1e-5 * max(
                1.0, a(float(t))
            )

    @given(curves, curves)
    @settings(max_examples=40, deadline=None)
    def test_busy_interval_is_crossing(self, a, s):
        b = busy_interval(a, s)
        if math.isinf(b) or b == 0.0:
            return
        # At B the arrival envelope is caught up (allowing tolerance).
        assert a(b) - s(b) <= 1e-5 * max(1.0, a(b))

    @given(curves, curves)
    @settings(max_examples=30, deadline=None)
    def test_deconvolve_dominates_brute_force(self, a, s):
        b = busy_interval(a, s)
        if math.isinf(b):
            return
        out = deconvolve(a, s, t_limit=b)
        ts = np.linspace(0.0, b, 60) if b > 0 else np.array([0.0])
        for big_i in np.linspace(0.0, 10.0, 21):
            brute = float(np.max(a(ts + big_i) - s(ts)))
            assert out(float(big_i)) >= brute - 1e-5 * max(1.0, abs(brute))


class TestTokenBucketMajorant:
    @given(curves)
    @settings(max_examples=60, deadline=None)
    def test_majorant_dominates_curve(self, c):
        from repro.envelopes.operations import token_bucket_majorant

        sigma, rho = token_bucket_majorant(c)
        horizon = float(c.last_breakpoint) + 10.0
        for t in np.linspace(0, horizon, 150):
            assert sigma + rho * t >= c(float(t)) - 1e-6 * max(1.0, c(float(t)))

    @given(curves)
    @settings(max_examples=60, deadline=None)
    def test_majorant_is_tight_somewhere(self, c):
        from repro.envelopes.operations import token_bucket_majorant

        sigma, rho = token_bucket_majorant(c)
        if sigma == 0.0:
            return  # the curve never exceeds its rate line
        # The gap sigma + rho*t - c(t) attains (near) zero at some
        # breakpoint or left limit.
        gaps = [
            sigma + rho * float(x) - c(float(x)) for x in c.xs
        ] + [
            sigma + rho * float(x) - c.left_limit(float(x)) for x in c.xs[1:]
        ]
        assert min(gaps) <= 1e-6 * max(1.0, sigma)


class TestStaircaseProperties:
    @given(
        st.floats(1e-4, 5e-3),
        st.floats(4e-3, 2e-2),
        st.integers(4, 32),
    )
    @settings(max_examples=40, deadline=None)
    def test_token_staircase_never_exceeds_formula(self, h, ttrt, n):
        bw = 100e6
        s = timed_token_staircase(h, ttrt, bw, n_steps=n)
        for t in np.linspace(0, ttrt * (n + 10), 300):
            # Evaluate the formula a hair later to avoid float-ulp
            # disagreement about which side of a jump `t` falls on.
            true = max(0.0, (math.floor((t + 1e-9 * ttrt) / ttrt) - 1) * h * bw)
            assert s(float(t)) <= true + 1e-3

    @given(st.floats(1.0, 1e5), st.floats(1e-3, 1.0), st.integers(2, 32))
    @settings(max_examples=40, deadline=None)
    def test_periodic_staircase_dominates_formula(self, c, p, n):
        a = periodic_burst_staircase(c, p, n_periods=n)
        for t in np.linspace(0, p * (n + 10), 300):
            # Evaluate the formula a hair earlier to avoid float-ulp
            # disagreement about which side of a jump `t` falls on.
            true = c * (math.floor((t - 1e-9 * p) / p) + 1)
            assert a(float(t)) >= true - 1e-6 * true
