"""Cross-validation: Theorem 1's bound vs a simulated timed-token station.

For randomized allocations and periodic workloads, the worst-case delay
bound of :class:`FDDIMacServer` must dominate every delay observed when
the same station is executed by the packet simulator's token ring — even
with adversarial token phasing and competing stations consuming their full
allocations.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fddi import FDDIMacServer, FDDIRing
from repro.sim.engine import Simulator
from repro.sim.packet_sim import _Batch, _Station, _TokenRing
from repro.traffic import PeriodicTraffic
from repro.units import MBIT

BW = 100 * MBIT
TTRT = 0.008


def simulate_station(h, traffic, duration, competitors=2, adversarial=True):
    """Run one station (+ saturated competitors) and measure its delays."""
    sim = Simulator()
    completions = {}

    def on_tx(chunk, now):
        for batch, bits in chunk.slices:
            batch.delivered += bits
            if batch.delivered >= batch.bits - 1e-6 and batch.completion_time is None:
                batch.completion_time = now
                completions[batch.batch_id] = now

    tagged = _Station("tagged", h, on_tx)
    stations = [tagged]
    for i in range(competitors):
        comp = _Station(f"comp{i}", h, lambda chunk, now: None)
        stations.append(comp)
    ring = FDDIRing("r", ttrt=TTRT, bandwidth=BW, overhead=0.0004)
    token = _TokenRing(ring, stations, sim, wake_delay=TTRT if adversarial else 0.0)

    batches = []
    for k, (when, bits) in enumerate(traffic.worst_case_arrivals(duration)):
        batch = _Batch(k, "tagged", when, bits)
        batches.append(batch)

        def inject(b=batch):
            tagged.enqueue(b, b.bits)
            token.wake()

        sim.schedule_at(when, inject)
    # Saturate the competitors so the token is as slow as it can be.
    for comp in stations[1:]:
        big = _Batch(-1, comp.key, 0.0, 1e9)
        comp.enqueue(big, big.bits)
    token.wake()
    sim.run_until(duration * 3 + 1.0)
    delays = [
        b.completion_time - b.arrival_time
        for b in batches
        if b.completion_time is not None
    ]
    return delays


class TestTheorem1DominatesSimulation:
    @given(
        h=st.sampled_from([0.0006, 0.001, 0.0015, 0.002]),
        c=st.floats(20_000.0, 90_000.0),
        p=st.sampled_from([0.02, 0.03, 0.05]),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_bound_dominates_random_cases(self, h, c, p):
        traffic = PeriodicTraffic(c=c, p=p)
        server = FDDIMacServer(h, TTRT, BW)
        if traffic.long_term_rate > server.guaranteed_rate:
            return  # unstable draw — analysis rejects, nothing to compare
        bound = server.analyze(traffic.envelope(1.0)).delay_bound
        delays = simulate_station(h, traffic, duration=0.4)
        assert delays, "simulation delivered nothing"
        assert max(delays) <= bound + 1e-9

    def test_adversarial_phase_approaches_bound(self):
        # One burst per long period: the bound is 2*TTRT-dominated and the
        # adversarial sim should realize a full TTRT of it.
        traffic = PeriodicTraffic(c=50_000.0, p=0.1)
        server = FDDIMacServer(0.001, TTRT, BW)
        bound = server.analyze(traffic.envelope(1.0)).delay_bound
        delays = simulate_station(0.001, traffic, duration=0.4, adversarial=True)
        assert max(delays) >= 0.3 * bound

    def test_benign_phase_still_bounded(self):
        traffic = PeriodicTraffic(c=50_000.0, p=0.05)
        server = FDDIMacServer(0.001, TTRT, BW)
        bound = server.analyze(traffic.envelope(1.0)).delay_bound
        delays = simulate_station(0.001, traffic, duration=0.4, adversarial=False)
        assert max(delays) <= bound + 1e-9
