"""Tests for the 802.5 token-ring MAC server (the Section 7 extension)."""

import math

import pytest

from repro.envelopes.curve import Curve
from repro.errors import BufferOverflowError, ConfigurationError, UnstableSystemError
from repro.fddi.token_ring_802_5 import TokenRing8025MacServer
from repro.traffic import PeriodicTraffic
from repro.units import MBIT

BW = 16 * MBIT  # classic 16 Mbps token ring


def make_server(tht=0.001, cycle=0.010, **kw):
    return TokenRing8025MacServer(tht, cycle, BW, **kw)


class TestConstruction:
    def test_valid(self):
        s = make_server()
        assert s.guaranteed_rate == pytest.approx(0.001 * BW / 0.010)

    def test_for_ring_builder(self):
        s = TokenRing8025MacServer.for_ring(
            holding_times=[0.001, 0.002, 0.003],
            station_index=1,
            bandwidth=BW,
            walk_time=0.0005,
        )
        assert s.holding_time == 0.002
        assert s.cycle_time == pytest.approx(0.0065)

    def test_bad_station_index(self):
        with pytest.raises(ConfigurationError):
            TokenRing8025MacServer.for_ring([0.001], 3, BW)

    def test_holding_exceeding_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            make_server(tht=0.02, cycle=0.01)

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigurationError):
            make_server(tht=-0.001)
        with pytest.raises(ConfigurationError):
            TokenRing8025MacServer(0.001, 0.0, BW)


class TestAnalysis:
    def test_single_burst_delay(self):
        s = make_server(tht=0.001, cycle=0.010)
        bits = 0.001 * BW  # exactly one visit's worth
        r = s.analyze(Curve.constant(bits))
        # First credited service lands at 2 cycles (same shape as Theorem 1).
        assert r.delay_bound == pytest.approx(0.020, rel=1e-6)

    def test_unstable_raises(self):
        s = make_server(tht=0.0001, cycle=0.010)  # 160 kbps guaranteed
        with pytest.raises(UnstableSystemError):
            s.analyze(Curve.affine(0.0, 1 * MBIT))

    def test_zero_holding_time_raises(self):
        s = TokenRing8025MacServer(0.0, 0.01, BW)
        with pytest.raises(UnstableSystemError):
            s.analyze(Curve.constant(1.0))

    def test_buffer_overflow_raises(self):
        s = make_server(buffer_bits=100.0)
        with pytest.raises(BufferOverflowError):
            s.analyze(Curve.constant(10_000.0))

    def test_periodic_traffic_bounded(self):
        traffic = PeriodicTraffic(c=10_000.0, p=0.05)
        r = make_server().analyze(traffic.envelope(1.0))
        assert math.isfinite(r.delay_bound)
        assert r.output.final_slope == pytest.approx(traffic.long_term_rate, rel=1e-6)

    def test_output_capped_at_ring_rate(self):
        r = make_server().analyze(Curve.constant(50_000.0))
        assert r.output(0.0) == pytest.approx(0.0)
        assert r.output(0.001) <= BW * 0.001 + 1e-3

    def test_same_shape_as_fddi_theorem1(self):
        """With matching parameters the 802.5 analysis coincides with the
        FDDI one — the formal content of the Section 7 remark."""
        from repro.fddi import FDDIMacServer

        traffic = PeriodicTraffic(c=20_000.0, p=0.04)
        env = traffic.envelope(1.0)
        fddi = FDDIMacServer(0.001, 0.010, BW).analyze(env)
        ring = make_server(tht=0.001, cycle=0.010).analyze(env)
        assert ring.delay_bound == pytest.approx(fddi.delay_bound, rel=1e-9)
        assert ring.backlog_bound == pytest.approx(fddi.backlog_bound, rel=1e-9)

    def test_cache_key_distinguishes_params(self):
        a = make_server(tht=0.001).cache_key()
        b = make_server(tht=0.002).cache_key()
        assert a != b
