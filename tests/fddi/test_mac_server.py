"""Tests for the Theorem-1 FDDI MAC server analysis."""

import math

import numpy as np
import pytest

from repro.envelopes.curve import Curve
from repro.errors import BufferOverflowError, ConfigurationError, UnstableSystemError
from repro.fddi import FDDIMacServer
from repro.traffic import DualPeriodicTraffic, PeriodicTraffic
from repro.units import MBIT

TTRT = 0.008  # 8 ms
BW = 100 * MBIT


def make_server(h=0.001, buffer_bits=math.inf):
    return FDDIMacServer(h, TTRT, BW, buffer_bits=buffer_bits)


class TestGuarantees:
    def test_guaranteed_rate(self):
        s = make_server(h=0.001)
        assert s.guaranteed_rate == pytest.approx(0.001 * BW / TTRT)

    def test_availability_matches_theorem(self):
        s = make_server(h=0.001)
        avail = s.availability(16)
        for t in np.linspace(0, 0.1, 100):
            true = max(0.0, (math.floor(t / TTRT) - 1) * 0.001 * BW)
            assert avail(float(t)) <= true + 1e-3


class TestStability:
    def test_unstable_arrival_raises(self):
        s = make_server(h=0.0001)  # 1.25 Mbps guaranteed
        heavy = Curve.affine(0.0, 10 * MBIT)
        with pytest.raises(UnstableSystemError):
            s.analyze(heavy)

    def test_zero_allocation_raises(self):
        s = FDDIMacServer(0.0, TTRT, BW)
        with pytest.raises(UnstableSystemError):
            s.analyze(Curve.constant(100.0))

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            FDDIMacServer(-0.001, TTRT, BW)
        with pytest.raises(ConfigurationError):
            FDDIMacServer(0.001, 0.0, BW)
        with pytest.raises(ConfigurationError):
            FDDIMacServer(0.001, TTRT, BW, buffer_bits=0.0)


class TestDelayBound:
    def test_single_burst_delay(self):
        # One burst of exactly one rotation's worth of bits (H*BW).
        s = make_server(h=0.001)
        bits = 0.001 * BW
        r = s.analyze(Curve.constant(bits))
        # Service credit reaches `bits` at t = 2*TTRT; burst at t=0 waits
        # at most 2*TTRT.
        assert r.delay_bound == pytest.approx(2 * TTRT, rel=1e-6)

    def test_delay_decreases_with_allocation(self):
        traffic = PeriodicTraffic(c=50_000.0, p=0.05)
        env = traffic.envelope(1.0)
        # 0.0002s -> 20 kb/rotation: a 50 kb burst needs 3 credited
        # rotations; 0.002s -> 200 kb/rotation clears it in the first.
        d_small = make_server(h=0.0002).analyze(env).delay_bound
        d_large = make_server(h=0.002).analyze(env).delay_bound
        assert d_large < d_small

    def test_dual_periodic_traffic(self):
        traffic = DualPeriodicTraffic(c1=60_000.0, p1=0.03, c2=20_000.0, p2=0.005)
        env = traffic.envelope(1.0)
        s = make_server(h=0.001)
        r = s.analyze(env)
        assert r.delay_bound > 0
        assert math.isfinite(r.delay_bound)
        assert r.busy_interval > 0

    def test_busy_interval_finite_for_stable(self):
        traffic = PeriodicTraffic(c=10_000.0, p=0.05)
        r = make_server(h=0.001).analyze(traffic.envelope(1.0))
        assert math.isfinite(r.busy_interval)

    def test_delay_bound_conservative_vs_fluid(self):
        # The staircase delay must exceed the fluid-rate delay.
        traffic = PeriodicTraffic(c=50_000.0, p=0.05)
        env = traffic.envelope(1.0)
        s = make_server(h=0.001)
        r = s.analyze(env)
        fluid_delay = 50_000.0 / s.guaranteed_rate
        assert r.delay_bound >= fluid_delay - 1e-9


class TestBuffer:
    def test_overflow_raises(self):
        s = make_server(h=0.001, buffer_bits=1000.0)
        with pytest.raises(BufferOverflowError):
            s.analyze(Curve.constant(50_000.0))

    def test_backlog_reported(self):
        s = make_server(h=0.001)
        r = s.analyze(Curve.constant(50_000.0))
        # Backlog is the full burst until service starts at 2*TTRT.
        assert r.backlog_bound == pytest.approx(50_000.0)

    def test_big_buffer_ok(self):
        s = make_server(h=0.001, buffer_bits=60_000.0)
        r = s.analyze(Curve.constant(50_000.0))
        assert math.isfinite(r.delay_bound)


class TestOutputEnvelope:
    def test_output_capped_at_ring_rate(self):
        s = make_server(h=0.001)
        r = s.analyze(Curve.constant(50_000.0))
        # No instantaneous bursts at the ring exit.
        assert r.output(0.0) == pytest.approx(0.0)
        # Rate over small windows never exceeds BW.
        for i in [1e-5, 1e-4, 1e-3]:
            assert r.output(i) <= BW * i + 1e-3

    def test_output_preserves_long_term_rate(self):
        traffic = PeriodicTraffic(c=20_000.0, p=0.02)
        r = make_server(h=0.001).analyze(traffic.envelope(1.0))
        assert r.output.final_slope == pytest.approx(traffic.long_term_rate, rel=1e-6)

    def test_larger_allocation_smooths_less(self):
        # With more synchronous bandwidth the stored backlog is released
        # faster, so the output envelope at moderate windows is larger.
        traffic = PeriodicTraffic(c=50_000.0, p=0.05)
        env = traffic.envelope(1.0)
        out_small = make_server(h=0.0005).analyze(env).output
        out_large = make_server(h=0.003).analyze(env).output
        probe = 0.01
        assert out_large(probe) >= out_small(probe) - 1e-6

    def test_output_dominates_what_actually_left(self):
        # Whatever the MAC emits is bounded by avail over any busy window;
        # sanity: output at large I approaches input totals.
        traffic = PeriodicTraffic(c=10_000.0, p=0.02)
        env = traffic.envelope(0.5)
        r = make_server(h=0.001).analyze(env)
        big_i = 0.5
        assert r.output(big_i) >= env(big_i) * 0.5


class TestAdaptiveHorizon:
    def test_long_busy_interval_handled(self):
        # Nearly saturating traffic: long busy interval needs a bigger
        # staircase horizon than the initial 32 steps.
        s = make_server(h=0.001)  # 12.5 Mbps guaranteed
        rate = s.guaranteed_rate * 0.98
        burst = 0.001 * BW * 30  # 30 rotations' worth
        env = Curve.affine(burst, rate)
        r = s.analyze(env)
        assert math.isfinite(r.delay_bound)
        assert r.busy_interval > 32 * TTRT
