"""Tests for FDDI ring ledger, timed-token helpers and SBA baselines."""

import pytest

from repro.errors import ConfigurationError
from repro.fddi import (
    FDDIRing,
    equal_partition_allocation,
    full_length_allocation,
    max_token_rotation,
    min_sync_allocation,
    normalized_proportional_allocation,
    proportional_allocation,
    worst_case_token_wait,
)
from repro.fddi.allocation import is_schedulable
from repro.fddi.timed_token import sync_capacity_check
from repro.units import MBIT

BW = 100 * MBIT


def make_ring(**kw):
    base = dict(ring_id="r1", ttrt=0.008, bandwidth=BW, overhead=0.0005)
    base.update(kw)
    return FDDIRing(**base)


class TestRingLedger:
    def test_available_initially(self):
        ring = make_ring()
        assert ring.available_sync_time == pytest.approx(0.0075)

    def test_allocate_reduces_available(self):
        ring = make_ring()
        ring.allocate("c1", 0.002)
        assert ring.available_sync_time == pytest.approx(0.0055)
        assert ring.allocated_sync_time == pytest.approx(0.002)

    def test_release_restores(self):
        ring = make_ring()
        ring.allocate("c1", 0.002)
        returned = ring.release("c1")
        assert returned == 0.002
        assert ring.available_sync_time == pytest.approx(0.0075)

    def test_over_allocation_rejected(self):
        ring = make_ring()
        with pytest.raises(ConfigurationError):
            ring.allocate("c1", 0.009)

    def test_double_allocation_rejected(self):
        ring = make_ring()
        ring.allocate("c1", 0.001)
        with pytest.raises(ConfigurationError):
            ring.allocate("c1", 0.001)

    def test_release_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_ring().release("ghost")

    def test_sync_bits_per_rotation(self):
        ring = make_ring()
        ring.allocate("c1", 0.001)
        assert ring.sync_bits_per_rotation("c1") == pytest.approx(0.001 * BW)
        assert ring.sync_bits_per_rotation("none") == 0.0

    def test_invalid_ring_params(self):
        with pytest.raises(ConfigurationError):
            make_ring(ttrt=0.0)
        with pytest.raises(ConfigurationError):
            make_ring(overhead=0.01)  # >= TTRT
        with pytest.raises(ConfigurationError):
            make_ring(propagation_delay=-1.0)

    def test_zero_allocation_rejected(self):
        with pytest.raises(ConfigurationError):
            make_ring().allocate("c1", 0.0)


class TestTimedTokenFacts:
    def test_max_rotation_is_twice_ttrt(self):
        assert max_token_rotation(0.008) == pytest.approx(0.016)

    def test_worst_case_wait(self):
        assert worst_case_token_wait(0.008) == pytest.approx(0.016)

    def test_min_allocation_covers_max_frame(self):
        h = min_sync_allocation(BW)
        assert h >= 4500 * 8 / BW

    def test_capacity_check(self):
        assert sync_capacity_check([0.002, 0.003], ttrt=0.008, overhead=0.001)
        assert not sync_capacity_check([0.005, 0.004], ttrt=0.008, overhead=0.001)

    def test_rejects_bad_ttrt(self):
        with pytest.raises(ConfigurationError):
            max_token_rotation(-1.0)


MESSAGES = [(40_000.0, 0.05), (80_000.0, 0.10)]  # (bits, seconds)


class TestSBASchemes:
    def test_full_length(self):
        hs = full_length_allocation(MESSAGES, 0.008, BW)
        assert hs[0] == pytest.approx(40_000.0 / BW)

    def test_proportional(self):
        hs = proportional_allocation(MESSAGES, 0.008, BW)
        # u1 = 40k/(0.05*100M) = 0.008; H1 = 0.008*TTRT
        assert hs[0] == pytest.approx(0.008 * 0.008)

    def test_normalized_proportional_fills_ttrt(self):
        hs = normalized_proportional_allocation(MESSAGES, 0.008, BW, overhead=0.001)
        assert sum(hs) == pytest.approx(0.007)

    def test_equal_partition(self):
        hs = equal_partition_allocation(MESSAGES, 0.008, BW, overhead=0.0)
        assert hs == [0.004, 0.004]

    def test_schedulability_test(self):
        # Generous allocations -> schedulable.
        hs = [0.002, 0.002]
        assert is_schedulable(MESSAGES, hs, 0.008, BW)
        # Starved allocations -> not schedulable.
        tiny = [1e-6, 1e-6]
        assert not is_schedulable(MESSAGES, tiny, 0.008, BW)

    def test_rejects_deadline_below_two_ttrt(self):
        with pytest.raises(ConfigurationError):
            proportional_allocation([(1000.0, 0.01)], 0.008, BW)

    def test_rejects_mismatched_allocations(self):
        with pytest.raises(ConfigurationError):
            is_schedulable(MESSAGES, [0.001], 0.008, BW)

    def test_empty_messages(self):
        assert equal_partition_allocation([], 0.008, BW) == []
        assert normalized_proportional_allocation([], 0.008, BW) == []
