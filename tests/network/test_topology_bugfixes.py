"""Regression tests for two construction bugs.

1. ``connect_switches`` used to validate each direction *as it mutated*:
   adding ``(a, b)`` before discovering ``(b, a)`` was a duplicate left the
   topology half-connected — one dangling directed link, an attached output
   port, a bumped ``change_count``, and a routing edge that ``validate()``
   happily accepted.  The fix validates every direction before touching any
   state.

2. ``hosts_on_ring`` used to scan every host in the network on each call
   (``O(all hosts)`` per lookup inside per-ring loops made population
   queries quadratic).  ``add_host`` now maintains a ring -> hosts index.
"""

import pytest

from repro.atm import AtmSwitch
from repro.errors import TopologyError
from repro.fddi import FDDIRing
from repro.network import NetworkTopology
from repro.units import MBIT


def three_switches():
    topo = NetworkTopology()
    for i in (1, 2, 3):
        topo.add_switch(AtmSwitch(f"s{i}"))
    return topo


class TestConnectSwitchesTransactional:
    def test_duplicate_reverse_direction_leaves_no_partial_state(self):
        # s1->s2 exists (unidirectional); connecting s2<->s1 must fail on
        # the duplicate (s1, s2) direction WITHOUT first attaching (s2, s1).
        topo = three_switches()
        topo.connect_switches("s1", "s2", rate=155.52 * MBIT, bidirectional=False)
        count_before = topo.change_count
        ports_before = len(topo.switches["s2"].ports)
        with pytest.raises(TopologyError, match="already exists"):
            topo.connect_switches("s2", "s1", rate=155.52 * MBIT)
        assert topo.change_count == count_before
        assert len(topo.switches["s2"].ports) == ports_before
        with pytest.raises(TopologyError):
            topo.switch_link("s2", "s1")
        assert not topo._backbone.has_edge("s2", "s1")

    def test_unknown_second_endpoint_leaves_no_partial_state(self):
        topo = three_switches()
        count_before = topo.change_count
        with pytest.raises(TopologyError, match="unknown switch"):
            topo.connect_switches("s1", "nope", rate=155.52 * MBIT)
        assert topo.change_count == count_before
        assert len(topo.switches["s1"].ports) == 0

    def test_failed_connect_can_be_retried_cleanly(self):
        # The point of transactionality: after a rejected call the same
        # link can still be created the right way round.
        topo = three_switches()
        topo.connect_switches("s1", "s2", rate=155.52 * MBIT, bidirectional=False)
        with pytest.raises(TopologyError):
            topo.connect_switches("s2", "s1", rate=155.52 * MBIT)
        topo.connect_switches("s2", "s1", rate=155.52 * MBIT, bidirectional=False)
        assert topo.switch_link("s2", "s1").rate == 155.52 * MBIT


class TestHostsOnRingIndex:
    def test_order_and_isolation(self):
        topo = NetworkTopology()
        topo.add_ring(FDDIRing("ring1", ttrt=0.008, bandwidth=100 * MBIT))
        topo.add_ring(FDDIRing("ring2", ttrt=0.008, bandwidth=100 * MBIT))
        for name in ("a", "b", "c"):
            topo.add_host(name, "ring1")
        topo.add_host("z", "ring2")
        assert [h.host_id for h in topo.hosts_on_ring("ring1")] == ["a", "b", "c"]
        assert [h.host_id for h in topo.hosts_on_ring("ring2")] == ["z"]

    def test_unknown_ring_is_empty(self):
        assert NetworkTopology().hosts_on_ring("ghost") == []

    def test_returns_copy(self):
        topo = NetworkTopology()
        topo.add_ring(FDDIRing("ring1", ttrt=0.008, bandwidth=100 * MBIT))
        topo.add_host("a", "ring1")
        topo.hosts_on_ring("ring1").clear()
        assert len(topo.hosts_on_ring("ring1")) == 1

    def test_index_matches_full_scan(self):
        topo = NetworkTopology()
        for i in range(1, 6):
            topo.add_ring(FDDIRing(f"ring{i}", ttrt=0.008, bandwidth=100 * MBIT))
        for i in range(1, 6):
            for j in range(1, 4):
                topo.add_host(f"host{i}-{j}", f"ring{i}")
        for i in range(1, 6):
            scan = [h for h in topo.hosts.values() if h.ring_id == f"ring{i}"]
            assert topo.hosts_on_ring(f"ring{i}") == scan


class TestBackboneCapacity:
    def test_counts_undirected_pairs_once(self):
        topo = three_switches()
        topo.connect_switches("s1", "s2", rate=100.0)
        topo.connect_switches("s2", "s3", rate=200.0, bidirectional=False)
        # s1<->s2 is one undirected pair (100), s2->s3 another (200).
        assert topo.backbone_capacity() == pytest.approx(300.0)

    def test_asymmetric_pair_contributes_mean(self):
        topo = three_switches()
        topo.connect_switches("s1", "s2", rate=100.0, bidirectional=False)
        topo.connect_switches("s2", "s1", rate=300.0, bidirectional=False)
        assert topo.backbone_capacity() == pytest.approx(200.0)
