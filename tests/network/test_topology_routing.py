"""Tests for topology construction, routing and connection objects."""

import pytest

from repro.atm import AtmSwitch
from repro.config import NetworkConfig, build_network
from repro.errors import RoutingError, TopologyError
from repro.fddi import FDDIRing
from repro.interface_device import InterfaceDevice
from repro.network import ConnectionSpec, NetworkTopology, compute_route
from repro.traffic import PeriodicTraffic
from repro.units import MBIT


class TestBuildNetwork:
    def test_paper_topology_counts(self):
        topo = build_network()
        assert len(topo.rings) == 3
        assert len(topo.hosts) == 12
        assert len(topo.switches) == 3
        assert len(topo.devices) == 3

    def test_custom_sizes(self):
        topo = build_network(NetworkConfig(n_rings=4, hosts_per_ring=2))
        assert len(topo.rings) == 4
        assert len(topo.hosts) == 8

    def test_every_ring_bridged(self):
        topo = build_network()
        for ring_id in topo.rings:
            assert topo.device_of_ring(ring_id).ring_id == ring_id

    def test_backbone_fully_connected(self):
        topo = build_network()
        for a in topo.switches:
            for b in topo.switches:
                if a != b:
                    assert topo.backbone_path(a, b) == [a, b]

    def test_hosts_on_ring(self):
        topo = build_network()
        hosts = topo.hosts_on_ring("ring1")
        assert len(hosts) == 4
        assert all(h.ring_id == "ring1" for h in hosts)


class TestTopologyValidation:
    def test_duplicate_ring_rejected(self):
        topo = NetworkTopology()
        topo.add_ring(FDDIRing("r1", ttrt=0.008))
        with pytest.raises(TopologyError):
            topo.add_ring(FDDIRing("r1", ttrt=0.008))

    def test_host_requires_ring(self):
        topo = NetworkTopology()
        with pytest.raises(TopologyError):
            topo.add_host("h1", "ghost-ring")

    def test_one_device_per_ring(self):
        topo = NetworkTopology()
        topo.add_ring(FDDIRing("r1", ttrt=0.008))
        topo.add_switch(AtmSwitch("s1"))
        topo.add_device(InterfaceDevice("id1", "r1"), "s1", uplink_rate=155 * MBIT)
        with pytest.raises(TopologyError):
            topo.add_device(InterfaceDevice("id2", "r1"), "s1", uplink_rate=155 * MBIT)

    def test_duplicate_switch_link_rejected(self):
        topo = NetworkTopology()
        topo.add_switch(AtmSwitch("s1"))
        topo.add_switch(AtmSwitch("s2"))
        topo.connect_switches("s1", "s2", rate=155 * MBIT)
        with pytest.raises(TopologyError):
            topo.connect_switches("s1", "s2", rate=155 * MBIT)

    def test_validate_catches_unbridged_ring(self):
        topo = NetworkTopology()
        topo.add_ring(FDDIRing("r1", ttrt=0.008))
        with pytest.raises(TopologyError):
            topo.validate()

    def test_unknown_lookups_raise(self):
        topo = build_network()
        with pytest.raises(TopologyError):
            topo.switch_link("s1", "ghost")
        with pytest.raises(TopologyError):
            topo.downlink("s1", "ghost")


class TestRouting:
    def test_cross_ring_route(self):
        topo = build_network()
        route = compute_route(topo, "host1-1", "host2-3")
        assert route.crosses_backbone
        assert route.source_device == "id1"
        assert route.dest_device == "id2"
        assert route.switch_path == ["s1", "s2"]

    def test_local_route(self):
        topo = build_network()
        route = compute_route(topo, "host1-1", "host1-2")
        assert not route.crosses_backbone
        assert route.switch_path == []

    def test_unknown_host_rejected(self):
        topo = build_network()
        with pytest.raises(RoutingError):
            compute_route(topo, "ghost", "host1-1")
        with pytest.raises(RoutingError):
            compute_route(topo, "host1-1", "ghost")

    def test_same_host_rejected(self):
        topo = build_network()
        with pytest.raises(RoutingError):
            compute_route(topo, "host1-1", "host1-1")

    def test_route_str_mentions_path(self):
        topo = build_network()
        route = compute_route(topo, "host1-1", "host2-1")
        assert "s1" in str(route) and "s2" in str(route)


class TestConnectionSpec:
    def test_valid_spec(self):
        spec = ConnectionSpec(
            "c", "a", "b", PeriodicTraffic(c=1000.0, p=0.01), 0.1
        )
        assert spec.deadline == 0.1

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            ConnectionSpec("c", "a", "b", PeriodicTraffic(c=1.0, p=1.0), 0.0)

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            ConnectionSpec("c", "a", "a", PeriodicTraffic(c=1.0, p=1.0), 0.1)
