"""Full-stack integration stories exercising the public API end to end."""

import math

import pytest

from repro import (
    AdmissionController,
    CACConfig,
    ConnectionSpec,
    DualPeriodicTraffic,
    NetworkConfig,
    PeriodicTraffic,
    build_network,
)
from repro.core.delay import ConnectionLoad
from repro.sim.packet_sim import PacketLevelSimulator

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


class TestAdmitReleaseCycle:
    """A long admit/release churn leaves the network consistent."""

    def test_churn_conserves_ledgers(self):
        topo = build_network()
        cac = AdmissionController(topo, cac_config=CACConfig(beta=0.5))
        initial = {
            rid: ring.available_sync_time for rid, ring in topo.rings.items()
        }
        pairs = [("host1-1", "host2-1"), ("host2-2", "host3-2"), ("host3-3", "host1-3")]
        for round_no in range(3):
            admitted = []
            for i, (src, dst) in enumerate(pairs):
                res = cac.request(
                    ConnectionSpec(f"r{round_no}-c{i}", src, dst, TRAFFIC, 0.09)
                )
                if res.admitted:
                    admitted.append(res.record.conn_id)
            for cid in admitted:
                cac.release(cid)
        final = {rid: ring.available_sync_time for rid, ring in topo.rings.items()}
        for rid in initial:
            assert final[rid] == pytest.approx(initial[rid], abs=1e-12)
        assert cac.connections == {}

    def test_delay_bounds_recorded_consistently(self):
        topo = build_network()
        cac = AdmissionController(topo)
        cac.request(ConnectionSpec("a", "host1-1", "host2-1", TRAFFIC, 0.09))
        cac.request(ConnectionSpec("b", "host1-2", "host2-2", TRAFFIC, 0.09))
        # Recorded bounds equal a fresh recomputation of the current state.
        fresh = cac.current_delays()
        for cid, rec in cac.connections.items():
            assert rec.delay_bound == pytest.approx(fresh[cid], rel=1e-12)


class TestEndToEndContract:
    """CAC promise -> packet-level observation, across traffic models."""

    @pytest.mark.parametrize(
        "traffic",
        [
            TRAFFIC,
            PeriodicTraffic(c=80_000.0, p=0.02),
            DualPeriodicTraffic(
                c1=90_000.0, p1=0.015, c2=30_000.0, p2=0.005, peak=80e6
            ),
        ],
        ids=["dual-periodic", "periodic", "finite-peak"],
    )
    def test_bound_dominates_observation(self, traffic):
        topo = build_network()
        cac = AdmissionController(topo)
        res = cac.request(ConnectionSpec("c", "host1-1", "host2-1", traffic, 0.09))
        assert res.admitted
        loads = [
            ConnectionLoad(r.spec, r.route, r.h_source, r.h_dest)
            for r in cac.connections.values()
        ]
        observed = PacketLevelSimulator(topo, loads).run(duration=0.3)
        assert observed.max_delay["c"] <= res.record.delay_bound + 1e-9


class TestHeterogeneityMatters:
    """The paper's motivating claim: allocation on one ring affects the
    other segments through the shared backbone."""

    def test_source_allocation_affects_other_connections(self):
        # Two connections share id1's uplink; shrink c0's H_S and its burst
        # pattern into the ATM side changes, moving c1's uplink delay.
        from repro.core.delay import DelayAnalyzer
        from repro.network.routing import compute_route

        topo = build_network()
        analyzer = DelayAnalyzer(topo)
        s0 = ConnectionSpec("c0", "host1-1", "host2-1", TRAFFIC, 0.2)
        s1 = ConnectionSpec("c1", "host1-2", "host3-1", TRAFFIC, 0.2)
        r0 = compute_route(topo, "host1-1", "host2-1")
        r1 = compute_route(topo, "host1-2", "host3-1")

        def uplink_delay_of_c1(h0: float) -> float:
            loads = [
                ConnectionLoad(s0, r0, h0, 0.002),
                ConnectionLoad(s1, r1, 0.002, 0.002),
            ]
            return analyzer.compute(loads)["c1"].hop_delay("uplink")

        # A barely-stable H_S (8.125 Mbps for an 8 Mbps source) makes c0's
        # MAC accumulate a long backlog that spills into the backbone as a
        # bigger burst — *hurting* c1's uplink bound.  This is exactly why
        # Section 5.3 warns against minimal allocations.
        lean = uplink_delay_of_c1(0.00065)
        fat = uplink_delay_of_c1(0.002)
        assert lean > fat + 1e-6

    def test_larger_network_still_analyzable(self):
        cfg = NetworkConfig(n_rings=5, hosts_per_ring=2)
        topo = build_network(cfg)
        cac = AdmissionController(topo, network_config=cfg)
        res = cac.request(
            ConnectionSpec("c", "host1-1", "host4-2", TRAFFIC, 0.09)
        )
        assert res.admitted
        assert res.record.route.switch_path == ["s1", "s4"]


class TestVcLifecycleWithCac:
    """Admission + virtual-circuit setup as a production deployment would
    pair them: labels allocated after a positive decision, torn down on
    release."""

    def test_admit_setup_release_teardown(self):
        from repro.atm import VirtualCircuitManager

        topo = build_network()
        cac = AdmissionController(topo)
        vcs = VirtualCircuitManager(topo)
        res = cac.request(ConnectionSpec("c", "host1-1", "host2-1", TRAFFIC, 0.09))
        assert res.admitted
        circuit = vcs.setup("c", res.record.route)
        assert len(circuit.hops) == 3
        assert vcs.labels_in_use("s1->s2") == 1
        cac.release("c")
        vcs.teardown("c")
        assert vcs.labels_in_use("s1->s2") == 0

    def test_vc_shortage_is_an_admission_failure_mode(self):
        from repro.atm import VirtualCircuitManager
        from repro.atm.vc import VcExhaustedError

        topo = build_network()
        cac = AdmissionController(topo)
        vcs = VirtualCircuitManager(topo, vcis_per_link=1)
        r1 = cac.request(ConnectionSpec("a", "host1-1", "host2-1", TRAFFIC, 0.09))
        vcs.setup("a", r1.record.route)
        r2 = cac.request(ConnectionSpec("b", "host1-2", "host2-2", TRAFFIC, 0.09))
        assert r2.admitted  # bandwidth-wise fine...
        with pytest.raises(VcExhaustedError):
            vcs.setup("b", r2.record.route)  # ...but no labels left
        cac.release("b")  # the deployment rolls the admission back


class TestTrafficModelInterop:
    def test_trace_descriptor_through_cac(self):
        from repro import TraceTraffic

        # Record a synthetic "application trace" and admit from it.
        arrivals = [(i * 0.015, 100_000.0) for i in range(20)]
        traffic = TraceTraffic(arrivals)
        topo = build_network()
        cac = AdmissionController(topo)
        res = cac.request(ConnectionSpec("t", "host1-1", "host2-1", traffic, 0.1))
        assert res.admitted
        assert math.isfinite(res.record.delay_bound)

    def test_leaky_bucket_through_cac(self):
        from repro import LeakyBucketTraffic

        traffic = LeakyBucketTraffic(sigma=50_000.0, rho=6e6, peak=50e6)
        topo = build_network()
        cac = AdmissionController(topo)
        res = cac.request(ConnectionSpec("lb", "host2-1", "host3-1", traffic, 0.1))
        assert res.admitted
