"""Tests for the MPEG GOP traffic model."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.mpeg import MPEGTraffic

#: A classic IBBPBBPBB... pattern (sizes in bits).
GOP = [200_000.0, 40_000.0, 40_000.0, 100_000.0, 40_000.0, 40_000.0]
FPS = 30.0


def make():
    return MPEGTraffic(GOP, FPS)


class TestBasics:
    def test_gop_facts(self):
        t = make()
        assert t.gop_period == pytest.approx(0.2)
        assert t.gop_bits == pytest.approx(460_000.0)
        assert t.long_term_rate == pytest.approx(2_300_000.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MPEGTraffic([], 30.0)
        with pytest.raises(ConfigurationError):
            MPEGTraffic([100.0, -5.0], 30.0)
        with pytest.raises(ConfigurationError):
            MPEGTraffic([100.0], 0.0)

    def test_describe(self):
        assert "MPEG" in make().describe()


class TestEnvelope:
    def test_single_frame_window_is_i_frame(self):
        env = make().envelope(1.0)
        assert env(0.0) == pytest.approx(200_000.0)

    def test_two_frame_window_is_best_pair(self):
        env = make().envelope(1.0)
        # Best 2-run: I followed by B (wrapping B+I = 240k too): 240k.
        assert env(1.0 / FPS) == pytest.approx(240_000.0)

    def test_full_gop_window(self):
        env = make().envelope(1.0)
        # Window catching n frames: best n-run = whole GOP... plus wrap
        # alignment can do no better than gop_bits.
        n = len(GOP)
        assert env((n - 1) / FPS) == pytest.approx(460_000.0)

    def test_envelope_dominates_every_rotation(self):
        t = make()
        env = t.envelope(1.0)
        n = len(GOP)
        gap = 1.0 / FPS
        for rotation in range(n):
            cumulative = 0.0
            for k in range(3 * n):
                cumulative += GOP[(rotation + k) % n]
                window = k * gap
                assert env(window) >= cumulative - 1e-6

    def test_long_term_rate_matches(self):
        t = make()
        env = t.envelope(2.0)
        assert env.final_slope == pytest.approx(t.long_term_rate)

    def test_envelope_nondecreasing(self):
        env = make().envelope(1.0)
        grid = np.linspace(0, 2.0, 300)
        vals = env(grid)
        assert all(vals[i + 1] >= vals[i] - 1e-6 for i in range(len(vals) - 1))

    def test_cache_reused(self):
        t = make()
        assert t.envelope(0.5) is t.envelope(0.4)


class TestTrajectory:
    def test_worst_case_respects_envelope(self):
        t = make()
        env = t.envelope(1.0)
        cumulative = 0.0
        for when, bits in t.worst_case_arrivals(0.5):
            cumulative += bits
            assert cumulative <= env(when) + 1e-6

    def test_first_burst_is_i_frame(self):
        t = make()
        first = next(iter(t.worst_case_arrivals(1.0)))
        assert first == (0.0, 200_000.0)


class TestThroughCAC:
    def test_mpeg_stream_admitted(self):
        from repro.config import build_network
        from repro.core import AdmissionController
        from repro.network.connection import ConnectionSpec

        topo = build_network()
        cac = AdmissionController(topo)
        res = cac.request(
            ConnectionSpec("tv", "host1-1", "host2-1", make(), 0.120)
        )
        assert res.admitted
        assert math.isfinite(res.record.delay_bound)
