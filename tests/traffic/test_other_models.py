"""Tests for periodic, leaky-bucket, CBR, trace descriptors and generators."""

import math
import random

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic import (
    CBRTraffic,
    LeakyBucketTraffic,
    PeriodicTraffic,
    TraceTraffic,
    WorkloadGenerator,
    WorkloadSpec,
)


class TestPeriodic:
    def test_envelope_staircase(self):
        t = PeriodicTraffic(c=100.0, p=0.01)
        env = t.envelope(horizon=0.1)
        assert env(0.0) == pytest.approx(100.0)
        assert env(0.005) == pytest.approx(100.0)
        assert env(0.01) == pytest.approx(200.0)

    def test_long_term_rate(self):
        t = PeriodicTraffic(c=100.0, p=0.01)
        assert t.long_term_rate == pytest.approx(10_000.0)

    def test_rejects_bad(self):
        with pytest.raises(ConfigurationError):
            PeriodicTraffic(c=0.0, p=1.0)
        with pytest.raises(ConfigurationError):
            PeriodicTraffic(c=1.0, p=-1.0)

    def test_finite_peak(self):
        t = PeriodicTraffic(c=100.0, p=0.01, peak=100_000.0)
        assert t.peak_rate == 100_000.0
        env = t.envelope(0.05)
        assert env(0.0005) == pytest.approx(50.0)


class TestLeakyBucket:
    def test_envelope_affine(self):
        t = LeakyBucketTraffic(sigma=500.0, rho=1000.0)
        env = t.envelope(1.0)
        assert env(0.0) == pytest.approx(500.0)
        assert env(1.0) == pytest.approx(1500.0)

    def test_peak_cap(self):
        t = LeakyBucketTraffic(sigma=500.0, rho=1000.0, peak=2000.0)
        env = t.envelope(1.0)
        assert env(0.1) == pytest.approx(200.0)   # peak-limited early
        assert env(1.0) == pytest.approx(1500.0)  # bucket-limited later

    def test_rejects_peak_below_rho(self):
        with pytest.raises(ConfigurationError):
            LeakyBucketTraffic(sigma=1.0, rho=100.0, peak=50.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            LeakyBucketTraffic(sigma=-1.0, rho=1.0)

    def test_stability_check(self):
        t = LeakyBucketTraffic(sigma=0.0, rho=100.0)
        assert t.is_stable_at(100.0)
        assert not t.is_stable_at(99.0)


class TestCBR:
    def test_fluid(self):
        t = CBRTraffic(rate=1000.0)
        assert t.peak_rate == 1000.0
        assert t.envelope(1.0)(2.0) == pytest.approx(2000.0)

    def test_packetized(self):
        t = CBRTraffic(rate=1000.0, packet_bits=424.0)
        assert math.isinf(t.peak_rate)
        assert t.envelope(1.0)(0.0) == pytest.approx(424.0)

    def test_rejects_zero_rate(self):
        with pytest.raises(ConfigurationError):
            CBRTraffic(rate=0.0)


class TestTrace:
    def test_single_arrival(self):
        t = TraceTraffic([(0.0, 100.0)], sustained_rate=50.0)
        env = t.envelope(1.0)
        assert env(0.0) >= 100.0

    def test_envelope_bounds_trace_windows(self):
        arrivals = [(0.0, 10.0), (0.1, 20.0), (0.15, 5.0), (0.5, 40.0)]
        t = TraceTraffic(arrivals)
        env = t.envelope(1.0)
        # Check every pair window.
        times = [a[0] for a in arrivals]
        bits = [a[1] for a in arrivals]
        for i in range(len(arrivals)):
            for j in range(i, len(arrivals)):
                window = times[j] - times[i]
                gain = sum(bits[i : j + 1])
                assert env(window) >= gain - 1e-9

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            TraceTraffic([(1.0, 5.0), (0.5, 5.0)])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            TraceTraffic([])

    def test_worst_case_replays_trace(self):
        arrivals = [(0.5, 10.0), (1.0, 20.0)]
        t = TraceTraffic(arrivals)
        replay = list(t.worst_case_arrivals(10.0))
        assert replay[0] == (0.0, 10.0)
        assert replay[1] == (0.5, 20.0)

    def test_long_term_rate_default(self):
        t = TraceTraffic([(0.0, 100.0), (1.0, 100.0)])
        assert t.long_term_rate == pytest.approx(200.0)


class TestWorkloadGenerator:
    def spec(self, **kw):
        base = dict(
            c1=3000.0,
            p1=0.03,
            c2=1000.0,
            p2=0.005,
            deadline_min=0.05,
            deadline_max=0.2,
        )
        base.update(kw)
        return WorkloadSpec(**base)

    def test_sample_within_deadline_range(self):
        gen = WorkloadGenerator(self.spec(), random.Random(1))
        for _ in range(50):
            _, d = gen.sample()
            assert 0.05 <= d <= 0.2

    def test_jitter_scales_budgets(self):
        gen = WorkloadGenerator(self.spec(jitter=0.5), random.Random(2))
        rates = {gen.sample()[0].c1 for _ in range(20)}
        assert len(rates) > 1
        assert all(1500.0 <= c1 <= 4500.0 for c1 in rates)

    def test_zero_jitter_is_deterministic(self):
        gen = WorkloadGenerator(self.spec(), random.Random(3))
        t1, _ = gen.sample()
        t2, _ = gen.sample()
        assert t1.c1 == t2.c1

    def test_reproducible_with_seed(self):
        g1 = WorkloadGenerator(self.spec(jitter=0.3), random.Random(42))
        g2 = WorkloadGenerator(self.spec(jitter=0.3), random.Random(42))
        for _ in range(10):
            s1, d1 = g1.sample()
            s2, d2 = g2.sample()
            assert s1.c1 == s2.c1 and d1 == d2

    def test_rejects_bad_jitter(self):
        with pytest.raises(ConfigurationError):
            self.spec(jitter=1.5)

    def test_rejects_bad_deadlines(self):
        with pytest.raises(ConfigurationError):
            self.spec(deadline_min=0.3, deadline_max=0.1)

    def test_mean_rate(self):
        assert self.spec().mean_rate == pytest.approx(100_000.0)


class TestGammaInterface:
    def test_gamma_periodic(self):
        t = PeriodicTraffic(c=100.0, p=1.0)
        # In a window of 0.5 at most one burst: Gamma = 100/0.5.
        assert t.gamma(0.5) == pytest.approx(200.0)

    def test_gamma_rejects_negative_interval(self):
        t = PeriodicTraffic(c=100.0, p=1.0)
        with pytest.raises(ValueError):
            t.gamma(-1.0)

    def test_describe_default(self):
        t = LeakyBucketTraffic(sigma=10.0, rho=5.0)
        assert "LeakyBucket" in t.describe()
