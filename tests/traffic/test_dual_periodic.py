"""Tests for the dual-periodic traffic model (Eq. 37/38)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic import DualPeriodicTraffic


def make(c1=3000.0, p1=0.03, c2=1000.0, p2=0.005, peak=math.inf):
    return DualPeriodicTraffic(c1, p1, c2, p2, peak)


class TestValidation:
    def test_valid_construction(self):
        t = make()
        assert t.c1 == 3000.0

    def test_rejects_inner_period_larger_than_outer(self):
        with pytest.raises(ConfigurationError):
            make(p1=0.001, p2=0.01)

    def test_rejects_inner_budget_larger_than_outer(self):
        with pytest.raises(ConfigurationError):
            make(c1=100.0, c2=200.0)

    def test_rejects_slow_inner_rate(self):
        # C2/P2 < C1/P1 would make C1 unreachable.
        with pytest.raises(ConfigurationError):
            make(c1=3000.0, p1=0.01, c2=100.0, p2=0.005)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            make(c1=-1.0)
        with pytest.raises(ConfigurationError):
            make(p1=0.0)


class TestRates:
    def test_long_term_rate_is_eq38(self):
        t = make(c1=3000.0, p1=0.03)
        assert t.long_term_rate == pytest.approx(100_000.0)

    def test_gamma_tends_to_rho(self):
        t = make()
        big_i = 100.0
        assert t.gamma(big_i) == pytest.approx(t.long_term_rate, rel=0.02)

    def test_gamma_at_zero_is_peak(self):
        t = make(peak=1e6)
        assert t.gamma(0.0) == 1e6

    def test_bursts_per_outer_period(self):
        assert make(c1=3000.0, c2=1000.0).bursts_per_outer_period == 3
        assert make(c1=2500.0, c2=1000.0).bursts_per_outer_period == 3


class TestEnvelope:
    def test_initial_burst(self):
        t = make()
        env = t.envelope(horizon=0.1)
        assert env(0.0) == pytest.approx(1000.0)  # first C2 burst

    def test_inner_staircase(self):
        t = make()
        env = t.envelope(horizon=0.1)
        # Bursts at 0, P2, 2*P2 exhaust C1=3*C2; then flat until P1.
        assert env(0.004) == pytest.approx(1000.0)
        assert env(0.005) == pytest.approx(2000.0)
        assert env(0.010) == pytest.approx(3000.0)
        assert env(0.025) == pytest.approx(3000.0)  # budget exhausted
        assert env(0.030) == pytest.approx(4000.0)  # next outer window

    def test_partial_final_burst(self):
        t = make(c1=2500.0, c2=1000.0)
        env = t.envelope(horizon=0.1)
        assert env(0.010) == pytest.approx(2500.0)  # capped at C1

    def test_envelope_matches_eq37_form(self):
        t = make()
        env = t.envelope(horizon=0.2)

        def eq37(i):
            k = math.floor(i / t.p1)
            r = i - k * t.p1
            inner = math.floor(r / t.p2) * t.c2 + t.c2  # staircase: +1 burst
            return k * t.c1 + min(t.c1, inner)

        for i in np.linspace(1e-6, 0.15, 200):
            assert env(float(i)) == pytest.approx(eq37(i), rel=1e-9)

    def test_tail_dominates(self):
        t = make()
        env = t.envelope(horizon=0.05)  # short horizon, long queries
        for i in np.linspace(0.0, 2.0, 100):
            k = math.floor(i / t.p1)
            r = i - k * t.p1
            true = k * t.c1 + min(t.c1, (math.floor(r / t.p2) + 1) * t.c2)
            assert env(float(i)) >= true - 1e-6 * true

    def test_finite_peak_ramps(self):
        t = make(peak=1e6)  # 1000 bits at 1e6 b/s -> 1 ms ramps
        env = t.envelope(horizon=0.05)
        assert env(0.0) == pytest.approx(0.0)
        assert env(0.0005) == pytest.approx(500.0)
        assert env(0.001) == pytest.approx(1000.0)
        assert env(0.003) == pytest.approx(1000.0)

    def test_envelope_nondecreasing(self):
        t = make()
        env = t.envelope(horizon=0.5)
        grid = np.linspace(0, 1.0, 400)
        vals = env(grid)
        assert all(vals[i + 1] >= vals[i] - 1e-9 for i in range(len(vals) - 1))


class TestWorstCaseArrivals:
    def test_trajectory_respects_envelope(self):
        t = make()
        env = t.envelope(horizon=0.3)
        cumulative = 0.0
        for when, bits in t.worst_case_arrivals(0.2):
            cumulative += bits
            assert cumulative <= env(when) + 1e-6

    def test_trajectory_achieves_envelope_at_bursts(self):
        t = make()
        arrivals = list(t.worst_case_arrivals(0.05))
        assert arrivals[0][0] == pytest.approx(0.0)
        assert arrivals[0][1] == pytest.approx(1000.0)
        total = sum(b for _, b in arrivals)
        assert total >= 3000.0  # at least one full outer budget

    def test_describe_mentions_params(self):
        d = make().describe()
        assert "DualPeriodic" in d and "3e+03" in d
