"""Tests for the mixed-class workload generator."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.traffic.generators import MixedWorkloadGenerator, WorkloadSpec


def video_spec():
    return WorkloadSpec(
        c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005,
        deadline_min=0.04, deadline_max=0.10,
    )


def audio_spec():
    return WorkloadSpec(
        c1=6_000.0, p1=0.020, c2=3_000.0, p2=0.010,
        deadline_min=0.03, deadline_max=0.06,
    )


def make(weights=(2.0, 1.0), seed=1):
    classes = [
        ("video", weights[0], video_spec()),
        ("audio", weights[1], audio_spec()),
    ]
    return MixedWorkloadGenerator(classes, random.Random(seed))


class TestMixture:
    def test_mean_rate_is_weighted_average(self):
        g = make()
        expected = (2 / 3) * video_spec().mean_rate + (1 / 3) * audio_spec().mean_rate
        assert g.mean_rate == pytest.approx(expected)

    def test_class_frequencies_follow_weights(self):
        g = make(weights=(3.0, 1.0), seed=7)
        counts = {"video": 0, "audio": 0}
        for _ in range(800):
            counts[g.sample_with_class()[2]] += 1
        ratio = counts["video"] / counts["audio"]
        assert 2.2 < ratio < 4.2

    def test_sample_returns_valid_traffic(self):
        g = make()
        traffic, deadline = g.sample()
        assert traffic.long_term_rate > 0
        assert deadline > 0

    def test_deadlines_respect_class_ranges(self):
        g = make(seed=3)
        for _ in range(100):
            traffic, deadline, name = g.sample_with_class()
            if name == "video":
                assert 0.04 <= deadline <= 0.10
            else:
                assert 0.03 <= deadline <= 0.06

    def test_reproducible(self):
        a, b = make(seed=5), make(seed=5)
        for _ in range(20):
            assert a.sample_with_class() == b.sample_with_class()

    def test_zero_weight_class_never_drawn(self):
        g = make(weights=(1.0, 0.0), seed=2)
        for _ in range(100):
            assert g.sample_with_class()[2] == "video"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MixedWorkloadGenerator([], random.Random(1))
        with pytest.raises(ConfigurationError):
            MixedWorkloadGenerator(
                [("a", -1.0, video_spec())], random.Random(1)
            )
        with pytest.raises(ConfigurationError):
            MixedWorkloadGenerator(
                [("a", 0.0, video_spec())], random.Random(1)
            )
