"""Scenario codec: strict parsing, repr-exact floats, stable hashing."""

import dataclasses
import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ScenarioSpecError
from repro.faults.injector import FaultConfig, ScriptedFault
from repro.faults.retry import RetryPolicy
from repro.scenario import codec
from repro.scenario.fuzz import generate_spec
from repro.scenario.spec import (
    AnalysisKnobs,
    ArrivalsSpec,
    ConnectionEntry,
    FaultPlan,
    ScenarioSpec,
)
from repro.traffic.dual_periodic import DualPeriodicTraffic
from repro.traffic.leaky_bucket import LeakyBucketTraffic

#: Floats whose shortest repr exercises every tricky shape (subnormals and
#: NaN excluded: specs validate ranges, and NaN never appears in a spec).
_awkward = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def _simple_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="t",
        arrivals=ArrivalsSpec(utilization=0.3, n_requests=5, warmup_requests=0),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestRoundTrip:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10**9))
    def test_generated_specs_round_trip(self, seed):
        spec = generate_spec(seed)
        back = codec.loads(codec.dumps(spec))
        assert back == spec
        assert codec.spec_hash(back) == codec.spec_hash(spec)

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(u=_awkward, lifetime=_awkward, scale=_awkward)
    def test_repr_exact_floats(self, u, lifetime, scale):
        spec = _simple_spec(
            arrivals=ArrivalsSpec(
                utilization=u,
                n_requests=5,
                warmup_requests=0,
                mean_lifetime=lifetime,
                load_scale=scale,
            )
        )
        back = codec.loads(codec.dumps(spec))
        # Bit-exact equality, not approximate: JSON floats round-trip via
        # repr (shortest round-trip representation).
        assert back.arrivals.utilization == u
        assert back.arrivals.mean_lifetime == lifetime
        assert back.arrivals.load_scale == scale

    def test_infinity_round_trips(self):
        spec = _simple_spec(
            connections=(
                ConnectionEntry(
                    conn_id="c1",
                    source_host="host1-1",
                    dest_host="host2-1",
                    traffic=LeakyBucketTraffic(
                        sigma=1e4, rho=1e6, peak=math.inf
                    ),
                    deadline=0.05,
                ),
            ),
        )
        back = codec.loads(codec.dumps(spec))
        assert back.connections[0].traffic.peak == math.inf

    def test_fault_plan_round_trips(self):
        spec = _simple_spec(
            faults=FaultPlan(
                config=FaultConfig(link_mtbf=100.0, link_mttr=5.0),
                script=(
                    ScriptedFault(time=1.0, action="fail", target=("s1", "s2")),
                    ScriptedFault(time=2.0, action="repair", target=("s1", "s2")),
                    ScriptedFault(time=3.0, action="fail", target="id1"),
                ),
                retry=RetryPolicy(base_delay=1.0, max_attempts=3),
            ),
        )
        back = codec.loads(codec.dumps(spec))
        assert back == spec
        # Link targets come back as tuples, node targets as strings.
        assert back.faults.script[0].target == ("s1", "s2")
        assert back.faults.script[2].target == "id1"

    def test_file_round_trip(self, tmp_path):
        spec = generate_spec(7)
        path = codec.save_file(spec, str(tmp_path / "spec.json"))
        assert codec.load_file(path) == spec


class TestStrictness:
    def test_unknown_top_level_field_rejected(self):
        payload = codec.spec_to_dict(_simple_spec())
        payload["surprise"] = 1
        with pytest.raises(ScenarioSpecError, match="surprise"):
            codec.dict_to_spec(payload)

    def test_unknown_nested_field_rejected(self):
        payload = codec.spec_to_dict(_simple_spec())
        payload["arrivals"]["surprise"] = 1
        with pytest.raises(ScenarioSpecError, match="surprise"):
            codec.dict_to_spec(payload)

    def test_unknown_topology_field_rejected(self):
        payload = codec.spec_to_dict(_simple_spec())
        payload["topology"]["n_ringz"] = 4
        with pytest.raises(ScenarioSpecError, match="n_ringz"):
            codec.dict_to_spec(payload)

    def test_wrong_type_rejected(self):
        payload = codec.spec_to_dict(_simple_spec())
        payload["arrivals"]["n_requests"] = "many"
        with pytest.raises(ScenarioSpecError):
            codec.dict_to_spec(payload)

    def test_bool_not_accepted_as_number(self):
        payload = codec.spec_to_dict(_simple_spec())
        payload["arrivals"]["utilization"] = True
        with pytest.raises(ScenarioSpecError):
            codec.dict_to_spec(payload)

    def test_unknown_format_version_rejected(self):
        payload = codec.spec_to_dict(_simple_spec())
        payload["format"] = 99
        with pytest.raises(ScenarioSpecError, match="format"):
            codec.dict_to_spec(payload)

    def test_unknown_traffic_type_rejected(self):
        spec = _simple_spec(
            connections=(
                ConnectionEntry(
                    conn_id="c1",
                    source_host="host1-1",
                    dest_host="host2-1",
                    traffic=DualPeriodicTraffic(
                        c1=1e3, p1=0.01, c2=5e2, p2=0.005
                    ),
                    deadline=0.05,
                ),
            ),
        )
        payload = codec.spec_to_dict(spec)
        payload["connections"][0]["traffic"]["type"] = "MysteryTraffic"
        with pytest.raises(ScenarioSpecError):
            codec.dict_to_spec(payload)


class TestHashing:
    def test_hash_is_content_addressed(self):
        a = generate_spec(3)
        b = generate_spec(3)
        assert codec.spec_hash(a) == codec.spec_hash(b)
        assert codec.spec_hash(a) != codec.spec_hash(generate_spec(4))

    def test_hash_stable_under_hand_edited_ints(self):
        """``600`` and ``600.0`` in a float field parse to the same spec
        and therefore the same hash."""
        text = codec.dumps(_simple_spec())
        edited = text.replace('"mean_lifetime": 600.0', '"mean_lifetime": 600')
        assert edited != text
        assert json.loads(edited)["arrivals"]["mean_lifetime"] == 600
        spec_a = codec.loads(text)
        spec_b = codec.loads(edited)
        assert spec_a == spec_b
        assert codec.spec_hash(spec_a) == codec.spec_hash(spec_b)

    def test_hash_ignores_formatting(self):
        spec = generate_spec(5)
        compact = codec.dumps(spec, indent=None)
        pretty = codec.dumps(spec, indent=2)
        assert compact != pretty
        assert codec.spec_hash(codec.loads(compact)) == codec.spec_hash(
            codec.loads(pretty)
        )


class TestValidation:
    def test_spec_needs_some_load(self):
        with pytest.raises(ScenarioSpecError, match="arrivals"):
            ScenarioSpec(name="empty")

    def test_duplicate_conn_ids_rejected(self):
        entry = ConnectionEntry(
            conn_id="dup",
            source_host="host1-1",
            dest_host="host2-1",
            traffic=DualPeriodicTraffic(c1=1e3, p1=0.01, c2=5e2, p2=0.005),
            deadline=0.05,
        )
        with pytest.raises(ScenarioSpecError, match="duplicate"):
            _simple_spec(
                connections=(entry, dataclasses.replace(entry))
            )

    def test_faults_require_arrivals(self):
        plan = FaultPlan(config=FaultConfig(link_mtbf=10.0))
        with pytest.raises(ScenarioSpecError, match="stochastic workload"):
            ScenarioSpec(
                name="t",
                arrivals=None,
                connections=(
                    ConnectionEntry(
                        conn_id="c1",
                        source_host="host1-1",
                        dest_host="host2-1",
                        traffic=DualPeriodicTraffic(
                            c1=1e3, p1=0.01, c2=5e2, p2=0.005
                        ),
                        deadline=0.05,
                    ),
                ),
                faults=plan,
            )

    def test_faults_reject_pinned_connections(self):
        plan = FaultPlan(config=FaultConfig(link_mtbf=10.0))
        with pytest.raises(ScenarioSpecError, match="pinned"):
            _simple_spec(
                connections=(
                    ConnectionEntry(
                        conn_id="c1",
                        source_host="host1-1",
                        dest_host="host2-1",
                        traffic=DualPeriodicTraffic(
                            c1=1e3, p1=0.01, c2=5e2, p2=0.005
                        ),
                        deadline=0.05,
                    ),
                ),
                faults=plan,
            )

    def test_beta_range_validated(self):
        with pytest.raises(ScenarioSpecError, match="beta"):
            AnalysisKnobs(beta=1.5)
