"""The committed multi-hop / cyclic family scenarios must replay clean.

``corpus/families/`` holds hand-picked scenario specs over the new
topology families — a 10-ring line (multi-hop feed-forward) and a 12-ring
unidirectional ring of switches (cyclic interference, resolved by the
fixed-point solver).  Each must parse through the strict codec and pass
the full six-invariant differential suite, here and in CI.
"""

import glob
import os

import pytest

from repro.config import AnalysisConfig
from repro.core.delay import ConnectionLoad, DelayAnalyzer
from repro.errors import FixedPointDivergenceError
from repro.network import compute_route
from repro.network.connection import ConnectionSpec
from repro.scenario import codec
from repro.scenario.check import CheckOptions, check_scenario
from repro.scenario.loader import build_topology

FAMILY_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "corpus", "families"
)
FAMILY_SPECS = sorted(glob.glob(os.path.join(FAMILY_DIR, "*.json")))


def test_family_corpus_exists():
    names = {os.path.basename(p) for p in FAMILY_SPECS}
    assert "line-10.json" in names
    assert "ring-of-switches-12-unidirectional.json" in names


@pytest.mark.parametrize(
    "path", FAMILY_SPECS, ids=[os.path.basename(p) for p in FAMILY_SPECS]
)
def test_family_scenario_passes_all_invariants(path):
    spec = codec.load_file(path)
    report = check_scenario(spec, CheckOptions())
    assert report.ok, report.format()


def test_ring_family_is_genuinely_cyclic():
    # The committed unidirectional-ring load set must actually exercise
    # the fixed-point regime: with the iteration cap at 1 the joint
    # analysis cannot converge.
    path = os.path.join(FAMILY_DIR, "ring-of-switches-12-unidirectional.json")
    spec = codec.load_file(path)
    topo = build_topology(spec)
    loads = [
        ConnectionLoad(
            ConnectionSpec(
                e.conn_id, e.source_host, e.dest_host, e.traffic, e.deadline
            ),
            compute_route(topo, e.source_host, e.dest_host),
            0.001,
            0.001,
        )
        for e in spec.connections
    ]
    with pytest.raises(FixedPointDivergenceError):
        DelayAnalyzer(
            topo,
            analysis_config=AnalysisConfig(fixed_point_max_iterations=1),
        ).compute(loads)
    reports = DelayAnalyzer(topo).compute(loads)
    assert len(reports) == len(loads)
    for report in reports.values():
        assert 0.0 < report.total_delay <= 1.0
