"""Fuzz harness: generator determinism, corpus runs, failure metadata."""

import dataclasses
import json
import os

import pytest

from repro.errors import ScenarioInvariantError, ScenarioSpecError
from repro.scenario import codec
from repro.scenario.check import INV_BOUND, CheckOptions
from repro.scenario.fuzz import (
    FuzzCase,
    check_reproducers,
    generate_spec,
    load_manifest,
    run_corpus,
    seeds_to_cases,
    write_manifest,
)

#: A handful of cheap, known-clean seeds for smoke-level corpus runs.
SMOKE_SEEDS = (1, 2, 3)
#: Planted-violation options (see CheckOptions.bound_scale); differential,
#: coarsening and replay are off so only the packet/bound invariant runs.
PLANTED = CheckOptions(
    differential=False, coarsening=False, replay=False, bound_scale=1e-4
)


class TestGenerator:
    def test_deterministic(self):
        assert generate_spec(42) == generate_spec(42)
        assert codec.spec_hash(generate_spec(42)) == codec.spec_hash(
            generate_spec(42)
        )

    def test_seeds_diverge(self):
        hashes = {codec.spec_hash(generate_spec(s)) for s in range(20)}
        assert len(hashes) == 20

    def test_specs_are_valid_and_serializable(self):
        for seed in range(30):
            spec = generate_spec(seed)
            assert codec.loads(codec.dumps(spec)) == spec

    def test_name_embeds_seed(self):
        assert "17" in generate_spec(17).name


class TestCorpus:
    def test_clean_corpus_passes(self, tmp_path):
        summary = run_corpus(
            seeds_to_cases(SMOKE_SEEDS), out_dir=str(tmp_path)
        )
        assert summary.ok
        assert summary.n_cases == len(SMOKE_SEEDS)
        assert not summary.failures
        summary.raise_first()  # no-op on a clean run

    def test_planted_violation_shrinks_to_reproducer(self, tmp_path):
        summary = run_corpus(
            seeds_to_cases([1]), options=PLANTED, out_dir=str(tmp_path)
        )
        assert not summary.ok
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert failure.seed == 1
        assert INV_BOUND in failure.invariants
        # Acceptance bar: the shrunk reproducer has at most 3 connections.
        assert len(failure.shrink.spec.connections) <= 3
        assert os.path.isfile(failure.reproducer_path)

        # The reproducer on disk replays the violation under the same
        # options and passes under production options (the violation was
        # planted by the checker, not by the CAC).
        reports = check_reproducers(str(tmp_path), options=PLANTED)
        assert list(reports) == [failure.reproducer_path]
        assert not next(iter(reports.values())).ok
        clean = check_reproducers(
            str(tmp_path),
            options=CheckOptions(differential=False, replay=False),
        )
        assert all(report.ok for report in clean.values())

    def test_failure_error_carries_metadata(self, tmp_path):
        summary = run_corpus(
            seeds_to_cases([1]), options=PLANTED, out_dir=str(tmp_path)
        )
        with pytest.raises(ScenarioInvariantError) as excinfo:
            summary.raise_first()
        err = excinfo.value
        assert err.seed == 1
        assert err.spec_hash == codec.spec_hash(generate_spec(1))
        assert INV_BOUND in err.invariants
        assert err.reproducer_path is not None
        assert os.path.isfile(err.reproducer_path)
        # Everything needed to replay is in the message.
        assert err.reproducer_path in str(err)


class TestManifest:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "scenarios.json")
        written = write_manifest(path, [5, 6, 7])
        loaded = load_manifest(path)
        assert loaded == written
        assert [c.seed for c in loaded] == [5, 6, 7]
        assert all(c.expected_hash for c in loaded)

    def test_hash_drift_is_detected(self, tmp_path):
        path = str(tmp_path / "scenarios.json")
        write_manifest(path, [5])
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["cases"][0]["hash"] = "0" * 64
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        summary = run_corpus(load_manifest(path), out_dir=str(tmp_path))
        assert not summary.ok
        with pytest.raises(ScenarioInvariantError, match="drift"):
            summary.raise_first()

    def test_bad_manifest_rejected(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"format": 2}, fh)
        with pytest.raises(ScenarioSpecError, match="manifest"):
            load_manifest(path)


class TestParallelDriving:
    def test_jobs_gt_one_matches_serial(self, tmp_path):
        cases = seeds_to_cases(SMOKE_SEEDS)
        serial = run_corpus(cases, out_dir=str(tmp_path))
        fanned = run_corpus(cases, jobs=2, out_dir=str(tmp_path))
        assert [o.spec_hash for o in serial.outcomes] == [
            o.spec_hash for o in fanned.outcomes
        ]
        assert [o.report.ok for o in serial.outcomes] == [
            o.report.ok for o in fanned.outcomes
        ]


class TestCaseShape:
    def test_seeds_to_cases(self):
        cases = seeds_to_cases([3, 1])
        assert cases == [FuzzCase(seed=3), FuzzCase(seed=1)]
        assert all(c.expected_hash is None for c in cases)

    def test_cases_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FuzzCase(seed=1).seed = 2  # type: ignore[misc]
