"""Shrinker: ddmin units, deterministic minimization, planted violations."""

from typing import FrozenSet, Sequence

import pytest

from repro.config import NetworkConfig
from repro.scenario.check import INV_BOUND, CheckOptions, check_scenario
from repro.scenario.fuzz import _failing_predicate
from repro.scenario.shrink import _ddmin, shrink_spec
from repro.scenario.spec import ConnectionEntry, PacketRunSpec, ScenarioSpec
from repro.traffic.dual_periodic import DualPeriodicTraffic


def _entry(conn_id: str, src_ring: int, dst_ring: int) -> ConnectionEntry:
    return ConnectionEntry(
        conn_id=conn_id,
        source_host=f"host{src_ring}-1",
        dest_host=f"host{dst_ring}-1",
        traffic=DualPeriodicTraffic(c1=8e3, p1=0.01, c2=8e3, p2=0.004),
        deadline=0.1,
    )


def _explicit_spec(*entries: ConnectionEntry) -> ScenarioSpec:
    return ScenarioSpec(
        name="shrink-me",
        topology=NetworkConfig(n_rings=4, hosts_per_ring=3),
        connections=entries,
        packet=PacketRunSpec(duration=0.05),
    )


class TestDdmin:
    def test_empty_input(self):
        assert _ddmin([], lambda items: True) == []

    def test_single_culprit(self):
        calls = []

        def fails(items: Sequence[int]) -> bool:
            calls.append(tuple(items))
            return 7 in items

        assert _ddmin(list(range(10)), fails) == [7]

    def test_pair_of_culprits(self):
        def fails(items: Sequence[int]) -> bool:
            return 2 in items and 9 in items

        assert sorted(_ddmin(list(range(12)), fails)) == [2, 9]

    def test_all_needed(self):
        items = [1, 2, 3]

        def fails(candidate: Sequence[int]) -> bool:
            return list(candidate) == items

        assert _ddmin(list(items), fails) == items

    def test_empty_list_failing_wins(self):
        assert _ddmin([1, 2, 3], lambda items: True) == []


class TestSyntheticShrink:
    """Shrink against a cheap predicate keyed on one poisoned connection."""

    @staticmethod
    def _poison_predicate(spec: ScenarioSpec) -> FrozenSet[str]:
        if any(e.conn_id == "bad" for e in spec.connections):
            return frozenset({"synthetic_invariant"})
        return frozenset()

    def test_reduces_to_the_culprit(self):
        spec = _explicit_spec(
            _entry("ok-1", 1, 2),
            _entry("bad", 2, 3),
            _entry("ok-2", 3, 4),
            _entry("ok-3", 1, 4),
        )
        result = shrink_spec(spec, self._poison_predicate)
        assert [e.conn_id for e in result.spec.connections] == ["bad"]
        assert result.invariants == ("synthetic_invariant",)
        # Topology shrinks to the smallest network still hosting the
        # culprit's endpoints (host2-1 -> host3-1 needs 3 rings, 1 host).
        assert result.spec.topology.n_rings == 3
        assert result.spec.topology.hosts_per_ring == 1
        # Packet horizon shrinks to the shortest candidate.
        assert result.spec.packet.duration == 0.05

    def test_shrink_is_deterministic(self):
        spec = _explicit_spec(
            _entry("ok-1", 1, 2),
            _entry("bad", 2, 3),
            _entry("ok-2", 3, 4),
        )
        a = shrink_spec(spec, self._poison_predicate)
        b = shrink_spec(spec, self._poison_predicate)
        assert a.spec == b.spec
        assert a.evaluations == b.evaluations
        assert a.iterations == b.iterations

    def test_passing_spec_is_rejected(self):
        spec = _explicit_spec(_entry("ok-1", 1, 2))
        with pytest.raises(ValueError, match="violates"):
            shrink_spec(spec, self._poison_predicate)

    def test_erroring_candidates_count_as_passing(self):
        spec = _explicit_spec(_entry("bad", 2, 3), _entry("ok-1", 1, 4))

        def touchy(candidate: ScenarioSpec) -> FrozenSet[str]:
            # Any candidate that dropped a connection blows up; the
            # shrinker must treat that as "does not reproduce" and keep
            # the original pair.
            if len(candidate.connections) != 2:
                raise ValueError("boom")
            return frozenset({"synthetic_invariant"})

        # Non-ReproError propagates: the shrinker only swallows the
        # domain's own errors.
        with pytest.raises(ValueError, match="boom"):
            shrink_spec(spec, touchy)


class TestPlantedViolation:
    """End-to-end: a bound violation planted via ``bound_scale`` shrinks
    to a tiny reproducer through the real invariant suite."""

    #: Packet/bound invariant only; the other checks neither fire under
    #: bound_scale nor need to run, and skipping them keeps the test fast.
    OPTIONS = CheckOptions(
        differential=False,
        coarsening=False,
        replay=False,
        bound_scale=1e-4,
    )

    def _spec(self) -> ScenarioSpec:
        return _explicit_spec(
            _entry("v-1", 1, 2),
            _entry("v-2", 2, 3),
            _entry("v-3", 3, 4),
        )

    def test_planted_violation_is_caught_and_shrunk(self):
        spec = self._spec()
        report = check_scenario(spec, self.OPTIONS)
        assert not report.ok
        assert INV_BOUND in report.violated_invariants

        result = shrink_spec(spec, _failing_predicate(self.OPTIONS))
        assert INV_BOUND in result.invariants
        # The acceptance bar: a minimal reproducer with at most 3
        # connections; here ddmin gets it down to one.
        assert len(result.spec.connections) <= 3
        assert check_scenario(result.spec, self.OPTIONS).ok is False
        # The same spec passes under production options (violation was
        # planted by the checker, not by the CAC).
        assert check_scenario(
            result.spec, CheckOptions(differential=False, replay=False)
        ).ok

    def test_planted_shrink_is_deterministic(self):
        spec = self._spec()
        a = shrink_spec(spec, _failing_predicate(self.OPTIONS))
        b = shrink_spec(spec, _failing_predicate(self.OPTIONS))
        assert a.spec == b.spec
        assert a.evaluations == b.evaluations
