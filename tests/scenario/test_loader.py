"""Loader: spec -> engine configs, end-to-end runs, signatures."""

import dataclasses

import pytest

from repro.config import CACConfig, NetworkConfig, SimulationConfig
from repro.errors import ScenarioSpecError
from repro.experiments.common import ExperimentSettings
from repro.faults.injector import FaultConfig, ScriptedFault
from repro.faults.retry import RetryPolicy
from repro.scenario import loader
from repro.scenario.spec import (
    AnalysisKnobs,
    ArrivalsSpec,
    ConnectionEntry,
    FaultPlan,
    ScenarioSpec,
)
from repro.traffic.dual_periodic import DualPeriodicTraffic


def _entry(conn_id: str, src: str, dst: str) -> ConnectionEntry:
    return ConnectionEntry(
        conn_id=conn_id,
        source_host=src,
        dest_host=dst,
        traffic=DualPeriodicTraffic(c1=8e3, p1=0.01, c2=8e3, p2=0.004),
        deadline=0.1,
    )


class TestCacConfig:
    def test_exact_mode_is_none(self):
        """Default knobs keep the pre-spec code path: the simulator builds
        its own ``CACConfig(beta=beta)``, so figure CSVs stay identical."""
        spec = ScenarioSpec(
            name="t", arrivals=ArrivalsSpec(utilization=0.3)
        )
        assert loader.cac_config(spec) is None

    def test_full_recompute_mode_materializes(self):
        spec = ScenarioSpec(
            name="t",
            cac=AnalysisKnobs(beta=0.25, incremental=False),
            arrivals=ArrivalsSpec(utilization=0.3),
        )
        cfg = loader.cac_config(spec)
        assert cfg is not None
        assert cfg.beta == 0.25
        assert cfg.incremental is False

    def test_coarsened_mode_materializes(self):
        spec = ScenarioSpec(
            name="t",
            cac=AnalysisKnobs(coarsen_segments=16),
            arrivals=ArrivalsSpec(utilization=0.3),
        )
        cfg = loader.cac_config(spec)
        assert cfg is not None
        assert cfg.analysis.coarsen_segments == 16


class TestConnectionSimConfig:
    def test_matches_hand_built_figure_point(self):
        """The experiments' scenario() producer must reconstruct exactly
        the run config they used to build by hand (byte-identical CSVs
        depend on it)."""
        settings = ExperimentSettings()
        u, beta, seed = 0.5, 0.5, settings.seeds[0]
        cfg = loader.connection_sim_config(settings.scenario(u, beta, seed))
        assert cfg.utilization == u
        assert cfg.beta == beta
        assert cfg.seed == seed
        assert cfg.n_requests == settings.n_requests
        assert cfg.warmup_requests == settings.warmup_requests
        assert cfg.network == settings.network
        assert cfg.cac is None
        assert cfg.faults is None and cfg.retry is None

    def test_faults_map_through(self):
        faults = FaultConfig(link_mtbf=100.0, link_mttr=5.0)
        retry = RetryPolicy(base_delay=1.0, max_attempts=2)
        script = (
            ScriptedFault(time=1.0, action="fail", target=("s1", "s2")),
        )
        spec = ScenarioSpec(
            name="t",
            arrivals=ArrivalsSpec(utilization=0.3),
            faults=FaultPlan(config=faults, script=script, retry=retry),
        )
        cfg = loader.connection_sim_config(spec)
        assert cfg.faults == faults
        assert cfg.retry == retry
        assert cfg.fault_script is not None
        assert cfg.fault_script.events == script

    def test_explicit_only_spec_has_no_sim_config(self):
        spec = ScenarioSpec(
            name="t",
            connections=(_entry("c1", "host1-1", "host2-1"),),
        )
        with pytest.raises(ScenarioSpecError, match="no stochastic"):
            loader.connection_sim_config(spec)

    def test_workload_and_scale_carry_over(self):
        workload = SimulationConfig().workload
        spec = ScenarioSpec(
            name="t",
            arrivals=ArrivalsSpec(
                utilization=0.4,
                workload=workload,
                load_scale=1.25,
                mean_lifetime=30.0,
            ),
        )
        sim = loader.connection_sim_config(spec).simulation
        assert sim.workload == workload
        assert sim.load_scale == 1.25
        assert sim.mean_lifetime == 30.0


class TestRunScenario:
    TOPOLOGY = NetworkConfig(n_rings=3, hosts_per_ring=2)

    def test_explicit_only_run(self):
        spec = ScenarioSpec(
            name="t",
            topology=self.TOPOLOGY,
            connections=(
                _entry("c1", "host1-1", "host2-1"),
                _entry("c2", "host2-2", "host3-1"),
            ),
        )
        outcome = loader.run_scenario(spec)
        assert [d.conn_id for d in outcome.explicit] == ["c1", "c2"]
        assert all(d.admitted for d in outcome.explicit)
        assert outcome.sim_result is None
        assert len(outcome.active_loads()) == 2
        assert set(outcome.final_bounds()) == {"c1", "c2"}

    def test_bad_endpoint_is_recorded_not_fatal(self):
        spec = ScenarioSpec(
            name="t",
            topology=self.TOPOLOGY,
            connections=(
                _entry("ghost", "host9-9", "host1-1"),
                _entry("c1", "host1-1", "host2-1"),
            ),
        )
        outcome = loader.run_scenario(spec)
        ghost, ok = outcome.explicit
        assert not ghost.admitted
        assert ghost.reason.startswith("error:")
        assert ok.admitted

    def test_signature_is_replay_stable(self):
        spec = ScenarioSpec(
            name="t",
            topology=self.TOPOLOGY,
            arrivals=ArrivalsSpec(
                utilization=0.4, n_requests=12, warmup_requests=2
            ),
            connections=(_entry("c1", "host1-1", "host3-1"),),
        )
        first = loader.run_scenario(spec).signature
        second = loader.run_scenario(spec).signature
        assert first == second
        assert "explicit c1" in first
        assert "metrics" in first

    def test_signature_differs_across_seeds(self):
        def sig(seed: int) -> str:
            spec = ScenarioSpec(
                name="t",
                topology=self.TOPOLOGY,
                arrivals=ArrivalsSpec(
                    utilization=0.6, seed=seed, n_requests=15
                ),
            )
            return loader.run_scenario(spec).signature

        assert sig(1) != sig(2)

    def test_incremental_and_full_agree(self):
        spec = ScenarioSpec(
            name="t",
            topology=self.TOPOLOGY,
            arrivals=ArrivalsSpec(
                utilization=0.5, n_requests=15, warmup_requests=0
            ),
        )
        full = dataclasses.replace(
            spec, cac=AnalysisKnobs(beta=spec.cac.beta, incremental=False)
        )
        assert (
            loader.run_scenario(spec).signature
            == loader.run_scenario(full).signature
        )


class TestPacketValidation:
    def test_bounds_cover_admitted_set(self):
        spec = ScenarioSpec(
            name="t",
            topology=NetworkConfig(n_rings=2, hosts_per_ring=1),
            connections=(_entry("c1", "host1-1", "host2-1"),),
        )
        outcome = loader.run_scenario(spec)
        result, bounds = loader.run_packet_validation(outcome)
        assert set(bounds) == {"c1"}
        assert bounds["c1"] is not None
        assert result.delivered_batches.get("c1", 0) > 0
        assert result.worst_observed("c1") <= bounds["c1"]


class TestAdmissionController:
    def test_exact_mode_uses_spec_beta(self):
        spec = ScenarioSpec(
            name="t",
            cac=AnalysisKnobs(beta=0.75),
            connections=(_entry("c1", "host1-1", "host2-1"),),
        )
        cac = loader.admission_controller(spec)
        assert cac.config == CACConfig(beta=0.75)
