"""Tests for the greedy traffic regulator (shaper)."""

import math

import pytest

from repro.envelopes.curve import Curve
from repro.errors import BufferOverflowError, ConfigurationError, UnstableSystemError
from repro.servers.regulator import RegulatorServer
from repro.traffic import DualPeriodicTraffic


class TestConstruction:
    def test_valid(self):
        r = RegulatorServer(sigma=1000.0, rho=1e6)
        assert r.shaping_curve()(0.0) == 1000.0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            RegulatorServer(sigma=-1.0, rho=1.0)
        with pytest.raises(ConfigurationError):
            RegulatorServer(sigma=0.0, rho=0.0)
        with pytest.raises(ConfigurationError):
            RegulatorServer(sigma=0.0, rho=100.0, peak=50.0)
        with pytest.raises(ConfigurationError):
            RegulatorServer(sigma=0.0, rho=1.0, buffer_bits=0.0)


class TestShaping:
    def test_output_envelope_capped(self):
        # A 10 kb burst shaped to sigma=1 kb, rho=1 Mbps.
        r = RegulatorServer(sigma=1000.0, rho=1e6)
        result = r.analyze(Curve.constant(10_000.0))
        assert result.output(0.0) == pytest.approx(1000.0)
        assert result.output(0.001) == pytest.approx(2000.0)

    def test_shaping_delay_is_burst_drain_time(self):
        r = RegulatorServer(sigma=1000.0, rho=1e6)
        result = r.analyze(Curve.constant(10_000.0))
        # (10000 - 1000) / 1e6 = 9 ms to drain the excess burst.
        assert result.delay_bound == pytest.approx(0.009)

    def test_conforming_traffic_passes_untouched(self):
        r = RegulatorServer(sigma=5000.0, rho=2e6)
        arrival = Curve.affine(1000.0, 1e6)
        result = r.analyze(arrival)
        assert result.delay_bound == pytest.approx(0.0, abs=1e-9)
        for t in (0.0, 0.01, 0.1):
            assert result.output(t) == pytest.approx(arrival(t))

    def test_unstable_input_raises(self):
        r = RegulatorServer(sigma=1000.0, rho=1e6)
        with pytest.raises(UnstableSystemError):
            r.analyze(Curve.affine(0.0, 2e6))

    def test_buffer_overflow_raises(self):
        r = RegulatorServer(sigma=100.0, rho=1e6, buffer_bits=500.0)
        with pytest.raises(BufferOverflowError):
            r.analyze(Curve.constant(10_000.0))

    def test_peak_cap_applies(self):
        r = RegulatorServer(sigma=10_000.0, rho=1e6, peak=2e6)
        result = r.analyze(Curve.constant(5_000.0))
        assert result.output(0.001) <= 2e6 * 0.001 + 1e-9


class TestInChain:
    def test_regulated_connection_has_smaller_port_delay(self):
        """Ref [15]'s point: shaping at the entry reduces everyone's delay
        at the shared multiplexer (at the cost of shaping delay)."""
        from repro.config import build_network
        from repro.core.delay import ConnectionLoad, DelayAnalyzer, RegulatorSpec
        from repro.network.connection import ConnectionSpec
        from repro.network.routing import compute_route

        traffic = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)
        topo = build_network()
        analyzer = DelayAnalyzer(topo)
        s0 = ConnectionSpec("c0", "host1-1", "host2-1", traffic, 0.3)
        s1 = ConnectionSpec("c1", "host1-2", "host3-1", traffic, 0.3)
        r0 = compute_route(topo, "host1-1", "host2-1")
        r1 = compute_route(topo, "host1-2", "host3-1")
        reg = RegulatorSpec(sigma=20_000.0, rho=9e6)

        plain = analyzer.compute(
            [ConnectionLoad(s0, r0, 0.001, 0.002), ConnectionLoad(s1, r1, 0.002, 0.002)]
        )
        shaped = analyzer.compute(
            [
                ConnectionLoad(s0, r0, 0.001, 0.002, regulator=reg),
                ConnectionLoad(s1, r1, 0.002, 0.002),
            ]
        )
        # c1 (unshaped bystander) sees a smaller uplink delay once c0 is
        # regulated.
        assert shaped["c1"].hop_delay("uplink") <= plain["c1"].hop_delay("uplink") + 1e-12
        # c0 pays a shaping delay in exchange.
        assert shaped["c0"].hop_delay("regulator") >= 0.0

    def test_regulator_stage_named_in_breakdown(self):
        from repro.config import build_network
        from repro.core.delay import ConnectionLoad, DelayAnalyzer, RegulatorSpec
        from repro.network.connection import ConnectionSpec
        from repro.network.routing import compute_route

        traffic = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)
        topo = build_network()
        analyzer = DelayAnalyzer(topo)
        spec = ConnectionSpec("c", "host1-1", "host2-1", traffic, 0.3)
        route = compute_route(topo, "host1-1", "host2-1")
        load = ConnectionLoad(
            spec, route, 0.002, 0.002, regulator=RegulatorSpec(30_000.0, 9e6)
        )
        report = analyzer.compute([load])["c"]
        assert any("regulator" in name for name, _ in report.per_hop)
