"""Tests for the server framework (constant-delay, chains)."""

import pytest

from repro.envelopes.curve import Curve
from repro.errors import ConfigurationError
from repro.servers import ConstantDelayServer, ServerChain


class TestConstantDelayServer:
    def test_delay_bound(self):
        s = ConstantDelayServer(0.005, name="prop")
        r = s.analyze(Curve.affine(10.0, 1.0))
        assert r.delay_bound == 0.005

    def test_output_unchanged(self):
        s = ConstantDelayServer(0.005)
        a = Curve.affine(10.0, 1.0)
        r = s.analyze(a)
        assert r.output is a

    def test_zero_delay_ok(self):
        assert ConstantDelayServer(0.0).analyze(Curve.zero()).delay_bound == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantDelayServer(-1.0)

    def test_no_backlog(self):
        r = ConstantDelayServer(1.0).analyze(Curve.constant(100.0))
        assert r.backlog_bound == 0.0


class TestServerChain:
    def test_delays_sum(self):
        chain = ServerChain(
            [ConstantDelayServer(0.001), ConstantDelayServer(0.002)], name="x"
        )
        r = chain.analyze(Curve.affine(1.0, 1.0))
        assert r.delay_bound == pytest.approx(0.003)

    def test_empty_chain(self):
        chain = ServerChain([])
        a = Curve.affine(1.0, 1.0)
        r = chain.analyze(a)
        assert r.delay_bound == 0.0
        assert r.output is a

    def test_per_hop_breakdown(self):
        chain = ServerChain(
            [ConstantDelayServer(0.001, name="a"), ConstantDelayServer(0.002, name="b")]
        )
        breakdown, out = chain.analyze_per_hop(Curve.zero())
        assert [name for name, _ in breakdown] == ["a", "b"]
        assert breakdown[1][1].delay_bound == 0.002
        assert out(1.0) == 0.0

    def test_repr_lists_servers(self):
        chain = ServerChain([ConstantDelayServer(0.1, name="hop1")], name="c")
        assert "hop1" in repr(chain)
