"""End-to-end verdict and robustness tests for the admission service."""

import asyncio

import pytest

from repro.config import CACConfig, NetworkConfig, ServiceConfig, build_network
from repro.errors import AuditError
from repro.network.connection import ConnectionSpec
from repro.service.bench import TickClock
from repro.service.degrade import EXACT, FROZEN
from repro.service.server import (
    ADMITTED,
    BUSY,
    ERROR,
    REJECTED,
    RELEASED,
    TIMEOUT,
    UNKNOWN,
    AdmissionService,
)
from repro.sim.random import RandomStreams
from repro.traffic import DualPeriodicTraffic

NET = NetworkConfig(n_rings=4, hosts_per_ring=4)
TRAFFIC = DualPeriodicTraffic(c1=60_000.0, p1=0.015, c2=30_000.0, p2=0.005)
HOPELESS = DualPeriodicTraffic(
    c1=2_000_000.0, p1=0.015, c2=1_000_000.0, p2=0.005
)


def _spec(cid, src="host1-1", dst="host2-1", deadline=0.09, traffic=TRAFFIC):
    return ConnectionSpec(cid, src, dst, traffic, deadline)


def _service(clock=None, **overrides):
    defaults = dict(workers=0, default_timeout=1e6, snapshot_every=0)
    defaults.update(overrides)
    return AdmissionService(
        build_network(NET),
        network_config=NET,
        cac_config=CACConfig(),
        service_config=ServiceConfig(**defaults),
        clock=clock or TickClock(),
    )


def run(coro):
    return asyncio.run(coro)


class TestVerdicts:
    def test_admit_reject_release_unknown_duplicate(self):
        async def scenario():
            async with _service() as service:
                admitted = await service.submit_admit(_spec("c1"))
                rejected = await service.submit_admit(
                    _spec("c2", traffic=HOPELESS)
                )
                duplicate = await service.submit_admit(_spec("c1"))
                released = await service.submit_release("c1")
                unknown = await service.submit_release("c1")
                return admitted, rejected, duplicate, released, unknown

        admitted, rejected, duplicate, released, unknown = run(scenario())
        assert admitted.verdict == ADMITTED
        assert admitted.delay_bound is not None
        assert admitted.delay_bound <= 0.09
        assert rejected.verdict == REJECTED
        assert duplicate.verdict == ERROR
        assert "already active" in duplicate.reason
        assert duplicate.conn_id == "c1"
        assert released.verdict == RELEASED
        assert unknown.verdict == UNKNOWN

    def test_no_route_rejects(self):
        async def scenario():
            async with _service() as service:
                await service.inject_node_failure("id3")
                return await service.submit_admit(
                    _spec("c1", "host3-1", "host4-1")
                )

        response = run(scenario())
        assert response.verdict == REJECTED
        assert "route" in response.reason

    def test_not_running_is_busy(self):
        service = _service()
        response = run(service.submit_admit(_spec("c1")))
        assert response.verdict == BUSY

    def test_counters_and_metrics(self):
        async def scenario():
            async with _service() as service:
                await service.submit_admit(_spec("c1"))
                await service.submit_admit(_spec("c2", traffic=HOPELESS))
                await service.submit_release("c1")
                return service.metrics_snapshot()

        snap = run(scenario())
        assert snap["n_requests"] == 2
        assert snap["n_admitted"] == 1
        assert snap["verdicts"][ADMITTED] == 1
        assert snap["verdicts"][REJECTED] == 1
        assert snap["verdicts"][RELEASED] == 1


class TestTimeouts:
    def test_deadline_expired_at_dequeue(self):
        # Every clock read advances 10 ms; a 5 ms deadline is already in
        # the past by the time the dispatcher looks at the request.
        async def scenario():
            async with _service(clock=TickClock(step=0.010)) as service:
                return await service.submit_admit(
                    _spec("late"), timeout=0.005
                )

        response = run(scenario())
        assert response.verdict == TIMEOUT
        assert response.retry_after is not None
        assert response.retry_after > 0.0

    def test_generous_deadline_admits(self):
        async def scenario():
            async with _service(clock=TickClock(step=0.010)) as service:
                return await service.submit_admit(_spec("ok"), timeout=60.0)

        assert run(scenario()).verdict == ADMITTED


class TestBackpressure:
    def test_priority_shedding_and_queue_bound(self):
        async def scenario():
            async with _service(queue_capacity=2) as service:
                # All four submissions enqueue before the dispatcher runs
                # (task creation order is the event-loop ready order).
                t_a = asyncio.create_task(
                    service.submit_admit(_spec("a", "host1-1", "host2-1"), priority=1)
                )
                t_b = asyncio.create_task(
                    service.submit_admit(_spec("b", "host1-2", "host2-2"), priority=1)
                )
                t_c = asyncio.create_task(
                    service.submit_admit(_spec("c", "host1-3", "host2-3"), priority=0)
                )
                t_d = asyncio.create_task(
                    service.submit_admit(_spec("d", "host3-1", "host4-1"), priority=2)
                )
                responses = await asyncio.gather(t_a, t_b, t_c, t_d)
                return responses, service.metrics.n_shed

        (a, b, c, d), n_shed = run(scenario())
        # c (lowest priority) bounced off the full queue; b (youngest of
        # the lowest remaining priority) was displaced by high-priority d.
        assert a.verdict == ADMITTED
        assert b.verdict == BUSY and "shed" in b.reason
        assert c.verdict == BUSY and "full" in c.reason
        assert d.verdict == ADMITTED
        assert n_shed == 2

    def test_releases_are_never_shed(self):
        async def scenario():
            async with _service(queue_capacity=1) as service:
                await service.submit_admit(_spec("keep"))
                tasks = [
                    asyncio.create_task(service.submit_admit(_spec("a")))
                ]
                tasks.append(
                    asyncio.create_task(service.submit_release("keep"))
                )
                return await asyncio.gather(*tasks)

        admit, release = run(scenario())
        assert release.verdict == RELEASED

    def test_busy_retry_hints_follow_retry_policy_substream(self):
        async def scenario(seed):
            async with _service(queue_capacity=1, seed=seed) as service:
                hints = []
                for _ in range(3):
                    t_a = asyncio.create_task(
                        service.submit_admit(_spec("fill", "host1-1", "host2-1"))
                    )
                    t_b = asyncio.create_task(
                        service.submit_admit(_spec("bounce", "host1-2", "host2-2"))
                    )
                    a, b = await asyncio.gather(t_a, t_b)
                    assert b.verdict == BUSY
                    hints.append(b.retry_after)
                    await service.submit_release("fill")
                return hints

        first = run(scenario(seed=5))
        second = run(scenario(seed=5))
        other = run(scenario(seed=6))
        assert first == second
        assert first != other
        # Exponential shape: each hint roughly doubles (jitter <= 10%).
        assert first[0] < first[1] < first[2]

    def test_retry_hint_matches_policy_substream_exactly(self):
        async def scenario():
            async with _service(queue_capacity=1, seed=11) as service:
                t_a = asyncio.create_task(
                    service.submit_admit(_spec("fill", "host1-1", "host2-1"))
                )
                t_b = asyncio.create_task(
                    service.submit_admit(_spec("bounce", "host1-2", "host2-2"))
                )
                _, b = await asyncio.gather(t_a, t_b)
                return b.retry_after, service._retry_policy

        hint, policy = run(scenario())
        expected = policy.delay(1, RandomStreams(11).stream("retry:bounce"))
        assert hint == expected


class TestFreeze:
    def test_freeze_sheds_and_thaws(self):
        async def scenario():
            clock = TickClock(step=1e-6)
            service = _service(
                clock=clock,
                latency_window=4,
                min_dwell=4,
                freeze_probe_every=4,
            )
            async with service:
                # Overload: every decision measures as one second.
                clock.step = 1.0
                busy = 0
                for j in range(12):
                    response = await service.submit_admit(
                        _spec(f"hot-{j}", f"host1-{(j % 4) + 1}", f"host2-{(j % 4) + 1}", 0.15)
                    )
                    if response.verdict == BUSY:
                        busy += 1
                frozen = service.ladder.level
                # Recovery: decisions measure fast, the ladder walks down.
                clock.step = 1e-6
                for j in range(40):
                    await service.submit_admit(
                        _spec(f"cool-{j}", "host3-1", "host4-1")
                    )
                    await service.submit_release(f"cool-{j}")
                return busy, frozen, service.ladder.level

        busy, frozen, final = run(scenario())
        assert frozen == FROZEN
        assert busy > 0
        assert final == EXACT


class TestConcurrencyRegressions:
    """Races found by reprolint RL007 and fixed with explicit idioms."""

    def test_concurrent_stops_are_idempotent(self):
        # stop() claims the dispatcher handle before awaiting it, so a
        # second stop (racing or sequential) never awaits the same task.
        async def scenario():
            service = _service()
            await service.start()
            await asyncio.gather(service.stop(), service.stop())
            await service.stop()
            return service._dispatcher

        assert run(scenario()) is None

    def test_kill_then_stop_is_safe(self):
        async def scenario():
            service = _service()
            await service.start()
            await service.simulate_kill()
            await service.simulate_kill()  # double kill: handle claimed
            await service.stop()
            return service._dispatcher

        assert run(scenario()) is None

    def test_concurrent_duplicate_admits_one_winner(self):
        # The duplicate check runs under the structure lock, so two
        # in-flight admits of the same id resolve to exactly one
        # admission even when the decision itself suspends (workers=1
        # pushes _decide through the executor).
        async def scenario():
            async with _service(workers=1) as service:
                first, second = await asyncio.gather(
                    service.submit_admit(_spec("dup", "host1-1", "host2-1")),
                    service.submit_admit(_spec("dup", "host1-2", "host2-2")),
                )
                return sorted([first.verdict, second.verdict])

        verdicts = run(scenario())
        assert ADMITTED in verdicts
        assert verdicts.count(ADMITTED) == 1
        assert set(verdicts) <= {ADMITTED, ERROR, REJECTED}

    def test_overlap_merge_handoff_admits_and_audits_clean(self):
        # Successive admissions whose routes share rings force shard
        # merges; the deciding shard's lock is re-acquired after the
        # overlap locks are dropped, and the exit audit in stop() proves
        # no allocation leaked through the handoff.
        async def scenario():
            async with _service() as service:
                r1 = await service.submit_admit(
                    _spec("m1", "host1-1", "host2-1")
                )
                r2 = await service.submit_admit(
                    _spec("m2", "host2-2", "host3-1")
                )
                r3 = await service.submit_admit(
                    _spec("m3", "host1-2", "host3-2")
                )
                for cid in ("m1", "m2", "m3"):
                    await service.submit_release(cid)
                return r1, r2, r3

        r1, r2, r3 = run(scenario())
        assert (r1.verdict, r2.verdict, r3.verdict) == (
            ADMITTED,
            ADMITTED,
            ADMITTED,
        )

    def test_journal_write_with_no_journal_is_noop(self):
        async def scenario():
            async with _service() as service:
                assert service.journal is None
                await service._journal("admit", {"conn_id": "ghost"})
                return await service.submit_admit(_spec("c1"))

        assert run(scenario()).verdict == ADMITTED


class TestShutdownAudit:
    def test_stop_raises_on_ledger_leak(self):
        async def scenario():
            service = _service()
            async with service:
                await service.submit_admit(_spec("c1"))
                # Sabotage the ledger behind the controller's back.
                ring = service.state.topology.rings["ring1"]
                ring.allocate("ghost", 1e-3)

        with pytest.raises(AuditError, match="leaked"):
            run(scenario())

    def test_clean_stop_passes_audit(self):
        async def scenario():
            async with _service() as service:
                await service.submit_admit(_spec("c1"))
                await service.submit_release("c1")

        run(scenario())
