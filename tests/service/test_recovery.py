"""Kill-at-any-journal-offset recovery: restore must be bit-identical.

The property (satellite of the crash-recovery tentpole): for *any* prefix
of the scripted workload, killing the server after that prefix and
restoring from snapshot + journal tail yields

* the exact recovery signature the dead server had (prefix identity), and
* after replaying the remaining operations, the exact final signature of
  an uninterrupted run (continuation identity) — with a clean ledger
  audit at every shutdown.
"""

import asyncio
import itertools
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CACConfig, build_network
from repro.service.bench import (
    TickClock,
    _fresh_service,
    _network_config,
    apply_ops,
    deterministic_config,
    trajectory_ops,
)
from repro.service.server import AdmissionService

OPS = trajectory_ops(with_faults=True)


def _restore(wal):
    return AdmissionService.restore(
        build_network(_network_config()),
        wal,
        network_config=_network_config(),
        cac_config=CACConfig(),
        service_config=deterministic_config(),
        clock=TickClock(),
    )


class _Reference:
    """Uninterrupted run, computed once: signature after every op."""

    signatures = None
    final = None

    @classmethod
    async def get(cls):
        if cls.signatures is None:
            import tempfile

            with tempfile.TemporaryDirectory() as tmp:
                service = _fresh_service(os.path.join(tmp, "ref"))
                signatures = []
                await service.start()
                await apply_ops(service, OPS, signatures=signatures)
                final = service.signature()
                await service.stop()
                cls.signatures, cls.final = signatures, final
        return cls.signatures, cls.final


_WAL_IDS = itertools.count()


async def _kill_restore_continue(tmp_path, offset, garbage=b""):
    signatures, final = await _Reference.get()
    # Unique per invocation: hypothesis reuses tmp_path across examples,
    # and a stale directory would hand restore() a snapshot from the
    # previous example's continuation phase.
    wal = os.path.join(str(tmp_path), f"wal-{next(_WAL_IDS)}")
    victim = _fresh_service(wal)
    await victim.start()
    await apply_ops(victim, OPS[:offset])
    await victim.simulate_kill()
    if garbage:
        with open(os.path.join(wal, "journal.jsonl"), "ab") as fh:
            fh.write(garbage)
    restored, report = _restore(wal)
    expected = (
        signatures[offset - 1] if offset else restored.signature()
    )
    assert report.signature == expected, f"prefix mismatch at offset {offset}"
    await restored.start(fresh_journal=False)
    await apply_ops(restored, OPS[offset:])
    assert restored.signature() == final, f"continuation mismatch at {offset}"
    await restored.stop()
    return report


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(offset=st.integers(min_value=0, max_value=len(OPS)))
def test_kill_at_any_offset_restores_bit_identically(tmp_path, offset):
    asyncio.run(_kill_restore_continue(tmp_path, offset))


@pytest.mark.parametrize("offset", [0, 1, len(OPS) // 2, len(OPS)])
def test_kill_at_boundary_offsets(tmp_path, offset):
    asyncio.run(_kill_restore_continue(tmp_path, offset))


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(garbage=st.binary(min_size=1, max_size=60))
def test_torn_tail_never_corrupts_state(tmp_path, garbage):
    report = asyncio.run(
        _kill_restore_continue(tmp_path, len(OPS) // 2, garbage=garbage)
    )
    # Random garbage cannot extend the trusted chain.
    assert report.truncated_tail or report.n_replayed >= 0


def test_restore_uses_snapshot_plus_tail(tmp_path):
    async def scenario():
        wal = os.path.join(str(tmp_path), "wal")
        victim = _fresh_service(wal, snapshot_every=5)
        await victim.start()
        await apply_ops(victim, OPS)
        pre_kill = victim.signature()
        await victim.simulate_kill()
        restored, report = _restore(wal)
        assert report.snapshot_seq > 0
        assert report.n_snapshot_records > 0
        assert report.n_replayed > 0
        assert report.signature == pre_kill
        await restored.start(fresh_journal=False)
        await restored.stop()

    asyncio.run(scenario())


def test_restore_rejects_snapshot_newer_than_journal(tmp_path):
    """A snapshot whose seq exceeds the journal's last trusted record
    means durable journal entries vanished; restore must fail loudly
    instead of silently resurrecting stale state."""
    from repro.errors import JournalError

    async def scenario():
        wal = os.path.join(str(tmp_path), "wal")
        victim = _fresh_service(wal, snapshot_every=5)
        await victim.start()
        await apply_ops(victim, OPS)
        await victim.simulate_kill()
        # Truncate the journal behind the snapshot's back.
        with open(os.path.join(wal, "journal.jsonl"), "w"):
            pass
        with pytest.raises(JournalError, match="out-of-band"):
            _restore(wal)

    asyncio.run(scenario())


def test_restore_is_idempotent(tmp_path):
    async def scenario():
        wal = os.path.join(str(tmp_path), "wal")
        victim = _fresh_service(wal)
        await victim.start()
        await apply_ops(victim, OPS[: len(OPS) // 2])
        await victim.simulate_kill()
        first, report_a = _restore(wal)
        second, report_b = _restore(wal)
        assert report_a.signature == report_b.signature
        assert first.signature() == second.signature()

    asyncio.run(scenario())
