"""Round-trip tests for the journal codec: every serialized form must
reconstruct an equal object, floats bit-for-bit (``repr`` round-trips)."""

import pytest

from repro.config import CACConfig, build_network
from repro.core import AdmissionController
from repro.errors import JournalError
from repro.network.connection import ConnectionSpec
from repro.service.codec import (
    dict_to_record,
    dict_to_route,
    dict_to_spec,
    dict_to_traffic,
    record_to_dict,
    route_to_dict,
    spec_to_dict,
    traffic_to_dict,
)
from repro.traffic import (
    CBRTraffic,
    DualPeriodicTraffic,
    LeakyBucketTraffic,
    PeriodicTraffic,
)

TRAFFICS = [
    DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005),
    PeriodicTraffic(c=80_000.0, p=0.01),
    LeakyBucketTraffic(sigma=50_000.0, rho=4_000_000.0),
    CBRTraffic(rate=3_000_000.0),
]


@pytest.mark.parametrize("traffic", TRAFFICS, ids=lambda t: type(t).__name__)
def test_traffic_round_trip(traffic):
    assert dict_to_traffic(traffic_to_dict(traffic)) == traffic


def test_unknown_traffic_type_rejected():
    with pytest.raises(JournalError):
        dict_to_traffic({"type": "WeirdTraffic", "fields": {}})


def test_spec_round_trip():
    spec = ConnectionSpec(
        "s-1", "host1-1", "host2-2", TRAFFICS[0], 0.09
    )
    assert dict_to_spec(spec_to_dict(spec)) == spec


def _admitted_record():
    topo = build_network()
    cac = AdmissionController(topo, cac_config=CACConfig(beta=0.5))
    res = cac.request(
        ConnectionSpec("r-1", "host1-1", "host2-1", TRAFFICS[0], 0.09)
    )
    assert res.admitted
    return res.record


def test_route_round_trip():
    record = _admitted_record()
    route = record.route
    back = dict_to_route(route_to_dict(route))
    assert back == route


def test_record_round_trip_is_bit_exact():
    record = _admitted_record()
    back = dict_to_record(record_to_dict(record))
    assert back.conn_id == record.conn_id
    assert repr(back.h_source) == repr(record.h_source)
    assert repr(back.h_dest) == repr(record.h_dest)
    assert repr(back.delay_bound) == repr(record.delay_bound)
    assert back.spec == record.spec
    assert back.route == record.route
