"""Sharding by interference partition must never change any decision."""

import pytest

from repro.config import CACConfig, NetworkConfig, build_network
from repro.core import AdmissionController
from repro.errors import ConfigurationError
from repro.network.connection import ConnectionSpec
from repro.service.shard import ShardedAdmissionState, shard_footprint
from repro.traffic import DualPeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=60_000.0, p1=0.015, c2=30_000.0, p2=0.005)
NET = NetworkConfig(n_rings=4, hosts_per_ring=4)


def _spec(cid, src, dst, deadline=0.09):
    return ConnectionSpec(cid, src, dst, TRAFFIC, deadline)


def _sharded():
    return ShardedAdmissionState(
        build_network(NET), network_config=NET, cac_config=CACConfig()
    )


# Disjoint ring pairs: (1,2) and (3,4) share no port and no ring.
GROUP_A = [_spec(f"a{j}", f"host1-{j + 1}", f"host2-{j + 1}") for j in range(3)]
GROUP_B = [_spec(f"b{j}", f"host3-{j + 1}", f"host4-{j + 1}") for j in range(3)]
BRIDGE = _spec("x", "host1-1", "host3-1")


class TestPartition:
    def test_disjoint_groups_get_separate_shards(self):
        state = _sharded()
        for spec in GROUP_A + GROUP_B:
            assert state.admit(spec).admitted
        stats = state.stats()
        assert stats["n_shards"] == 2
        assert stats["n_active"] == 6
        assert stats["n_merges"] == 0
        assert state.shard_of("a0") is not state.shard_of("b0")

    def test_footprint_includes_ring_tokens(self):
        state = _sharded()
        route = state.route_of(GROUP_A[0])
        footprint = shard_footprint(state.topology, route)
        assert "ring:ring1" in footprint
        assert "ring:ring2" in footprint

    def test_bridge_connection_merges_shards(self):
        state = _sharded()
        for spec in GROUP_A + GROUP_B:
            state.admit(spec)
        assert state.admit(BRIDGE).admitted
        stats = state.stats()
        assert stats["n_shards"] == 1
        assert stats["n_merges"] == 1
        assert state.shard_of("a0") is state.shard_of("b0")

    def test_release_gc_frees_empty_shard(self):
        state = _sharded()
        state.admit(GROUP_A[0])
        state.admit(GROUP_B[0])
        assert state.stats()["n_shards"] == 2
        state.release("b0")
        assert state.stats()["n_shards"] == 1
        with pytest.raises(ConfigurationError):
            state.release("b0")

    def test_rebalance_splits_after_bridge_leaves(self):
        state = _sharded()
        for spec in GROUP_A + GROUP_B:
            state.admit(spec)
        state.admit(BRIDGE)
        state.release("x")
        # Releases never split online: still one fused shard.
        assert state.stats()["n_shards"] == 1
        before = {
            rec.conn_id: repr(rec.delay_bound)
            for rec in state.records_in_order()
        }
        assert state.rebalance() == 2
        after = {
            rec.conn_id: repr(rec.delay_bound)
            for rec in state.records_in_order()
        }
        assert after == before
        assert state.shard_of("a0") is not state.shard_of("b0")
        assert max(abs(d) for d in state.audit_allocations().values()) == 0.0


class TestDecisionEquivalence:
    def test_sharded_decisions_match_single_controller(self):
        """Same admit sequence, same verdicts, bit-identical bounds."""
        reference = AdmissionController(
            build_network(NET), cac_config=CACConfig()
        )
        state = _sharded()
        specs = GROUP_A + GROUP_B + [BRIDGE, _spec("a9", "host1-4", "host2-1")]
        for spec in specs:
            ref = reference.request(spec)
            got = state.admit(spec)
            assert got.admitted == ref.admitted, spec.conn_id
            if ref.admitted:
                assert repr(got.record.delay_bound) == repr(
                    ref.record.delay_bound
                ), spec.conn_id
                assert repr(got.record.h_source) == repr(ref.record.h_source)
                assert repr(got.record.h_dest) == repr(ref.record.h_dest)
        # Ledgers saw identical insertions on both sides of the fence.
        ref_rings = reference.topology.rings
        for rid, ring in state.topology.rings.items():
            assert repr(ring.allocated_sync_time) == repr(
                ref_rings[rid].allocated_sync_time
            )

    def test_audit_clean_after_churn(self):
        state = _sharded()
        for spec in GROUP_A + GROUP_B:
            state.admit(spec)
        state.release("a1")
        state.admit(_spec("a1b", "host1-2", "host2-2"))
        leaks = state.audit_allocations()
        assert max(abs(d) for d in leaks.values()) < 1e-12
