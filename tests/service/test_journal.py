"""The write-ahead journal must be torn-tail tolerant and tamper-evident."""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import JournalError
from repro.service.journal import (
    JournalRecord,
    JournalStore,
    decode_line,
    scan_journal,
)


def _store(tmp_path, n=0):
    store = JournalStore(str(tmp_path / "wal"))
    store.open_fresh()
    for i in range(n):
        store.append("admit", {"i": i})
    return store


class TestRecordCodec:
    def test_encode_decode_round_trip(self):
        rec = JournalRecord(seq=3, op="admit", data={"x": 1.5})
        assert decode_line(rec.encode(), expect_seq=3) == rec

    def test_checksum_tamper_detected(self):
        line = JournalRecord(seq=1, op="admit", data={"x": 1}).encode()
        tampered = line.replace('"x":1', '"x":2')
        with pytest.raises(JournalError, match="checksum"):
            decode_line(tampered)

    def test_sequence_gap_detected(self):
        line = JournalRecord(seq=5, op="release", data={}).encode()
        with pytest.raises(JournalError, match="sequence gap"):
            decode_line(line, expect_seq=4)

    def test_unknown_op_rejected(self):
        body = {"seq": 1, "op": "frobnicate", "data": {}}
        import hashlib

        blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
        body["sum"] = hashlib.sha256(blob.encode()).hexdigest()[:12]
        with pytest.raises(JournalError, match="unknown journal op"):
            decode_line(json.dumps(body, sort_keys=True, separators=(",", ":")))


class TestScan:
    def test_missing_file_is_empty(self, tmp_path):
        tail = scan_journal(str(tmp_path / "nope.jsonl"))
        assert tail.records == [] and not tail.truncated

    def test_clean_journal_scans_fully(self, tmp_path):
        store = _store(tmp_path, n=5)
        store.close()
        tail = scan_journal(store.journal_path)
        assert [r.seq for r in tail.records] == [1, 2, 3, 4, 5]
        assert not tail.truncated
        assert tail.good_bytes == os.path.getsize(store.journal_path)

    @settings(
        max_examples=25,
        deadline=None,
        # tmp_path is reused across examples; open_fresh() truncates the
        # journal each time, so state never leaks between examples.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(garbage=st.binary(min_size=1, max_size=40))
    def test_any_torn_tail_stops_at_good_prefix(self, tmp_path, garbage):
        store = _store(tmp_path, n=3)
        store.close()
        good = os.path.getsize(store.journal_path)
        with open(store.journal_path, "ab") as fh:
            fh.write(garbage)
        tail = scan_journal(store.journal_path)
        if tail.truncated:
            assert [r.seq for r in tail.records] == [1, 2, 3]
            assert tail.good_bytes == good
        else:
            # The only way garbage survives is if it *is* valid journal
            # bytes continuing the chain — impossible for random bytes
            # short of a checksum collision, but tolerated by contract.
            assert [r.seq for r in tail.records][:3] == [1, 2, 3]

    def test_open_for_append_truncates_torn_bytes(self, tmp_path):
        store = _store(tmp_path, n=2)
        store.close()
        with open(store.journal_path, "ab") as fh:
            fh.write(b'{"seq": 3, "op": "adm')
        tail = store.scan_tail(after_seq=0)
        assert tail.truncated
        store.open_for_append(tail)
        assert store.next_seq == 3
        store.append("release", {"conn_id": "x"})
        store.close()
        clean = scan_journal(store.journal_path)
        assert not clean.truncated
        assert [r.seq for r in clean.records] == [1, 2, 3]
        assert clean.records[-1].op == "release"


class TestSnapshots:
    def test_snapshot_round_trip_and_prune(self, tmp_path):
        store = _store(tmp_path)
        for seq in (4, 9, 13):
            store.write_snapshot({"mark": seq}, seq)
        state, seq = store.load_latest_snapshot()
        assert (state, seq) == ({"mark": 13}, 13)
        # Only the newest two survive pruning.
        names = sorted(
            n for n in os.listdir(store.directory) if n.startswith("snapshot")
        )
        assert names == ["snapshot-13.json", "snapshot-9.json"]
        store.close()

    def test_corrupt_snapshot_falls_back_to_older(self, tmp_path):
        store = _store(tmp_path)
        store.write_snapshot({"mark": 4}, 4)
        store.write_snapshot({"mark": 9}, 9)
        with open(store.snapshot_path(9), "a", encoding="utf-8") as fh:
            fh.write("garbage")
        state, seq = store.load_latest_snapshot()
        assert (state, seq) == ({"mark": 4}, 4)
        store.close()

    def test_no_snapshot_means_full_replay(self, tmp_path):
        store = _store(tmp_path, n=2)
        assert store.load_latest_snapshot() == (None, 0)
        tail = store.scan_tail(after_seq=0)
        assert len(tail.records) == 2
        store.close()

    def test_scan_tail_drops_snapshotted_prefix(self, tmp_path):
        store = _store(tmp_path, n=6)
        tail = store.scan_tail(after_seq=4)
        assert [r.seq for r in tail.records] == [5, 6]
        store.close()
