"""JSON-lines front-end: dispatch, malformed input, and a TCP round trip."""

import asyncio
import json

from repro.config import CACConfig, NetworkConfig, ServiceConfig, build_network
from repro.service.bench import TickClock
from repro.service.frontend import handle_connection, handle_request
from repro.service.server import AdmissionService

NET = NetworkConfig(n_rings=3, hosts_per_ring=4)

ADMIT_C1 = {
    "op": "admit",
    "conn_id": "c1",
    "source_host": "host1-1",
    "dest_host": "host2-1",
    "traffic": {
        "type": "DualPeriodicTraffic",
        "c1": 60_000.0,
        "p1": 0.015,
        "c2": 30_000.0,
        "p2": 0.005,
    },
    "deadline": 0.09,
}


def _service():
    return AdmissionService(
        build_network(NET),
        network_config=NET,
        cac_config=CACConfig(),
        service_config=ServiceConfig(workers=0, snapshot_every=0),
        clock=TickClock(),
    )


def test_request_dispatch_covers_all_ops():
    async def scenario():
        async with _service() as service:
            ping = await handle_request(service, {"op": "ping"})
            admitted = await handle_request(service, dict(ADMIT_C1))
            metrics = await handle_request(service, {"op": "metrics"})
            released = await handle_request(
                service, {"op": "release", "conn_id": "c1"}
            )
            missing = await handle_request(service, {"op": "release"})
            unknown_op = await handle_request(service, {"op": "frobnicate"})
            bad_admit = await handle_request(
                service, {"op": "admit", "conn_id": "c2"}
            )
            return ping, admitted, metrics, released, missing, unknown_op, bad_admit

    ping, admitted, metrics, released, missing, unknown_op, bad_admit = (
        asyncio.run(scenario())
    )
    assert ping["verdict"] == "OK"
    assert admitted["verdict"] == "ADMITTED"
    assert admitted["delay_bound"] is not None
    assert metrics["metrics"]["n_admitted"] == 1
    assert released["verdict"] == "RELEASED"
    assert missing["verdict"] == "ERROR"
    assert unknown_op["verdict"] == "ERROR"
    assert bad_admit["verdict"] == "ERROR"


def test_tcp_round_trip_survives_malformed_lines():
    async def scenario():
        async with _service() as service:
            server = await asyncio.start_server(
                lambda r, w: handle_connection(service, r, w),
                "127.0.0.1",
                0,
            )
            port = server.sockets[0].getsockname()[1]
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                lines = [
                    json.dumps({"op": "ping"}),
                    "this is not json",
                    json.dumps(ADMIT_C1),
                    json.dumps([1, 2, 3]),
                    json.dumps({"op": "release", "conn_id": "c1"}),
                ]
                writer.write(("\n".join(lines) + "\n").encode())
                await writer.drain()
                answers = []
                for _ in lines:
                    answers.append(
                        json.loads((await reader.readline()).decode())
                    )
                writer.close()
                await writer.wait_closed()
                return answers

    answers = asyncio.run(scenario())
    verdicts = [a["verdict"] for a in answers]
    assert verdicts == ["OK", "ERROR", "ADMITTED", "ERROR", "RELEASED"]
