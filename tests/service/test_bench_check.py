"""The CI gates must catch any drift in the committed bench artifacts."""

import copy

from repro.bench import check_cac_payload
from repro.service.bench import check_service_payload


def _service_payload():
    return {
        "suite": "service",
        "trajectory": {
            "decisions": [
                {
                    "op": "admit",
                    "conn_id": "bg1-0",
                    "verdict": "ADMITTED",
                    "delay_bound": "0.05387",
                },
                {
                    "op": "release",
                    "conn_id": "bg1-0",
                    "verdict": "RELEASED",
                    "delay_bound": None,
                },
            ],
            "final_signature": "abc",
            "n_requests": 1,
            "n_admitted": 1,
            "n_active": 0,
            "n_shards": 0,
            "n_merges": 0,
        },
        "recovery": {
            "prefix_signature_match": True,
            "final_signature_match": True,
            "torn_tail_ok": True,
        },
        "ladder": {"engaged": True, "disengaged": True},
    }


class TestServiceGate:
    def test_identical_payloads_pass(self):
        payload = _service_payload()
        assert check_service_payload(payload, copy.deepcopy(payload)) == []

    def test_verdict_flip_detected(self):
        current = _service_payload()
        committed = copy.deepcopy(current)
        current["trajectory"]["decisions"][0]["verdict"] = "REJECTED"
        problems = check_service_payload(current, committed)
        assert any("verdict" in p for p in problems)

    def test_delay_bound_drift_detected(self):
        current = _service_payload()
        committed = copy.deepcopy(current)
        committed["trajectory"]["decisions"][0]["delay_bound"] = "0.05388"
        problems = check_service_payload(current, committed)
        assert any("delay_bound" in p for p in problems)

    def test_signature_drift_detected(self):
        current = _service_payload()
        committed = copy.deepcopy(current)
        current["trajectory"]["final_signature"] = "zzz"
        problems = check_service_payload(current, committed)
        assert any("final_signature" in p for p in problems)

    def test_failed_recovery_gate_detected_in_either_payload(self):
        for side in ("current", "committed"):
            current = _service_payload()
            committed = copy.deepcopy(current)
            target = current if side == "current" else committed
            target["recovery"]["torn_tail_ok"] = False
            problems = check_service_payload(current, committed)
            assert any("torn_tail_ok" in p for p in problems), side

    def test_unengaged_ladder_detected(self):
        current = _service_payload()
        committed = copy.deepcopy(current)
        current["ladder"]["engaged"] = False
        problems = check_service_payload(current, committed)
        assert any("ladder.engaged" in p for p in problems)


def _cac_payload():
    return {
        "macro_decisions_identical": True,
        "decision_trajectory": {
            "scenario": {"n_rings": 8, "per_group": 7},
            "decisions": [
                {
                    "op": "admit",
                    "conn_id": "tr-1",
                    "admitted": True,
                    "delay_bound": "0.0409",
                    "h_min_need": ["0.001", "0.002"],
                    "n_probes": 3,
                }
            ],
        },
    }


class TestCacGate:
    def test_identical_payloads_pass(self):
        payload = _cac_payload()
        assert check_cac_payload(payload, copy.deepcopy(payload)) == []

    def test_decision_drift_detected(self):
        current = _cac_payload()
        committed = copy.deepcopy(current)
        current["decision_trajectory"]["decisions"][0]["delay_bound"] = "0.05"
        problems = check_cac_payload(current, committed)
        assert any("step 0" in p for p in problems)

    def test_missing_committed_trajectory_reported(self):
        current = _cac_payload()
        problems = check_cac_payload(current, {"macro_decisions_identical": True})
        assert any("regenerate" in p for p in problems)

    def test_macro_divergence_reported(self):
        current = _cac_payload()
        current["macro_decisions_identical"] = False
        problems = check_cac_payload(current, copy.deepcopy(_cac_payload()))
        assert any("macro decisions" in p for p in problems)
