"""Unit tests for the graceful-degradation ladder (EWMA + hysteresis)."""

import dataclasses

from repro.config import AnalysisConfig, ServiceConfig
from repro.service.degrade import COARSENED, EXACT, FROZEN, DegradationLadder


def _config(**overrides):
    base = dict(
        latency_window=4,
        degrade_hi=0.5,
        degrade_lo=0.2,
        min_dwell=4,
        degraded_segments=32,
        freeze_probe_every=4,
    )
    base.update(overrides)
    return ServiceConfig(**base)


class TestTransitions:
    def test_starts_exact_and_engages_on_spike(self):
        ladder = DegradationLadder(_config())
        assert ladder.level == EXACT
        ladder.observe(10.0)  # first observation seeds the EWMA directly
        assert ladder.level == COARSENED
        assert len(ladder.transitions) == 1

    def test_single_mild_observation_does_not_engage(self):
        ladder = DegradationLadder(_config())
        ladder.observe(0.4)  # seeds EWMA at 0.4 < hi
        assert ladder.level == EXACT

    def test_walks_to_frozen_only_after_dwell(self):
        ladder = DegradationLadder(_config(min_dwell=4))
        for _ in range(3):
            ladder.observe(1.0)
        # The first observation stepped EXACT -> COARSENED; the EWMA is
        # still far above hi, but dwell forbids the second rung until
        # min_dwell observations have passed since that step.
        assert ladder.level == COARSENED
        ladder.observe(1.0)
        ladder.observe(1.0)
        assert ladder.level == FROZEN
        assert [t.to_level for t in ladder.transitions] == [COARSENED, FROZEN]

    def test_recovers_with_hysteresis(self):
        ladder = DegradationLadder(_config())
        for _ in range(8):
            ladder.observe(1.0)
        assert ladder.level == FROZEN
        # Latency between lo and hi: the band holds the current level.
        for _ in range(20):
            ladder.observe(0.3)
        assert ladder.level == FROZEN
        for _ in range(30):
            ladder.observe(0.0)
        assert ladder.level == EXACT
        assert [t.to_level for t in ladder.transitions] == [
            COARSENED,
            FROZEN,
            COARSENED,
            EXACT,
        ]


class TestFreezeGate:
    def test_thaw_probes_every_nth_attempt(self):
        ladder = DegradationLadder(_config(freeze_probe_every=4))
        for _ in range(8):
            ladder.observe(1.0)
        assert ladder.frozen
        verdicts = [ladder.admit_allowed() for _ in range(8)]
        assert verdicts == [False, False, False, True] * 2

    def test_not_frozen_always_allows(self):
        ladder = DegradationLadder(_config())
        assert all(ladder.admit_allowed() for _ in range(10))


class TestAnalysisSwap:
    def test_exact_keeps_base_config(self):
        ladder = DegradationLadder(_config())
        base = AnalysisConfig()
        assert ladder.analysis_for(base) is base

    def test_coarsened_swaps_segments(self):
        ladder = DegradationLadder(_config(degraded_segments=32))
        ladder.observe(10.0)
        assert ladder.level == COARSENED
        base = AnalysisConfig()
        degraded = ladder.analysis_for(base)
        assert degraded.coarsen_segments == 32
        assert dataclasses.replace(degraded, coarsen_segments=None) == (
            dataclasses.replace(base, coarsen_segments=None)
        )
