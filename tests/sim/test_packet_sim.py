"""Tests for the packet-level validation simulator (experiment E3).

The central property: for any admitted connection set, every observed
end-to-end delay must stay at or below the analytic worst-case bound the
CAC computed.
"""

import pytest

from repro.config import build_network
from repro.core import AdmissionController
from repro.core.delay import ConnectionLoad
from repro.network.connection import ConnectionSpec
from repro.sim.packet_sim import PacketLevelSimulator
from repro.traffic import DualPeriodicTraffic, PeriodicTraffic

TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)


def admit(pairs, deadline=0.09, beta=0.5, traffic=TRAFFIC):
    from repro.config import CACConfig

    topo = build_network()
    cac = AdmissionController(topo, cac_config=CACConfig(beta=beta))
    for i, (src, dst) in enumerate(pairs):
        res = cac.request(ConnectionSpec(f"c{i}", src, dst, traffic, deadline))
        assert res.admitted, res.reason
    loads = [
        ConnectionLoad(r.spec, r.route, r.h_source, r.h_dest)
        for r in cac.connections.values()
    ]
    return topo, cac, loads


class TestBoundsDominate:
    def test_single_connection(self):
        topo, cac, loads = admit([("host1-1", "host2-1")])
        result = PacketLevelSimulator(topo, loads).run(duration=0.3)
        assert result.delivered_batches["c0"] > 0
        assert result.max_delay["c0"] <= cac.connections["c0"].delay_bound + 1e-9

    def test_shared_uplink_pair(self):
        topo, cac, loads = admit([("host1-1", "host2-1"), ("host1-2", "host3-1")])
        result = PacketLevelSimulator(topo, loads).run(duration=0.3)
        for cid in ("c0", "c1"):
            assert result.max_delay[cid] <= cac.connections[cid].delay_bound + 1e-9

    def test_six_connections_all_rings(self):
        pairs = [
            ("host1-1", "host2-1"),
            ("host1-2", "host3-1"),
            ("host2-2", "host3-2"),
            ("host2-3", "host1-3"),
            ("host3-3", "host1-4"),
            ("host3-4", "host2-4"),
        ]
        topo, cac, loads = admit(pairs)
        result = PacketLevelSimulator(topo, loads).run(duration=0.3)
        for cid, rec in cac.connections.items():
            assert result.delivered_batches.get(cid, 0) > 0
            assert result.max_delay[cid] <= rec.delay_bound + 1e-9

    def test_minimal_allocation_still_bounded(self):
        # beta=0 gives the tightest allocations — the closest the system
        # runs to its bound.
        topo, cac, loads = admit(
            [("host1-1", "host2-1"), ("host1-2", "host2-2")], beta=0.0
        )
        result = PacketLevelSimulator(topo, loads).run(duration=0.3)
        for cid, rec in cac.connections.items():
            assert result.max_delay[cid] <= rec.delay_bound + 1e-9

    def test_periodic_traffic_model(self):
        traffic = PeriodicTraffic(c=100_000.0, p=0.02)
        topo, cac, loads = admit([("host1-1", "host2-1")], traffic=traffic)
        result = PacketLevelSimulator(topo, loads).run(duration=0.3)
        assert result.max_delay["c0"] <= cac.connections["c0"].delay_bound + 1e-9


class TestAdversarialPhase:
    def test_bounds_still_dominate(self):
        topo, cac, loads = admit([("host1-1", "host2-1"), ("host1-2", "host3-1")])
        result = PacketLevelSimulator(topo, loads, adversarial_phase=True).run(
            duration=0.3
        )
        for cid, rec in cac.connections.items():
            assert result.max_delay[cid] <= rec.delay_bound + 1e-9

    def test_adversarial_is_slower_than_benign(self):
        topo, cac, loads = admit([("host1-1", "host2-1")])
        benign = PacketLevelSimulator(topo, loads).run(duration=0.3)
        topo2, cac2, loads2 = admit([("host1-1", "host2-1")])
        adversarial = PacketLevelSimulator(
            topo2, loads2, adversarial_phase=True
        ).run(duration=0.3)
        assert adversarial.max_delay["c0"] > benign.max_delay["c0"]

    def test_tightness_improves_substantially(self):
        topo, cac, loads = admit([("host1-1", "host2-1")])
        adversarial = PacketLevelSimulator(
            topo, loads, adversarial_phase=True
        ).run(duration=0.3)
        bound = cac.connections["c0"].delay_bound
        assert adversarial.max_delay["c0"] / bound > 0.3


class TestSimMechanics:
    def test_all_offered_bits_delivered(self):
        topo, cac, loads = admit([("host1-1", "host2-1")])
        sim = PacketLevelSimulator(topo, loads)
        result = sim.run(duration=0.2)
        undelivered = [b for b in sim._batches if b.completion_time is None]
        assert undelivered == []

    def test_delays_positive(self):
        topo, cac, loads = admit([("host1-1", "host2-1")])
        result = PacketLevelSimulator(topo, loads).run(duration=0.2)
        assert result.max_delay["c0"] > 0
        assert result.mean_delay["c0"] <= result.max_delay["c0"] + 1e-12

    def test_contention_raises_observed_delay(self):
        # Same fixed allocations with and without cross-traffic: sharing the
        # ring and the uplink can only slow c0 down.
        from repro.network.routing import compute_route

        def fixed_loads(topo, pairs):
            loads = []
            for i, (src, dst) in enumerate(pairs):
                spec = ConnectionSpec(f"c{i}", src, dst, TRAFFIC, 0.2)
                loads.append(
                    ConnectionLoad(spec, compute_route(topo, src, dst), 0.0015, 0.0015)
                )
            return loads

        topo1 = build_network()
        alone = PacketLevelSimulator(
            topo1, fixed_loads(topo1, [("host1-1", "host2-1")])
        ).run(duration=0.2)
        pairs = [
            ("host1-1", "host2-1"),
            ("host1-2", "host2-2"),
            ("host1-3", "host2-3"),
        ]
        topo2 = build_network()
        crowded = PacketLevelSimulator(topo2, fixed_loads(topo2, pairs)).run(
            duration=0.2
        )
        assert crowded.max_delay["c0"] >= alone.max_delay["c0"] - 1e-6

    def test_shared_ports_route_per_connection(self):
        # Two connections share the id1 uplink then diverge to different
        # rings.  Shared ports must forward each chunk down *its* route:
        # every destination station receives exactly its own connection's
        # offered bits (a cached first-builder continuation would funnel
        # both connections through whichever route was built first).
        topo, cac, loads = admit([("host1-1", "host2-1"), ("host1-2", "host3-1")])
        sim = PacketLevelSimulator(topo, loads)
        received = {cid: 0.0 for cid in sim._dest_station}

        def spy(station, cid):
            orig = station.enqueue_chunk

            def wrapped(chunk):
                received[cid] += chunk.bits
                for batch, _ in chunk.slices:
                    assert batch.conn_id == cid
                orig(chunk)

            return wrapped

        for cid, station in sim._dest_station.items():
            station.enqueue_chunk = spy(station, cid)
        sim.run(duration=0.2)
        offered = {cid: 0.0 for cid in received}
        for batch in sim._batches:
            offered[batch.conn_id] += batch.bits
        for cid in received:
            assert received[cid] == pytest.approx(offered[cid])

    def test_local_route_supported(self):
        from repro.config import CACConfig

        topo = build_network()
        cac = AdmissionController(topo, cac_config=CACConfig(beta=0.5))
        res = cac.request(
            ConnectionSpec("c0", "host1-1", "host1-2", TRAFFIC, 0.09)
        )
        assert res.admitted
        loads = [
            ConnectionLoad(r.spec, r.route, r.h_source, r.h_dest)
            for r in cac.connections.values()
        ]
        result = PacketLevelSimulator(topo, loads).run(duration=0.2)
        assert result.max_delay["c0"] <= cac.connections["c0"].delay_bound + 1e-9
