"""Tests for the DES kernel, random streams and metrics."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.metrics import RunningStats, SimulationMetrics
from repro.sim.random import RandomStreams


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_callback_can_schedule(self):
        sim = Simulator()
        fired = []
        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))
        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == pytest.approx(2.0)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append("x"))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_run_until_stops(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_event_budget(self):
        sim = Simulator()
        def loop():
            sim.schedule(0.001, loop)
        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_cancelled_heap_purged_without_inflation(self):
        # Regression: a heap full of cancelled events must not inflate
        # events_processed, advance the clock, or consume event budget.
        sim = Simulator()
        cancelled = [sim.schedule(float(i), lambda: None) for i in range(1, 500)]
        for ev in cancelled:
            ev.cancel()
        fired = []
        sim.schedule(1000.0, lambda: fired.append(sim.now))
        # Budget of 2 would blow up if cancelled events counted as steps.
        sim.run(max_events=2)
        assert fired == [1000.0]
        assert sim.events_processed == 1
        assert sim._heap == []

    def test_step_skips_cancelled_and_reports_empty(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        assert sim.step() is False
        assert sim.events_processed == 0
        assert sim.now == 0.0

    def test_cancel_after_peek_still_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append("x"))
        assert sim.peek_time() == 1.0
        ev.cancel()
        sim.run()
        assert fired == []


class TestRandomStreams:
    def test_reproducible(self):
        a = RandomStreams(42)
        b = RandomStreams(42)
        assert [a.exponential("x", 1.0) for _ in range(5)] == [
            b.exponential("x", 1.0) for _ in range(5)
        ]

    def test_streams_independent(self):
        s = RandomStreams(42)
        xs = [s.exponential("x", 1.0) for _ in range(5)]
        # Consuming from another stream must not change "x".
        s2 = RandomStreams(42)
        s2.exponential("y", 1.0)
        xs2 = [s2.exponential("x", 1.0) for _ in range(5)]
        assert xs == xs2

    def test_different_seeds_differ(self):
        assert RandomStreams(1).exponential("x", 1.0) != RandomStreams(2).exponential(
            "x", 1.0
        )

    def test_exponential_mean(self):
        s = RandomStreams(7)
        values = [s.exponential("x", 2.0) for _ in range(4000)]
        assert sum(values) / len(values) == pytest.approx(2.0, rel=0.1)

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(1).exponential("x", 0.0)


class TestStats:
    def test_running_stats_basic(self):
        st = RunningStats()
        for v in [1.0, 2.0, 3.0, 4.0]:
            st.add(v)
        assert st.mean == pytest.approx(2.5)
        assert st.variance == pytest.approx(5.0 / 3.0)
        assert st.minimum == 1.0 and st.maximum == 4.0

    def test_empty_stats_nan(self):
        st = RunningStats()
        assert math.isnan(st.mean)

    def test_confidence_interval_contains_mean(self):
        st = RunningStats()
        for v in range(100):
            st.add(float(v))
        lo, hi = st.confidence_interval()
        assert lo < st.mean < hi

    def test_metrics_admission_probability(self):
        m = SimulationMetrics()
        m.n_admitted = 3
        m.n_rejected_cac = 1
        assert m.admission_probability == pytest.approx(0.75)

    def test_metrics_time_weighted_active(self):
        m = SimulationMetrics()
        m.record_active_change(0.0, +1)   # 1 active from t=0
        m.record_active_change(10.0, +1)  # 2 active from t=10
        assert m.mean_active(20.0) == pytest.approx(1.5)
