"""Protocol-invariant tests of the simulated timed-token ring.

The timed-token protocol guarantees that the time between consecutive
token arrivals at a station never exceeds the sum of all synchronous
allocations plus the per-rotation overhead.  The packet simulator's ring
must honor this — it is the property Theorem 1's ``avail(t)`` staircase is
derived from.
"""

import pytest

from repro.fddi import FDDIRing
from repro.sim.engine import Simulator
from repro.sim.packet_sim import _Batch, _Station, _TokenRing
from repro.units import MBIT


def build_ring(holdings, overhead=0.0005, bandwidth=100 * MBIT):
    sim = Simulator()
    transmissions = {i: [] for i in range(len(holdings))}

    stations = []
    for i, h in enumerate(holdings):
        def on_tx(chunk, now, idx=i):
            transmissions[idx].append((now, chunk.bits))

        stations.append(_Station(f"st{i}", h, on_tx))
    ring = FDDIRing("r", ttrt=0.008, bandwidth=bandwidth, overhead=overhead)
    token = _TokenRing(ring, stations, sim)
    return sim, token, stations, transmissions


class TestTokenCycle:
    def test_saturated_station_visit_gap_bounded(self):
        holdings = [0.001, 0.002, 0.0015]
        sim, token, stations, tx = build_ring(holdings)
        # Saturate every station.
        for i, st in enumerate(stations):
            batch = _Batch(i, f"c{i}", 0.0, 10_000_000.0)
            st.enqueue(batch, batch.bits)
        token.wake()
        sim.run_until(0.2)
        cycle_bound = sum(holdings) + 0.0005 + 1e-9
        for i in range(len(holdings)):
            times = [t for t, _ in tx[i]]
            assert len(times) > 10
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert max(gaps) <= cycle_bound

    def test_station_never_exceeds_holding_budget(self):
        holdings = [0.001, 0.002]
        sim, token, stations, tx = build_ring(holdings)
        for i, st in enumerate(stations):
            batch = _Batch(i, f"c{i}", 0.0, 5_000_000.0)
            st.enqueue(batch, batch.bits)
        token.wake()
        sim.run_until(0.1)
        for i, h in enumerate(holdings):
            budget_bits = h * 100 * MBIT
            for _, bits in tx[i]:
                assert bits <= budget_bits + 1e-6

    def test_idle_ring_parks_token(self):
        sim, token, stations, tx = build_ring([0.001])
        batch = _Batch(0, "c0", 0.0, 1000.0)
        stations[0].enqueue(batch, batch.bits)
        token.wake()
        sim.run()
        assert token.parked
        events_after_drain = sim.events_processed
        # Waking with nothing queued re-parks immediately.
        token.wake()
        sim.run()
        assert sim.events_processed - events_after_drain <= 2

    def test_work_conserving_within_sync_limits(self):
        # All offered bits are eventually transmitted.
        sim, token, stations, tx = build_ring([0.001, 0.001])
        offered = 500_000.0
        for i, st in enumerate(stations):
            batch = _Batch(i, f"c{i}", 0.0, offered)
            st.enqueue(batch, batch.bits)
        token.wake()
        sim.run_until(2.0)
        for i in range(2):
            sent = sum(bits for _, bits in tx[i])
            assert sent == pytest.approx(offered)
