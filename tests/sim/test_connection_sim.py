"""Tests for the connection-level (Section 6) simulator."""

import pytest

from repro.config import NetworkConfig, SimulationConfig
from repro.sim.connection_sim import (
    ConnectionSimConfig,
    ConnectionSimulator,
    run_admission_probability,
)


def small_run(**kw):
    base = dict(utilization=0.3, beta=0.5, seed=5, n_requests=40, warmup_requests=5)
    base.update(kw)
    return ConnectionSimulator(ConnectionSimConfig(**base)).run()


class TestConnectionSimulator:
    def test_runs_to_completion(self):
        res = small_run()
        assert res.metrics.n_requests > 0
        assert 0.0 <= res.admission_probability <= 1.0

    def test_reproducible_with_seed(self):
        a = small_run(seed=11)
        b = small_run(seed=11)
        assert a.admission_probability == b.admission_probability
        assert a.metrics.n_admitted == b.metrics.n_admitted

    def test_different_seed_changes_workload(self):
        a = small_run(seed=11)
        b = small_run(seed=12)
        # Some counter differs with overwhelming probability.
        assert (
            a.metrics.n_admitted != b.metrics.n_admitted
            or a.sim_time != b.sim_time
        )

    def test_departures_follow_admissions(self):
        res = small_run()
        assert res.metrics.n_departures <= res.metrics.n_admitted + 5  # warmup

    def test_routes_cross_backbone(self):
        cfg = ConnectionSimConfig(
            utilization=0.2, beta=0.5, seed=3, n_requests=20, warmup_requests=0
        )
        sim = ConnectionSimulator(cfg)
        sim.run()
        for rec in sim.cac.connections.values():
            assert rec.route.crosses_backbone

    def test_arrival_rate_scales_with_utilization(self):
        lo = ConnectionSimulator(
            ConnectionSimConfig(utilization=0.1, seed=1, n_requests=1)
        )
        hi = ConnectionSimulator(
            ConnectionSimConfig(utilization=0.9, seed=1, n_requests=1)
        )
        assert hi.arrival_rate == pytest.approx(9 * lo.arrival_rate)

    def test_load_scale_applies(self):
        base = SimulationConfig()
        scaled = SimulationConfig(load_scale=0.5)
        a = ConnectionSimulator(
            ConnectionSimConfig(utilization=0.5, seed=1, n_requests=1, simulation=base)
        )
        b = ConnectionSimulator(
            ConnectionSimConfig(utilization=0.5, seed=1, n_requests=1, simulation=scaled)
        )
        assert b.arrival_rate == pytest.approx(0.5 * a.arrival_rate)

    def test_heavier_load_admits_no_more(self):
        light = small_run(utilization=0.05, n_requests=60)
        heavy = small_run(utilization=0.9, n_requests=60)
        assert heavy.admission_probability <= light.admission_probability + 0.15

    def test_wrapper_function(self):
        res = run_admission_probability(0.3, 0.5, seed=2, n_requests=25)
        assert res.config.beta == 0.5

    def test_mixed_workload_generator_accepted(self):
        import random

        from repro.traffic import MixedWorkloadGenerator, WorkloadSpec

        classes = [
            (
                "video",
                2.0,
                WorkloadSpec(
                    c1=120e3, p1=0.015, c2=60e3, p2=0.005,
                    deadline_min=0.05, deadline_max=0.1,
                ),
            ),
            (
                "audio",
                1.0,
                WorkloadSpec(
                    c1=6e3, p1=0.02, c2=3e3, p2=0.01,
                    deadline_min=0.04, deadline_max=0.06,
                ),
            ),
        ]
        cfg = ConnectionSimConfig(
            utilization=0.2, beta=0.5, seed=4, n_requests=25, warmup_requests=3
        )
        sim = ConnectionSimulator(
            cfg,
            workload_generator=MixedWorkloadGenerator(classes, random.Random(4)),
        )
        res = sim.run()
        assert 0.0 <= res.admission_probability <= 1.0

    def test_active_connections_respect_deadlines(self):
        cfg = ConnectionSimConfig(
            utilization=0.4, beta=0.5, seed=9, n_requests=30, warmup_requests=0
        )
        sim = ConnectionSimulator(cfg)
        sim.run()
        if sim.cac.connections:
            delays = sim.cac.current_delays()
            for cid, d in delays.items():
                assert d <= sim.cac.connections[cid].spec.deadline + 1e-9
