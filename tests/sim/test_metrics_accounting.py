"""Tests for simulator accounting: rejection causes and host blocking."""

import math

import pytest

from repro.config import NetworkConfig, SimulationConfig
from repro.sim.connection_sim import ConnectionSimConfig, ConnectionSimulator
from repro.sim.metrics import SimulationMetrics
from repro.traffic.generators import WorkloadSpec


class TestRejectionSplit:
    def test_split_sums_to_total(self):
        cfg = ConnectionSimConfig(
            utilization=0.6, beta=0.5, seed=11, n_requests=60, warmup_requests=5
        )
        sim = ConnectionSimulator(cfg)
        res = sim.run()
        m = res.metrics
        assert (
            m.n_rejected_no_bandwidth + m.n_rejected_infeasible
            == m.n_rejected_cac
        )

    def test_heavy_load_produces_both_causes(self):
        # At heavy offered load with mixed deadlines both failure modes
        # appear over a long enough run (statistically robust seed).
        cfg = ConnectionSimConfig(
            utilization=0.9, beta=1.0, seed=5, n_requests=80, warmup_requests=5
        )
        m = ConnectionSimulator(cfg).run().metrics
        assert m.n_rejected_cac > 0


class TestHostBlocking:
    def base_cfg(self, count_blocked):
        sim_cfg = SimulationConfig(
            mean_lifetime=3600.0,  # connections effectively never leave
            count_host_blocked=count_blocked,
        )
        return ConnectionSimConfig(
            utilization=0.9,
            beta=0.0,
            seed=2,
            n_requests=120,
            warmup_requests=0,
            simulation=sim_cfg,
        )

    def test_blocked_requests_counted_when_enabled(self):
        m_off = ConnectionSimulator(self.base_cfg(False)).run().metrics
        m_on = ConnectionSimulator(self.base_cfg(True)).run().metrics
        # Same seed, same trajectory: blocking events are identical, only
        # the accounting differs.
        assert m_on.n_blocked_no_host == m_off.n_blocked_no_host
        if m_on.n_blocked_no_host > 0:
            assert m_on.n_rejected_cac > m_off.n_rejected_cac

    def test_ap_including_blocked_lower_bound(self):
        m = SimulationMetrics()
        m.n_requests = 10
        m.n_admitted = 4
        m.n_rejected_cac = 2
        assert m.admission_probability == pytest.approx(4 / 6)
        assert m.admission_probability_including_blocked == pytest.approx(0.4)

    def test_empty_metrics_nan(self):
        m = SimulationMetrics()
        assert math.isnan(m.admission_probability)
        assert math.isnan(m.admission_probability_including_blocked)
