"""The examples must stay runnable — they are documentation that executes."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: Examples fast enough for the test suite (the remaining two run the same
#: code paths at larger scale).
FAST_EXAMPLES = [
    "quickstart.py",
    "industrial_control.py",
    "token_ring_extension.py",
    "failover_drill.py",
    "broadcast_studio.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "example produced no output"
    assert "VIOLAT" not in proc.stdout  # no bound/deadline violations


def test_all_examples_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    expected = set(FAST_EXAMPLES) | {"video_conferencing.py", "capacity_planning.py"}
    assert expected <= present
