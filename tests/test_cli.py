"""Tests for the operator CLI (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_topology_command(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "3 rings" in out
        assert "s1 <-> s2" in out

    def test_topology_custom_size(self, capsys):
        main(["topology", "--rings", "2", "--hosts", "1"])
        out = capsys.readouterr().out
        assert "2 rings" in out

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "video-1" in out
        assert "TOTAL" in out

    def test_buffers_command(self, capsys):
        assert main(["buffers"]) == 0
        out = capsys.readouterr().out
        assert "MAC transmit queues" in out
        assert "TOTAL" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bench_command_quick(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "repeat_admission_incremental" in out
        assert "decisions identical" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["macro_decisions_identical"] is True
        names = {r["name"] for r in payload["results"]}
        assert "admission_decision_incremental" in names
        speedups = [
            r["speedup_vs_full"]
            for r in payload["results"]
            if r["name"].startswith("repeat_admission_incremental")
        ]
        assert speedups and speedups[0] > 0

    def test_bench_command_no_file(self, capsys):
        assert main(["bench", "--quick", "--output", "-"]) == 0
        assert "written to" not in capsys.readouterr().out
