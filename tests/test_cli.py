"""Tests for the operator CLI (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_topology_command(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "3 rings" in out
        assert "s1 <-> s2" in out

    def test_topology_custom_size(self, capsys):
        main(["topology", "--rings", "2", "--hosts", "1"])
        out = capsys.readouterr().out
        assert "2 rings" in out

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "video-1" in out
        assert "TOTAL" in out

    def test_buffers_command(self, capsys):
        assert main(["buffers"]) == 0
        out = capsys.readouterr().out
        assert "MAC transmit queues" in out
        assert "TOTAL" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
