"""Seeded scenario generation and the differential fuzzing driver.

:func:`generate_spec` maps one integer seed to one random-but-valid
:class:`~repro.scenario.spec.ScenarioSpec` — small topologies, mixed
traffic, optional explicit connections, optional fault schedules — fully
deterministically (the same seed always yields the same spec, so a corpus
is just a list of seeds plus the hashes they are expected to produce).

:func:`run_corpus` fans a batch of cases through the invariant suite
(:func:`repro.scenario.check.check_scenario`) via
:func:`repro.experiments.parallel.run_parallel`.  A violated case is
shrunk with :func:`repro.scenario.shrink.shrink_spec` to a minimal
reproducer, written to ``results/fuzz/`` as a one-file JSON spec, and
reported as a :class:`~repro.errors.ScenarioInvariantError` carrying the
spec hash, the seed and the reproducer path — never a bare assert.

:func:`check_reproducers` replays a committed directory of past minimal
reproducers (the regression corpus) and expects every one of them to pass
under production options.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.config import NetworkConfig
from repro.errors import ReproError, ScenarioInvariantError, ScenarioSpecError
from repro.faults.injector import FaultConfig, ScriptedFault
from repro.faults.retry import RetryPolicy
from repro.scenario import codec
from repro.scenario.check import CheckOptions, CheckReport, check_scenario
from repro.scenario.shrink import ShrinkResult, shrink_spec
from repro.scenario.spec import (
    AnalysisKnobs,
    ArrivalsSpec,
    ConnectionEntry,
    FaultPlan,
    PacketRunSpec,
    ScenarioSpec,
)
from repro.topo import generators as topo_generators
from repro.topo.spec import TopologySpec
from repro.traffic.cbr import CBRTraffic
from repro.traffic.descriptor import TrafficDescriptor
from repro.traffic.dual_periodic import DualPeriodicTraffic
from repro.traffic.generators import WorkloadSpec
from repro.traffic.leaky_bucket import LeakyBucketTraffic
from repro.traffic.periodic import PeriodicTraffic

#: Default directory for minimal reproducers written by the driver.
DEFAULT_OUT_DIR = os.path.join("results", "fuzz")


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


def _random_workload(rng: random.Random) -> WorkloadSpec:
    """A dual-periodic request distribution in the CAC's feasible regime."""
    p1 = rng.uniform(0.010, 0.020)
    p2 = p1 * rng.uniform(0.2, 0.4)
    outer_rate = rng.uniform(4e6, 10e6)  # bits/s long-term
    inner_factor = rng.uniform(1.0, 1.8)
    c1 = outer_rate * p1
    c2 = min(c1, outer_rate * inner_factor * p2)
    deadline_min = rng.uniform(0.030, 0.060)
    deadline_max = deadline_min + rng.uniform(0.020, 0.060)
    return WorkloadSpec(
        c1=c1,
        p1=p1,
        c2=c2,
        p2=p2,
        deadline_min=deadline_min,
        deadline_max=deadline_max,
        jitter=rng.choice([0.0, 0.1, 0.2]),
    )


def _random_traffic(rng: random.Random) -> TrafficDescriptor:
    """One random source model from the codec's closed registry."""
    kind = rng.randrange(4)
    if kind == 0:
        p1 = rng.uniform(0.010, 0.020)
        p2 = p1 * rng.uniform(0.2, 0.4)
        outer_rate = rng.uniform(4e6, 9e6)
        c1 = outer_rate * p1
        # Inner rate must be at least the outer rate (budget consumable).
        c2 = min(c1, outer_rate * rng.uniform(1.0, 1.8) * p2)
        return DualPeriodicTraffic(c1=c1, p1=p1, c2=c2, p2=p2)
    if kind == 1:
        return PeriodicTraffic(
            c=rng.uniform(3e6, 8e6) * 0.01, p=rng.uniform(0.008, 0.015)
        )
    if kind == 2:
        return LeakyBucketTraffic(
            sigma=rng.uniform(2e4, 2e5),
            rho=rng.uniform(2e6, 8e6),
            peak=rng.choice([float("inf"), 5e7, 1e8]),
        )
    return CBRTraffic(
        rate=rng.uniform(1e6, 6e6), packet_bits=rng.choice([0.0, 424.0, 8000.0])
    )


def _random_topo(
    rng: random.Random,
) -> Tuple[Optional[TopologySpec], int, int]:
    """Sample a structural family; returns (topo, n_rings, hosts_per_ring).

    ``None`` keeps the reference pairwise mesh built from the scalar
    config (the pre-topo behaviour); the other families exercise
    multi-hop routes and — for unidirectional switch rings — genuinely
    cyclic port interference (the fixed-point regime).  Every family's
    hosts follow the ``host<i>-<j>`` naming, so explicit connections are
    addressed identically everywhere.
    """
    hosts = rng.randint(2, 3)
    kind = rng.randrange(6)
    if kind == 0:
        # Reference mesh; the old 4-ring cap is lifted to 6 (15 backbone
        # links — the regime the n(n-1)/2 calibration fix matters for).
        return None, rng.randint(2, 6), hosts
    if kind == 1:
        n = rng.randint(2, 10)
        return topo_generators.line(n, hosts), n, hosts
    if kind == 2:
        n = rng.randint(3, 10)
        return (
            topo_generators.ring_of_switches(
                n, hosts, unidirectional=rng.random() < 0.5
            ),
            n,
            hosts,
        )
    if kind == 3:
        n = rng.randint(2, 8)
        return topo_generators.star(n, hosts), n, hosts
    if kind == 4:
        n = rng.randint(4, 10)
        return (
            topo_generators.partial_mesh(
                n, hosts, chord_stride=rng.randint(2, 4)
            ),
            n,
            hosts,
        )
    n_switches = rng.randint(1, 4)
    rings_per_switch = rng.randint(2, 3)
    return (
        topo_generators.multi_ring_per_switch(
            n_switches, rings_per_switch, hosts
        ),
        n_switches * rings_per_switch,
        hosts,
    )


def _random_connections(
    rng: random.Random, n_rings: int, hosts_per_ring: int
) -> Tuple[ConnectionEntry, ...]:
    """0-4 explicit cross-ring connections on distinct source hosts."""
    n = rng.randint(1, 4)
    entries: List[ConnectionEntry] = []
    used_sources = set()
    for k in range(n):
        src_ring = rng.randint(1, n_rings)
        dst_ring = rng.choice(
            [r for r in range(1, n_rings + 1) if r != src_ring]
        )
        source = f"host{src_ring}-{rng.randint(1, hosts_per_ring)}"
        if source in used_sources:
            continue
        used_sources.add(source)
        dest = f"host{dst_ring}-{rng.randint(1, hosts_per_ring)}"
        entries.append(
            ConnectionEntry(
                conn_id=f"fz-{k}",
                source_host=source,
                dest_host=dest,
                traffic=_random_traffic(rng),
                deadline=rng.uniform(0.030, 0.120),
            )
        )
    return tuple(entries)


def _random_faults(
    rng: random.Random, arrivals: ArrivalsSpec, topology: NetworkConfig
) -> FaultPlan:
    """A fault plan whose event times land inside the expected run."""
    # Expected simulated duration: n_requests Poisson arrivals at the rate
    # the utilization knob implies on this topology.
    rate = arrivals.simulation_config().arrival_rate_for_utilization(
        arrivals.utilization, topology
    )
    horizon = arrivals.n_requests / rate
    script: List[ScriptedFault] = []
    for _ in range(rng.randint(0, 2)):
        i = rng.randint(1, topology.n_rings)
        j = rng.choice([s for s in range(1, topology.n_rings + 1) if s != i])
        link = (f"s{min(i, j)}", f"s{max(i, j)}")
        t_fail = rng.uniform(0.05, 0.6) * horizon
        t_repair = t_fail + rng.uniform(0.05, 0.3) * horizon
        script.append(ScriptedFault(time=t_fail, action="fail", target=link))
        script.append(
            ScriptedFault(time=t_repair, action="repair", target=link)
        )
    config: Optional[FaultConfig] = None
    if rng.random() < 0.5 or not script:
        config = FaultConfig(
            link_mtbf=rng.uniform(0.5, 2.0) * horizon,
            link_mttr=rng.uniform(0.02, 0.15) * horizon,
        )
    retry: Optional[RetryPolicy] = None
    if rng.random() < 0.5:
        retry = RetryPolicy(
            base_delay=rng.uniform(0.005, 0.05) * horizon,
            factor=2.0,
            max_delay=rng.uniform(0.1, 0.3) * horizon,
            max_attempts=rng.randint(2, 8),
            jitter=rng.choice([0.0, 0.1]),
        )
    return FaultPlan(config=config, script=tuple(script), retry=retry)


def generate_spec(seed: int, name: Optional[str] = None) -> ScenarioSpec:
    """The deterministic spec for one fuzz seed.

    Every draw flows through one ``random.Random(seed)``, so the mapping
    seed -> spec is stable across runs and machines; the corpus manifest
    records the expected content hash per seed to catch generator or codec
    drift.
    """
    rng = random.Random(seed)
    topo, n_rings, hosts_per_ring = _random_topo(rng)
    topology = NetworkConfig(
        n_rings=n_rings,
        hosts_per_ring=hosts_per_ring,
        ttrt=rng.choice([0.004, 0.008, 0.016]),
    )
    knobs = AnalysisKnobs(
        beta=rng.choice([0.0, 0.25, 0.5, 0.75, 1.0]),
        incremental=rng.random() < 0.9,
        coarsen_segments=rng.choice([None, None, None, 16, 32, 64]),
    )
    want_arrivals = rng.random() < 0.8
    want_explicit = rng.random() < 0.4
    if not want_arrivals and not want_explicit:
        want_arrivals = True

    arrivals: Optional[ArrivalsSpec] = None
    if want_arrivals:
        n_requests = rng.randint(8, 40)
        arrivals = ArrivalsSpec(
            utilization=rng.uniform(0.05, 0.5),
            seed=rng.randint(1, 10**6),
            n_requests=n_requests,
            warmup_requests=rng.randint(0, n_requests // 4),
            workload=_random_workload(rng),
            mean_lifetime=rng.choice([300.0, 600.0, 1200.0]),
            load_scale=rng.choice([1.0, 1.0, 0.15]),
            count_host_blocked=rng.random() < 0.2,
        )

    connections: Tuple[ConnectionEntry, ...] = ()
    if want_explicit:
        connections = _random_connections(rng, n_rings, hosts_per_ring)
        if not connections and arrivals is None:
            # All candidate sources collided: fall back to a workload.
            arrivals = ArrivalsSpec(utilization=0.2, n_requests=10)

    faults: Optional[FaultPlan] = None
    if (
        topo is None
        and arrivals is not None
        and not connections
        and rng.random() < 0.35
    ):
        # Fault scripts name the reference mesh's pairwise links; the
        # structural families keep their fault coverage via the mesh arm.
        plan = _random_faults(rng, arrivals, topology)
        if plan.any_enabled:
            faults = plan

    packet = PacketRunSpec(
        duration=rng.choice([0.1, 0.2, 0.3]),
        adversarial_phase=rng.random() < 0.3,
    )
    return ScenarioSpec(
        name=name or f"fuzz-{seed}",
        topology=topology,
        topo=topo,
        cac=knobs,
        arrivals=arrivals,
        connections=connections,
        faults=faults,
        packet=packet,
    )


# ----------------------------------------------------------------------
# Corpus driving
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FuzzCase:
    """One corpus entry: a seed and (optionally) its expected spec hash."""

    seed: int
    expected_hash: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class CaseOutcome:
    """The invariant suite's verdict on one fuzz case."""

    seed: int
    spec_hash: str
    report: CheckReport
    #: Set when the regenerated spec's hash no longer matches the manifest
    #: (generator or codec drift — the corpus must be regenerated).
    hash_mismatch: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.report.ok and self.hash_mismatch is None


@dataclasses.dataclass(frozen=True)
class FuzzFailure:
    """One shrunk violation, ready to be raised or summarized."""

    seed: int
    spec_hash: str
    invariants: Tuple[str, ...]
    reproducer_path: str
    shrink: ShrinkResult

    def to_error(self) -> ScenarioInvariantError:
        return ScenarioInvariantError(
            "fuzzed scenario violated the invariant suite",
            invariants=self.invariants,
            spec_hash=self.spec_hash,
            seed=self.seed,
            reproducer_path=self.reproducer_path,
        )


@dataclasses.dataclass(frozen=True)
class FuzzSummary:
    """Outcome of one corpus run."""

    outcomes: Tuple[CaseOutcome, ...]
    failures: Tuple[FuzzFailure, ...]

    @property
    def ok(self) -> bool:
        return not self.failures and all(o.ok for o in self.outcomes)

    @property
    def n_cases(self) -> int:
        return len(self.outcomes)

    def raise_first(self) -> None:
        """Raise the first failure as a :class:`ScenarioInvariantError`."""
        for outcome in self.outcomes:
            if outcome.hash_mismatch is not None:
                raise ScenarioInvariantError(
                    outcome.hash_mismatch,
                    spec_hash=outcome.spec_hash,
                    seed=outcome.seed,
                )
        if self.failures:
            raise self.failures[0].to_error()


def _check_case(item: Tuple[FuzzCase, CheckOptions]) -> CaseOutcome:
    """Worker entry point (module-level so the pool can pickle it)."""
    case, options = item
    spec = generate_spec(case.seed)
    spec_hash = codec.spec_hash(spec)
    mismatch: Optional[str] = None
    if case.expected_hash is not None and case.expected_hash != spec_hash:
        mismatch = (
            f"seed {case.seed}: generated spec hash {spec_hash[:12]} != "
            f"manifest hash {case.expected_hash[:12]} (generator/codec "
            "drift; regenerate the corpus manifest)"
        )
    report = check_scenario(spec, options)
    return CaseOutcome(
        seed=case.seed,
        spec_hash=spec_hash,
        report=report,
        hash_mismatch=mismatch,
    )


_Predicate = Callable[[ScenarioSpec], FrozenSet[str]]


def _failing_predicate(options: CheckOptions) -> _Predicate:
    def failing(candidate: ScenarioSpec) -> FrozenSet[str]:
        try:
            report = check_scenario(candidate, options)
        except ReproError:
            return frozenset()
        return frozenset(report.violated_invariants)

    return failing


def investigate_failure(
    seed: int,
    options: CheckOptions,
    out_dir: str = DEFAULT_OUT_DIR,
) -> FuzzFailure:
    """Shrink a failing seed to a minimal reproducer and write it to disk.

    The reproducer file is a complete one-file spec; replay it with
    ``python -m repro scenario replay <file>``.
    """
    spec = generate_spec(seed)
    shrunk = shrink_spec(spec, _failing_predicate(options))
    minimal = dataclasses.replace(shrunk.spec, name=f"min-{seed}")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"min-{seed}.json")
    codec.save_file(minimal, path)
    return FuzzFailure(
        seed=seed,
        spec_hash=codec.spec_hash(spec),
        invariants=shrunk.invariants,
        reproducer_path=path,
        shrink=shrunk,
    )


def run_corpus(
    cases: Sequence[FuzzCase],
    options: Optional[CheckOptions] = None,
    jobs: int = 1,
    out_dir: str = DEFAULT_OUT_DIR,
) -> FuzzSummary:
    """Run every case through the invariant suite; shrink what fails.

    Violations do not abort the sweep — every case runs, every failing
    case is shrunk, and the summary carries them all (call
    :meth:`FuzzSummary.raise_first` to turn the first into an exception).
    """
    # Imported here, not at module top: the experiments package builds its
    # sweep specs from this package, so the dependency must stay one-way
    # at import time.
    from repro.experiments.parallel import run_parallel

    opts = options or CheckOptions()
    outcomes = run_parallel(
        _check_case,
        [(case, opts) for case in cases],
        jobs=jobs,
        describe=lambda item: f"seed={item[0].seed}",
    )
    failures: List[FuzzFailure] = []
    for outcome in outcomes:
        if not outcome.report.ok:
            failures.append(
                investigate_failure(outcome.seed, opts, out_dir=out_dir)
            )
    return FuzzSummary(outcomes=tuple(outcomes), failures=tuple(failures))


def seeds_to_cases(seeds: Sequence[int]) -> List[FuzzCase]:
    return [FuzzCase(seed=s) for s in seeds]


# ----------------------------------------------------------------------
# Regression corpus (committed reproducers and the seed manifest)
# ----------------------------------------------------------------------


def write_manifest(path: str, seeds: Sequence[int]) -> List[FuzzCase]:
    """Write the corpus manifest: every seed with its expected spec hash."""
    cases = [
        FuzzCase(seed=s, expected_hash=codec.spec_hash(generate_spec(s)))
        for s in seeds
    ]
    payload = {
        "format": 1,
        "cases": [
            {"seed": c.seed, "hash": c.expected_hash} for c in cases
        ],
    }
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return cases


def load_manifest(path: str) -> List[FuzzCase]:
    """Load a corpus manifest written by :func:`write_manifest`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("format") != 1:
        raise ScenarioSpecError(f"{path}: not a format-1 corpus manifest")
    cases: List[FuzzCase] = []
    for entry in payload.get("cases", []):
        cases.append(
            FuzzCase(seed=int(entry["seed"]), expected_hash=entry["hash"])
        )
    return cases


def check_reproducers(
    directory: str, options: Optional[CheckOptions] = None
) -> Dict[str, CheckReport]:
    """Replay every ``*.json`` reproducer in ``directory``.

    Past minimal reproducers are committed as regression guards: once the
    underlying bug is fixed (or the violation was planted by a test-only
    knob), they must pass under production options forever after.
    """
    opts = options or CheckOptions()
    reports: Dict[str, CheckReport] = {}
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".json"):
            continue
        path = os.path.join(directory, entry)
        spec = codec.load_file(path)
        reports[path] = check_scenario(spec, opts)
    return reports
