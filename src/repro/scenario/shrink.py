"""Delta-debugging shrinker for failing scenario specs.

Given a spec that violates the invariant suite and a predicate that says
*which* invariants a candidate violates, shrink the spec to a minimal
reproducer while preserving at least one of the originally violated
invariants.  The passes run in a fixed order until a fixed point:

1. **connections** — ddmin over the explicit connection list;
2. **workload** — shrink the stochastic request budget toward 1, warmup
   toward 0;
3. **faults** — drop the fault plan, ddmin the scripted events, drop the
   stochastic processes / retry policy;
4. **topo** — replace a declarative structural topology with the plain
   reference mesh when the failure reproduces there too;
5. **topology** — fewer rings, fewer hosts per ring (candidates that
   orphan a referenced host are skipped; mesh-shaped specs only);
6. **packet** — shorter validation horizon;
7. **numbers** — round every float knob to the fewest significant digits
   that still reproduce the failure.

Everything is deterministic: the same failing spec and predicate always
shrink to the same minimal spec, in the same number of evaluations.
A candidate that *errors* (rather than fails) counts as not reproducing.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Callable, FrozenSet, List, Sequence, Tuple, TypeVar

from repro.errors import ReproError
from repro.scenario.spec import ArrivalsSpec, ConnectionEntry, ScenarioSpec

_T = TypeVar("_T")

#: ``failing(spec)`` returns the set of violated invariant names (empty =
#: the candidate passes, or could not be evaluated).
FailingPredicate = Callable[[ScenarioSpec], FrozenSet[str]]

#: Hosts built by :func:`repro.config.build_network` are ``host<i>-<j>``.
_HOST_RE = re.compile(r"^host(\d+)-(\d+)$")

#: Significant-digit ladders tried by the numeric pass, coarsest first.
_SIG_DIGITS = (1, 2, 3, 6)


@dataclasses.dataclass(frozen=True)
class ShrinkResult:
    """The minimal spec plus bookkeeping about how it was found."""

    spec: ScenarioSpec
    #: Invariants the minimal spec still violates.
    invariants: Tuple[str, ...]
    #: Candidate specs evaluated (predicate calls), including rejected ones.
    evaluations: int
    #: Full pass-loop iterations until the fixed point.
    iterations: int


class _Shrinker:
    def __init__(
        self, failing: FailingPredicate, preserve: FrozenSet[str]
    ) -> None:
        self._failing = failing
        self._preserve = preserve
        self.evaluations = 0

    def still_fails(self, candidate: ScenarioSpec) -> bool:
        self.evaluations += 1
        try:
            violated = self._failing(candidate)
        except ReproError:
            return False
        return bool(violated & self._preserve)

    # -- passes --------------------------------------------------------

    def pass_connections(self, spec: ScenarioSpec) -> ScenarioSpec:
        if not spec.connections:
            return spec
        def fails_with(entries: Sequence[ConnectionEntry]) -> bool:
            try:
                candidate = spec.with_connections(entries)
            except ReproError:
                return False
            return self.still_fails(candidate)

        kept = _ddmin(list(spec.connections), fails_with)
        if len(kept) != len(spec.connections):
            return spec.with_connections(kept)
        return spec

    def pass_workload(self, spec: ScenarioSpec) -> ScenarioSpec:
        arrivals = spec.arrivals
        if arrivals is None:
            return spec
        # Try dropping the stochastic workload outright (explicit-only).
        if spec.connections:
            candidate = dataclasses.replace(spec, arrivals=None, faults=None)
            if self.still_fails(candidate):
                return candidate
        spec = self._shrink_int(
            spec,
            arrivals.n_requests,
            low=1,
            apply=lambda s, v: _with_arrivals(s, n_requests=v, warmup_requests=min(_arrivals(s).warmup_requests, v)),
        )
        arrivals = _arrivals(spec)
        if arrivals.warmup_requests:
            candidate = _with_arrivals(spec, warmup_requests=0)
            if self.still_fails(candidate):
                spec = candidate
        return spec

    def pass_faults(self, spec: ScenarioSpec) -> ScenarioSpec:
        plan = spec.faults
        if plan is None:
            return spec
        candidate = dataclasses.replace(spec, faults=None)
        if self.still_fails(candidate):
            return candidate
        if plan.script:
            def fails_with(events: Sequence[object]) -> bool:
                new_plan = dataclasses.replace(
                    plan, script=tuple(events)  # type: ignore[arg-type]
                )
                return self.still_fails(
                    dataclasses.replace(spec, faults=new_plan)
                )

            kept = _ddmin(list(plan.script), fails_with)
            if len(kept) != len(plan.script):
                plan = dataclasses.replace(plan, script=tuple(kept))
                spec = dataclasses.replace(spec, faults=plan)
        if plan.config is not None:
            candidate = dataclasses.replace(
                spec, faults=dataclasses.replace(plan, config=None)
            )
            if self.still_fails(candidate):
                spec = candidate
                plan = dataclasses.replace(plan, config=None)
        if plan.retry is not None:
            candidate = dataclasses.replace(
                spec, faults=dataclasses.replace(plan, retry=None)
            )
            if self.still_fails(candidate):
                spec = candidate
        return spec

    def pass_topo(self, spec: ScenarioSpec) -> ScenarioSpec:
        """Try replacing a declarative topology with the reference mesh.

        A failure that reproduces on the plain pairwise mesh (same ring
        count, from the scalar config) is a much simpler reproducer than
        any structural family.
        """
        if spec.topo is None:
            return spec
        candidate = dataclasses.replace(spec, topo=None)
        if self.still_fails(candidate):
            return candidate
        return spec

    def pass_topology(self, spec: ScenarioSpec) -> ScenarioSpec:
        if spec.topo is not None:
            # Shape is governed by the declarative spec, not the scalar
            # ring counters; shrinking those would be cosmetic.
            return spec
        min_rings, min_hosts = _referenced_floor(spec)
        topo = spec.topology
        for rings in range(max(2, min_rings), topo.n_rings):
            candidate = dataclasses.replace(
                spec,
                topology=dataclasses.replace(topo, n_rings=rings),
            )
            if self.still_fails(candidate):
                spec = candidate
                topo = spec.topology
                break
        for hosts in range(max(1, min_hosts), topo.hosts_per_ring):
            candidate = dataclasses.replace(
                spec,
                topology=dataclasses.replace(topo, hosts_per_ring=hosts),
            )
            if self.still_fails(candidate):
                spec = candidate
                break
        return spec

    def pass_packet(self, spec: ScenarioSpec) -> ScenarioSpec:
        for duration in (0.05, 0.1, 0.2):
            if duration >= spec.packet.duration:
                break
            candidate = dataclasses.replace(
                spec,
                packet=dataclasses.replace(spec.packet, duration=duration),
            )
            if self.still_fails(candidate):
                return candidate
        return spec

    def pass_numbers(self, spec: ScenarioSpec) -> ScenarioSpec:
        # Explicit connections: deadlines and traffic parameters.
        entries = list(spec.connections)
        for i, entry in enumerate(entries):
            new_deadline = self._shrink_float(
                spec,
                entry.deadline,
                lambda s, v, i=i: _with_entry(
                    s, i, dataclasses.replace(_entry(s, i), deadline=v)
                ),
            )
            spec = _with_entry(
                spec,
                i,
                dataclasses.replace(_entry(spec, i), deadline=new_deadline),
            )
            spec = self._shrink_traffic(spec, i)
        arrivals = spec.arrivals
        if arrivals is not None:
            for field in ("utilization", "mean_lifetime", "load_scale"):
                value = float(getattr(_arrivals(spec), field))
                new_value = self._shrink_float(
                    spec,
                    value,
                    lambda s, v, field=field: _with_arrivals(s, **{field: v}),
                )
                spec = _with_arrivals(spec, **{field: new_value})
        return spec

    # -- helpers -------------------------------------------------------

    def _shrink_traffic(self, spec: ScenarioSpec, index: int) -> ScenarioSpec:
        entry = _entry(spec, index)
        traffic = entry.traffic
        if not dataclasses.is_dataclass(traffic):
            return spec
        for f in dataclasses.fields(traffic):
            value = getattr(traffic, f.name)
            if not isinstance(value, float) or value in (0.0,):
                continue
            def apply(
                s: ScenarioSpec, v: float, name: str = f.name, i: int = index
            ) -> ScenarioSpec:
                t = _entry(s, i).traffic
                new_t = dataclasses.replace(t, **{name: v})
                return _with_entry(
                    s,
                    i,
                    dataclasses.replace(_entry(s, i), traffic=new_t),
                )

            new_value = self._shrink_float(spec, value, apply)
            spec = apply(spec, new_value)
        return spec

    def _shrink_float(
        self,
        spec: ScenarioSpec,
        value: float,
        apply: Callable[[ScenarioSpec, float], ScenarioSpec],
    ) -> float:
        """The coarsest significant-digit rounding that still fails."""
        for digits in _SIG_DIGITS:
            rounded = float(f"{value:.{digits}g}")
            if rounded == value:
                return value
            try:
                candidate = apply(spec, rounded)
            except ReproError:
                continue
            if self.still_fails(candidate):
                return rounded
        return value

    def _shrink_int(
        self,
        spec: ScenarioSpec,
        value: int,
        low: int,
        apply: Callable[[ScenarioSpec, int], ScenarioSpec],
    ) -> ScenarioSpec:
        """Binary-search the smallest value in [low, value] that fails."""
        best = spec
        lo, hi = low, value
        while lo < hi:
            mid = (lo + hi) // 2
            try:
                candidate = apply(spec, mid)
            except ReproError:
                lo = mid + 1
                continue
            if self.still_fails(candidate):
                best = candidate
                hi = mid
            else:
                lo = mid + 1
        return best


def shrink_spec(
    spec: ScenarioSpec,
    failing: FailingPredicate,
    max_iterations: int = 6,
) -> ShrinkResult:
    """Shrink ``spec`` to a minimal reproducer of its violations.

    ``failing`` must return the violated invariant names for a candidate
    (empty when it passes).  Raises :class:`ValueError` if the input spec
    does not fail to begin with.
    """
    initial = frozenset(failing(spec))
    if not initial:
        raise ValueError("shrink_spec needs a spec that violates invariants")
    shrinker = _Shrinker(failing, initial)
    shrinker.evaluations += 1  # the initial classification above
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        before = spec
        spec = shrinker.pass_connections(spec)
        spec = shrinker.pass_workload(spec)
        spec = shrinker.pass_faults(spec)
        spec = shrinker.pass_topo(spec)
        spec = shrinker.pass_topology(spec)
        spec = shrinker.pass_packet(spec)
        spec = shrinker.pass_numbers(spec)
        if spec == before:
            break
    final = frozenset(failing(spec)) & initial
    return ShrinkResult(
        spec=spec,
        invariants=tuple(sorted(final)),
        evaluations=shrinker.evaluations,
        iterations=iterations,
    )


# ----------------------------------------------------------------------
# Small structural helpers (kept module-level for reuse in tests)
# ----------------------------------------------------------------------


def _arrivals(spec: ScenarioSpec) -> ArrivalsSpec:
    assert spec.arrivals is not None
    return spec.arrivals


def _with_arrivals(spec: ScenarioSpec, **changes: object) -> ScenarioSpec:
    return dataclasses.replace(
        spec, arrivals=dataclasses.replace(_arrivals(spec), **changes)
    )


def _entry(spec: ScenarioSpec, index: int) -> ConnectionEntry:
    return spec.connections[index]


def _with_entry(
    spec: ScenarioSpec, index: int, entry: ConnectionEntry
) -> ScenarioSpec:
    entries = list(spec.connections)
    entries[index] = entry
    return spec.with_connections(entries)


def _referenced_floor(spec: ScenarioSpec) -> Tuple[int, int]:
    """Smallest (n_rings, hosts_per_ring) the explicit hosts require."""
    max_ring = 0
    max_host = 0
    for entry in spec.connections:
        for host in (entry.source_host, entry.dest_host):
            match = _HOST_RE.match(host)
            if match is None:
                # Non-standard host naming: don't touch the topology.
                return spec.topology.n_rings, spec.topology.hosts_per_ring
            max_ring = max(max_ring, int(match.group(1)))
            max_host = max(max_host, int(match.group(2)))
    return max_ring, max_host


def _ddmin(
    items: List[_T], still_fails: Callable[[Sequence[_T]], bool]
) -> List[_T]:
    """Classic ddmin: a 1-minimal sublist that still fails."""
    if not items:
        return items
    if still_fails([]):
        return []
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            complement = items[:start] + items[start + chunk:]
            if complement and still_fails(complement):
                items = complement
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if chunk <= 1:
                break
            n = min(len(items), n * 2)
    if len(items) == 1 and still_fails([]):
        return []
    return items


