"""The unified scenario spec: one declarative object, every engine.

A :class:`ScenarioSpec` describes everything a run needs — topology,
workload (stochastic arrivals and/or an explicit connection list), fault
schedule, and policy/analysis knobs — as one frozen, serializable value.
The analytic CAC, the connection-level simulator and the packet-level
simulator all consume it through :mod:`repro.scenario.loader`, so a spec
is a complete, reproducible description of a run: the experiments build
specs, the fuzzer generates them, and a failing spec round-trips through
JSON (:mod:`repro.scenario.codec`) as a one-file reproducer.

Design rules:

* every field is a plain value or a frozen dataclass — specs hash, pickle
  and compare structurally;
* reuse the existing validated config types (:class:`~repro.config.NetworkConfig`,
  :class:`~repro.traffic.generators.WorkloadSpec`,
  :class:`~repro.faults.injector.FaultConfig`, …) rather than mirroring
  their fields, so a spec can never describe a network the builders would
  reject;
* validation happens at construction (``__post_init__``), not at load
  time — an unbuildable spec fails before it is ever written to disk.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from repro.config import NetworkConfig, SimulationConfig
from repro.errors import ScenarioSpecError, TopologyError
from repro.topo.spec import TopologySpec
from repro.faults.injector import FaultConfig, FaultScript, ScriptedFault
from repro.faults.retry import RetryPolicy
from repro.traffic.descriptor import TrafficDescriptor
from repro.traffic.generators import WorkloadSpec

#: Current on-disk format version (bumped on incompatible codec changes).
FORMAT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class AnalysisKnobs:
    """Policy/analysis knobs of the CAC (the spec's "how to decide" part)."""

    #: The allocation interpolation parameter of Eqs. 35/36.
    beta: float = 0.5
    #: Interference-partition incremental analysis (bit-identical to the
    #: full recomputation; the differential checker verifies exactly that).
    incremental: bool = True
    #: Conservative curve coarsening cap (None = exact mode).
    coarsen_segments: Optional[int] = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.beta <= 1.0):
            raise ScenarioSpecError("beta must be in [0, 1]")
        if self.coarsen_segments is not None and self.coarsen_segments < 8:
            raise ScenarioSpecError("coarsen_segments must be >= 8 (or None)")


@dataclasses.dataclass(frozen=True)
class ArrivalsSpec:
    """Stochastic workload for the connection-level simulator.

    Mirrors the paper's evaluation harness: Poisson requests at the rate
    implied by ``utilization``, dual-periodic sources drawn from
    ``workload``, exponential lifetimes.
    """

    utilization: float
    seed: int = 1
    n_requests: int = 100
    warmup_requests: int = 10
    workload: WorkloadSpec = dataclasses.field(
        default_factory=lambda: SimulationConfig().workload
    )
    mean_lifetime: float = 600.0
    load_scale: float = 1.0
    count_host_blocked: bool = False

    def __post_init__(self) -> None:
        if self.utilization <= 0:
            raise ScenarioSpecError("utilization must be positive")
        if self.n_requests < 1:
            raise ScenarioSpecError("need at least one request")
        if not (0 <= self.warmup_requests <= self.n_requests):
            raise ScenarioSpecError(
                "warmup_requests must be in [0, n_requests]"
            )
        if self.mean_lifetime <= 0 or self.load_scale <= 0:
            raise ScenarioSpecError(
                "mean_lifetime and load_scale must be positive"
            )

    def simulation_config(self) -> SimulationConfig:
        """The equivalent :class:`~repro.config.SimulationConfig`."""
        return SimulationConfig(
            mean_lifetime=self.mean_lifetime,
            workload=self.workload,
            count_host_blocked=self.count_host_blocked,
            load_scale=self.load_scale,
        )


@dataclasses.dataclass(frozen=True)
class ConnectionEntry:
    """One explicitly offered connection (admitted in list order)."""

    conn_id: str
    source_host: str
    dest_host: str
    traffic: TrafficDescriptor
    deadline: float

    def __post_init__(self) -> None:
        if not self.conn_id:
            raise ScenarioSpecError("conn_id must be non-empty")
        if self.deadline <= 0:
            raise ScenarioSpecError("deadline must be positive")
        if self.source_host == self.dest_host:
            raise ScenarioSpecError("source and destination must differ")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Fault schedule: stochastic processes, scripted events, retry knobs."""

    #: Stochastic MTBF/MTTR renewal processes (None = no stochastic faults).
    config: Optional[FaultConfig] = None
    #: Deterministic scripted events, sorted by time.
    script: Tuple[ScriptedFault, ...] = ()
    #: Backoff schedule for re-admitting displaced connections.
    retry: Optional[RetryPolicy] = None

    @property
    def any_enabled(self) -> bool:
        return bool(self.script) or (
            self.config is not None and self.config.any_enabled
        )

    def fault_script(self) -> Optional[FaultScript]:
        """The :class:`~repro.faults.injector.FaultScript`, or None."""
        if not self.script:
            return None
        return FaultScript(list(self.script))


@dataclasses.dataclass(frozen=True)
class PacketRunSpec:
    """Packet-level validation run over the admitted connection set."""

    #: Greedy worst-case sources are injected over this horizon, seconds.
    duration: float = 0.3
    #: Assume a worst-phase token on ring wake-up (tighter bound stress).
    adversarial_phase: bool = False

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ScenarioSpecError("packet duration must be positive")


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """One complete scenario: topology + workload + faults + knobs.

    A spec must offer load in at least one of two forms:

    * ``arrivals`` — the stochastic connection-request process driven
      through :class:`~repro.sim.connection_sim.ConnectionSimulator`;
    * ``connections`` — an explicit list admitted through the CAC in
      order (rejections are recorded, not fatal).

    When both are present the explicit connections are admitted first and
    the stochastic workload churns on top of them.
    """

    name: str
    topology: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    #: Declarative structural topology (:mod:`repro.topo`).  ``None`` runs
    #: the reference pairwise mesh built from ``topology``; when set, the
    #: spec is lowered via ``topo.build(topology)`` (``topology`` then
    #: supplies only the shared default parameters — rates, latencies,
    #: TTRT — not the shape) and offered load is calibrated against the
    #: built network's aggregate backbone capacity.
    topo: Optional[TopologySpec] = None
    cac: AnalysisKnobs = dataclasses.field(default_factory=AnalysisKnobs)
    arrivals: Optional[ArrivalsSpec] = None
    connections: Tuple[ConnectionEntry, ...] = ()
    faults: Optional[FaultPlan] = None
    packet: PacketRunSpec = dataclasses.field(default_factory=PacketRunSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioSpecError("scenario name must be non-empty")
        if self.topo is not None:
            try:
                self.topo.validate()
            except TopologyError as exc:
                raise ScenarioSpecError(f"topo: {exc}") from None
        if self.arrivals is None and not self.connections:
            raise ScenarioSpecError(
                "a scenario needs arrivals, connections, or both"
            )
        seen = set()
        for entry in self.connections:
            if entry.conn_id in seen:
                raise ScenarioSpecError(
                    f"duplicate connection id {entry.conn_id!r}"
                )
            seen.add(entry.conn_id)
        if self.faults is not None and self.faults.any_enabled:
            if self.arrivals is None:
                raise ScenarioSpecError(
                    "fault schedules need a stochastic workload (the "
                    "connection-level simulator owns the event loop)"
                )
            if self.connections:
                raise ScenarioSpecError(
                    "fault schedules cannot displace pinned explicit "
                    "connections; describe faulted load via arrivals only"
                )

    def with_connections(
        self, connections: Sequence[ConnectionEntry]
    ) -> "ScenarioSpec":
        """A copy with a different explicit connection list (shrinker)."""
        return dataclasses.replace(self, connections=tuple(connections))
