"""Scenario CLI: ``python -m repro scenario <command>``.

Commands
--------
``generate``
    Print (or write) the deterministic spec for a fuzz seed.
``replay <spec.json>``
    Run the differential invariant suite on one spec file — the repro
    path printed by every fuzz failure.
``fuzz``
    Drive a corpus of seeds through the invariant suite, shrinking any
    violation to a minimal reproducer under ``--out``.  ``--check``
    validates the committed corpus instead: the manifest's seeds must
    regenerate to their recorded hashes and pass, and every committed
    reproducer must replay clean.
``manifest``
    (Re)write the corpus manifest for a seed range.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.scenario import codec
from repro.scenario.check import CheckOptions, check_scenario
from repro.scenario.fuzz import (
    DEFAULT_OUT_DIR,
    check_reproducers,
    generate_spec,
    load_manifest,
    run_corpus,
    seeds_to_cases,
    write_manifest,
)

DEFAULT_MANIFEST = "corpus/scenarios.json"
DEFAULT_REPRODUCERS = "corpus/reproducers"


def _options(args: argparse.Namespace) -> CheckOptions:
    return CheckOptions(
        packet=not args.no_packet,
        differential=not args.no_differential,
        coarsening=not args.no_coarsening,
        replay=not args.no_replay,
        bound_scale=args.bound_scale,
    )


def _add_check_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-packet", action="store_true",
        help="skip the packet-level bound validation",
    )
    parser.add_argument(
        "--no-differential", action="store_true",
        help="skip the incremental-vs-full differential",
    )
    parser.add_argument(
        "--no-coarsening", action="store_true",
        help="skip the coarsening-conservative check",
    )
    parser.add_argument(
        "--no-replay", action="store_true",
        help="skip the deterministic-replay check",
    )
    parser.add_argument(
        "--bound-scale", type=float, default=1.0,
        help="test-only: scale analytic bounds before the packet "
        "comparison (<1 plants violations)",
    )


def cmd_generate(args: argparse.Namespace) -> int:
    spec = generate_spec(args.seed)
    text = codec.dumps(spec)
    if args.out:
        codec.save_file(spec, args.out)
        print(f"wrote {args.out} ({codec.spec_hash(spec)[:12]})")
    else:
        print(text)
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    spec = codec.load_file(args.spec)
    report = check_scenario(spec, _options(args))
    print(report.format())
    return 0 if report.ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    if args.check:
        return _fuzz_check(args)
    if args.manifest:
        cases = load_manifest(args.manifest)
    else:
        cases = seeds_to_cases(
            range(args.seed_start, args.seed_start + args.seeds)
        )
    if args.limit is not None:
        cases = cases[: args.limit]
    summary = run_corpus(
        cases, _options(args), jobs=args.jobs, out_dir=args.out
    )
    n_fail = len(summary.failures)
    print(f"fuzz: {summary.n_cases} scenarios, {n_fail} violation(s)")
    for failure in summary.failures:
        print(
            f"  seed {failure.seed}: {', '.join(failure.invariants)} -> "
            f"{failure.reproducer_path} "
            f"(shrunk in {failure.shrink.evaluations} evaluations)"
        )
        print(f"  replay: python -m repro scenario replay "
              f"{failure.reproducer_path}")
    if not summary.ok:
        summary.raise_first()
    return 0


def _fuzz_check(args: argparse.Namespace) -> int:
    """Validate the committed corpus (CI regression mode)."""
    cases = load_manifest(args.manifest or DEFAULT_MANIFEST)
    if args.limit is not None:
        cases = cases[: args.limit]
    summary = run_corpus(
        cases, _options(args), jobs=args.jobs, out_dir=args.out
    )
    print(
        f"corpus: {summary.n_cases} manifest scenario(s), "
        f"{len(summary.failures)} violation(s)"
    )
    reproducer_failures: List[str] = []
    reproducers = args.reproducers or DEFAULT_REPRODUCERS
    try:
        reports = check_reproducers(reproducers, _options(args))
    except FileNotFoundError:
        reports = {}
    for path, report in sorted(reports.items()):
        status = "PASS" if report.ok else "FAIL"
        print(f"  reproducer {path}: {status}")
        if not report.ok:
            reproducer_failures.append(path)
    if reproducer_failures:
        print(
            "regression reproducers failing again: "
            + ", ".join(reproducer_failures),
            file=sys.stderr,
        )
        return 1
    if not summary.ok:
        summary.raise_first()
    return 0


def cmd_manifest(args: argparse.Namespace) -> int:
    cases = write_manifest(
        args.manifest or DEFAULT_MANIFEST,
        list(range(args.seed_start, args.seed_start + args.seeds)),
    )
    print(f"wrote {args.manifest or DEFAULT_MANIFEST} ({len(cases)} cases)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro scenario",
        description="Unified scenario specs + differential fuzzing.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="print the spec for one seed")
    p_gen.add_argument("--seed", type=int, required=True)
    p_gen.add_argument("--out", help="write the spec here instead")
    p_gen.set_defaults(func=cmd_generate)

    p_replay = sub.add_parser(
        "replay", help="run the invariant suite on a spec file"
    )
    p_replay.add_argument("spec", help="path to a scenario spec JSON file")
    _add_check_flags(p_replay)
    p_replay.set_defaults(func=cmd_replay)

    p_fuzz = sub.add_parser(
        "fuzz", help="fuzz a corpus of seeds through the invariant suite"
    )
    p_fuzz.add_argument("--seeds", type=int, default=25,
                        help="number of sequential seeds to fuzz")
    p_fuzz.add_argument("--seed-start", type=int, default=1)
    p_fuzz.add_argument("--manifest",
                        help="fuzz the seeds of this corpus manifest")
    p_fuzz.add_argument("--limit", type=int, default=None,
                        help="cap the number of cases (CI smoke)")
    p_fuzz.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the corpus fan-out")
    p_fuzz.add_argument("--out", default=DEFAULT_OUT_DIR,
                        help="directory for minimal reproducers")
    p_fuzz.add_argument("--check", action="store_true",
                        help="validate the committed corpus + reproducers")
    p_fuzz.add_argument("--reproducers", default=None,
                        help=f"reproducer dir for --check "
                             f"(default {DEFAULT_REPRODUCERS})")
    _add_check_flags(p_fuzz)
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_manifest = sub.add_parser(
        "manifest", help="(re)write the corpus manifest for a seed range"
    )
    p_manifest.add_argument("--seeds", type=int, default=500)
    p_manifest.add_argument("--seed-start", type=int, default=1)
    p_manifest.add_argument("--manifest", default=None)
    p_manifest.set_defaults(func=cmd_manifest)

    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
