"""One loader, three engines.

Every consumer of a :class:`~repro.scenario.spec.ScenarioSpec` goes through
this module:

* :func:`connection_sim_config` — the connection-level simulator's run
  config (what the experiments feed to
  :func:`repro.experiments.parallel.run_sims`);
* :func:`admission_controller` — a fresh analytic CAC over the spec's
  topology and knobs (the analyzer path);
* :func:`run_scenario` — the full end-to-end execution: admit the explicit
  connections, drive the stochastic workload, and return a
  :class:`ScenarioOutcome` whose :attr:`~ScenarioOutcome.signature` is a
  deterministic, ``repr``-exact digest of every decision and the final
  state (the object the differential checker compares across engine
  variants and replays);
* :func:`run_packet_validation` — the packet-level simulator over the
  outcome's admitted set, for the sim-must-stay-below-bound invariant.

The exact-mode path is deliberately identical to the pre-spec experiment
code: a spec whose knobs are all defaults produces the very same
``ConnectionSimConfig`` (``cac=None``) the experiments built by hand, so
figure CSVs stay byte-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import AnalysisConfig, CACConfig, build_network
from repro.core.cac import AdmissionController, AdmissionResult
from repro.core.delay import ConnectionLoad
from repro.errors import ReproError, ScenarioSpecError
from repro.network.connection import ConnectionSpec
from repro.network.topology import NetworkTopology
from repro.scenario.spec import ScenarioSpec
from repro.sim.connection_sim import (
    ConnectionSimConfig,
    ConnectionSimulator,
    SimResult,
)
from repro.sim.packet_sim import PacketLevelSimulator, PacketSimResult


_RequestFn = Callable[[ConnectionSpec], AdmissionResult]


def build_topology(spec: ScenarioSpec) -> NetworkTopology:
    """The spec's network, freshly built (never shared between runs).

    A declarative ``topo`` takes precedence over the reference mesh; the
    scalar ``topology`` config then supplies only default parameters.
    """
    if spec.topo is not None:
        return spec.topo.build(spec.topology)
    return build_network(spec.topology)


def cac_config(spec: ScenarioSpec) -> Optional[CACConfig]:
    """The CAC override the spec implies, or None in pure exact mode.

    Returning ``None`` keeps default-knob runs on the untouched code path
    (the simulator builds its own ``CACConfig(beta=beta)``), exactly as
    the experiments did before the spec refactor — bit-reproducibility of
    the figure artifacts depends on it.
    """
    knobs = spec.cac
    if knobs.incremental and knobs.coarsen_segments is None:
        return None
    analysis = AnalysisConfig(coarsen_segments=knobs.coarsen_segments)
    return CACConfig(
        beta=knobs.beta, incremental=knobs.incremental, analysis=analysis
    )


def connection_sim_config(spec: ScenarioSpec) -> ConnectionSimConfig:
    """The connection-level simulator config for a stochastic scenario."""
    arrivals = spec.arrivals
    if arrivals is None:
        raise ScenarioSpecError(
            f"scenario {spec.name!r} has no stochastic workload (arrivals)"
        )
    plan = spec.faults
    return ConnectionSimConfig(
        utilization=arrivals.utilization,
        beta=spec.cac.beta,
        seed=arrivals.seed,
        n_requests=arrivals.n_requests,
        warmup_requests=arrivals.warmup_requests,
        network=spec.topology,
        topo=spec.topo,
        simulation=arrivals.simulation_config(),
        cac=cac_config(spec),
        faults=None if plan is None else plan.config,
        fault_script=None if plan is None else plan.fault_script(),
        retry=None if plan is None else plan.retry,
    )


def admission_controller(
    spec: ScenarioSpec, topology: Optional[NetworkTopology] = None
) -> AdmissionController:
    """A fresh analytic CAC over the spec's topology and knobs."""
    topo = topology if topology is not None else build_topology(spec)
    config = cac_config(spec)
    if config is None:
        config = CACConfig(beta=spec.cac.beta)
    return AdmissionController(
        topo, network_config=spec.topology, cac_config=config
    )


def offered_connections(spec: ScenarioSpec) -> List[ConnectionSpec]:
    """The explicit connection list as CAC request specs, in order."""
    return [
        ConnectionSpec(
            conn_id=entry.conn_id,
            source_host=entry.source_host,
            dest_host=entry.dest_host,
            traffic=entry.traffic,
            deadline=entry.deadline,
        )
        for entry in spec.connections
    ]


@dataclasses.dataclass(frozen=True)
class ExplicitDecision:
    """Outcome of one explicit connection's admission request."""

    conn_id: str
    admitted: bool
    #: The CAC's reason string, or ``error:<ExceptionName>`` when the
    #: request raised (no route on this topology, invalid endpoints, ...).
    reason: str
    delay_bound: Optional[float] = None


@dataclasses.dataclass
class ScenarioOutcome:
    """Everything one scenario execution produced.

    Holds the *live* controller and topology so invariant checks (ledger
    audit, packet validation, coarsened re-analysis) can interrogate the
    exact final state rather than a summary of it.
    """

    spec: ScenarioSpec
    topology: NetworkTopology
    cac: AdmissionController
    explicit: List[ExplicitDecision]
    sim_result: Optional[SimResult]

    def active_loads(self) -> List[ConnectionLoad]:
        """The final admitted set as analyzer/packet-sim loads."""
        return [
            ConnectionLoad(rec.spec, rec.route, rec.h_source, rec.h_dest)
            for rec in self.cac.connections.values()
        ]

    def final_bounds(self) -> Dict[str, Optional[float]]:
        """conn_id -> recorded delay bound of every active connection."""
        return {
            cid: rec.delay_bound for cid, rec in self.cac.connections.items()
        }

    @property
    def signature(self) -> str:
        """Deterministic ``repr``-exact digest of decisions + final state.

        Two executions of the same spec must produce identical signatures
        (the deterministic-replay invariant); the incremental and
        full-recompute engines must as well (the differential invariant).
        The signature covers every admission decision in order (with
        ``repr``-exact grants and delay bounds), the run counters, and the
        final ledger/active-set state.
        """
        parts: List[str] = []
        for decision in self.explicit:
            parts.append(
                "explicit "
                f"{decision.conn_id} {decision.admitted} {decision.reason} "
                f"{_opt_repr(decision.delay_bound)}"
            )
        for conn_id, result in self.cac.history:
            record = result.record
            parts.append(
                "decision "
                f"{conn_id} {result.admitted} "
                + (
                    "-"
                    if record is None
                    else f"{record.h_source!r} {record.h_dest!r}"
                )
                + f" {_opt_repr(result.delay_bound)}"
            )
        if self.sim_result is not None:
            m = self.sim_result.metrics
            parts.append(
                "metrics "
                f"{m.n_requests} {m.n_admitted} {m.n_rejected_cac} "
                f"{m.n_blocked_no_host} {m.n_departures} "
                f"{m.n_rejected_no_bandwidth} {m.n_rejected_infeasible} "
                f"{m.n_rejected_no_route}"
            )
            if m.survivability is not None:
                sv = m.survivability.summary()
                parts.append(
                    "survivability "
                    + " ".join(f"{k}={v!r}" for k, v in sorted(sv.items()))
                )
            parts.append(f"sim_time {self.sim_result.sim_time!r}")
        for conn_id in sorted(self.cac.connections):
            rec = self.cac.connections[conn_id]
            parts.append(
                "active "
                f"{conn_id} {rec.h_source!r} {rec.h_dest!r} "
                f"{_opt_repr(rec.delay_bound)}"
            )
        for ring_id, leak in sorted(self.cac.audit_allocations().items()):
            parts.append(f"ledger {ring_id} {leak!r}")
        return "\n".join(parts)


def _opt_repr(value: Optional[float]) -> str:
    return "-" if value is None else repr(value)


def run_scenario(spec: ScenarioSpec) -> ScenarioOutcome:
    """Execute a scenario end-to-end on fresh state.

    Explicit connections are admitted first (in list order; a rejection or
    a routing error is recorded, not fatal).  If the spec has a stochastic
    workload the connection-level simulator then churns on the same
    controller until its request budget is spent.
    """
    explicit: List[ExplicitDecision] = []
    if spec.arrivals is not None:
        simulator = ConnectionSimulator(connection_sim_config(spec))
        cac = simulator.cac
        topology = simulator.topology
        for conn in offered_connections(spec):
            explicit.append(_admit_explicit(simulator.preadmit, conn))
        sim_result: Optional[SimResult] = simulator.run()
    else:
        topology = build_topology(spec)
        cac = admission_controller(spec, topology)
        for conn in offered_connections(spec):
            explicit.append(_admit_explicit(cac.request, conn))
        sim_result = None
    return ScenarioOutcome(
        spec=spec,
        topology=topology,
        cac=cac,
        explicit=explicit,
        sim_result=sim_result,
    )


def _admit_explicit(
    request: "_RequestFn", conn: ConnectionSpec
) -> ExplicitDecision:
    try:
        result = request(conn)
    except ReproError as exc:
        return ExplicitDecision(
            conn_id=conn.conn_id,
            admitted=False,
            reason=f"error:{type(exc).__name__}",
        )
    return ExplicitDecision(
        conn_id=conn.conn_id,
        admitted=result.admitted,
        reason=result.reason,
        delay_bound=result.delay_bound,
    )


def run_packet_validation(
    outcome: ScenarioOutcome,
) -> Tuple[PacketSimResult, Dict[str, Optional[float]]]:
    """Run the packet-level simulator over the outcome's admitted set.

    Returns the packet result and the per-connection analytic bounds it
    must stay below.  The topology is rebuilt fresh (the live one may hold
    failed elements and mutated ledgers; the packet sim models the data
    path of the *surviving* admitted set on clean hardware).
    """
    loads = outcome.active_loads()
    topo = build_topology(outcome.spec)
    result = PacketLevelSimulator(
        topo,
        loads,
        network_config=outcome.spec.topology,
        adversarial_phase=outcome.spec.packet.adversarial_phase,
    ).run(outcome.spec.packet.duration)
    return result, outcome.final_bounds()
