"""Unified scenario specs and the differential fuzzing harness.

One declarative :class:`~repro.scenario.spec.ScenarioSpec` describes a
complete run — topology, workload, fault schedule, policy/analysis knobs —
and every engine consumes it through :mod:`repro.scenario.loader`.  Specs
round-trip through JSON (:mod:`repro.scenario.codec`) with ``repr``-exact
floats; :mod:`repro.scenario.fuzz` generates random specs and checks the
differential invariant suite (:mod:`repro.scenario.check`), shrinking any
failure to a minimal one-file reproducer (:mod:`repro.scenario.shrink`).

CLI: ``python -m repro scenario {generate,replay,fuzz}``.
"""

from repro.scenario.check import (
    ALL_INVARIANTS,
    CheckOptions,
    CheckReport,
    Violation,
    check_scenario,
)
from repro.scenario.codec import (
    dict_to_spec,
    dumps,
    load_file,
    loads,
    save_file,
    spec_hash,
    spec_to_dict,
)
from repro.scenario.fuzz import (
    FuzzCase,
    FuzzSummary,
    check_reproducers,
    generate_spec,
    run_corpus,
)
from repro.scenario.loader import (
    ScenarioOutcome,
    connection_sim_config,
    run_scenario,
)
from repro.scenario.shrink import ShrinkResult, shrink_spec
from repro.scenario.spec import (
    FORMAT_VERSION,
    AnalysisKnobs,
    ArrivalsSpec,
    ConnectionEntry,
    FaultPlan,
    PacketRunSpec,
    ScenarioSpec,
)

__all__ = [
    "ALL_INVARIANTS",
    "AnalysisKnobs",
    "ArrivalsSpec",
    "CheckOptions",
    "CheckReport",
    "ConnectionEntry",
    "FORMAT_VERSION",
    "FaultPlan",
    "FuzzCase",
    "FuzzSummary",
    "PacketRunSpec",
    "ScenarioOutcome",
    "ScenarioSpec",
    "ShrinkResult",
    "Violation",
    "check_reproducers",
    "check_scenario",
    "connection_sim_config",
    "dict_to_spec",
    "dumps",
    "generate_spec",
    "load_file",
    "loads",
    "run_corpus",
    "run_scenario",
    "save_file",
    "shrink_spec",
    "spec_hash",
    "spec_to_dict",
]
