"""JSON codec for scenario specs: strict, repr-exact, hashable.

Same contract as the service journal codec (:mod:`repro.service.codec`):

* **bit-exactness** — floats serialize through ``float.__repr__`` (the
  shortest repr that parses back to the identical IEEE-754 double), so
  ``parse(serialize(spec)) == spec`` holds field-for-field including every
  float bit;
* **strictness** — unknown fields, missing fields and type mismatches
  raise :class:`~repro.errors.ScenarioSpecError` at every nesting level; a
  mistyped knob must never silently run the default scenario;
* **stable hashing** — :func:`spec_hash` digests the canonical (sorted,
  compact) JSON form, so the hash identifies scenario *content* across
  processes and sessions.  Decoded specs coerce numeric fields to their
  declared types, so a hand-edited ``600`` and a serialized ``600.0``
  hash identically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    TypeVar,
    Union,
    get_args,
    get_origin,
    get_type_hints,
)

from repro.config import NetworkConfig
from repro.errors import JournalError, ScenarioSpecError
from repro.faults.injector import FaultConfig, ScriptedFault
from repro.faults.retry import RetryPolicy
from repro.service.codec import dict_to_traffic, traffic_to_dict
from repro.scenario.spec import (
    FORMAT_VERSION,
    AnalysisKnobs,
    ArrivalsSpec,
    ConnectionEntry,
    FaultPlan,
    PacketRunSpec,
    ScenarioSpec,
)
from repro.topo.spec import (
    BackboneLinkSpec,
    DeviceSpec,
    RingSpec,
    SwitchSpec,
    TopologySpec,
)
from repro.traffic.generators import WorkloadSpec

_T = TypeVar("_T")

#: Resolved type hints per flat dataclass (computed once; ``from __future__
#: import annotations`` turns field types into strings otherwise).
_HINT_CACHE: Dict[type, Dict[str, Any]] = {}


def _hints(cls: type) -> Dict[str, Any]:
    if cls not in _HINT_CACHE:
        _HINT_CACHE[cls] = get_type_hints(cls)
    return _HINT_CACHE[cls]


def _reject_unknown(
    payload: Mapping[str, Any], allowed: Tuple[str, ...], what: str
) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ScenarioSpecError(
            f"{what}: unknown field(s) {unknown} (allowed: {sorted(allowed)})"
        )


def _coerce(value: Any, hint: Any, what: str) -> Any:
    """Coerce a JSON value to a declared field type, strictly."""
    origin = get_origin(hint)
    if origin is Union:
        args = [a for a in get_args(hint) if a is not type(None)]
        if value is None:
            if type(None) in get_args(hint):
                return None
            raise ScenarioSpecError(f"{what}: may not be null")
        if len(args) == 1:
            return _coerce(value, args[0], what)
        raise ScenarioSpecError(f"{what}: unsupported union type")
    if hint is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioSpecError(f"{what}: expected a number, got {value!r}")
        return float(value)
    if hint is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ScenarioSpecError(f"{what}: expected an integer, got {value!r}")
        return value
    if hint is bool:
        if not isinstance(value, bool):
            raise ScenarioSpecError(f"{what}: expected a boolean, got {value!r}")
        return value
    if hint is str:
        if not isinstance(value, str):
            raise ScenarioSpecError(f"{what}: expected a string, got {value!r}")
        return value
    raise ScenarioSpecError(f"{what}: unsupported field type {hint!r}")


def _flat_to_dict(obj: Any) -> Dict[str, Any]:
    """Encode a flat (scalar-field) frozen dataclass field-by-field."""
    return {
        f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)
    }


def _flat_from_dict(cls: Type[_T], payload: Any, what: str) -> _T:
    """Decode a flat dataclass, rejecting unknown/missing/mistyped fields."""
    if not isinstance(payload, Mapping):
        raise ScenarioSpecError(f"{what}: expected an object, got {payload!r}")
    fields = dataclasses.fields(cls)  # type: ignore[arg-type]
    names = tuple(f.name for f in fields)
    _reject_unknown(payload, names, what)
    hints = _hints(cls)
    kwargs: Dict[str, Any] = {}
    for f in fields:
        if f.name in payload:
            kwargs[f.name] = _coerce(
                payload[f.name], hints[f.name], f"{what}.{f.name}"
            )
        elif (
            f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        ):
            raise ScenarioSpecError(f"{what}: missing required field {f.name!r}")
    try:
        return cls(**kwargs)
    except ScenarioSpecError:
        raise
    except Exception as exc:
        raise ScenarioSpecError(f"{what}: {exc}") from None


# ----------------------------------------------------------------------
# Structured sub-objects
# ----------------------------------------------------------------------


def _scripted_fault_to_dict(ev: ScriptedFault) -> Dict[str, Any]:
    target: Union[List[str], str]
    if isinstance(ev.target, tuple):
        target = [ev.target[0], ev.target[1]]
    else:
        target = ev.target
    return {"time": ev.time, "action": ev.action, "target": target}


def _dict_to_scripted_fault(payload: Any, what: str) -> ScriptedFault:
    if not isinstance(payload, Mapping):
        raise ScenarioSpecError(f"{what}: expected an object, got {payload!r}")
    _reject_unknown(payload, ("time", "action", "target"), what)
    try:
        raw_target = payload["target"]
        time = payload["time"]
        action = payload["action"]
    except KeyError as exc:
        raise ScenarioSpecError(f"{what}: missing field {exc}") from None
    target: Union[Tuple[str, str], str]
    if isinstance(raw_target, str):
        target = raw_target
    elif isinstance(raw_target, list) and len(raw_target) == 2:
        target = (str(raw_target[0]), str(raw_target[1]))
    else:
        raise ScenarioSpecError(
            f"{what}.target: expected a node id or a 2-element link pair"
        )
    try:
        return ScriptedFault(
            time=_coerce(time, float, f"{what}.time"),
            action=_coerce(action, str, f"{what}.action"),
            target=target,
        )
    except ScenarioSpecError:
        raise
    except Exception as exc:
        raise ScenarioSpecError(f"{what}: {exc}") from None


def _connection_to_dict(entry: ConnectionEntry) -> Dict[str, Any]:
    try:
        traffic = traffic_to_dict(entry.traffic)
    except JournalError as exc:
        raise ScenarioSpecError(str(exc)) from None
    return {
        "conn_id": entry.conn_id,
        "source_host": entry.source_host,
        "dest_host": entry.dest_host,
        "traffic": traffic,
        "deadline": entry.deadline,
    }


def _dict_to_connection(payload: Any, what: str) -> ConnectionEntry:
    if not isinstance(payload, Mapping):
        raise ScenarioSpecError(f"{what}: expected an object, got {payload!r}")
    _reject_unknown(
        payload,
        ("conn_id", "source_host", "dest_host", "traffic", "deadline"),
        what,
    )
    try:
        traffic_payload = payload["traffic"]
        if not isinstance(traffic_payload, Mapping):
            raise ScenarioSpecError(f"{what}.traffic: expected an object")
        try:
            traffic = dict_to_traffic(traffic_payload)
        except JournalError as exc:
            raise ScenarioSpecError(f"{what}.traffic: {exc}") from None
        return ConnectionEntry(
            conn_id=_coerce(payload["conn_id"], str, f"{what}.conn_id"),
            source_host=_coerce(
                payload["source_host"], str, f"{what}.source_host"
            ),
            dest_host=_coerce(payload["dest_host"], str, f"{what}.dest_host"),
            traffic=traffic,
            deadline=_coerce(payload["deadline"], float, f"{what}.deadline"),
        )
    except KeyError as exc:
        raise ScenarioSpecError(f"{what}: missing field {exc}") from None


def _arrivals_to_dict(arrivals: ArrivalsSpec) -> Dict[str, Any]:
    payload = _flat_to_dict(arrivals)
    payload["workload"] = _flat_to_dict(arrivals.workload)
    return payload


def _dict_to_arrivals(payload: Any, what: str) -> ArrivalsSpec:
    if not isinstance(payload, Mapping):
        raise ScenarioSpecError(f"{what}: expected an object, got {payload!r}")
    data = dict(payload)
    workload_payload = data.pop("workload", None)
    workload: Optional[WorkloadSpec] = None
    if workload_payload is not None:
        workload = _flat_from_dict(
            WorkloadSpec, workload_payload, f"{what}.workload"
        )
    partial = _flat_from_dict(
        _ArrivalsScalars, data, what
    )
    kwargs = dataclasses.asdict(partial)
    if workload is not None:
        return ArrivalsSpec(workload=workload, **kwargs)
    return ArrivalsSpec(**kwargs)


@dataclasses.dataclass(frozen=True)
class _ArrivalsScalars:
    """The scalar fields of :class:`ArrivalsSpec` (codec helper)."""

    utilization: float
    seed: int = 1
    n_requests: int = 100
    warmup_requests: int = 10
    mean_lifetime: float = 600.0
    load_scale: float = 1.0
    count_host_blocked: bool = False


_TOPO_SECTIONS: Tuple[Tuple[str, type], ...] = (
    ("rings", RingSpec),
    ("switches", SwitchSpec),
    ("devices", DeviceSpec),
    ("links", BackboneLinkSpec),
)


def _topo_to_dict(topo: TopologySpec) -> Dict[str, Any]:
    return {
        key: [_flat_to_dict(entry) for entry in getattr(topo, key)]
        for key, _ in _TOPO_SECTIONS
    }


def _dict_to_topo(payload: Any, what: str) -> TopologySpec:
    if not isinstance(payload, Mapping):
        raise ScenarioSpecError(f"{what}: expected an object, got {payload!r}")
    _reject_unknown(payload, tuple(k for k, _ in _TOPO_SECTIONS), what)
    kwargs: Dict[str, Any] = {}
    for key, cls in _TOPO_SECTIONS:
        raw = payload.get(key, [])
        if not isinstance(raw, list):
            raise ScenarioSpecError(f"{what}.{key}: expected a list")
        kwargs[key] = tuple(
            _flat_from_dict(cls, entry, f"{what}.{key}[{i}]")
            for i, entry in enumerate(raw)
        )
    try:
        return TopologySpec(**kwargs)
    except ScenarioSpecError:
        raise
    except Exception as exc:
        raise ScenarioSpecError(f"{what}: {exc}") from None


def _faults_to_dict(plan: FaultPlan) -> Dict[str, Any]:
    return {
        "config": None if plan.config is None else _flat_to_dict(plan.config),
        "script": [_scripted_fault_to_dict(ev) for ev in plan.script],
        "retry": None if plan.retry is None else _flat_to_dict(plan.retry),
    }


def _dict_to_faults(payload: Any, what: str) -> FaultPlan:
    if not isinstance(payload, Mapping):
        raise ScenarioSpecError(f"{what}: expected an object, got {payload!r}")
    _reject_unknown(payload, ("config", "script", "retry"), what)
    config_payload = payload.get("config")
    retry_payload = payload.get("retry")
    script_payload = payload.get("script", [])
    if not isinstance(script_payload, list):
        raise ScenarioSpecError(f"{what}.script: expected a list")
    return FaultPlan(
        config=(
            None
            if config_payload is None
            else _flat_from_dict(FaultConfig, config_payload, f"{what}.config")
        ),
        script=tuple(
            _dict_to_scripted_fault(ev, f"{what}.script[{i}]")
            for i, ev in enumerate(script_payload)
        ),
        retry=(
            None
            if retry_payload is None
            else _flat_from_dict(RetryPolicy, retry_payload, f"{what}.retry")
        ),
    )


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------

_TOP_LEVEL = (
    "format",
    "name",
    "topology",
    "topo",
    "cac",
    "arrivals",
    "connections",
    "faults",
    "packet",
)


def spec_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """Encode a spec as a JSON-ready dict (round-trips exactly)."""
    return {
        "format": FORMAT_VERSION,
        "name": spec.name,
        "topology": _flat_to_dict(spec.topology),
        "topo": None if spec.topo is None else _topo_to_dict(spec.topo),
        "cac": _flat_to_dict(spec.cac),
        "arrivals": (
            None if spec.arrivals is None else _arrivals_to_dict(spec.arrivals)
        ),
        "connections": [_connection_to_dict(c) for c in spec.connections],
        "faults": None if spec.faults is None else _faults_to_dict(spec.faults),
        "packet": _flat_to_dict(spec.packet),
    }


def dict_to_spec(payload: Any) -> ScenarioSpec:
    """Decode a spec dict, rejecting unknown fields at every level."""
    if not isinstance(payload, Mapping):
        raise ScenarioSpecError(f"scenario: expected an object, got {payload!r}")
    _reject_unknown(payload, _TOP_LEVEL, "scenario")
    version = payload.get("format", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ScenarioSpecError(
            f"scenario: unsupported format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if "name" not in payload:
        raise ScenarioSpecError("scenario: missing required field 'name'")
    arrivals_payload = payload.get("arrivals")
    topo_payload = payload.get("topo")
    faults_payload = payload.get("faults")
    connections_payload = payload.get("connections", [])
    if not isinstance(connections_payload, list):
        raise ScenarioSpecError("scenario.connections: expected a list")
    try:
        return ScenarioSpec(
            name=_coerce(payload["name"], str, "scenario.name"),
            topology=_flat_from_dict(
                NetworkConfig, payload.get("topology", {}), "scenario.topology"
            ),
            topo=(
                None
                if topo_payload is None
                else _dict_to_topo(topo_payload, "scenario.topo")
            ),
            cac=_flat_from_dict(
                AnalysisKnobs, payload.get("cac", {}), "scenario.cac"
            ),
            arrivals=(
                None
                if arrivals_payload is None
                else _dict_to_arrivals(arrivals_payload, "scenario.arrivals")
            ),
            connections=tuple(
                _dict_to_connection(c, f"scenario.connections[{i}]")
                for i, c in enumerate(connections_payload)
            ),
            faults=(
                None
                if faults_payload is None
                else _dict_to_faults(faults_payload, "scenario.faults")
            ),
            packet=_flat_from_dict(
                PacketRunSpec, payload.get("packet", {}), "scenario.packet"
            ),
        )
    except ScenarioSpecError:
        raise
    except Exception as exc:
        raise ScenarioSpecError(f"scenario: {exc}") from None


def dumps(spec: ScenarioSpec, indent: Optional[int] = 2) -> str:
    """Serialize a spec to JSON text (``repr``-exact floats)."""
    return json.dumps(spec_to_dict(spec), indent=indent, sort_keys=True)


def loads(text: str) -> ScenarioSpec:
    """Parse JSON text into a validated spec."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioSpecError(f"scenario: invalid JSON: {exc}") from None
    return dict_to_spec(payload)


def save_file(spec: ScenarioSpec, path: str) -> str:
    """Write a spec to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(spec) + "\n")
    return path


def load_file(path: str) -> ScenarioSpec:
    """Read and validate a spec from ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read())


def spec_hash(spec: ScenarioSpec) -> str:
    """Content hash of the canonical serialized form (sha256 hex)."""
    canonical = json.dumps(
        spec_to_dict(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
