"""The differential invariant suite over one scenario spec.

The paper's central claim — the analytic CAC bound dominates anything the
network actually does — plus every internal consistency contract the
optimized engines promised, checked end-to-end on a single spec:

``sim_delay_within_bound``
    The packet-level simulator's worst observed end-to-end delay stays at
    or below the analytic bound, for every admitted connection.
``bounds_within_deadline``
    Every admitted connection's recorded bound meets its deadline (the
    admission contract itself).
``ledger_leak_free``
    After every admission, release, fault and re-admission the ring
    ledgers balance the recorded allocations exactly
    (:meth:`~repro.core.cac.AdmissionController.audit_allocations`).
``incremental_matches_full``
    The interference-partition incremental engine reproduces the full
    recomputation bit-for-bit (identical decision trace, grants, bounds).
``coarsening_conservative``
    One-sided curve coarsening only loosens bounds: the coarsened
    analysis of the final admitted set is ``>=`` a truly exact
    analysis (tidy cap disabled, see :data:`EXACT_SEGMENT_CAP`),
    per connection.
``deterministic_replay``
    Running the spec twice yields byte-identical outcome signatures.

:func:`check_scenario` runs whichever subset :class:`CheckOptions` enables
and returns a :class:`CheckReport`; it never raises on a violation (the
fuzz driver shrinks first, then raises
:class:`~repro.errors.ScenarioInvariantError`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.config import AnalysisConfig
from repro.core.delay import DelayAnalyzer
from repro.errors import BufferOverflowError, UnstableSystemError
from repro.scenario import codec, loader
from repro.scenario.spec import AnalysisKnobs, ScenarioSpec

#: Ledger discrepancies below this are floating-point noise, not leaks
#: (same tolerance as the survivability audit).
LEAK_TOLERANCE = 1e-9
#: Slack for bound comparisons, seconds (pure float-accumulation noise).
BOUND_TOLERANCE = 1e-9
#: Segment budget for the coarsening check's *reference* analysis.  The
#: default ``AnalysisConfig`` already tidies every envelope down to
#: ``max_envelope_segments`` — itself a one-sided upper coarsening — and
#: two coarsenings at different caps are each conservative against the
#: true system without being mutually ordered.  The reference must
#: therefore never coarsen at all; this cap is far above what any
#: scenario-sized analysis produces.
EXACT_SEGMENT_CAP = 1_000_000

INV_BOUND = "sim_delay_within_bound"
INV_DEADLINE = "bounds_within_deadline"
INV_LEAK = "ledger_leak_free"
INV_INCREMENTAL = "incremental_matches_full"
INV_COARSE = "coarsening_conservative"
INV_REPLAY = "deterministic_replay"

ALL_INVARIANTS = (
    INV_BOUND,
    INV_DEADLINE,
    INV_LEAK,
    INV_INCREMENTAL,
    INV_COARSE,
    INV_REPLAY,
)


@dataclasses.dataclass(frozen=True)
class CheckOptions:
    """Which invariants to run, and the checker's own fault injection."""

    packet: bool = True
    differential: bool = True
    coarsening: bool = True
    replay: bool = True
    #: Segment cap used by the coarsening-conservative check.
    coarse_segments: int = 32
    #: **Test-only.**  Scales the analytic bound before the packet-sim
    #: comparison; a value below 1 plants an artificial bound violation so
    #: the shrinker and the reporting path can be exercised without a real
    #: bug.  Production runs always use 1.0.
    bound_scale: float = 1.0


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant breach with a human-readable detail line."""

    invariant: str
    detail: str


@dataclasses.dataclass(frozen=True)
class CheckReport:
    """Outcome of the invariant suite over one spec."""

    spec_name: str
    spec_hash: str
    violations: Tuple[Violation, ...]
    #: Small numeric facts for corpus summaries.
    stats: Dict[str, float]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violated_invariants(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for v in self.violations:
            if v.invariant not in seen:
                seen.append(v.invariant)
        return tuple(seen)

    def format(self) -> str:
        head = (
            f"scenario {self.spec_name} [{self.spec_hash[:12]}]: "
            + ("PASS" if self.ok else "FAIL")
        )
        lines = [head]
        for key in sorted(self.stats):
            lines.append(f"  {key}: {self.stats[key]:g}")
        for v in self.violations:
            lines.append(f"  VIOLATED {v.invariant}: {v.detail}")
        return "\n".join(lines)


def check_scenario(
    spec: ScenarioSpec, options: Optional[CheckOptions] = None
) -> CheckReport:
    """Run the invariant suite; returns a report, never raises on FAIL."""
    opts = options or CheckOptions()
    violations: List[Violation] = []
    stats: Dict[str, float] = {}

    outcome = loader.run_scenario(spec)
    stats["n_active"] = float(len(outcome.cac.connections))
    stats["n_requests"] = float(outcome.cac.n_requests)
    stats["n_admitted"] = float(outcome.cac.n_admitted)

    _check_ledger(outcome, violations)
    _check_deadlines(outcome, violations)
    if opts.packet:
        _check_packet_bounds(outcome, opts, violations, stats)
    if opts.coarsening:
        _check_coarsening(outcome, opts, violations)
    if opts.differential and spec.cac.incremental:
        _check_incremental(spec, outcome, violations)
    if opts.replay:
        _check_replay(spec, outcome, violations)

    return CheckReport(
        spec_name=spec.name,
        spec_hash=codec.spec_hash(spec),
        violations=tuple(violations),
        stats=stats,
    )


def _check_ledger(
    outcome: loader.ScenarioOutcome, violations: List[Violation]
) -> None:
    for ring_id, leak in sorted(outcome.cac.audit_allocations().items()):
        if abs(leak) > LEAK_TOLERANCE:
            violations.append(
                Violation(
                    INV_LEAK,
                    f"ring {ring_id} ledger off by {leak:.3e} s of "
                    "synchronous time",
                )
            )


def _check_deadlines(
    outcome: loader.ScenarioOutcome, violations: List[Violation]
) -> None:
    for conn_id in sorted(outcome.cac.connections):
        rec = outcome.cac.connections[conn_id]
        if rec.delay_bound is None:
            violations.append(
                Violation(
                    INV_DEADLINE,
                    f"{conn_id}: active connection has no finite delay bound",
                )
            )
        elif rec.delay_bound > rec.spec.deadline + BOUND_TOLERANCE:
            violations.append(
                Violation(
                    INV_DEADLINE,
                    f"{conn_id}: bound {rec.delay_bound:.6f} s exceeds "
                    f"deadline {rec.spec.deadline:.6f} s",
                )
            )


def _check_packet_bounds(
    outcome: loader.ScenarioOutcome,
    opts: CheckOptions,
    violations: List[Violation],
    stats: Dict[str, float],
) -> None:
    if not outcome.cac.connections:
        return
    result, bounds = loader.run_packet_validation(outcome)
    worst_ratio = 0.0
    for conn_id in sorted(bounds):
        bound = bounds[conn_id]
        observed = result.worst_observed(conn_id)
        if bound is None:
            continue  # already reported by the deadline check
        effective = bound * opts.bound_scale
        if bound > 0:
            worst_ratio = max(worst_ratio, observed / bound)
        if observed > effective + BOUND_TOLERANCE:
            violations.append(
                Violation(
                    INV_BOUND,
                    f"{conn_id}: observed {observed:.6f} s > analytic "
                    f"bound {effective:.6f} s",
                )
            )
    stats["worst_obs_over_bound"] = worst_ratio


def _check_coarsening(
    outcome: loader.ScenarioOutcome,
    opts: CheckOptions,
    violations: List[Violation],
) -> None:
    loads = outcome.active_loads()
    if not loads:
        return
    # Recompute truly exact bounds over the final admitted set.  Neither
    # the recorded bounds (possibly coarsened by the spec's CAC knob) nor
    # a default-config recomputation qualifies as the reference: the
    # default analysis still tidies envelopes to ``max_envelope_segments``,
    # and two coarsenings at different caps are not mutually ordered.
    exact_analyzer = DelayAnalyzer(
        loader.build_topology(outcome.spec),
        outcome.spec.topology,
        AnalysisConfig(max_envelope_segments=EXACT_SEGMENT_CAP),
    )
    try:
        exact_reports = exact_analyzer.compute(loads)
    except (UnstableSystemError, BufferOverflowError):
        # The exact bound is infinite; any coarse bound dominates it.
        return
    analyzer = DelayAnalyzer(
        loader.build_topology(outcome.spec),
        outcome.spec.topology,
        AnalysisConfig(coarsen_segments=opts.coarse_segments),
    )
    try:
        reports = analyzer.compute(loads)
    except (UnstableSystemError, BufferOverflowError):
        # Coarsening made a stage unstable / overflowed a buffer: the
        # coarse bound is infinite, which trivially dominates the exact.
        return
    for conn_id in sorted(reports):
        if conn_id not in exact_reports:
            continue
        exact_bound = exact_reports[conn_id].total_delay
        coarse_bound = reports[conn_id].total_delay
        if coarse_bound < exact_bound - BOUND_TOLERANCE:
            violations.append(
                Violation(
                    INV_COARSE,
                    f"{conn_id}: coarsened bound {coarse_bound:.6f} s below "
                    f"exact bound {exact_bound:.6f} s",
                )
            )


def _check_incremental(
    spec: ScenarioSpec,
    outcome: loader.ScenarioOutcome,
    violations: List[Violation],
) -> None:
    full_spec = dataclasses.replace(
        spec,
        cac=AnalysisKnobs(
            beta=spec.cac.beta,
            incremental=False,
            coarsen_segments=spec.cac.coarsen_segments,
        ),
    )
    full = loader.run_scenario(full_spec)
    if full.signature != outcome.signature:
        violations.append(
            Violation(
                INV_INCREMENTAL,
                "incremental engine diverged from full recomputation: "
                + _first_diff(outcome.signature, full.signature),
            )
        )


def _check_replay(
    spec: ScenarioSpec,
    outcome: loader.ScenarioOutcome,
    violations: List[Violation],
) -> None:
    replay = loader.run_scenario(spec)
    if replay.signature != outcome.signature:
        violations.append(
            Violation(
                INV_REPLAY,
                "second run of the same spec diverged: "
                + _first_diff(outcome.signature, replay.signature),
            )
        )


def _first_diff(a: str, b: str) -> str:
    """The first differing line between two signatures (for reports)."""
    for line_a, line_b in zip(a.splitlines(), b.splitlines()):
        if line_a != line_b:
            return f"{line_a!r} != {line_b!r}"
    la, lb = len(a.splitlines()), len(b.splitlines())
    if la != lb:
        return f"signature lengths differ ({la} vs {lb} lines)"
    return "signatures differ"
