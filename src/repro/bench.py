"""Tracked CAC benchmarks: ``python -m repro bench``.

Complements the pytest-benchmark suite under ``benchmarks/`` with a
dependency-free runner whose JSON output (``BENCH_cac.json``) is committed
to the repository, so hot-path regressions show up in review diffs.

Two tiers:

* **micro** — the E6 scenario (3-ring reference network, three background
  connections): one full admission decision with the incremental engine
  and with full recomputation, plus a hopeless-request rejection and a
  cold-cache delay analysis.
* **macro (repeat-admission)** — the admission controller's actual
  operating regime: a standing population of connections across many
  disjoint interference components, with repeated admit/release churn on
  one component.  Full recomputation re-analyzes every component on every
  probe; the incremental engine touches only the dirty one.  The reported
  ``speedup_vs_full`` is the acceptance metric, and the two controllers'
  decisions are asserted identical field-by-field.

Every bench reports the median and p90 of the warm rounds (the first few
rounds populate the LRU caches and are discarded; the steady state is what
the admission hot path actually sees).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import statistics
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.units import MS_PER_S

from repro.config import AnalysisConfig, CACConfig, NetworkConfig, build_network
from repro.core import AdmissionController, ConnectionLoad
from repro.core.delay import DelayAnalyzer
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic

#: The E6 workload (matches ``benchmarks/bench_cac_latency.py``).
MICRO_TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)
#: Lighter per-connection load so the macro scenario's rings can hold a
#: standing population of seven connections each.
MACRO_TRAFFIC = DualPeriodicTraffic(c1=60_000.0, p1=0.015, c2=30_000.0, p2=0.005)


@dataclasses.dataclass(frozen=True)
class BenchResult:
    """One bench: warm-round latency quantiles (seconds)."""

    name: str
    rounds: int
    median_s: float
    p90_s: float
    #: Median of the matching full-recomputation bench divided by this
    #: one's median (only on incremental-engine benches).
    speedup_vs_full: Optional[float] = None


def _p90(times: List[float]) -> float:
    ordered = sorted(times)
    return ordered[min(len(ordered) - 1, int(0.9 * len(ordered)))]


def _time_rounds(
    fn: Callable[[], object], rounds: int, warmup: int
) -> List[float]:
    times = []
    for _ in range(rounds + warmup):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return times[warmup:]


def _result(name, times, full_times=None) -> BenchResult:
    median = statistics.median(times)
    return BenchResult(
        name=name,
        rounds=len(times),
        median_s=median,
        p90_s=_p90(times),
        speedup_vs_full=(
            statistics.median(full_times) / median if full_times else None
        ),
    )


# ----------------------------------------------------------------------
# Micro benches (the E6 scenario)
# ----------------------------------------------------------------------

def _micro_controller(incremental: bool) -> AdmissionController:
    topo = build_network()
    cac = AdmissionController(
        topo, cac_config=CACConfig(beta=0.5, incremental=incremental)
    )
    pairs = [("host1-1", "host2-1"), ("host2-2", "host3-2"), ("host3-3", "host1-3")]
    for i, (src, dst) in enumerate(pairs):
        res = cac.request(ConnectionSpec(f"bg{i}", src, dst, MICRO_TRAFFIC, 0.09))
        assert res.admitted, f"micro background bg{i} must admit"
    return cac


def _admit_release_times(
    cac: AdmissionController,
    probe: Tuple[str, str, float],
    rounds: int,
    warmup: int,
    decisions: Optional[List[tuple]] = None,
    traffic=MICRO_TRAFFIC,
) -> List[float]:
    src, dst, deadline = probe
    counter = [0]

    def one_round():
        counter[0] += 1
        cid = f"probe-{counter[0]}"
        res = cac.request(ConnectionSpec(cid, src, dst, traffic, deadline))
        if res.admitted:
            cac.release(cid)
        if decisions is not None:
            decisions.append(
                (res.admitted, res.delay_bound, res.h_min_need, res.n_probes)
            )
        return res

    return _time_rounds(one_round, rounds, warmup)


def run_micro_benches(rounds: int = 10, warmup: int = 3) -> List[BenchResult]:
    probe = ("host1-2", "host2-3", 0.09)
    full = _micro_controller(incremental=False)
    t_full = _admit_release_times(full, probe, rounds, warmup)
    incr = _micro_controller(incremental=True)
    t_incr = _admit_release_times(incr, probe, rounds, warmup)

    cac = _micro_controller(incremental=True)

    def one_rejection():
        # Sub-2-TTRT deadline: refused before any delay analysis runs.
        res = cac.request(
            ConnectionSpec("nope", "host1-2", "host2-3", MICRO_TRAFFIC, 0.012)
        )
        assert not res.admitted
        return res

    t_reject = _time_rounds(one_rejection, rounds, warmup)

    loads = [
        ConnectionLoad(r.spec, r.route, r.h_source, r.h_dest)
        for r in cac.connections.values()
    ]
    topo = cac.topology

    def one_cold_analysis():
        return DelayAnalyzer(topo, cac.network_config, AnalysisConfig()).compute(loads)

    t_cold = _time_rounds(one_cold_analysis, rounds, warmup)

    return [
        _result("admission_decision_full", t_full),
        _result("admission_decision_incremental", t_incr, full_times=t_full),
        _result("rejection_decision", t_reject),
        _result("cold_analysis_3conn", t_cold),
    ]


# ----------------------------------------------------------------------
# Macro bench: repeat admission against a standing population
# ----------------------------------------------------------------------

def _macro_controller(
    incremental: bool, n_rings: int, per_group: int
) -> AdmissionController:
    topo = build_network(NetworkConfig(n_rings=n_rings))
    cac = AdmissionController(
        topo, cac_config=CACConfig(beta=0.5, incremental=incremental)
    )
    k = 0
    # Disjoint ring pairs (1,2), (3,4), ... — each pair is one
    # interference component the probe traffic never touches (except the
    # first, which the probe below shares).
    for a in range(1, n_rings, 2):
        b = a + 1
        for j in range(per_group):
            spec = ConnectionSpec(
                f"bg{k}",
                f"host{a}-{(j % 4) + 1}",
                f"host{b}-{((j + 1) % 4) + 1}",
                MACRO_TRAFFIC,
                0.09,
            )
            res = cac.request(spec)
            assert res.admitted, f"macro background bg{k} must admit"
            k += 1
    return cac


def run_macro_bench(
    quick: bool = False,
) -> Tuple[List[BenchResult], bool]:
    """Repeat-admission bench; returns (results, decisions_identical)."""
    if quick:
        n_rings, per_group, rounds, warmup = 8, 7, 8, 2
    else:
        n_rings, per_group, rounds, warmup = 16, 7, 25, 5
    probe = ("host1-2", "host2-3", 0.09)
    decisions_full: List[tuple] = []
    decisions_incr: List[tuple] = []
    full = _macro_controller(False, n_rings, per_group)
    t_full = _admit_release_times(
        full, probe, rounds, warmup, decisions_full, traffic=MACRO_TRAFFIC
    )
    incr = _macro_controller(True, n_rings, per_group)
    t_incr = _admit_release_times(
        incr, probe, rounds, warmup, decisions_incr, traffic=MACRO_TRAFFIC
    )
    identical = decisions_full == decisions_incr
    suffix = "_quick" if quick else ""
    return (
        [
            _result(f"repeat_admission_full{suffix}", t_full),
            _result(
                f"repeat_admission_incremental{suffix}", t_incr, full_times=t_full
            ),
        ],
        identical,
    )


# ----------------------------------------------------------------------
# Decision trajectory: the committed, gated part of the payload
# ----------------------------------------------------------------------

#: Fixed admit/release script over the 8-ring macro population.  The
#: scenario is deliberately *independent of ``--quick``* so a quick CI
#: check compares against the committed full-mode artifact.
_TRAJECTORY_STEPS: Tuple[Tuple[str, ...], ...] = (
    ("admit", "tr-1", "host1-2", "host2-3", "0.09"),
    ("admit", "tr-2", "host3-1", "host4-2", "0.09"),
    # Sub-2-TTRT deadline: hopeless, rejected before delay analysis.
    ("admit", "tr-hopeless", "host1-2", "host2-3", "0.012"),
    ("release", "tr-1"),
    ("admit", "tr-3", "host5-4", "host6-1", "0.09"),
    ("admit", "tr-4", "host1-2", "host2-3", "0.09"),
    ("release", "tr-2"),
    ("release", "tr-3"),
    ("release", "tr-4"),
)


def run_decision_trajectory() -> Dict[str, object]:
    """Bit-exact decision trajectory on a fixed scenario.

    Floats are rendered with ``repr`` so the committed JSON round-trips
    exactly; any numerical drift in the admission hot path shows up as a
    field-level diff under ``--check``.
    """
    cac = _macro_controller(True, n_rings=8, per_group=7)
    decisions: List[Dict[str, object]] = []
    for step in _TRAJECTORY_STEPS:
        if step[0] == "release":
            cac.release(step[1])
            decisions.append({"op": "release", "conn_id": step[1]})
            continue
        _, cid, src, dst, deadline = step
        res = cac.request(
            ConnectionSpec(cid, src, dst, MACRO_TRAFFIC, float(deadline))
        )
        decisions.append(
            {
                "op": "admit",
                "conn_id": cid,
                "admitted": res.admitted,
                "delay_bound": (
                    repr(res.delay_bound)
                    if res.delay_bound is not None
                    else None
                ),
                "h_min_need": (
                    [repr(res.h_min_need[0]), repr(res.h_min_need[1])]
                    if res.h_min_need is not None
                    else None
                ),
                "n_probes": res.n_probes,
            }
        )
    return {
        "scenario": {"n_rings": 8, "per_group": 7},
        "decisions": decisions,
    }


def check_cac_payload(
    current: Dict[str, object], committed: Dict[str, object]
) -> List[str]:
    """Compare the gated (deterministic) parts of two CAC payloads.

    Latency numbers are informational and never compared; the decision
    trajectory and the incremental-vs-full identity bit are the contract.
    """
    problems: List[str] = []
    for payload, who in ((current, "current"), (committed, "committed")):
        if not payload.get("macro_decisions_identical"):
            problems.append(f"{who}: macro decisions diverge (incremental vs full)")
    cur = current.get("decision_trajectory")
    com = committed.get("decision_trajectory")
    if not isinstance(com, dict) or "decisions" not in com:
        problems.append("committed payload has no decision_trajectory (regenerate)")
        return problems
    assert isinstance(cur, dict)
    cur_steps = cur["decisions"]
    com_steps = com["decisions"]
    assert isinstance(cur_steps, list) and isinstance(com_steps, list)
    if len(cur_steps) != len(com_steps):
        problems.append(
            f"trajectory length {len(cur_steps)} != committed {len(com_steps)}"
        )
        return problems
    for i, (a, b) in enumerate(zip(cur_steps, com_steps)):
        if a != b:
            keys = sorted(set(a) | set(b))
            diffs = ", ".join(
                f"{k}: {a.get(k)!r} != {b.get(k)!r}"
                for k in keys
                if a.get(k) != b.get(k)
            )
            problems.append(f"trajectory step {i} diverged ({diffs})")
    return problems


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def run_benches(quick: bool = False) -> Dict[str, object]:
    micro_rounds = 5 if quick else 10
    results = run_micro_benches(rounds=micro_rounds, warmup=2 if quick else 3)
    macro, identical = run_macro_bench(quick=quick)
    results.extend(macro)
    return {
        "benchmark": "repro-cac",
        "quick": quick,
        "macro_decisions_identical": identical,
        "decision_trajectory": run_decision_trajectory(),
        "results": [dataclasses.asdict(r) for r in results],
    }


def format_report(payload: Dict[str, object]) -> str:
    lines = [
        "CAC benchmarks"
        + (" (quick)" if payload["quick"] else "")
        + " — median / p90 per decision, warm rounds",
        "",
        f"  {'bench':38s} {'rounds':>6s} {'median':>10s} {'p90':>10s} {'vs full':>8s}",
    ]
    for r in payload["results"]:
        speedup = r["speedup_vs_full"]
        lines.append(
            f"  {r['name']:38s} {r['rounds']:6d} "
            f"{r['median_s'] * MS_PER_S:8.2f}ms {r['p90_s'] * MS_PER_S:8.2f}ms "
            + (f"{speedup:7.2f}x" if speedup else f"{'—':>8s}")
        )
    lines.append("")
    lines.append(
        "  macro decisions identical (incremental vs full): "
        + ("yes" if payload["macro_decisions_identical"] else "NO — BUG")
    )
    return "\n".join(lines)


def _write_json(payload: Dict[str, object], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\n[written to {path}]")


def _run_cac_suite(
    quick: bool, output: Optional[str], check_path: Optional[str]
) -> int:
    payload = run_benches(quick=quick)
    print(format_report(payload))
    problems: List[str] = []
    if check_path is not None:
        with open(check_path) as fh:
            committed = json.load(fh)
        problems = check_cac_payload(payload, committed)
        for problem in problems:
            print(f"  FAIL: {problem}")
    if output != "-":
        _write_json(payload, output or "BENCH_cac.json")
    if problems or not payload["macro_decisions_identical"]:
        return 1
    return 0


def _run_envelope_suite(
    quick: bool, output: Optional[str], check_path: Optional[str]
) -> int:
    from repro import bench_envelopes

    committed = None
    if check_path is not None:
        with open(check_path) as fh:
            committed = json.load(fh)
    payload, problems = bench_envelopes.run_and_check(
        quick=quick, committed=committed
    )
    print(bench_envelopes.format_report(payload))
    for problem in problems:
        print(f"  FAIL: {problem}")
    if output != "-":
        _write_json(payload, output or "BENCH_envelopes.json")
    return 1 if problems else 0


def _run_service_suite(
    quick: bool, output: Optional[str], check_path: Optional[str]
) -> int:
    # Imported lazily: the service package pulls in asyncio machinery the
    # plain CAC benches never need.
    from repro.service import bench as service_bench

    if check_path is not None:
        payload, problems = service_bench.run_and_check(quick, check_path)
    else:
        payload, problems = service_bench.run_service_bench(quick), []
    for problem in problems:
        print(f"  FAIL: {problem}")
    if output != "-":
        _write_json(payload, output or "BENCH_service.json")
    if check_path is not None and not problems:
        print("  service bench check: OK")
    return 1 if problems else 0


def _run_lint_suite(
    quick: bool, output: Optional[str], check_path: Optional[str]
) -> int:
    # Imported lazily: the bench module is also what the lint CI job
    # runs, and it should not pay for the CAC machinery above.
    from repro.lint import bench as lint_bench

    if check_path is not None:
        payload, problems = lint_bench.run_and_check(quick, check_path)
    else:
        payload, problems = lint_bench.run_lint_bench(quick), []
    print(lint_bench.format_report(payload))
    for problem in problems:
        print(f"  FAIL: {problem}")
    if output != "-":
        _write_json(payload, output or "BENCH_lint.json")
    if check_path is not None and not problems:
        print("  lint bench check: OK")
    return 1 if problems else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Run the tracked benchmarks (CAC and/or envelope kernels) and "
            "write their committed JSON artifacts."
        ),
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller scenario, fewer rounds"
    )
    parser.add_argument(
        "--suite",
        choices=("cac", "envelopes", "service", "lint", "all"),
        default="cac",
        help="which bench suite to run (default: cac)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help=(
            "JSON output path (default BENCH_<suite>.json; '-' to skip)"
        ),
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help=(
            "committed BENCH_<suite>.json to compare the deterministic "
            "(gated) fields against; any divergence fails the run"
        ),
    )
    args = parser.parse_args(argv)
    if args.check is not None and args.suite == "all":
        parser.error("--check needs a single --suite (the artifacts differ)")
    rc = 0
    if args.suite in ("cac", "all"):
        out = args.output if args.suite == "cac" else None
        rc |= _run_cac_suite(args.quick, out, args.check)
    if args.suite in ("envelopes", "all"):
        out = args.output if args.suite == "envelopes" else None
        rc |= _run_envelope_suite(args.quick, out, args.check)
    if args.suite == "service":
        rc |= _run_service_suite(args.quick, args.output, args.check)
    if args.suite == "lint":
        rc |= _run_lint_suite(args.quick, args.output, args.check)
    return rc


if __name__ == "__main__":
    sys.exit(main())
