"""Unit constants and helpers.

The whole library works in SI base units: time in seconds, data in bits,
rates in bits/second.  These helpers exist so that configuration code reads
like the paper ("155 Mbps backbone", "8 ms TTRT") instead of raw powers of
ten.
"""

from __future__ import annotations

#: One kilobit (decimal, as used by network link ratings).
KBIT = 1_000.0
#: One megabit.
MBIT = 1_000_000.0
#: One gigabit.
GBIT = 1_000_000_000.0

#: One byte, in bits.
BYTE = 8.0
#: One kilobyte (decimal), in bits.
KBYTE = 8_000.0

#: One millisecond, in seconds.
MS = 1e-3
#: One microsecond, in seconds.
US = 1e-6
#: One nanosecond, in seconds.
NS = 1e-9

#: Milliseconds per second (for reporting; multiplying by this is exact).
MS_PER_S = 1e3
#: Microseconds per second (for reporting).
US_PER_S = 1e6

#: Octets in one ATM cell on the wire.
CELL_BYTES = 53
#: Payload octets per ATM cell (AAL5 cell body) — the paper's ``C_S`` in bytes.
CELL_PAYLOAD_BYTES = 48
#: Bits per ATM cell on the wire.
CELL_BITS = CELL_BYTES * 8
#: Payload bits per ATM cell — the paper's ``C_S``.
CELL_PAYLOAD_BITS = CELL_PAYLOAD_BYTES * 8

#: Maximum FDDI frame size in octets (per the ANSI X3T9.5 standard).
FDDI_MAX_FRAME_BYTES = 4500


def mbps(value: float) -> float:
    """Convert a rate in megabits/second to bits/second."""
    return value * MBIT


def kbps(value: float) -> float:
    """Convert a rate in kilobits/second to bits/second."""
    return value * KBIT


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MS


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * US


def bytes_to_bits(value: float) -> float:
    """Convert a byte count to bits."""
    return value * BYTE


def bits_to_bytes(value: float) -> float:
    """Convert a bit count to bytes."""
    return value / BYTE


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds (for reporting)."""
    return value / MS
