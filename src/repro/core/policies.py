"""Allocation policies: how much of the feasible segment to grant.

The paper's algorithm (BetaPolicy) and the alternatives it argues against
(Section 5.3's discussion), plus an "FDDI-only style" local rule modeling
refs [1, 24] applied naively in the heterogeneous setting — the strawman
the paper's introduction warns about.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable, Dict, Optional, Tuple

from repro.config import CACConfig
from repro.core.delay import DelayReport

#: A feasibility probe: (h_s, h_r) -> delay reports, or None if infeasible.
FeasibilityCheck = Callable[[float, float], Optional[Dict[str, DelayReport]]]


@dataclasses.dataclass
class AllocationContext:
    """Everything a policy may consult while choosing an allocation.

    The search segment runs from ``h_min_abs`` to ``h_max_avail``; the policy
    may probe any point through ``check_feasible``.  ``reports_at_max`` holds
    the (already verified) delays at the maximum available allocation.
    Policies record their search results in ``observed_min_need`` /
    ``observed_max_need`` for instrumentation.
    """

    h_min_abs: Tuple[float, float]
    h_max_avail: Tuple[float, float]
    local: bool
    check_feasible: FeasibilityCheck
    reports_at_max: Dict[str, DelayReport]
    config: CACConfig
    #: Facts a *local* allocator would consult (used by FDDILocalPolicy).
    long_term_rate: float = 0.0
    ring_bandwidth: float = 0.0
    ttrt: float = 0.0
    observed_min_need: Optional[Tuple[float, float]] = None
    observed_max_need: Optional[Tuple[float, float]] = None
    #: Distinct probe points evaluated through ``check_feasible`` (filled
    #: in by the controller after ``select`` returns; instrumentation for
    #: the CAC benchmarks).
    n_probes: int = 0

    def point(self, s: float) -> Tuple[float, float]:
        """The allocation at parameter ``s`` in [0, 1] along the segment.

        With ``config.use_origin_ray`` the segment is the ray through the
        origin (Rule 2 literally, clipped below at ``h_min_abs``); otherwise
        it joins ``h_min_abs`` to ``h_max_avail`` (Step 3 literally).
        """
        lo_s, lo_r = self.h_min_abs
        hi_s, hi_r = self.h_max_avail
        if self.config.use_origin_ray:
            base_s = max(lo_s, s * hi_s)
            base_r = 0.0 if self.local else max(lo_r, s * hi_r)
            return (base_s, base_r)
        h_s = lo_s + s * (hi_s - lo_s)
        h_r = 0.0 if self.local else lo_r + s * (hi_r - lo_r)
        return (h_s, h_r)


class AllocationPolicy(abc.ABC):
    """Strategy choosing the granted allocation inside the feasible segment."""

    @abc.abstractmethod
    def select(
        self, ctx: AllocationContext
    ) -> Optional[Tuple[Tuple[float, float], Dict[str, DelayReport]]]:
        """Return ``((h_s, h_r), reports)`` or ``None`` to reject.

        ``reports`` must be the delay reports of the returned allocation
        (the controller stores them as the admitted bounds).
        """


class BetaPolicy(AllocationPolicy):
    """The paper's policy: ``H = H^min_need + beta * (H^max_need - H^min_need)``.

    ``beta = 0`` grants the minimum that meets all deadlines; ``beta = 1``
    grants the maximum *useful* amount (more would not improve any delay);
    intermediate values trade future-admission headroom on the rings against
    slack in the admitted delays.
    """

    def __init__(self, beta: float) -> None:
        if not (0.0 <= beta <= 1.0):
            raise ValueError("beta must be within [0, 1]")
        self.beta = float(beta)

    # -- binary searches -------------------------------------------------

    def _search_min_need(self, ctx: AllocationContext) -> Optional[float]:
        """Smallest feasible ``s`` (Step 3).  Feasibility is monotone in s:
        more bandwidth weakly decreases every worst-case delay."""
        tol = ctx.config.search_tolerance
        lo, hi = 0.0, 1.0
        reports_lo = ctx.check_feasible(*ctx.point(0.0))
        if reports_lo is not None:
            return 0.0
        # s = 1 is feasible (the controller verified it).
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if ctx.check_feasible(*ctx.point(mid)) is not None:
                hi = mid
            else:
                lo = mid
        return hi

    def _delays_match_max(
        self, reports: Dict[str, DelayReport], ctx: AllocationContext
    ) -> bool:
        rtol = ctx.config.delay_equality_rtol
        for conn_id, at_max in ctx.reports_at_max.items():
            here = reports.get(conn_id)
            if here is None:
                return False
            if here.total_delay > at_max.total_delay * (1 + rtol) + 1e-12:
                return False
        return True

    def _search_max_need(self, ctx: AllocationContext, s_min: float) -> float:
        """Smallest ``s >= s_min`` whose delays equal those at s=1 (Step 4)."""
        tol = ctx.config.search_tolerance
        reports = ctx.check_feasible(*ctx.point(s_min))
        if reports is not None and self._delays_match_max(reports, ctx):
            return s_min
        lo, hi = s_min, 1.0
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            reports = ctx.check_feasible(*ctx.point(mid))
            if reports is not None and self._delays_match_max(reports, ctx):
                hi = mid
            else:
                lo = mid
        return hi

    def select(self, ctx: AllocationContext):
        s_min = self._search_min_need(ctx)
        if s_min is None:
            return None
        ctx.observed_min_need = ctx.point(s_min)
        # reprolint: disable=RL003 -- exact config sentinel: beta=0.0 selects the pure min-need policy
        if self.beta == 0.0:
            s_star = s_min
        else:
            s_max = self._search_max_need(ctx, s_min)
            ctx.observed_max_need = ctx.point(s_max)
            s_star = s_min + self.beta * (s_max - s_min)
        reports = ctx.check_feasible(*ctx.point(s_star))
        if reports is None:
            # Numerical edge at the boundary: fall back to the verified top.
            s_star = 1.0
            reports = ctx.reports_at_max
        return ctx.point(s_star), reports


class MaxAvailPolicy(AllocationPolicy):
    """Grant everything available — the greedy strawman of Section 5.3.

    "This will result in the rejection of any future connection originated
    from or designated to these two rings simply because no bandwidth is
    available."
    """

    def select(self, ctx: AllocationContext):
        return ctx.h_max_avail, ctx.reports_at_max


class FDDILocalPolicy(AllocationPolicy):
    """An FDDI-only SBA rule applied blindly in the heterogeneous network.

    Each ring grants a *locally computed* share — the normalized-
    proportional style of refs [1, 24]: utilization times TTRT, inflated by
    ``headroom`` — with no regard for the end-to-end picture.  The request
    is accepted only if that exact point happens to be feasible; there is no
    search.  This models the paper's claim that homogeneous allocation
    cannot be transplanted into a heterogeneous network.
    """

    def __init__(self, headroom: float = 2.0) -> None:
        """``headroom`` scales the proportional grant (the classic schemes
        over-provision by a small factor to absorb token-timing jitter)."""
        if headroom <= 0:
            raise ValueError("headroom must be positive")
        self.headroom = float(headroom)

    def select(self, ctx: AllocationContext):
        if ctx.ring_bandwidth <= 0 or ctx.ttrt <= 0:
            return None
        util = ctx.long_term_rate / ctx.ring_bandwidth
        lo_s, lo_r = ctx.h_min_abs
        hi_s, hi_r = ctx.h_max_avail
        grant = self.headroom * util * ctx.ttrt
        h_s = min(hi_s, max(lo_s, grant))
        h_r = 0.0 if ctx.local else min(hi_r, max(lo_r, grant))
        reports = ctx.check_feasible(h_s, h_r)
        if reports is None:
            return None
        return (h_s, h_r), reports


class FixedPolicy(AllocationPolicy):
    """Grant a fixed, caller-chosen allocation (used by tests and the
    feasible-region explorer)."""

    def __init__(self, h_s: float, h_r: float) -> None:
        self.h_s = float(h_s)
        self.h_r = float(h_r)

    def select(self, ctx: AllocationContext):
        reports = ctx.check_feasible(self.h_s, self.h_r)
        if reports is None:
            return None
        return (self.h_s, self.h_r), reports
