"""Fault tolerance: re-establishing connections after a backbone failure.

Reference [4] of the paper (Chen, Kamat, Zhao) studies fault-tolerant
real-time communication in FDDI networks; in the FDDI-ATM-FDDI setting the
natural faults are a backbone link, an ATM switch, or an interface device.
When one fails, every connection routed over it loses its path; the
recovery procedure is:

1. release the failed connections' resources (their synchronous bandwidth
   stays valid, but the delay contract is void without a path);
2. recompute routes over the surviving backbone;
3. re-run the *full CAC* for each displaced connection on its new route —
   a rerouted connection must not break the deadlines of the connections
   that kept their paths.

Some displaced connections may not be re-admittable (the alternate path is
longer and shared with more traffic, or no route exists at all); the report
says which survived.  The teardown / re-admission halves are also exposed
separately (:meth:`FailoverManager.teardown`, :meth:`FailoverManager.readmit`,
and the ``displace_*`` variants) so the event-driven fault injector in
:mod:`repro.faults` can defer re-admission to a retry queue instead of
attempting it synchronously.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.cac import AdmissionController, AdmissionResult
from repro.errors import ReproError
from repro.network.connection import ConnectionRecord, ConnectionSpec


@dataclasses.dataclass(frozen=True)
class FailoverReport:
    """Outcome of one failure-recovery pass (link or node)."""

    #: Human-readable description, e.g. ``"link s1<->s2"`` or ``"node id1"``.
    failed_element: str
    unaffected: List[str]
    rerouted: List[str]
    dropped: Dict[str, str]  # conn_id -> rejection reason
    #: Set for link failures only.
    failed_link: Optional[Tuple[str, str]] = None
    #: Set for node failures only.
    failed_node: Optional[str] = None

    @property
    def survival_rate(self) -> float:
        total = len(self.rerouted) + len(self.dropped)
        return len(self.rerouted) / total if total else 1.0

    def format(self) -> str:
        lines = [
            f"Failover report for {self.failed_element}:",
            f"  unaffected: {len(self.unaffected)}",
            f"  rerouted:   {len(self.rerouted)} {self.rerouted}",
            f"  dropped:    {len(self.dropped)}",
        ]
        for cid, reason in sorted(self.dropped.items()):
            lines.append(f"    {cid}: {reason}")
        return "\n".join(lines)


class FailoverManager:
    """Coordinates link/node failures and connection re-establishment."""

    def __init__(self, cac: AdmissionController) -> None:
        self.cac = cac
        self.topology = cac.topology

    # ------------------------------------------------------------------
    # Affected-connection queries
    # ------------------------------------------------------------------

    def affected_by_link(self, a: str, b: str) -> List[ConnectionRecord]:
        """Connections whose backbone path traverses ``a <-> b``."""
        affected = []
        for rec in self.cac.connections.values():
            path = rec.route.switch_path
            for u, v in zip(path, path[1:]):
                if (u, v) in ((a, b), (b, a)):
                    affected.append(rec)
                    break
        return affected

    def affected_by_node(self, node_id: str) -> List[ConnectionRecord]:
        """Connections routed through switch or device ``node_id``."""
        affected = []
        for rec in self.cac.connections.values():
            route = rec.route
            if node_id in route.switch_path or node_id in (
                route.source_device,
                route.dest_device,
            ):
                affected.append(rec)
        return affected

    # ------------------------------------------------------------------
    # Teardown / re-admission halves
    # ------------------------------------------------------------------

    def teardown(
        self, records: Iterable[ConnectionRecord]
    ) -> List[ConnectionSpec]:
        """Release every record's resources; return the displaced specs
        in ascending deadline order (tightest contracts first — they have
        the least routing slack)."""
        specs: List[ConnectionSpec] = []
        for rec in records:
            self.cac.release(rec.conn_id)
            specs.append(rec.spec)
        specs.sort(key=lambda s: (s.deadline, s.conn_id))
        return specs

    def readmit(
        self, specs: Iterable[ConnectionSpec]
    ) -> Tuple[List[str], Dict[str, str]]:
        """Re-run the full CAC for each displaced spec, in the given order.

        Exception-safe: a re-admission attempt that raises (no route, an
        unstable analysis, a buffer overflow, ...) records the connection
        as dropped and the pass continues, so the returned report always
        reflects the controller's actual final state — already-released
        resources are never left half-rolled-back.
        """
        rerouted: List[str] = []
        dropped: Dict[str, str] = {}
        for spec in specs:
            try:
                result: AdmissionResult = self.cac.request(spec)
            except ReproError as exc:
                dropped[spec.conn_id] = f"{type(exc).__name__}: {exc}"
                continue
            if result.admitted:
                rerouted.append(spec.conn_id)
            else:
                dropped[spec.conn_id] = result.reason
        return rerouted, dropped

    # ------------------------------------------------------------------
    # Synchronous recovery (fail + immediate re-admission pass)
    # ------------------------------------------------------------------

    def fail_link(self, a: str, b: str) -> FailoverReport:
        """Fail ``a <-> b`` and try to re-admit every displaced connection."""
        specs = self.displace_link(a, b)
        return self._recover(specs, f"link {a}<->{b}", failed_link=(a, b))

    def fail_node(self, node_id: str) -> FailoverReport:
        """Fail a switch or device and try to re-admit the displaced."""
        specs = self.displace_node(node_id)
        return self._recover(specs, f"node {node_id}", failed_node=node_id)

    def _recover(
        self,
        specs: List[ConnectionSpec],
        element: str,
        failed_link: Optional[Tuple[str, str]] = None,
        failed_node: Optional[str] = None,
    ) -> FailoverReport:
        rerouted, dropped = self.readmit(specs)
        unaffected = [
            cid for cid in self.cac.connections if cid not in rerouted
        ]
        return FailoverReport(
            failed_element=element,
            unaffected=sorted(unaffected),
            rerouted=rerouted,
            dropped=dropped,
            failed_link=failed_link,
            failed_node=failed_node,
        )

    # ------------------------------------------------------------------
    # Deferred recovery (teardown only; a retry queue re-admits later)
    # ------------------------------------------------------------------

    def displace_link(self, a: str, b: str) -> List[ConnectionSpec]:
        """Fail the link and tear down the displaced connections *without*
        re-admitting them (deadline-sorted specs are returned for a retry
        queue)."""
        affected = self.affected_by_link(a, b)
        self.topology.fail_link(a, b)
        return self.teardown(affected)

    def displace_node(self, node_id: str) -> List[ConnectionSpec]:
        """Fail the node and tear down the displaced connections *without*
        re-admitting them."""
        affected = self.affected_by_node(node_id)
        self.topology.fail_node(node_id)
        return self.teardown(affected)

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def restore_link(self, a: str, b: str) -> None:
        """Repair the link.  Existing connections keep their detour routes
        (re-optimization is a policy decision left to the operator)."""
        self.topology.restore_link(a, b)

    def restore_node(self, node_id: str) -> None:
        """Repair a failed switch or device."""
        self.topology.restore_node(node_id)
