"""Fault tolerance: re-establishing connections after a backbone failure.

Reference [4] of the paper (Chen, Kamat, Zhao) studies fault-tolerant
real-time communication in FDDI networks; in the FDDI-ATM-FDDI setting the
natural fault is a backbone link.  When one fails, every connection routed
over it loses its path; the recovery procedure is:

1. release the failed connections' resources (their synchronous bandwidth
   stays valid, but the delay contract is void without a path);
2. recompute routes over the surviving backbone;
3. re-run the *full CAC* for each displaced connection on its new route —
   a rerouted connection must not break the deadlines of the connections
   that kept their paths.

Some displaced connections may not be re-admittable (the alternate path is
longer and shared with more traffic); the report says which survived.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.cac import AdmissionController, AdmissionResult
from repro.errors import TopologyError
from repro.network.connection import ConnectionRecord, ConnectionSpec


@dataclasses.dataclass(frozen=True)
class FailoverReport:
    """Outcome of one link-failure recovery pass."""

    failed_link: Tuple[str, str]
    unaffected: List[str]
    rerouted: List[str]
    dropped: Dict[str, str]  # conn_id -> rejection reason

    @property
    def survival_rate(self) -> float:
        total = len(self.rerouted) + len(self.dropped)
        return len(self.rerouted) / total if total else 1.0

    def format(self) -> str:
        lines = [
            f"Failover report for link {self.failed_link[0]}<->{self.failed_link[1]}:",
            f"  unaffected: {len(self.unaffected)}",
            f"  rerouted:   {len(self.rerouted)} {self.rerouted}",
            f"  dropped:    {len(self.dropped)}",
        ]
        for cid, reason in sorted(self.dropped.items()):
            lines.append(f"    {cid}: {reason}")
        return "\n".join(lines)


class FailoverManager:
    """Coordinates link failures and connection re-establishment."""

    def __init__(self, cac: AdmissionController):
        self.cac = cac
        self.topology = cac.topology

    def _affected_connections(self, a: str, b: str) -> List[ConnectionRecord]:
        affected = []
        for rec in self.cac.connections.values():
            path = rec.route.switch_path
            for u, v in zip(path, path[1:]):
                if (u, v) in ((a, b), (b, a)):
                    affected.append(rec)
                    break
        return affected

    def fail_link(self, a: str, b: str) -> FailoverReport:
        """Fail ``a <-> b`` and try to re-admit every displaced connection.

        Displaced connections are re-requested in ascending deadline order
        (tightest contracts first — they have the least routing slack).
        """
        affected = self._affected_connections(a, b)
        self.topology.fail_link(a, b)

        # Tear down the displaced connections first so their bandwidth is
        # available to the re-admission passes.
        specs: List[ConnectionSpec] = []
        for rec in affected:
            self.cac.release(rec.conn_id)
            specs.append(rec.spec)
        specs.sort(key=lambda s: s.deadline)

        rerouted: List[str] = []
        dropped: Dict[str, str] = {}
        for spec in specs:
            try:
                result: AdmissionResult = self.cac.request(spec)
            except TopologyError as exc:
                dropped[spec.conn_id] = f"no route: {exc}"
                continue
            if result.admitted:
                rerouted.append(spec.conn_id)
            else:
                dropped[spec.conn_id] = result.reason
        unaffected = [
            cid for cid in self.cac.connections if cid not in rerouted
        ]
        return FailoverReport(
            failed_link=(a, b),
            unaffected=sorted(unaffected),
            rerouted=rerouted,
            dropped=dropped,
        )

    def restore_link(self, a: str, b: str) -> None:
        """Repair the link.  Existing connections keep their detour routes
        (re-optimization is a policy decision left to the operator)."""
        self.topology.restore_link(a, b)
