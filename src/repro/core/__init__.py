"""The paper's contribution: end-to-end delay analysis and the CAC.

* :mod:`repro.core.delay` — the decomposition engine: builds the server
  chain of every connection, propagates traffic envelopes through the
  network in feed-forward order, and sums per-server worst-case delays
  (Eq. 7).
* :mod:`repro.core.cac` — the admission controller of Section 5.3:
  feasibility at the maximum available allocation, binary searches for
  (H^min_need, H^max_need) along the allocation line, and the
  beta-interpolated grant (Eqs. 35/36).
* :mod:`repro.core.policies` — alternative allocation policies (min-need,
  max-need, max-available, FDDI-local) used as baselines/ablations.
* :mod:`repro.core.feasible_region` — utilities for mapping the feasible
  region of Theorems 3/4.
"""

from repro.core.delay import (
    ConnectionLoad,
    DelayAnalyzer,
    DelayReport,
    LRUCache,
    RegulatorSpec,
    ResourceUsage,
    route_port_names,
)
from repro.core.cac import AdmissionController, AdmissionResult
from repro.core.incremental import IncrementalDelayEngine
from repro.core.policies import (
    AllocationPolicy,
    BetaPolicy,
    FDDILocalPolicy,
    MaxAvailPolicy,
)
from repro.core.feasible_region import feasibility_grid, lower_boundary_on_ray
from repro.core.buffers import BufferPlan, dimension_buffers
from repro.core.concatenation import ConcatenationAnalyzer, ConcatenationReport
from repro.core.failover import FailoverManager, FailoverReport
from repro.core.preemption import PreemptionResult, PreemptiveAdmission
from repro.core.report import NetworkStateReport, network_state

__all__ = [
    "AdmissionController",
    "AdmissionResult",
    "AllocationPolicy",
    "BetaPolicy",
    "BufferPlan",
    "ConcatenationAnalyzer",
    "ConcatenationReport",
    "ConnectionLoad",
    "DelayAnalyzer",
    "DelayReport",
    "FDDILocalPolicy",
    "FailoverManager",
    "FailoverReport",
    "IncrementalDelayEngine",
    "LRUCache",
    "MaxAvailPolicy",
    "route_port_names",
    "NetworkStateReport",
    "PreemptionResult",
    "PreemptiveAdmission",
    "RegulatorSpec",
    "ResourceUsage",
    "dimension_buffers",
    "feasibility_grid",
    "lower_boundary_on_ray",
    "network_state",
]
