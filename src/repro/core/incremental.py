"""Incremental delay analysis over the interference partition.

The admission controller's binary search re-evaluates the whole network at
every probe, yet a probe changes exactly *one* connection's load.  In the
decomposition engine (:mod:`repro.core.delay`) connections are coupled only
through the shared FIFO stages — the ATM output ports (a ring-local
connection shares nothing; dedicated stages see only their own
connection's envelope).  Hence the **interference-partition invariant**:

    two connections can influence each other's delay reports if and only
    if their routes share an ATM output port, transitively closed.

The engine partitions the load set into those interference components and,
between consecutive computations, recomputes only the components that
contain an added, removed or changed member.  Every other component's
previous fixed-point reports (and per-port usage figures) are reused
*verbatim* — bit-identical to a full recomputation, because the
feed-forward fixed point factorizes over components: analyzing a component
in isolation performs exactly the same floating-point operations as
analyzing it inside the full set.

Falls back to a full recomputation when:

* the topology mutated since the last computation (link/node failures or
  repairs, structural edits) — detected via
  :attr:`NetworkTopology.change_count`;
* a load's identity key cannot be formed (unhashable traffic descriptor);
* two loads carry the same key (duplicate connection ids);
* the engine is cold (first computation).
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.delay import (
    ConnectionLoad,
    DelayAnalyzer,
    DelayReport,
    LRUCache,
    ResourceUsage,
    route_port_names,
)


class IncrementalDelayEngine:
    """Caches per-component fixed points of a :class:`DelayAnalyzer`."""

    def __init__(self, analyzer: DelayAnalyzer) -> None:
        self.analyzer = analyzer
        #: load key -> DelayReport from the last successful computation.
        self._reports: Dict[tuple, DelayReport] = {}
        #: load key -> shared-port footprint it was computed under.
        self._ports_of: Dict[tuple, Tuple[str, ...]] = {}
        #: Load keys of the last committed computation.  Dirty detection
        #: diffs the current key set against this one: a load's key covers
        #: everything that can change its analysis, so membership changes
        #: at a port are exactly the added/removed keys that traverse it.
        self._prev_keys: frozenset = frozenset()
        #: port name -> (backlog, busy, delay, {conn_id: entry envelope}).
        self._port_usage: Dict[str, tuple] = {}
        #: id(load) -> (weakref, key, ports): the controller reuses its
        #: ConnectionLoad objects across probes, so key and port footprint
        #: are computed once per object (the weakref guards id reuse).
        self._load_memo: Dict[int, tuple] = {}
        #: Traffic descriptors interned to small ints so load keys hash
        #: cheaply in the hot dict lookups.
        self._traffic_ids: Dict[object, int] = {}
        #: port-footprint tuple -> (component roots, port -> root map).
        self._partition_cache = LRUCache(1024)
        self._topo_version = analyzer.topology.change_count
        # Instrumentation (consumed by benches and the equivalence tests).
        self.n_full = 0
        self.n_partial = 0
        self.n_loads_computed = 0
        self.n_loads_reused = 0

    # ------------------------------------------------------------------

    def load_key(self, load: ConnectionLoad) -> Optional[tuple]:
        """Everything that determines one connection's own server chain and
        source envelope; ``None`` when no hashable key can be formed."""
        spec = load.spec
        try:
            traffic_id = self._traffic_ids.get(spec.traffic)
        except TypeError:
            return None
        if traffic_id is None:
            traffic_id = len(self._traffic_ids)
            self._traffic_ids[spec.traffic] = traffic_id
        route = load.route
        reg = load.regulator
        return (
            spec.conn_id,
            traffic_id,
            float(load.h_source),
            float(load.h_dest),
            route.source_ring,
            route.dest_ring,
            route.source_device,
            route.dest_device,
            tuple(route.switch_path),
            None if reg is None else (reg.sigma, reg.rho, reg.peak),
        )

    def _key_and_ports(
        self, load: ConnectionLoad
    ) -> Tuple[Optional[tuple], Optional[Tuple[str, ...]]]:
        memo = self._load_memo.get(id(load))
        if memo is not None and memo[0]() is load:
            return memo[1], memo[2]
        key = self.load_key(load)
        ports = (
            route_port_names(self.analyzer.topology, load.route)
            if key is not None
            else None
        )
        try:
            ref = weakref.ref(load)
        except TypeError:
            return key, ports
        self._load_memo[id(load)] = (ref, key, ports)
        if len(self._load_memo) > 8192:
            self._load_memo = {
                i: m for i, m in self._load_memo.items() if m[0]() is not None
            }
        return key, ports

    def invalidate(self) -> None:
        """Drop every cached fixed point (next computation runs full)."""
        self._reports.clear()
        self._ports_of.clear()
        self._prev_keys = frozenset()
        self._port_usage.clear()
        # Port footprints depend on the topology; drop them with the rest.
        self._load_memo.clear()
        self._partition_cache.clear()

    # ------------------------------------------------------------------

    def compute(self, loads: Sequence[ConnectionLoad]) -> Dict[str, DelayReport]:
        reports, _ = self.compute_with_resources(loads)
        return reports

    def compute_with_resources(
        self, loads: Sequence[ConnectionLoad]
    ) -> Tuple[Dict[str, DelayReport], ResourceUsage]:
        loads = list(loads)
        topo_version = self.analyzer.topology.change_count
        if topo_version != self._topo_version:
            self.invalidate()
            self._topo_version = topo_version
        keys = []
        ports: List[Optional[Tuple[str, ...]]] = []
        for load in loads:
            key, port_names = self._key_and_ports(load)
            keys.append(key)
            ports.append(port_names)
        trackable = None not in keys and len(set(keys)) == len(keys)
        if not trackable:
            self.n_full += 1
            self.n_loads_computed += len(loads)
            self.invalidate()  # cannot diff against an untracked state
            return self.analyzer.compute_with_resources(loads)

        partition_key = tuple(ports)
        partition = self._partition_cache.get(partition_key)
        if partition is None:
            components = _port_components(ports)
            roots = [components.find(i) for i in range(len(ports))]
            port_root: Dict[str, int] = {}
            for i, names in enumerate(ports):
                for name in names:
                    port_root[name] = roots[i]
            partition = (roots, port_root)
            self._partition_cache.put(partition_key, partition)
        roots, port_root = partition

        # A load key covers everything that determines its own analysis, so
        # a component is dirty iff it contains a key not seen last time, or
        # a port whose previous traverser set lost a member (a key that
        # disappeared): both port-membership changes and load changes reduce
        # to key-set differences — no per-port membership snapshots needed.
        current_keys = frozenset(keys)
        dirty_roots = set()
        for i, key in enumerate(keys):
            if key not in self._reports or self._ports_of.get(key) != ports[i]:
                dirty_roots.add(roots[i])
        for key in self._prev_keys - current_keys:
            for name in self._ports_of.get(key, ()):
                root = port_root.get(name)
                if root is not None:
                    dirty_roots.add(root)

        dirty = [i for i in range(len(loads)) if roots[i] in dirty_roots]
        clean = [i for i in range(len(loads)) if roots[i] not in dirty_roots]

        if dirty:
            sub_reports, sub_usage = self.analyzer.compute_with_resources(
                [loads[i] for i in dirty]
            )
            if clean:
                self.n_partial += 1
            else:
                self.n_full += 1
        else:
            sub_reports, sub_usage = {}, ResourceUsage({}, {}, {}, {})
        self.n_loads_computed += len(dirty)
        self.n_loads_reused += len(clean)

        # Commit: replace the snapshot with exactly the current load set.
        new_reports: Dict[tuple, DelayReport] = {}
        new_ports_of: Dict[tuple, Tuple[str, ...]] = {}
        result: Dict[str, DelayReport] = {}
        for i in clean:
            report = self._reports[keys[i]]
            new_reports[keys[i]] = report
            new_ports_of[keys[i]] = ports[i]
            result[loads[i].spec.conn_id] = report
        for i in dirty:
            report = sub_reports[loads[i].spec.conn_id]
            new_reports[keys[i]] = report
            new_ports_of[keys[i]] = ports[i]
            result[loads[i].spec.conn_id] = report

        new_usage: Dict[str, tuple] = {}
        for name in port_root:
            if name in sub_usage.port_backlogs:
                new_usage[name] = (
                    sub_usage.port_backlogs[name],
                    sub_usage.port_busy_intervals[name],
                    sub_usage.port_delays[name],
                    sub_usage.port_inputs.get(name, {}),
                )
            else:
                # A clean component's port: every traverser was reused, so
                # the previous figures still describe its aggregate.
                new_usage[name] = self._port_usage[name]
        self._reports = new_reports
        self._ports_of = new_ports_of
        self._prev_keys = current_keys
        self._port_usage = new_usage

        usage = ResourceUsage(
            port_backlogs={n: u[0] for n, u in new_usage.items()},
            port_busy_intervals={n: u[1] for n, u in new_usage.items()},
            port_delays={n: u[2] for n, u in new_usage.items()},
            # Shared references: the analyzer builds these dicts fresh per
            # computation and no caller mutates them.
            port_inputs={n: u[3] for n, u in new_usage.items()},
        )
        return result, usage

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        total = self.n_loads_computed + self.n_loads_reused
        return {
            "full_computations": self.n_full,
            "partial_computations": self.n_partial,
            "loads_computed": self.n_loads_computed,
            "loads_reused": self.n_loads_reused,
            "reuse_fraction": self.n_loads_reused / total if total else 0.0,
        }


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        parent = self.parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _port_components(ports: List[Tuple[str, ...]]) -> _UnionFind:
    """Union loads that share any ATM output port."""
    uf = _UnionFind(len(ports))
    first_traverser: Dict[str, int] = {}
    for i, names in enumerate(ports):
        for name in names:
            j = first_traverser.setdefault(name, i)
            if j != i:
                uf.union(j, i)
    return uf


def interference_components(
    footprints: Sequence[Tuple[str, ...]],
) -> List[int]:
    """Component root per footprint under the interference partition.

    Two footprints land in the same component iff they are connected by
    shared names (transitively) — the partition this engine caches
    per-component fixed points over.  Exposed for the service layer
    (:mod:`repro.service.shard`), which shards the active connection set
    by the same partition, augmented with ring tokens so connections
    competing for one ring's synchronous bandwidth always co-shard.

    Returns the root index of each footprint's component; equal roots =
    same component.
    """
    uf = _port_components(list(footprints))
    return [uf.find(i) for i in range(len(footprints))]
