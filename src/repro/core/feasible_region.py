"""Feasible-region utilities (Theorems 3 and 4).

The feasible region is the set of allocations ``(H_S, H_R)`` under which
every connection — requesting and existing — meets its deadline.  Theorem 3
states each per-connection region is closed and convex on the H_S-H_R
plane; Theorem 4 that the overall region is their (convex) intersection
clipped to the available rectangle.

These helpers *map* the region empirically for a given network state.  They
are used by tests (sampling convexity), by the feasible-region example, and
by the ablation benches.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

#: A feasibility predicate over allocations.
Feasibility = Callable[[float, float], bool]


@dataclasses.dataclass(frozen=True)
class RegionSample:
    """A grid sample of the feasible region."""

    h_s_values: Tuple[float, ...]
    h_r_values: Tuple[float, ...]
    feasible: Tuple[Tuple[bool, ...], ...]  # [i][j] -> (h_s[i], h_r[j])

    def fraction_feasible(self) -> float:
        flat = [cell for row in self.feasible for cell in row]
        return sum(flat) / len(flat) if flat else 0.0


def feasibility_grid(
    is_feasible: Feasibility,
    h_s_range: Tuple[float, float],
    h_r_range: Tuple[float, float],
    resolution: int = 12,
) -> RegionSample:
    """Evaluate feasibility on a ``resolution x resolution`` grid."""
    if resolution < 2:
        raise ValueError("resolution must be at least 2")
    hs = np.linspace(h_s_range[0], h_s_range[1], resolution)
    hr = np.linspace(h_r_range[0], h_r_range[1], resolution)
    rows = []
    for h_s in hs:
        rows.append(tuple(bool(is_feasible(float(h_s), float(h_r))) for h_r in hr))
    return RegionSample(
        h_s_values=tuple(float(v) for v in hs),
        h_r_values=tuple(float(v) for v in hr),
        feasible=tuple(rows),
    )


def lower_boundary_on_ray(
    is_feasible: Feasibility,
    h_max: Tuple[float, float],
    h_min: Tuple[float, float] = (0.0, 0.0),
    tolerance: float = 1e-3,
) -> Optional[Tuple[float, float]]:
    """The lowest feasible point on the segment ``h_min -> h_max``.

    This is the geometric object behind ``H^min_need``: the intersection of
    the line zeta with the region's lower boundary (Figure 6).  Returns
    ``None`` when even ``h_max`` is infeasible.
    """
    def at(s: float) -> Tuple[float, float]:
        return (
            h_min[0] + s * (h_max[0] - h_min[0]),
            h_min[1] + s * (h_max[1] - h_min[1]),
        )

    if not is_feasible(*h_max):
        return None
    if is_feasible(*at(0.0)):
        return at(0.0)
    lo, hi = 0.0, 1.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if is_feasible(*at(mid)):
            hi = mid
        else:
            lo = mid
    return at(hi)


def lower_boundary_curve(
    is_feasible: Feasibility,
    h_r_values: Sequence[float],
    h_s_max: float,
    h_s_min: float = 0.0,
    tolerance: float = 1e-3,
) -> List[Tuple[float, Optional[float]]]:
    """The region's lower boundary ``b(H_R) = min { H_S : feasible }``.

    This is the "concave curve" replacing the rectangle's bottom side in
    Figure 6.  For each requested ``H_R`` a bisection finds the smallest
    feasible ``H_S`` (or ``None`` when no ``H_S <= h_s_max`` works).
    """
    boundary: List[Tuple[float, Optional[float]]] = []
    for h_r in h_r_values:
        if not is_feasible(h_s_max, h_r):
            boundary.append((float(h_r), None))
            continue
        lo, hi = h_s_min, h_s_max
        if is_feasible(max(lo, 1e-12), h_r):
            boundary.append((float(h_r), float(max(lo, 1e-12))))
            continue
        while hi - lo > tolerance * h_s_max:
            mid = 0.5 * (lo + hi)
            if is_feasible(mid, h_r):
                hi = mid
            else:
                lo = mid
        boundary.append((float(h_r), float(hi)))
    return boundary


def convexity_violations(
    sample: RegionSample,
    is_feasible: Feasibility,
    n_checks: int = 64,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[Tuple[Tuple[float, float], Tuple[float, float], Tuple[float, float]]]:
    """Sample pairs of feasible grid points and test their midpoints.

    Returns the list of ``(p, q, midpoint)`` triples where both endpoints
    were feasible but the midpoint was not — empty for a convex region
    (Theorem 3 predicts empty, up to search tolerance).

    Sampling draws from the injected ``rng`` when given (e.g. a
    :class:`repro.sim.random.RandomStreams` stream), else from a private
    ``random.Random(seed)`` — never from process-global RNG state.
    """
    if rng is None:
        rng = random.Random(seed)
    feas_points = [
        (sample.h_s_values[i], sample.h_r_values[j])
        for i, row in enumerate(sample.feasible)
        for j, ok in enumerate(row)
        if ok
    ]
    violations: List[
        Tuple[Tuple[float, float], Tuple[float, float], Tuple[float, float]]
    ] = []
    if len(feas_points) < 2:
        return violations
    for _ in range(n_checks):
        p = feas_points[rng.randrange(len(feas_points))]
        q = feas_points[rng.randrange(len(feas_points))]
        mid = (0.5 * (p[0] + q[0]), 0.5 * (p[1] + q[1]))
        if not is_feasible(*mid):
            violations.append((p, q, mid))
    return violations
