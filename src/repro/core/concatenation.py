"""Concatenation ("pay bursts only once") end-to-end analysis.

The paper bounds the end-to-end delay by *summing* per-server worst-case
delays (Eq. 7).  Network calculus offers an alternative: lower-bound every
server by a rate-latency service curve, min-plus *convolve* the curves
along the route (rate-latency curves convolve in closed form: minimum rate,
summed latencies), and take one horizontal deviation of the source envelope
against the concatenated curve.  The source burst is then "paid" once
instead of at every hop.

Both are valid upper bounds; which is tighter depends on the route.  The
ablation bench ``bench_concatenation.py`` compares them on the paper's
network — an analysis the original authors could not run (the technique
was contemporaneous), and a natural "future work" item.

Per-stage rate-latency minorants used here (all standard):

* FDDI/802.5 MAC with allocation ``H``:  rate ``H * BW / TTRT``, latency
  ``2 * TTRT`` (the timed-token staircase dominates this line);
* constant-delay stage ``d``: pure latency ``d`` (infinite rate);
* FIFO output port with cross traffic: leftover rate ``C - rho_cross``,
  latency ``(sigma_cross / (C - rho_cross)) + port_latency`` where
  ``(sigma, rho)`` is the cross aggregate's token-bucket majorant;
* frame/cell converters: latency = processing time; the cell-padding
  expansion is charged once by inflating the *source envelope* to cell
  units up front (conservative).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Sequence

from repro.config import AnalysisConfig, NetworkConfig
from repro.core.delay import (
    ConnectionLoad,
    DelayAnalyzer,
    SharedStage,
)
from repro.envelopes.curve import Curve, sum_curves
from repro.envelopes.operations import (
    horizontal_deviation,
    token_bucket_majorant,
)
from repro.errors import UnstableSystemError
from repro.fddi.mac_server import FDDIMacServer
from repro.interface_device.cell_frame import CellFrameConversionServer
from repro.interface_device.frame_cell import FrameCellConversionServer
from repro.network.topology import NetworkTopology
from repro.servers.constant import ConstantDelayServer


@dataclasses.dataclass(frozen=True)
class RateLatency:
    """A rate-latency service curve ``R * (t - T)+`` (R may be infinite)."""

    rate: float
    latency: float

    def convolve(self, other: "RateLatency") -> "RateLatency":
        """Min-plus convolution: minimum rate, summed latencies."""
        return RateLatency(
            rate=min(self.rate, other.rate),
            latency=self.latency + other.latency,
        )

    def to_curve(self, horizon_rate_cap: float = 1e12) -> Curve:
        rate = min(self.rate, horizon_rate_cap)
        return Curve.rate_latency(rate, self.latency)


@dataclasses.dataclass(frozen=True)
class ConcatenationReport:
    """Both bounds for one connection."""

    conn_id: str
    additive_bound: float
    concatenated_bound: float
    end_to_end_rate: float
    end_to_end_latency: float

    @property
    def improvement(self) -> float:
        """additive / concatenated (> 1 when concatenation is tighter)."""
        if self.concatenated_bound <= 0:
            return math.inf
        return self.additive_bound / self.concatenated_bound


class ConcatenationAnalyzer:
    """Computes the concatenated end-to-end bound next to the additive one."""

    def __init__(
        self,
        topology: NetworkTopology,
        network_config: Optional[NetworkConfig] = None,
        analysis_config: Optional[AnalysisConfig] = None,
    ) -> None:
        self.topology = topology
        self.network_config = network_config or NetworkConfig()
        self.analysis = analysis_config or AnalysisConfig()
        self.delay_analyzer = DelayAnalyzer(
            topology, self.network_config, self.analysis
        )

    # ------------------------------------------------------------------

    def _stage_service(
        self,
        stage,
        conn_id: str,
        port_inputs: Dict[str, Dict[str, Curve]],
    ) -> RateLatency:
        if isinstance(stage, SharedStage):
            port = stage.port
            inputs = port_inputs.get(port.name, {})
            cross = [env for cid, env in inputs.items() if cid != conn_id]
            if cross:
                sigma, rho = token_bucket_majorant(sum_curves(cross))
            else:
                sigma, rho = 0.0, 0.0
            leftover = port.service_rate - rho
            if leftover <= 0:
                raise UnstableSystemError(
                    f"{port.name}: cross traffic saturates the link"
                )
            return RateLatency(
                rate=leftover,
                latency=sigma / leftover + port.port_latency,
            )
        server = stage.server
        if isinstance(server, FDDIMacServer):
            if server.guaranteed_rate <= 0:
                raise UnstableSystemError(f"{server.name}: zero allocation")
            return RateLatency(
                rate=server.guaranteed_rate, latency=2.0 * server.ttrt
            )
        if isinstance(server, ConstantDelayServer):
            return RateLatency(rate=math.inf, latency=server.delay)
        if isinstance(server, (FrameCellConversionServer, CellFrameConversionServer)):
            return RateLatency(rate=math.inf, latency=server.processing_delay)
        from repro.servers.regulator import RegulatorServer

        if isinstance(server, RegulatorServer):
            # A greedy shaper guarantees its own shaping curve as service;
            # the rate-latency minorant of sigma + rho*t is (rho, 0).
            return RateLatency(rate=server.rho, latency=0.0)
        # Unknown dedicated stage: fall back to its standalone delay bound
        # as a pure latency (valid: the stage delays by at most that much).
        raise UnstableSystemError(
            f"concatenation analysis has no service model for {stage.name}"
        )

    def _expanded_envelope(self, load: ConnectionLoad) -> Curve:
        """Source envelope inflated to cell-payload units (conservative)."""
        base = self.delay_analyzer.source_envelope(load.spec)
        if not load.route.crosses_backbone:
            return base
        frame_bits = self.delay_analyzer.frame_bits_for(load.h_source)
        from repro.atm.cell import CELL_PAYLOAD_BITS, cells_for_frame

        per_frame_out = cells_for_frame(frame_bits) * CELL_PAYLOAD_BITS
        factor = per_frame_out / frame_bits
        return base * factor + per_frame_out

    def analyze(
        self, loads: Sequence[ConnectionLoad]
    ) -> Dict[str, ConcatenationReport]:
        """Both bounds for every connection in ``loads``."""
        reports, usage = self.delay_analyzer.compute_with_resources(loads)
        results: Dict[str, ConcatenationReport] = {}
        for load in loads:
            conn_id = load.spec.conn_id
            stages = self.delay_analyzer.build_stages(load)
            service = RateLatency(rate=math.inf, latency=0.0)
            for stage in stages:
                service = service.convolve(
                    self._stage_service(stage, conn_id, usage.port_inputs)
                )
            envelope = self._expanded_envelope(load)
            if envelope.final_slope > service.rate * (1 + 1e-12):
                raise UnstableSystemError(
                    f"{conn_id}: source rate exceeds the concatenated "
                    f"service rate {service.rate:.6g} b/s"
                )
            bound = horizontal_deviation(envelope, service.to_curve())
            results[conn_id] = ConcatenationReport(
                conn_id=conn_id,
                additive_bound=reports[conn_id].total_delay,
                concatenated_bound=bound,
                end_to_end_rate=service.rate,
                end_to_end_latency=service.latency,
            )
        return results
