"""Human-readable reports over a live admission controller.

Operators (and the examples) want one call that answers: what is admitted,
what was granted, how tight is every connection, and how full is each ring.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.cac import AdmissionController
from repro.core.delay import ConnectionLoad
from repro.units import MS_PER_S


@dataclasses.dataclass(frozen=True)
class ConnectionStatus:
    conn_id: str
    source: str
    destination: str
    deadline: float
    delay_bound: float
    h_source: float
    h_dest: float

    @property
    def slack(self) -> float:
        return self.deadline - self.delay_bound

    @property
    def slack_fraction(self) -> float:
        return self.slack / self.deadline if self.deadline else 0.0


@dataclasses.dataclass(frozen=True)
class RingStatus:
    ring_id: str
    ttrt: float
    allocated: float
    available: float

    @property
    def occupancy(self) -> float:
        usable = self.allocated + self.available
        return self.allocated / usable if usable > 0 else 0.0


@dataclasses.dataclass(frozen=True)
class NetworkStateReport:
    connections: List[ConnectionStatus]
    rings: List[RingStatus]

    @property
    def tightest_connection(self) -> Optional[ConnectionStatus]:
        if not self.connections:
            return None
        return min(self.connections, key=lambda c: c.slack)

    @property
    def busiest_ring(self) -> Optional[RingStatus]:
        if not self.rings:
            return None
        return max(self.rings, key=lambda r: r.occupancy)

    def format(self) -> str:
        lines = ["Network state"]
        lines.append("  Connections:")
        if not self.connections:
            lines.append("    (none)")
        for c in sorted(self.connections, key=lambda c: c.conn_id):
            lines.append(
                f"    {c.conn_id:20s} {c.source}->{c.destination}  "
                f"bound {c.delay_bound * MS_PER_S:7.2f} ms / deadline "
                f"{c.deadline * MS_PER_S:6.1f} ms  (slack {c.slack_fraction:5.1%})  "
                f"H=({c.h_source * MS_PER_S:.3f}, {c.h_dest * MS_PER_S:.3f}) ms"
            )
        lines.append("  Rings:")
        for r in sorted(self.rings, key=lambda r: r.ring_id):
            lines.append(
                f"    {r.ring_id:8s} {r.occupancy:6.1%} of usable TTRT allocated "
                f"({r.available * MS_PER_S:.3f} ms free)"
            )
        return "\n".join(lines)


def network_state(cac: AdmissionController, refresh: bool = True) -> NetworkStateReport:
    """Snapshot ``cac``'s state.

    With ``refresh`` (default) the worst-case delays are recomputed for the
    current connection mix; otherwise the bounds recorded at admission time
    are used.
    """
    delays: Dict[str, float]
    if refresh and cac.connections:
        loads = [
            ConnectionLoad(r.spec, r.route, r.h_source, r.h_dest)
            for r in cac.connections.values()
        ]
        delays = {
            cid: rep.total_delay for cid, rep in cac.analyzer.compute(loads).items()
        }
    else:
        delays = {
            cid: rec.delay_bound for cid, rec in cac.connections.items()
        }
    connections = [
        ConnectionStatus(
            conn_id=cid,
            source=rec.spec.source_host,
            destination=rec.spec.dest_host,
            deadline=rec.spec.deadline,
            delay_bound=delays[cid],
            h_source=rec.h_source,
            h_dest=rec.h_dest,
        )
        for cid, rec in cac.connections.items()
    ]
    rings = [
        RingStatus(
            ring_id=ring.ring_id,
            ttrt=ring.ttrt,
            allocated=ring.allocated_sync_time,
            available=ring.available_sync_time,
        )
        for ring in cac.topology.rings.values()
    ]
    return NetworkStateReport(connections=connections, rings=rings)
