"""Preemptive admission: mission-critical requests may evict lesser ones.

Hard real-time systems rank their traffic: a plant-safety loop outranks a
monitoring video feed.  The paper's CAC is strictly first-come-first-served
— once the rings fill, a critical late-comer is refused.  This extension
wraps the controller with an importance order: when a request fails, the
least-important cheaper connections are released (lowest rank first) and
the request retried; if it still cannot be admitted, every preempted
connection is re-established and the network returns to its prior state.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.cac import AdmissionController, AdmissionResult
from repro.errors import ConfigurationError
from repro.network.connection import ConnectionSpec


@dataclasses.dataclass(frozen=True)
class PreemptionResult:
    """Outcome of a preemptive admission attempt."""

    result: AdmissionResult
    preempted: Tuple[str, ...] = ()
    #: Connections that were released during the attempt and re-admitted
    #: after it failed (diagnostics; normally equals the tried set).
    restored: Tuple[str, ...] = ()

    @property
    def admitted(self) -> bool:
        return self.result.admitted


class PreemptiveAdmission:
    """Importance-ranked admission on top of an :class:`AdmissionController`."""

    def __init__(self, cac: AdmissionController) -> None:
        self.cac = cac
        #: conn_id -> importance (higher = more critical).
        self._importance: Dict[str, float] = {}

    def importance_of(self, conn_id: str) -> float:
        return self._importance.get(conn_id, 0.0)

    def request(
        self,
        spec: ConnectionSpec,
        importance: float,
        max_preemptions: int = 8,
    ) -> PreemptionResult:
        """Admit ``spec``, evicting strictly less important connections if
        needed (at most ``max_preemptions`` of them).

        The attempt is transactional: if even after evictions the request
        fails, every evicted connection is re-admitted and the result
        reports the failure with ``preempted = ()``.
        """
        if max_preemptions < 0:
            raise ConfigurationError("max_preemptions must be non-negative")
        first = self.cac.request(spec)
        if first.admitted:
            self._importance[spec.conn_id] = importance
            return PreemptionResult(result=first)

        # Candidates: strictly less important, least important first.
        candidates = sorted(
            (
                cid
                for cid in self.cac.connections
                if self.importance_of(cid) < importance
            ),
            key=self.importance_of,
        )[:max_preemptions]
        if not candidates:
            return PreemptionResult(result=first)

        evicted: List[Tuple[str, ConnectionSpec]] = []
        final: Optional[AdmissionResult] = None
        for victim in candidates:
            record = self.cac.release(victim)
            evicted.append((victim, record.spec))
            attempt = self.cac.request(spec)
            if attempt.admitted:
                final = attempt
                break
        if final is not None:
            self._importance[spec.conn_id] = importance
            for cid, _ in evicted:
                self._importance.pop(cid, None)
            return PreemptionResult(
                result=final, preempted=tuple(cid for cid, _ in evicted)
            )

        # Roll back: the prior state was feasible, so re-admission of every
        # victim must succeed (possibly with different grants).
        restored: List[str] = []
        for cid, victim_spec in reversed(evicted):
            back = self.cac.request(victim_spec)
            if back.admitted:
                restored.append(cid)
            else:  # pragma: no cover - would indicate a CAC soundness bug
                self._importance.pop(cid, None)
        return PreemptionResult(result=first, restored=tuple(restored))

    def release(self, conn_id: str):
        """Release a connection and forget its importance."""
        self._importance.pop(conn_id, None)
        return self.cac.release(conn_id)
