"""The decomposition delay engine (Section 4, Eq. 7).

Given the network topology and the set of connections with their
synchronous-bandwidth allocations, the engine:

1. builds each connection's server chain (FDDI MAC -> delay line -> ID_S
   stages -> ATM ports -> ID_R stages -> destination MAC -> delay line);
2. propagates traffic envelopes stage by stage.  Dedicated stages advance
   independently; a *shared* stage (an ATM output port) is analyzed exactly
   once, when every connection traversing it has delivered its envelope at
   the port entrance (feed-forward order, discovered by a worklist);
3. sums per-stage worst-case delays into the end-to-end bound of Eq. (7).

Any stage may raise :class:`UnstableSystemError` or
:class:`BufferOverflowError`; callers (the CAC) treat these as "worst-case
delay is infinite" — automatic infeasibility.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import AnalysisConfig, NetworkConfig
from repro.envelopes.curve import Curve
from repro.errors import CyclicDependencyError, TopologyError
from repro.fddi.mac_server import FDDIMacServer
from repro.interface_device.cell_frame import CellFrameConversionServer
from repro.interface_device.frame_cell import FrameCellConversionServer
from repro.network.connection import ConnectionSpec
from repro.network.routing import Route
from repro.network.topology import NetworkTopology
from repro.atm.output_port import OutputPortServer
from repro.servers.base import DedicatedServer
from repro.servers.constant import ConstantDelayServer


@dataclasses.dataclass(frozen=True)
class DedicatedStage:
    name: str
    server: DedicatedServer


@dataclasses.dataclass(frozen=True)
class SharedStage:
    name: str
    port: OutputPortServer


Stage = Union[DedicatedStage, SharedStage]


@dataclasses.dataclass(frozen=True)
class RegulatorSpec:
    """Optional ingress shaping contract (ref [15]): release at most
    ``sigma + rho * t`` bits (capped at ``peak``) into the ATM backbone."""

    sigma: float
    rho: float
    peak: float = float("inf")


@dataclasses.dataclass(frozen=True)
class ConnectionLoad:
    """One connection as the delay engine sees it: spec + route + grants."""

    spec: ConnectionSpec
    route: Route
    h_source: float
    h_dest: float
    #: When set, a greedy shaper is inserted at the sending interface device
    #: (after frame->cell conversion, before the ATM output port).
    regulator: Optional[RegulatorSpec] = None


@dataclasses.dataclass(frozen=True)
class DelayReport:
    """Per-connection analysis result."""

    conn_id: str
    total_delay: float
    per_hop: Tuple[Tuple[str, float], ...]
    output: Curve
    #: Worst-case backlog contributed at each *dedicated* hop (bits); shared
    #: ports report an aggregate backlog via ResourceUsage instead.
    per_hop_backlog: Tuple[Tuple[str, float], ...] = ()

    def hop_delay(self, name_fragment: str) -> float:
        """Sum of delays at hops whose name contains ``name_fragment``."""
        return sum(d for n, d in self.per_hop if name_fragment in n)

    def hop_backlog(self, name_fragment: str) -> float:
        """Max backlog among dedicated hops matching ``name_fragment``."""
        matches = [b for n, b in self.per_hop_backlog if name_fragment in n]
        return max(matches, default=0.0)


@dataclasses.dataclass(frozen=True)
class ResourceUsage:
    """Aggregate, per-resource figures from one delay computation."""

    #: Worst-case aggregate backlog at each shared output port (bits).
    port_backlogs: Dict[str, float]
    #: Busy interval of each shared output port (seconds).
    port_busy_intervals: Dict[str, float]
    #: FIFO delay bound at each shared output port (seconds).
    port_delays: Dict[str, float]
    #: Per-port entry envelopes: port name -> {conn_id -> envelope at the
    #: port's entrance}.  Consumed by the concatenation analysis.
    port_inputs: Dict[str, Dict[str, Curve]] = dataclasses.field(
        default_factory=dict
    )


class DelayAnalyzer:
    """Builds server chains and computes worst-case end-to-end delays."""

    def __init__(
        self,
        topology: NetworkTopology,
        network_config: Optional[NetworkConfig] = None,
        analysis_config: Optional[AnalysisConfig] = None,
    ):
        self.topology = topology
        self.network_config = network_config or NetworkConfig()
        self.analysis = analysis_config or AnalysisConfig()
        #: Cache of dedicated-stage analyses keyed by (server key, envelope
        #: fingerprint) — hit heavily by binary-search probes, where most
        #: connections' upstream stages are unchanged.
        self._stage_cache: Dict[tuple, object] = {}
        self._stage_cache_limit = 20_000
        #: Cache of source envelopes keyed by the traffic descriptor.
        self._envelope_cache: Dict[object, Curve] = {}

    # ------------------------------------------------------------------
    # Stage construction
    # ------------------------------------------------------------------

    def frame_bits_for(self, sync_time: float) -> float:
        """The frame size ``F_S = H * BW`` capped by the FDDI maximum."""
        raw = sync_time * self.network_config.fddi_bandwidth
        return max(1.0, min(raw, self.network_config.max_frame_bits))

    def build_stages(self, load: ConnectionLoad) -> List[Stage]:
        """The ordered server chain for one connection."""
        topo = self.topology
        cfg = self.network_config
        route = load.route
        ring_s = topo.rings[route.source_ring]
        stages: List[Stage] = [
            DedicatedStage(
                f"fddi-mac:{route.source_ring}:{load.spec.conn_id}",
                FDDIMacServer(
                    load.h_source,
                    ring_s.ttrt,
                    ring_s.bandwidth,
                    buffer_bits=cfg.mac_buffer_bits,
                    name=f"mac-src:{load.spec.conn_id}",
                ),
            ),
            DedicatedStage(
                f"delay-line:{route.source_ring}",
                ConstantDelayServer(ring_s.propagation_delay, name="delay-line-src"),
            ),
        ]
        if not route.crosses_backbone:
            return stages

        src_dev = topo.devices[route.source_device]
        dst_dev = topo.devices[route.dest_device]
        frame_bits_src = self.frame_bits_for(load.h_source)
        frame_bits_dst = self.frame_bits_for(load.h_dest)
        horizon = self.analysis.envelope_horizon

        stages += [
            DedicatedStage(f"{src_dev.device_id}:input-port", src_dev.input_port_server()),
            DedicatedStage(f"{src_dev.device_id}:frame-switch", src_dev.frame_switch_server()),
            DedicatedStage(
                f"{src_dev.device_id}:frame-cell",
                FrameCellConversionServer(
                    frame_bits_src,
                    processing_delay=src_dev.frame_processing_delay,
                    horizon=horizon,
                ),
            ),
        ]
        if load.regulator is not None:
            from repro.servers.regulator import RegulatorServer

            stages.append(
                DedicatedStage(
                    f"{src_dev.device_id}:regulator:{load.spec.conn_id}",
                    RegulatorServer(
                        load.regulator.sigma,
                        load.regulator.rho,
                        peak=load.regulator.peak,
                        name=f"regulator:{load.spec.conn_id}",
                    ),
                )
            )
        stages += [
            SharedStage(src_dev.uplink_port.name, src_dev.uplink_port),
            DedicatedStage(
                f"prop:{src_dev.uplink.link_id}",
                ConstantDelayServer(src_dev.uplink.propagation_delay, name="prop-uplink"),
            ),
        ]

        path = route.switch_path
        for idx, switch_id in enumerate(path):
            switch = topo.switches[switch_id]
            stages.append(
                DedicatedStage(
                    f"fabric:{switch_id}",
                    ConstantDelayServer(switch.fabric_delay, name=f"fabric:{switch_id}"),
                )
            )
            if idx + 1 < len(path):
                nxt = path[idx + 1]
                port = topo.switch_port(switch_id, nxt)
                link = topo.switch_link(switch_id, nxt)
                stages.append(SharedStage(port.name, port))
                stages.append(
                    DedicatedStage(
                        f"prop:{link.link_id}",
                        ConstantDelayServer(link.propagation_delay, name="prop"),
                    )
                )
            else:
                port = topo.downlink_port(switch_id, dst_dev.device_id)
                link = topo.downlink(switch_id, dst_dev.device_id)
                stages.append(SharedStage(port.name, port))
                stages.append(
                    DedicatedStage(
                        f"prop:{link.link_id}",
                        ConstantDelayServer(link.propagation_delay, name="prop-downlink"),
                    )
                )

        ring_r = topo.rings[route.dest_ring]
        stages += [
            DedicatedStage(f"{dst_dev.device_id}:input-port", dst_dev.input_port_server()),
            DedicatedStage(
                f"{dst_dev.device_id}:cell-frame",
                CellFrameConversionServer(
                    frame_bits_dst,
                    processing_delay=dst_dev.frame_processing_delay,
                    horizon=horizon,
                ),
            ),
            DedicatedStage(f"{dst_dev.device_id}:frame-switch", dst_dev.frame_switch_server()),
            DedicatedStage(
                f"fddi-mac:{route.dest_ring}:{load.spec.conn_id}",
                FDDIMacServer(
                    load.h_dest,
                    ring_r.ttrt,
                    ring_r.bandwidth,
                    buffer_bits=cfg.mac_buffer_bits,
                    name=f"mac-dst:{load.spec.conn_id}",
                ),
            ),
            DedicatedStage(
                f"delay-line:{route.dest_ring}",
                ConstantDelayServer(ring_r.propagation_delay, name="delay-line-dst"),
            ),
        ]
        return stages

    # ------------------------------------------------------------------
    # Envelope propagation
    # ------------------------------------------------------------------

    def source_envelope(self, spec: ConnectionSpec) -> Curve:
        """The connection's envelope at the entrance of its source MAC."""
        cached = self._envelope_cache.get(spec.traffic)
        if cached is None:
            cached = spec.traffic.envelope(self.analysis.envelope_horizon)
            try:
                self._envelope_cache[spec.traffic] = cached
            except TypeError:
                pass  # unhashable descriptor: skip caching
        return cached

    def _tidy(self, envelope: Curve) -> Curve:
        envelope = envelope.simplify()
        if len(envelope.xs) > self.analysis.max_envelope_segments:
            envelope = envelope.coarsen(self.analysis.max_envelope_segments)
        return envelope

    def _analyze_dedicated(self, stage: DedicatedStage, conn, envelope: Curve):
        server = stage.server
        skey = server.cache_key()
        if skey is None:
            return server.analyze(envelope)
        key = (skey, envelope.fingerprint())
        hit = self._stage_cache.get(key)
        if hit is not None:
            return hit
        result = server.analyze(envelope)
        if len(self._stage_cache) > self._stage_cache_limit:
            self._stage_cache.clear()
        self._stage_cache[key] = result
        return result

    def _analyze_port_cached(self, port, envelopes: Dict[int, Curve]):
        """Memoized FIFO-port analysis.

        Two calls with the same port and the same multiset of participant
        envelopes produce identical results, and identical envelopes get
        identical outputs — so the cache stores outputs keyed by envelope
        fingerprint.
        """
        fps = {key: env.fingerprint() for key, env in envelopes.items()}
        cache_key = (port.name, tuple(sorted(fps.values())))
        hit = self._stage_cache.get(cache_key)
        if hit is None:
            delay, backlog, busy, outputs = _analyze_port(
                port, envelopes, delay_quantum=self.analysis.output_delay_quantum
            )
            by_fp = {fps[key]: out for key, out in outputs.items()}
            if len(self._stage_cache) > self._stage_cache_limit:
                self._stage_cache.clear()
            self._stage_cache[cache_key] = (delay, backlog, busy, by_fp)
        else:
            delay, backlog, busy, by_fp = hit
        outputs = {key: by_fp[fp] for key, fp in fps.items()}
        return delay, backlog, busy, outputs

    def compute(self, loads: Sequence[ConnectionLoad]) -> Dict[str, DelayReport]:
        """Worst-case end-to-end delay of every connection in ``loads``.

        Raises the analysis errors of the individual servers, or
        :class:`CyclicDependencyError` when the shared-port dependency graph
        is not feed-forward.
        """
        reports, _ = self.compute_with_resources(loads)
        return reports

    def compute_with_resources(
        self, loads: Sequence[ConnectionLoad]
    ) -> Tuple[Dict[str, DelayReport], ResourceUsage]:
        """Like :meth:`compute`, also returning per-resource usage figures
        (port backlogs/busy intervals) needed for buffer dimensioning."""
        states = []
        for load in loads:
            stages = self.build_stages(load)
            states.append(
                _ConnState(
                    load=load,
                    stages=stages,
                    envelope=self.source_envelope(load.spec),
                )
            )
        # Which connections traverse each shared port?
        traversers: Dict[str, List[_ConnState]] = {}
        for st in states:
            for stage in st.stages:
                if isinstance(stage, SharedStage):
                    traversers.setdefault(stage.port.name, []).append(st)

        port_backlogs: Dict[str, float] = {}
        port_busy: Dict[str, float] = {}
        port_delays: Dict[str, float] = {}
        port_inputs: Dict[str, Dict[str, Curve]] = {}

        def advance_dedicated(st: "_ConnState") -> bool:
            moved = False
            while st.idx < len(st.stages) and isinstance(
                st.stages[st.idx], DedicatedStage
            ):
                stage = st.stages[st.idx]
                result = self._analyze_dedicated(stage, st.load, st.envelope)
                st.total += result.delay_bound
                st.hops.append((stage.name, result.delay_bound))
                st.hop_backlogs.append((stage.name, result.backlog_bound))
                st.envelope = self._tidy(result.output)
                st.idx += 1
                moved = True
            return moved

        pending = set(range(len(states)))
        while pending:
            progress = False
            for i in list(pending):
                st = states[i]
                if advance_dedicated(st):
                    progress = True
                if st.idx >= len(st.stages):
                    pending.discard(i)
            # Analyze every shared port whose traversers have all arrived.
            ports_ready: Dict[str, SharedStage] = {}
            for i in pending:
                st = states[i]
                if st.idx < len(st.stages):
                    stage = st.stages[st.idx]
                    if isinstance(stage, SharedStage):
                        group = traversers[stage.port.name]
                        if all(
                            g.idx < len(g.stages)
                            and g.stages[g.idx] is not None
                            and isinstance(g.stages[g.idx], SharedStage)
                            and g.stages[g.idx].port.name == stage.port.name
                            for g in group
                        ):
                            ports_ready[stage.port.name] = stage
            for port_name, stage in ports_ready.items():
                group = traversers[port_name]
                envelopes = {id(g): g.envelope for g in group}
                delay, backlog, busy, outputs = self._analyze_port_cached(
                    stage.port, envelopes
                )
                port_backlogs[port_name] = backlog
                port_busy[port_name] = busy
                port_delays[port_name] = delay
                port_inputs[port_name] = {
                    g.load.spec.conn_id: g.envelope for g in group
                }
                for g in group:
                    g.total += delay
                    g.hops.append((stage.name, delay))
                    g.envelope = self._tidy(outputs[id(g)])
                    g.idx += 1
                progress = True
            if not progress and pending:
                stuck = [states[i].load.spec.conn_id for i in pending]
                raise CyclicDependencyError(
                    "shared-port dependencies are not feed-forward; stuck "
                    f"connections: {stuck}"
                )

        reports = {
            st.load.spec.conn_id: DelayReport(
                conn_id=st.load.spec.conn_id,
                total_delay=st.total,
                per_hop=tuple(st.hops),
                output=st.envelope,
                per_hop_backlog=tuple(st.hop_backlogs),
            )
            for st in states
        }
        usage = ResourceUsage(
            port_backlogs=port_backlogs,
            port_busy_intervals=port_busy,
            port_delays=port_delays,
            port_inputs=port_inputs,
        )
        return reports, usage


@dataclasses.dataclass
class _ConnState:
    load: ConnectionLoad
    stages: List[Stage]
    envelope: Curve
    idx: int = 0
    total: float = 0.0
    hops: List[Tuple[str, float]] = dataclasses.field(default_factory=list)
    hop_backlogs: List[Tuple[str, float]] = dataclasses.field(default_factory=list)


def _analyze_port(
    port: OutputPortServer, envelopes: Dict[int, Curve], delay_quantum: float = 0.0
):
    """Analyze a FIFO port once for all its participants.

    Returns ``(delay, backlog, busy_interval, outputs_by_key)``.  Every
    participant shares the aggregate FIFO delay bound; each gets its own
    output envelope (its input advanced by the delay — rounded up to
    ``delay_quantum``, which is conservative — capped at link rate).
    """
    from repro.envelopes.curve import sum_curves
    from repro.envelopes.operations import (
        busy_interval,
        horizontal_deviation,
        vertical_deviation,
    )
    from repro.errors import BufferOverflowError, UnstableSystemError
    import math

    aggregate = sum_curves(envelopes.values())
    service = port.service_curve()
    if aggregate.final_slope > port.service_rate * (1 + 1e-12):
        raise UnstableSystemError(
            f"{port.name}: aggregate rate {aggregate.final_slope:.6g} b/s "
            f"exceeds link payload rate {port.service_rate:.6g} b/s"
        )
    busy = busy_interval(aggregate, service)
    if math.isinf(busy):
        raise UnstableSystemError(f"{port.name}: unbounded busy period")
    backlog = vertical_deviation(aggregate, service, t_max=busy)
    if backlog > port.buffer_bits + 1e-9:
        raise BufferOverflowError(
            f"{port.name}: worst-case backlog {backlog:.6g} bits exceeds "
            f"buffer {port.buffer_bits:.6g} bits"
        )
    delay = horizontal_deviation(aggregate, service, t_max=busy)
    if math.isinf(delay):
        raise UnstableSystemError(f"{port.name}: unbounded delay")
    if delay_quantum > 0 and delay > 0:
        shift = math.ceil(delay / delay_quantum - 1e-12) * delay_quantum
    else:
        shift = delay
    cap = Curve.affine(0.0, port.service_rate)
    outputs = {
        key: env.shift_left(shift).minimum(cap) for key, env in envelopes.items()
    }
    return delay, backlog, busy, outputs
