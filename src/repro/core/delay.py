"""The decomposition delay engine (Section 4, Eq. 7).

Given the network topology and the set of connections with their
synchronous-bandwidth allocations, the engine:

1. builds each connection's server chain (FDDI MAC -> delay line -> ID_S
   stages -> ATM ports -> ID_R stages -> destination MAC -> delay line);
2. propagates traffic envelopes stage by stage.  Dedicated stages advance
   independently; a *shared* stage (an ATM output port) is analyzed exactly
   once, when every connection traversing it has delivered its envelope at
   the port entrance (feed-forward order, discovered by a worklist);
3. sums per-stage worst-case delays into the end-to-end bound of Eq. (7).

Topologies whose shared-port dependency graph is *not* feed-forward (e.g.
a unidirectional ring of switches) leave the worklist with stuck
connections; those are handed to a monotone fixed-point iteration in the
style of Amari & Mifdaoui: starting from zero, the per-port quantized
output shifts are iterated — each round re-propagates every stuck
connection's envelope through its remaining chain under the assumed
shifts, then recomputes every unresolved port's delay from the collected
entrance envelopes — until the shift vector repeats exactly.  Because the
shift map is monotone non-decreasing on the ``output_delay_quantum``
lattice, exact repetition is the convergence criterion (with a zero
quantum the test degrades to a relative tolerance,
``fixed_point_rtol``).  Non-convergence within
``fixed_point_max_iterations`` raises
:class:`~repro.errors.FixedPointDivergenceError` — the cycle admits no
stable bound at this load, which admission control treats as infeasible.
Feed-forward topologies never enter the iteration, so their results are
byte-identical to the plain worklist.

Any stage may raise :class:`UnstableSystemError` or
:class:`BufferOverflowError`; callers (the CAC) treat these as "worst-case
delay is infinite" — automatic infeasibility.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import AnalysisConfig, NetworkConfig
from repro.envelopes.curve import Curve
from repro.errors import CyclicDependencyError, FixedPointDivergenceError
from repro.fddi.mac_server import FDDIMacServer
from repro.interface_device.cell_frame import CellFrameConversionServer
from repro.interface_device.frame_cell import FrameCellConversionServer
from repro.network.connection import ConnectionSpec
from repro.network.routing import Route
from repro.network.topology import NetworkTopology
from repro.atm.output_port import OutputPortServer
from repro.servers.base import DedicatedServer
from repro.servers.constant import ConstantDelayServer


@dataclasses.dataclass(frozen=True)
class DedicatedStage:
    name: str
    server: DedicatedServer


@dataclasses.dataclass(frozen=True)
class SharedStage:
    name: str
    port: OutputPortServer


Stage = Union[DedicatedStage, SharedStage]


@dataclasses.dataclass(frozen=True)
class RegulatorSpec:
    """Optional ingress shaping contract (ref [15]): release at most
    ``sigma + rho * t`` bits (capped at ``peak``) into the ATM backbone."""

    sigma: float
    rho: float
    peak: float = float("inf")


@dataclasses.dataclass(frozen=True)
class ConnectionLoad:
    """One connection as the delay engine sees it: spec + route + grants."""

    spec: ConnectionSpec
    route: Route
    h_source: float
    h_dest: float
    #: When set, a greedy shaper is inserted at the sending interface device
    #: (after frame->cell conversion, before the ATM output port).
    regulator: Optional[RegulatorSpec] = None


@dataclasses.dataclass(frozen=True)
class DelayReport:
    """Per-connection analysis result."""

    conn_id: str
    total_delay: float
    per_hop: Tuple[Tuple[str, float], ...]
    output: Curve
    #: Worst-case backlog contributed at each *dedicated* hop (bits); shared
    #: ports report an aggregate backlog via ResourceUsage instead.
    per_hop_backlog: Tuple[Tuple[str, float], ...] = ()

    def hop_delay(self, name_fragment: str) -> float:
        """Sum of delays at hops whose name contains ``name_fragment``."""
        return sum(d for n, d in self.per_hop if name_fragment in n)

    def hop_backlog(self, name_fragment: str) -> float:
        """Max backlog among dedicated hops matching ``name_fragment``."""
        matches = [b for n, b in self.per_hop_backlog if name_fragment in n]
        return max(matches, default=0.0)


@dataclasses.dataclass(frozen=True)
class ResourceUsage:
    """Aggregate, per-resource figures from one delay computation."""

    #: Worst-case aggregate backlog at each shared output port (bits).
    port_backlogs: Dict[str, float]
    #: Busy interval of each shared output port (seconds).
    port_busy_intervals: Dict[str, float]
    #: FIFO delay bound at each shared output port (seconds).
    port_delays: Dict[str, float]
    #: Per-port entry envelopes: port name -> {conn_id -> envelope at the
    #: port's entrance}.  Consumed by the concatenation analysis.
    port_inputs: Dict[str, Dict[str, Curve]] = dataclasses.field(
        default_factory=dict
    )


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    The previous policy — ``clear()`` everything past the limit — meant one
    long sweep point crossing the threshold silently reverted every later
    probe to cold-cache cost.  LRU eviction keeps the hot working set
    resident; hit/miss/eviction counters feed the cache-health regression
    tests and the bench report.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("LRU cache needs a positive size")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "collections.OrderedDict" = collections.OrderedDict()

    def get(self, key, default=None):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        while len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


def route_port_names(topology: NetworkTopology, route: Route) -> Tuple[str, ...]:
    """Names of the shared (ATM output-port) stages along ``route``.

    This is the route's interference footprint: two connections can affect
    each other's delay analysis only through ports both traverse.  Must
    mirror the SharedStage placement of :meth:`DelayAnalyzer.build_stages`.
    """
    if not route.crosses_backbone:
        return ()
    src_dev = topology.devices[route.source_device]
    names = [src_dev.uplink_port.name]
    path = route.switch_path
    for idx, switch_id in enumerate(path):
        if idx + 1 < len(path):
            names.append(topology.switch_port(switch_id, path[idx + 1]).name)
        else:
            names.append(
                topology.downlink_port(switch_id, route.dest_device).name
            )
    return tuple(names)


class DelayAnalyzer:
    """Builds server chains and computes worst-case end-to-end delays."""

    def __init__(
        self,
        topology: NetworkTopology,
        network_config: Optional[NetworkConfig] = None,
        analysis_config: Optional[AnalysisConfig] = None,
    ) -> None:
        self.topology = topology
        self.network_config = network_config or NetworkConfig()
        self.analysis = analysis_config or AnalysisConfig()
        #: Cache of dedicated-stage analyses keyed by (server key, envelope
        #: fingerprint) — hit heavily by binary-search probes, where most
        #: connections' upstream stages are unchanged.
        self._stage_cache = LRUCache(self.analysis.stage_cache_size)
        #: Cache of source envelopes keyed by the traffic descriptor.
        self._envelope_cache = LRUCache(self.analysis.stage_cache_size)
        #: Cache of whole dedicated-stage *runs* keyed by (segment servers,
        #: input-envelope fingerprint).  A hit replays the per-stage delays
        #: and the final tidied envelope without touching any server — the
        #: dominant cost of a repeat probe is otherwise the per-stage walk
        #: (fingerprints, simplify/coarsen) even when every stage hits the
        #: stage cache.
        self._segment_cache = LRUCache(self.analysis.stage_cache_size)
        #: Cache of built server chains keyed by everything the chain
        #: depends on (route, grants, regulator, topology version) — the
        #: chain does *not* depend on the traffic descriptor, so this key
        #: is always hashable.  Holding the chain also keeps the segment
        #: run structure (precomputed server keys) from being rebuilt on
        #: every probe.
        self._chain_cache = LRUCache(self.analysis.stage_cache_size)

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss/eviction counters of the analyzer's internal caches."""
        return {
            "stage": self._stage_cache.stats(),
            "envelope": self._envelope_cache.stats(),
            "segment": self._segment_cache.stats(),
            "chain": self._chain_cache.stats(),
        }

    # ------------------------------------------------------------------
    # Stage construction
    # ------------------------------------------------------------------

    def frame_bits_for(self, sync_time: float) -> float:
        """The frame size ``F_S = H * BW`` capped by the FDDI maximum."""
        raw = sync_time * self.network_config.fddi_bandwidth
        return max(1.0, min(raw, self.network_config.max_frame_bits))

    def build_stages(self, load: ConnectionLoad) -> List[Stage]:
        """The ordered server chain for one connection."""
        topo = self.topology
        cfg = self.network_config
        route = load.route
        ring_s = topo.rings[route.source_ring]
        stages: List[Stage] = [
            DedicatedStage(
                f"fddi-mac:{route.source_ring}:{load.spec.conn_id}",
                FDDIMacServer(
                    load.h_source,
                    ring_s.ttrt,
                    ring_s.bandwidth,
                    buffer_bits=cfg.mac_buffer_bits,
                    name=f"mac-src:{load.spec.conn_id}",
                    service_segments=self.analysis.coarsen_segments,
                ),
            ),
            DedicatedStage(
                f"delay-line:{route.source_ring}",
                ConstantDelayServer(ring_s.propagation_delay, name="delay-line-src"),
            ),
        ]
        if not route.crosses_backbone:
            return stages

        src_dev = topo.devices[route.source_device]
        dst_dev = topo.devices[route.dest_device]
        frame_bits_src = self.frame_bits_for(load.h_source)
        frame_bits_dst = self.frame_bits_for(load.h_dest)
        horizon = self.analysis.envelope_horizon

        stages += [
            DedicatedStage(f"{src_dev.device_id}:input-port", src_dev.input_port_server()),
            DedicatedStage(f"{src_dev.device_id}:frame-switch", src_dev.frame_switch_server()),
            DedicatedStage(
                f"{src_dev.device_id}:frame-cell",
                FrameCellConversionServer(
                    frame_bits_src,
                    processing_delay=src_dev.frame_processing_delay,
                    horizon=horizon,
                ),
            ),
        ]
        if load.regulator is not None:
            from repro.servers.regulator import RegulatorServer

            stages.append(
                DedicatedStage(
                    f"{src_dev.device_id}:regulator:{load.spec.conn_id}",
                    RegulatorServer(
                        load.regulator.sigma,
                        load.regulator.rho,
                        peak=load.regulator.peak,
                        name=f"regulator:{load.spec.conn_id}",
                    ),
                )
            )
        stages += [
            SharedStage(src_dev.uplink_port.name, src_dev.uplink_port),
            DedicatedStage(
                f"prop:{src_dev.uplink.link_id}",
                ConstantDelayServer(src_dev.uplink.propagation_delay, name="prop-uplink"),
            ),
        ]

        path = route.switch_path
        for idx, switch_id in enumerate(path):
            switch = topo.switches[switch_id]
            stages.append(
                DedicatedStage(
                    f"fabric:{switch_id}",
                    ConstantDelayServer(switch.fabric_delay, name=f"fabric:{switch_id}"),
                )
            )
            if idx + 1 < len(path):
                nxt = path[idx + 1]
                port = topo.switch_port(switch_id, nxt)
                link = topo.switch_link(switch_id, nxt)
                stages.append(SharedStage(port.name, port))
                stages.append(
                    DedicatedStage(
                        f"prop:{link.link_id}",
                        ConstantDelayServer(link.propagation_delay, name="prop"),
                    )
                )
            else:
                port = topo.downlink_port(switch_id, dst_dev.device_id)
                link = topo.downlink(switch_id, dst_dev.device_id)
                stages.append(SharedStage(port.name, port))
                stages.append(
                    DedicatedStage(
                        f"prop:{link.link_id}",
                        ConstantDelayServer(link.propagation_delay, name="prop-downlink"),
                    )
                )

        ring_r = topo.rings[route.dest_ring]
        stages += [
            DedicatedStage(f"{dst_dev.device_id}:input-port", dst_dev.input_port_server()),
            DedicatedStage(
                f"{dst_dev.device_id}:cell-frame",
                CellFrameConversionServer(
                    frame_bits_dst,
                    processing_delay=dst_dev.frame_processing_delay,
                    horizon=horizon,
                ),
            ),
            DedicatedStage(f"{dst_dev.device_id}:frame-switch", dst_dev.frame_switch_server()),
            DedicatedStage(
                f"fddi-mac:{route.dest_ring}:{load.spec.conn_id}",
                FDDIMacServer(
                    load.h_dest,
                    ring_r.ttrt,
                    ring_r.bandwidth,
                    buffer_bits=cfg.mac_buffer_bits,
                    name=f"mac-dst:{load.spec.conn_id}",
                    service_segments=self.analysis.coarsen_segments,
                ),
            ),
            DedicatedStage(
                f"delay-line:{route.dest_ring}",
                ConstantDelayServer(ring_r.propagation_delay, name="delay-line-dst"),
            ),
        ]
        return stages

    def _chain_for(self, load: ConnectionLoad) -> Tuple[List[Stage], Dict[int, tuple]]:
        """The (cached) server chain for ``load`` plus its segment runs.

        ``runs`` maps the index of each maximal dedicated run's first stage
        to ``(end_index, seg_keys)``; ``seg_keys`` is ``None`` when any
        server in the run refuses memoization.  Servers are stateless
        analyzers, so reusing the chain across computations is safe; the
        topology version in the key retires chains built against a network
        that has since mutated.
        """
        route = load.route
        reg = load.regulator
        key = (
            load.spec.conn_id,
            route.source_ring,
            route.dest_ring,
            route.source_device,
            route.dest_device,
            tuple(route.switch_path),
            float(load.h_source),
            float(load.h_dest),
            None if reg is None else (reg.sigma, reg.rho, reg.peak),
            self.topology.change_count,
        )
        hit = self._chain_cache.get(key)
        if hit is not None:
            return hit
        stages = self.build_stages(load)
        runs: Dict[int, tuple] = {}
        i, n = 0, len(stages)
        while i < n:
            if isinstance(stages[i], DedicatedStage):
                j = i
                seg_keys: List[object] = []
                while j < n and isinstance(stages[j], DedicatedStage):
                    seg_keys.append(stages[j].server.cache_key())
                    j += 1
                runs[i] = (j, None if None in seg_keys else tuple(seg_keys))
                i = j
            else:
                i += 1
        value = (stages, runs)
        self._chain_cache.put(key, value)
        return value

    # ------------------------------------------------------------------
    # Envelope propagation
    # ------------------------------------------------------------------

    def source_envelope(self, spec: ConnectionSpec) -> Curve:
        """The connection's envelope at the entrance of its source MAC."""
        try:
            cached = self._envelope_cache.get(spec.traffic)
        except TypeError:
            return spec.traffic.envelope(self.analysis.envelope_horizon)
        if cached is None:
            cached = spec.traffic.envelope(self.analysis.envelope_horizon)
            self._envelope_cache.put(spec.traffic, cached)
        return cached

    def _tidy(self, envelope: Curve) -> Curve:
        """Simplify and (if over budget) conservatively coarsen an envelope.

        Envelopes are *upper* bounds on traffic, so coarsening rounds them
        up (``direction="upper"``) — every downstream delay/backlog bound
        stays a valid upper bound.  The budget is ``max_envelope_segments``
        in exact mode, tightened to ``coarsen_segments`` when the
        accuracy-for-speed knob is set.
        """
        envelope = envelope.simplify()
        cap = self.analysis.max_envelope_segments
        knob = self.analysis.coarsen_segments
        if knob is not None and knob < cap:
            cap = knob
        if len(envelope.xs) > cap:
            envelope = envelope.coarsen(cap, direction="upper")
        return envelope

    def _analyze_dedicated(self, stage: DedicatedStage, conn, envelope: Curve):
        server = stage.server
        skey = server.cache_key()
        if skey is None:
            return server.analyze(envelope)
        key = (skey, envelope.fingerprint())
        hit = self._stage_cache.get(key)
        if hit is not None:
            return hit
        result = server.analyze(envelope)
        self._stage_cache.put(key, result)
        return result

    def _advance_dedicated(self, st: "_ConnState") -> bool:
        """Advance ``st`` through its next maximal run of dedicated stages.

        The whole run is memoized as one unit: for a given tuple of server
        behaviours and a given input envelope, the per-stage delay/backlog
        bounds and the final (tidied) output envelope are fully determined,
        so a repeat probe replays them from the segment cache in O(1)
        instead of re-walking every stage.  Stage *names* are taken from
        the live stages, so connections that share server behaviour still
        report their own hop labels.
        """
        stages = st.stages
        start = st.idx
        run = st.runs.get(start)
        if run is None:
            return False
        end, seg_keys = run
        seg = stages[start:end]
        cacheable = seg_keys is not None
        if cacheable:
            key = (seg_keys, st.envelope.fingerprint())
            hit = self._segment_cache.get(key)
            if hit is not None:
                delays, backlogs, out_env = hit
                for stage, d, b in zip(seg, delays, backlogs):
                    st.total += d
                    st.hops.append((stage.name, d))
                    st.hop_backlogs.append((stage.name, b))
                st.envelope = out_env
                st.idx = end
                return True
        delays = []
        backlogs = []
        env = st.envelope
        for stage in seg:
            result = self._analyze_dedicated(stage, st.load, env)
            delays.append(result.delay_bound)
            backlogs.append(result.backlog_bound)
            env = self._tidy(result.output)
        if cacheable:
            self._segment_cache.put(key, (tuple(delays), tuple(backlogs), env))
        for stage, d, b in zip(seg, delays, backlogs):
            st.total += d
            st.hops.append((stage.name, d))
            st.hop_backlogs.append((stage.name, b))
        st.envelope = env
        st.idx = end
        return True

    def _analyze_port_cached(self, port, envelopes: Dict[int, Curve]):
        """Memoized FIFO-port analysis.

        Two calls with the same port and the same multiset of participant
        envelopes produce identical results, and identical envelopes get
        identical outputs — so the cache stores outputs keyed by envelope
        fingerprint.
        """
        fps = {key: env.fingerprint() for key, env in envelopes.items()}
        cache_key = (port.name, tuple(sorted(fps.values())))
        hit = self._stage_cache.get(cache_key)
        if hit is None:
            delay, backlog, busy, shift = _analyze_port(
                port,
                envelopes,
                delay_quantum=self.analysis.output_delay_quantum,
                coarsen_segments=self.analysis.coarsen_segments,
            )
            # Per-member outputs are memoized on (rate, envelope, shift):
            # the quantized shift takes few distinct values across a binary
            # search, and most members' envelopes are unchanged between
            # probes, so only genuinely new (envelope, shift) pairs pay for
            # the shift-and-cap curve algebra.  Outputs are stored already
            # tidied so repeat probes skip the simplify/coarsen pass too.
            rate = port.service_rate
            by_fp: Dict[int, Curve] = {}
            for key, env in envelopes.items():
                fp = fps[key]
                if fp in by_fp:
                    continue
                out_key = ("port-out", rate, fp, shift)
                out = self._stage_cache.get(out_key)
                if out is None:
                    out = self._tidy(
                        env.shift_left(shift).minimum(Curve.affine(0.0, rate))
                    )
                    self._stage_cache.put(out_key, out)
                by_fp[fp] = out
            self._stage_cache.put(cache_key, (delay, backlog, busy, by_fp))
        else:
            delay, backlog, busy, by_fp = hit
        outputs = {key: by_fp[fp] for key, fp in fps.items()}
        return delay, backlog, busy, outputs

    def compute(self, loads: Sequence[ConnectionLoad]) -> Dict[str, DelayReport]:
        """Worst-case end-to-end delay of every connection in ``loads``.

        Raises the analysis errors of the individual servers;
        non-feed-forward shared-port graphs go through the fixed-point
        iteration, which raises :class:`FixedPointDivergenceError` when no
        stable bound exists within the configured iteration cap.
        """
        reports, _ = self.compute_with_resources(loads)
        return reports

    def compute_with_resources(
        self, loads: Sequence[ConnectionLoad]
    ) -> Tuple[Dict[str, DelayReport], ResourceUsage]:
        """Like :meth:`compute`, also returning per-resource usage figures
        (port backlogs/busy intervals) needed for buffer dimensioning."""
        states = []
        for load in loads:
            stages, runs = self._chain_for(load)
            states.append(
                _ConnState(
                    load=load,
                    stages=stages,
                    runs=runs,
                    envelope=self.source_envelope(load.spec),
                )
            )
        # Which connections traverse each shared port?
        traversers: Dict[str, List[_ConnState]] = {}
        for st in states:
            for stage in st.stages:
                if isinstance(stage, SharedStage):
                    traversers.setdefault(stage.port.name, []).append(st)

        port_backlogs: Dict[str, float] = {}
        port_busy: Dict[str, float] = {}
        port_delays: Dict[str, float] = {}
        port_inputs: Dict[str, Dict[str, Curve]] = {}

        # Event-driven worklist: each connection advances through dedicated
        # runs until it lands on a shared port; a port is analyzed the
        # moment its last traverser lands (the feed-forward condition), and
        # its members then advance further.  O(chain hops) total, instead
        # of rescanning every pending connection per round.
        landed: Dict[str, int] = {}
        ready: List[str] = []
        remaining = len(states)

        def _land(st: "_ConnState") -> None:
            nonlocal remaining
            self._advance_dedicated(st)
            if st.idx < len(st.stages):
                name = st.stages[st.idx].port.name
                count = landed.get(name, 0) + 1
                landed[name] = count
                if count == len(traversers[name]):
                    ready.append(name)
            else:
                remaining -= 1

        for st in states:
            _land(st)
        if self.analysis.force_fixed_point:
            # Test knob: leave every port to the fixed-point solver so its
            # results can be asserted bit-identical to the worklist's.
            ready.clear()
        while ready:
            port_name = ready.pop()
            group = traversers[port_name]
            stage = group[0].stages[group[0].idx]
            envelopes = {id(g): g.envelope for g in group}
            delay, backlog, busy, outputs = self._analyze_port_cached(
                stage.port, envelopes
            )
            port_backlogs[port_name] = backlog
            port_busy[port_name] = busy
            port_delays[port_name] = delay
            port_inputs[port_name] = {
                g.load.spec.conn_id: g.envelope for g in group
            }
            for g in group:
                g.total += delay
                g.hops.append((stage.name, delay))
                # Port outputs come back tidied from the cache.
                g.envelope = outputs[id(g)]
                g.idx += 1
            for g in group:
                _land(g)
        if remaining:
            # Not feed-forward (or force_fixed_point): the stuck
            # connections' remaining ports form cyclic mutual dependencies.
            self._solve_fixed_point(
                states, port_backlogs, port_busy, port_delays, port_inputs
            )

        reports = {
            st.load.spec.conn_id: DelayReport(
                conn_id=st.load.spec.conn_id,
                total_delay=st.total,
                per_hop=tuple(st.hops),
                output=st.envelope,
                per_hop_backlog=tuple(st.hop_backlogs),
            )
            for st in states
        }
        usage = ResourceUsage(
            port_backlogs=port_backlogs,
            port_busy_intervals=port_busy,
            port_delays=port_delays,
            port_inputs=port_inputs,
        )
        return reports, usage

    # ------------------------------------------------------------------
    # Cyclic interference: monotone fixed-point iteration
    # ------------------------------------------------------------------

    def _port_output(self, envelope: Curve, rate: float, shift: float) -> Curve:
        """A member's envelope after a shared port, given the port's shift.

        Must stay the exact expression :meth:`_analyze_port_cached` uses for
        worklist-resolved ports, so fixed-point results on feed-forward
        topologies are bit-identical to the chain analysis.
        """
        return self._tidy(envelope.shift_left(shift).minimum(Curve.affine(0.0, rate)))

    def _solve_fixed_point(
        self,
        states: List["_ConnState"],
        port_backlogs: Dict[str, float],
        port_busy: Dict[str, float],
        port_delays: Dict[str, float],
        port_inputs: Dict[str, Dict[str, Curve]],
    ) -> None:
        """Resolve the stuck connections' ports by fixed-point iteration.

        Every stuck connection is parked at a shared port the worklist could
        not order; every port at or after a stuck connection's position is
        necessarily unresolved (a port is analyzed only when *all* its
        traversers land, so none of its traversers can have passed it).  The
        iteration assumes a quantized output shift per unresolved port
        (starting at zero, the optimistic floor), re-propagates each stuck
        envelope through its remaining chain under those shifts, recomputes
        every port's delay from the collected entrance envelopes, and
        repeats until the shift vector is exactly the one it assumed —
        self-consistency on the ``output_delay_quantum`` lattice.  The
        shift map is monotone non-decreasing (larger shifts produce
        pointwise-larger envelopes, hence larger delays), so the iterates
        climb the lattice and either repeat (converged) or exceed the
        iteration cap (:class:`FixedPointDivergenceError`; no stable bound).
        """
        stuck = [st for st in states if st.idx < len(st.stages)]
        ports: Dict[str, OutputPortServer] = {}
        for st in stuck:
            for stage in st.stages[st.idx :]:
                if isinstance(stage, SharedStage):
                    ports[stage.name] = stage.port
        if not ports:
            raise CyclicDependencyError(
                "stuck connections with no unresolved shared port: "
                f"{sorted(st.load.spec.conn_id for st in stuck)}"
            )
        quantum = self.analysis.output_delay_quantum
        shifts: Dict[str, float] = {name: 0.0 for name in ports}
        results: Dict[str, Tuple[float, float, float]] = {}
        inputs: Dict[str, Dict[str, Curve]] = {}
        for _ in range(self.analysis.fixed_point_max_iterations):
            inputs = {name: {} for name in ports}
            for st in stuck:
                walker = _ConnState(
                    load=st.load,
                    stages=st.stages,
                    runs=st.runs,
                    envelope=st.envelope,
                    idx=st.idx,
                )
                while walker.idx < len(walker.stages):
                    stage = walker.stages[walker.idx]
                    if isinstance(stage, DedicatedStage):
                        self._advance_dedicated(walker)
                    else:
                        inputs[stage.name][st.load.spec.conn_id] = walker.envelope
                        walker.envelope = self._port_output(
                            walker.envelope,
                            stage.port.service_rate,
                            shifts[stage.name],
                        )
                        walker.idx += 1
            new_shifts: Dict[str, float] = {}
            for name in sorted(ports):
                delay, backlog, busy, shift = _analyze_port(
                    ports[name],
                    inputs[name],
                    delay_quantum=quantum,
                    coarsen_segments=self.analysis.coarsen_segments,
                )
                results[name] = (delay, backlog, busy)
                new_shifts[name] = shift
            converged = _shifts_converged(
                shifts, new_shifts, quantum, self.analysis.fixed_point_rtol
            )
            shifts = new_shifts
            if converged:
                break
        else:
            raise FixedPointDivergenceError(
                "cyclic-interference fixed point did not converge within "
                f"{self.analysis.fixed_point_max_iterations} iterations over "
                f"ports {sorted(ports)}"
            )
        # Shifts are self-consistent: the last round's inputs were produced
        # under exactly the shifts the ports' analyses returned.  Replay the
        # converged propagation into the real states and the usage maps.
        for st in stuck:
            while st.idx < len(st.stages):
                stage = st.stages[st.idx]
                if isinstance(stage, DedicatedStage):
                    self._advance_dedicated(st)
                else:
                    delay, _, _ = results[stage.name]
                    st.total += delay
                    st.hops.append((stage.name, delay))
                    st.envelope = self._port_output(
                        st.envelope, stage.port.service_rate, shifts[stage.name]
                    )
                    st.idx += 1
        for name in ports:
            delay, backlog, busy = results[name]
            port_delays[name] = delay
            port_backlogs[name] = backlog
            port_busy[name] = busy
            port_inputs[name] = dict(inputs[name])


@dataclasses.dataclass
class _ConnState:
    load: ConnectionLoad
    stages: List[Stage]
    runs: Dict[int, tuple]
    envelope: Curve
    idx: int = 0
    total: float = 0.0
    hops: List[Tuple[str, float]] = dataclasses.field(default_factory=list)
    hop_backlogs: List[Tuple[str, float]] = dataclasses.field(default_factory=list)


def _shifts_converged(
    old: Dict[str, float],
    new: Dict[str, float],
    quantum: float,
    rtol: float,
) -> bool:
    """The fixed-point convergence criterion.

    With a positive ``output_delay_quantum`` both vectors live on the same
    discrete lattice, so convergence is *exact repetition* — the map is
    monotone non-decreasing, hence a repeat is the least fixed point above
    the zero start.  With a zero quantum shifts are continuous and exact
    repetition may never occur; a relative-change test stands in.
    """
    if quantum > 0:
        return all(new[name] == old[name] for name in new)
    return all(
        abs(new[name] - old[name]) <= rtol * max(abs(new[name]), 1e-30)
        for name in new
    )


def _analyze_port(
    port: OutputPortServer,
    envelopes: Dict[int, Curve],
    delay_quantum: float = 0.0,
    coarsen_segments: Optional[int] = None,
):
    """Analyze a FIFO port once for all its participants.

    Returns ``(delay, backlog, busy_interval, shift)``.  Every participant
    shares the aggregate FIFO delay bound; its output envelope is its input
    advanced by ``shift`` (the delay rounded up to ``delay_quantum``, which
    is conservative) capped at link rate — computed by the caller so equal
    envelopes can share one output.

    With ``coarsen_segments`` set, the *aggregate* arrival envelope is
    conservatively rounded up to that many segments before the deviation
    analysis — the per-connection inputs and outputs are untouched.
    """
    from repro.envelopes.curve import sum_curves
    from repro.envelopes.operations import (
        busy_interval,
        horizontal_deviation,
        vertical_deviation,
    )
    from repro.errors import BufferOverflowError, UnstableSystemError
    import math

    aggregate = sum_curves(envelopes.values())
    if coarsen_segments is not None and len(aggregate.xs) > coarsen_segments:
        aggregate = aggregate.coarsen(coarsen_segments, direction="upper")
    service = port.service_curve()
    if aggregate.final_slope > port.service_rate * (1 + 1e-12):
        raise UnstableSystemError(
            f"{port.name}: aggregate rate {aggregate.final_slope:.6g} b/s "
            f"exceeds link payload rate {port.service_rate:.6g} b/s"
        )
    busy = busy_interval(aggregate, service)
    if math.isinf(busy):
        raise UnstableSystemError(f"{port.name}: unbounded busy period")
    backlog = vertical_deviation(aggregate, service, t_max=busy)
    if backlog > port.buffer_bits + 1e-9:
        raise BufferOverflowError(
            f"{port.name}: worst-case backlog {backlog:.6g} bits exceeds "
            f"buffer {port.buffer_bits:.6g} bits"
        )
    delay = horizontal_deviation(aggregate, service, t_max=busy)
    if math.isinf(delay):
        raise UnstableSystemError(f"{port.name}: unbounded delay")
    if delay_quantum > 0 and delay > 0:
        shift = math.ceil(delay / delay_quantum - 1e-12) * delay_quantum
    else:
        shift = delay
    return delay, backlog, busy, shift
