"""Buffer dimensioning for an admitted connection set.

The paper folds buffer feasibility into the delay analysis ("the buffer
space has been implicitly taken into account during the computation of the
worst case delays", Section 5.1): Theorem 1 returns an infinite delay when
the MAC backlog ``F`` exceeds the buffer ``S``, and the output-port
analysis does the same for port buffers.

This module turns the same quantities into a *provisioning* answer: given a
network state, how much buffer must each MAC queue and each ATM output port
actually have for the admitted set to be safe?  Operators use it to size
interface-device memory; the tests use it to cross-check the implicit
feasibility conditions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import AnalysisConfig, NetworkConfig
from repro.core.delay import ConnectionLoad, DelayAnalyzer
from repro.network.topology import NetworkTopology


@dataclasses.dataclass(frozen=True)
class BufferPlan:
    """Worst-case buffer requirements (bits) for one network state."""

    #: MAC transmit queues, keyed by the hop name (includes the conn id).
    mac_buffers: Dict[str, float]
    #: ATM output ports (shared), keyed by port name.
    port_buffers: Dict[str, float]
    #: Frame (dis)assembly staging at the interface devices.
    conversion_buffers: Dict[str, float]

    @property
    def total_bits(self) -> float:
        return (
            sum(self.mac_buffers.values())
            + sum(self.port_buffers.values())
            + sum(self.conversion_buffers.values())
        )

    def worst_port(self) -> Optional[Tuple[str, float]]:
        """The most demanding output port, or None if no port is used."""
        if not self.port_buffers:
            return None
        name = max(self.port_buffers, key=self.port_buffers.get)
        return name, self.port_buffers[name]

    def format_report(self) -> str:
        lines: List[str] = ["Buffer dimensioning report (worst case, bits)"]
        lines.append("  MAC transmit queues:")
        for name, bits in sorted(self.mac_buffers.items()):
            lines.append(f"    {name:44s} {bits:12,.0f}")
        lines.append("  ATM output ports (aggregate):")
        for name, bits in sorted(self.port_buffers.items()):
            lines.append(f"    {name:44s} {bits:12,.0f}")
        lines.append("  Frame conversion staging:")
        for name, bits in sorted(self.conversion_buffers.items()):
            lines.append(f"    {name:44s} {bits:12,.0f}")
        lines.append(f"  TOTAL: {self.total_bits:,.0f} bits")
        return "\n".join(lines)


def dimension_buffers(
    topology: NetworkTopology,
    loads: Sequence[ConnectionLoad],
    network_config: Optional[NetworkConfig] = None,
    analysis_config: Optional[AnalysisConfig] = None,
    analyzer: Optional[DelayAnalyzer] = None,
) -> BufferPlan:
    """Compute the buffer requirements for ``loads`` on ``topology``.

    MAC and conversion figures come from the per-connection dedicated-stage
    backlogs; port figures from the shared aggregate busy-period analysis.
    """
    if analyzer is None:
        analyzer = DelayAnalyzer(topology, network_config, analysis_config)
    reports, usage = analyzer.compute_with_resources(loads)

    mac: Dict[str, float] = {}
    conversion: Dict[str, float] = {}
    for report in reports.values():
        for name, backlog in report.per_hop_backlog:
            if name.startswith("fddi-mac"):
                mac[name] = max(mac.get(name, 0.0), backlog)
            elif "frame-cell" in name or "cell-frame" in name:
                conversion[name] = max(conversion.get(name, 0.0), backlog)
    return BufferPlan(
        mac_buffers=mac,
        port_buffers=dict(usage.port_backlogs),
        conversion_buffers=conversion,
    )
