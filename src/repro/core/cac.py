"""The connection admission control algorithm of Section 5.3.

Upon a request, the controller:

1. computes the maximum available synchronous bandwidths
   ``(H_S^max_avai, H_R^max_avai)`` from the two rings' ledgers (Eqs. 26/27);
2. rejects immediately if even the maximum allocation cannot satisfy every
   deadline — requesting *and* existing connections (Eqs. 24/25, Theorem 4);
3. binary-searches the allocation segment for the minimum needed allocation
   ``(H^min_need)`` (Step 3) and the maximum useful allocation
   ``(H^max_need)`` — the smallest point whose delays already equal those at
   the maximum available allocation (Eqs. 31-33, Step 4);
4. grants ``H = H^min_need + beta * (H^max_need - H^min_need)`` (Eqs. 35/36)
   and records the allocation on both rings.

The actual choice of point is delegated to an
:class:`repro.core.policies.AllocationPolicy` so baselines can share all the
surrounding machinery.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.config import AnalysisConfig, CACConfig, NetworkConfig
from repro.core.delay import ConnectionLoad, DelayAnalyzer, DelayReport
from repro.core.incremental import IncrementalDelayEngine
from repro.core.policies import AllocationContext, AllocationPolicy, BetaPolicy
from repro.errors import (
    BufferOverflowError,
    ConfigurationError,
    UnstableSystemError,
)
from repro.fddi.timed_token import min_sync_allocation
from repro.network.connection import ConnectionRecord, ConnectionSpec
from repro.network.routing import Route, compute_route
from repro.network.topology import NetworkTopology


@dataclasses.dataclass(frozen=True)
class AdmissionResult:
    """The outcome of one admission request."""

    admitted: bool
    reason: str
    record: Optional[ConnectionRecord] = None
    #: Diagnostics (populated when the searches ran).
    h_min_need: Optional[Tuple[float, float]] = None
    h_max_need: Optional[Tuple[float, float]] = None
    h_max_avail: Optional[Tuple[float, float]] = None
    delay_bound: Optional[float] = None
    #: Distinct feasibility probes the decision evaluated (0 when the
    #: request was refused before any delay analysis ran).
    n_probes: int = 0


class AdmissionController:
    """Stateful CAC over one network: admits, tracks and releases connections."""

    def __init__(
        self,
        topology: NetworkTopology,
        network_config: Optional[NetworkConfig] = None,
        cac_config: Optional[CACConfig] = None,
        policy: Optional[AllocationPolicy] = None,
    ) -> None:
        self.topology = topology
        self.network_config = network_config or NetworkConfig()
        self.config = cac_config or CACConfig()
        self.policy = policy if policy is not None else BetaPolicy(self.config.beta)
        self.analyzer = DelayAnalyzer(
            topology, self.network_config, self.config.analysis
        )
        #: Interference-partition cache over the analyzer (None = every
        #: evaluation recomputes the whole active set from scratch).
        self.engine: Optional[IncrementalDelayEngine] = (
            IncrementalDelayEngine(self.analyzer)
            if self.config.incremental
            else None
        )
        self.connections: Dict[str, ConnectionRecord] = {}
        #: Cached ConnectionLoad views of the active set (rebuilt lazily
        #: after admissions/releases; a binary search issues dozens of
        #: probes against an unchanged active set).
        self._active_loads: Optional[List[ConnectionLoad]] = None
        #: Running counters for admission-probability measurements.
        self.n_requests = 0
        self.n_admitted = 0
        #: Audit trail of every decision, newest last (bounded length).
        self.history: List[Tuple[str, AdmissionResult]] = []
        self.history_limit = 10_000

    # ------------------------------------------------------------------
    # Delay evaluation helpers
    # ------------------------------------------------------------------

    def _loads_with(
        self, candidate: Optional[ConnectionLoad]
    ) -> List[ConnectionLoad]:
        base = self._active_loads
        if base is None:
            base = [
                ConnectionLoad(rec.spec, rec.route, rec.h_source, rec.h_dest)
                for rec in self.connections.values()
            ]
            self._active_loads = base
        if candidate is not None:
            return base + [candidate]
        return list(base)

    def evaluate(
        self, candidate: Optional[ConnectionLoad]
    ) -> Optional[Dict[str, DelayReport]]:
        """Delays of all connections (plus ``candidate``), or None if any
        stage is unstable / overflows a buffer (infinite worst-case delay)."""
        loads = self._loads_with(candidate)
        try:
            if self.engine is not None:
                return self.engine.compute(loads)
            return self.analyzer.compute(loads)
        except (UnstableSystemError, BufferOverflowError):
            return None

    def _deadline_of(self, conn_id: str, candidate: Optional[ConnectionLoad]):
        if candidate is not None and conn_id == candidate.spec.conn_id:
            return candidate.spec.deadline
        return self.connections[conn_id].spec.deadline

    def check_feasible(
        self, candidate: ConnectionLoad
    ) -> Optional[Dict[str, DelayReport]]:
        """Eqs. (24)/(25): every delay within its deadline, or None."""
        reports = self.evaluate(candidate)
        if reports is None:
            return None
        for conn_id, report in reports.items():
            if report.total_delay > self._deadline_of(conn_id, candidate) + 1e-12:
                return None
        return reports

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def request(self, spec: ConnectionSpec) -> AdmissionResult:
        """Run the CAC for ``spec``; on success the allocation is recorded.

        Every decision (admitted or not) is appended to :attr:`history`.
        Counting happens *after* the decision returns: a request that
        raises (duplicate id, no route, degraded topology) never reaches
        :attr:`history` and must not inflate the AP denominator either.
        """
        result = self._decide(spec)
        self.n_requests += 1
        if result.admitted:
            self.n_admitted += 1
        self.history.append((spec.conn_id, result))
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) // 2]
        return result

    def _decide(self, spec: ConnectionSpec) -> AdmissionResult:
        if spec.conn_id in self.connections:
            raise ConfigurationError(f"connection {spec.conn_id!r} already active")
        route = compute_route(self.topology, spec.source_host, spec.dest_host)
        ring_s = self.topology.rings[route.source_ring]
        ring_r = self.topology.rings[route.dest_ring]
        local = not route.crosses_backbone

        h_min_abs_s = min_sync_allocation(ring_s.bandwidth)
        h_min_abs_r = 0.0 if local else min_sync_allocation(ring_r.bandwidth)
        h_max_s = ring_s.available_sync_time
        h_max_r = 0.0 if local else ring_r.available_sync_time

        if h_max_s < h_min_abs_s or (not local and h_max_r < h_min_abs_r):
            return AdmissionResult(
                admitted=False,
                reason="no synchronous bandwidth available",
                h_max_avail=(h_max_s, h_max_r),
            )

        def load_at(h_s: float, h_r: float) -> ConnectionLoad:
            return ConnectionLoad(spec, route, h_s, h_r)

        # Step 2: feasibility at the maximum available allocation.
        reports_at_max = self.check_feasible(load_at(h_max_s, h_max_r))
        if reports_at_max is None:
            return AdmissionResult(
                admitted=False,
                reason="infeasible even at maximum available allocation",
                h_max_avail=(h_max_s, h_max_r),
                n_probes=1,
            )

        probe_cache: Dict[Tuple[float, float], object] = {}

        def probe(hs: float, hr: float):
            key = (round(hs, 10), round(hr, 10))
            if key not in probe_cache:
                probe_cache[key] = self.check_feasible(load_at(hs, hr))
            return probe_cache[key]

        ctx = AllocationContext(
            h_min_abs=(h_min_abs_s, h_min_abs_r),
            h_max_avail=(h_max_s, h_max_r),
            local=local,
            check_feasible=probe,
            reports_at_max=reports_at_max,
            config=self.config,
            long_term_rate=spec.traffic.long_term_rate,
            ring_bandwidth=ring_s.bandwidth,
            ttrt=ring_s.ttrt,
        )
        choice = self.policy.select(ctx)
        ctx.n_probes = len(probe_cache)
        n_probes = 1 + len(probe_cache)
        if choice is None:
            return AdmissionResult(
                admitted=False,
                reason="allocation policy found no acceptable point",
                h_max_avail=(h_max_s, h_max_r),
                n_probes=n_probes,
            )
        (h_s, h_r), reports = choice

        record = ConnectionRecord(
            spec=spec,
            route=route,
            h_source=h_s,
            h_dest=h_r,
            delay_bound=reports[spec.conn_id].total_delay,
        )
        # Transactional two-ring allocation: if the destination ring's
        # ledger rejects the grant, the source ring's half is rolled back
        # so a failed admission can never leak synchronous bandwidth.
        ring_s.allocate(spec.conn_id, h_s)
        if not local:
            try:
                ring_r.allocate(spec.conn_id, h_r)
            except Exception:
                ring_s.release(spec.conn_id)
                raise
        self.connections[spec.conn_id] = record
        self._active_loads = None
        # Refresh every existing record's bound under the new load.
        for conn_id, report in reports.items():
            self.connections[conn_id].delay_bound = report.total_delay
        return AdmissionResult(
            admitted=True,
            reason="admitted",
            record=record,
            h_min_need=ctx.observed_min_need,
            h_max_need=ctx.observed_max_need,
            h_max_avail=(h_max_s, h_max_r),
            delay_bound=record.delay_bound,
            n_probes=n_probes,
        )

    def restore(
        self,
        spec: ConnectionSpec,
        h_source: float,
        h_dest: float,
        *,
        route: Optional[Route] = None,
        delay_bound: Optional[float] = None,
    ) -> ConnectionRecord:
        """Re-apply a previously granted admission without re-deciding it.

        The journal-replay / snapshot-load primitive of the standing
        service (:mod:`repro.service`): the allocation was already decided
        by a past ``request()``, so restoration only re-records it — the
        ring ledgers are charged transactionally exactly as in
        :meth:`_decide`, but no feasibility search runs.  ``route`` may be
        supplied verbatim (a journaled route survives topology changes
        that would make a recomputed route diverge); otherwise the route
        is recomputed on the current topology.

        Counters, history and the survivors' delay bounds are *not*
        touched: replay drives those explicitly (see
        ``repro.service.journal``) and calls :meth:`refresh_bounds` once
        at the end instead of after every record.
        """
        if spec.conn_id in self.connections:
            raise ConfigurationError(
                f"connection {spec.conn_id!r} already active"
            )
        if route is None:
            route = compute_route(self.topology, spec.source_host, spec.dest_host)
        record = ConnectionRecord(
            spec=spec,
            route=route,
            h_source=h_source,
            h_dest=h_dest,
            delay_bound=delay_bound,
        )
        ring_s = self.topology.rings[record.route.source_ring]
        ring_s.allocate(spec.conn_id, h_source)
        if record.route.crosses_backbone:
            try:
                self.topology.rings[record.route.dest_ring].allocate(
                    spec.conn_id, h_dest
                )
            except Exception:
                ring_s.release(spec.conn_id)
                raise
        self.connections[spec.conn_id] = record
        self._active_loads = None
        return record

    def adopt_record(self, record: ConnectionRecord) -> None:
        """Take ownership of an already-allocated record.

        Shard-rebalancing primitive: the ring ledgers already hold the
        record's grant (charged by whichever controller admitted it), so
        only the membership moves.  Counterpart of :meth:`forget_record`.
        """
        if record.conn_id in self.connections:
            raise ConfigurationError(
                f"connection {record.conn_id!r} already active"
            )
        self.connections[record.conn_id] = record
        self._active_loads = None

    def forget_record(self, conn_id: str) -> ConnectionRecord:
        """Drop a record *without* touching the ring ledgers.

        The record's synchronous bandwidth stays allocated; another
        controller must :meth:`adopt_record` it (shard moves) or the
        ledgers will leak.
        """
        if conn_id not in self.connections:
            raise ConfigurationError(f"unknown connection {conn_id!r}")
        record = self.connections.pop(conn_id)
        self._active_loads = None
        return record

    def set_analysis_config(self, analysis: AnalysisConfig) -> None:
        """Swap the delay-analysis accuracy mode in place.

        The degradation ladder of :mod:`repro.service` switches between
        exact analysis and conservative coarsening without rebuilding the
        controller: the active set and the ring ledgers are untouched;
        the analyzer (and its caches) and the incremental engine are
        rebuilt under the new :class:`~repro.config.AnalysisConfig`.
        No-op when the config is unchanged.
        """
        if analysis == self.analyzer.analysis:
            return
        self.config = dataclasses.replace(self.config, analysis=analysis)
        self.analyzer = DelayAnalyzer(
            self.topology, self.network_config, analysis
        )
        self.engine = (
            IncrementalDelayEngine(self.analyzer)
            if self.config.incremental
            else None
        )

    def release(self, conn_id: str) -> ConnectionRecord:
        """Tear down a connection and free its synchronous bandwidth.

        The survivors' recorded ``delay_bound``s are refreshed: removing
        load can only tighten the fixed point, and callers that read the
        records directly (metrics, failover reports, the fault audit)
        would otherwise see the stale pre-departure bounds.
        """
        if conn_id not in self.connections:
            raise ConfigurationError(f"unknown connection {conn_id!r}")
        record = self.connections.pop(conn_id)
        self._active_loads = None
        self.topology.rings[record.route.source_ring].release(conn_id)
        if record.route.crosses_backbone:
            self.topology.rings[record.route.dest_ring].release(conn_id)
        self.refresh_bounds()
        return record

    def refresh_bounds(self) -> None:
        """Recompute every surviving record's delay bound.

        With the incremental engine this touches only the departed
        connection's interference component.  If the surviving set has no
        finite bound (cannot happen from a pure release, but a caller may
        have degraded the topology first), the stale bounds are invalidated
        rather than silently kept.
        """
        if not self.connections:
            return
        reports = self.evaluate(None)
        if reports is None:
            for rec in self.connections.values():
                rec.delay_bound = None
            return
        for conn_id, report in reports.items():
            self.connections[conn_id].delay_bound = report.total_delay

    def audit_allocations(self) -> Dict[str, float]:
        """Per-ring discrepancy: ledger total minus recorded allocations.

        Every value must be ~0; a positive entry means the ring holds
        synchronous time that no live connection accounts for (a leak), a
        negative one that a record claims more than the ledger granted.
        Used by the survivability audit after fault-injection runs.
        """
        expected: Dict[str, float] = {rid: 0.0 for rid in self.topology.rings}
        for rec in self.connections.values():
            expected[rec.route.source_ring] += rec.h_source
            if rec.route.crosses_backbone:
                expected[rec.route.dest_ring] += rec.h_dest
        return {
            rid: ring.allocated_sync_time - expected[rid]
            for rid, ring in self.topology.rings.items()
        }

    @property
    def admission_probability(self) -> float:
        """Admitted / requested so far (the paper's AP metric)."""
        if self.n_requests == 0:
            return float("nan")
        return self.n_admitted / self.n_requests

    def current_delays(self) -> Dict[str, float]:
        """Worst-case delay bound of every active connection right now."""
        reports = self.evaluate(None)
        if reports is None:
            raise UnstableSystemError(
                "current connection set has no finite delay bound"
            )
        return {cid: r.total_delay for cid, r in reports.items()}
