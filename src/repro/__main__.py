"""Operator CLI: ``python -m repro <command>``.

Commands
--------
``topology``
    Print the reference network (rings, hosts, devices, switches, links).
``demo``
    Admit a few connections and print the state report and per-hop budget.
``buffers``
    Admit the demo connections and print the buffer-dimensioning report.
``experiments ...``
    Forwards to :mod:`repro.experiments` (``figure7``, ``figure8``,
    ``validation``, ``ablation-*``, ``survivability``, ``all``).
``bench``
    Run the tracked CAC benchmarks (:mod:`repro.bench`) and write
    ``BENCH_cac.json``.
``service ...``
    Forwards to :mod:`repro.service` (``serve``, ``bench``, ``soak``,
    ``replay``) — the standing admission-control server.
``scenario ...``
    Forwards to :mod:`repro.scenario` (``generate``, ``replay``, ``fuzz``,
    ``manifest``) — unified scenario specs + differential fuzzing.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import CACConfig, NetworkConfig, build_network
from repro.core import AdmissionController, ConnectionLoad, network_state
from repro.core.buffers import dimension_buffers
from repro.network.connection import ConnectionSpec
from repro.traffic import DualPeriodicTraffic
from repro.units import MBIT, MS_PER_S, US_PER_S

DEMO_TRAFFIC = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)
DEMO_REQUESTS = [
    ("video-1", "host1-1", "host2-1", 0.090),
    ("video-2", "host2-2", "host3-1", 0.090),
    ("control", "host3-2", "host1-2", 0.070),
]


def cmd_topology(args) -> str:
    cfg = NetworkConfig(n_rings=args.rings, hosts_per_ring=args.hosts)
    topo = build_network(cfg)
    lines = [f"{topo!r}", "", "Rings:"]
    for ring in topo.rings.values():
        hosts = ", ".join(h.host_id for h in topo.hosts_on_ring(ring.ring_id))
        device = topo.device_of_ring(ring.ring_id)
        switch = topo.device_switch[device.device_id]
        lines.append(
            f"  {ring.ring_id}: TTRT {ring.ttrt * MS_PER_S:.1f} ms, "
            f"{ring.bandwidth / MBIT:.0f} Mbps | hosts: {hosts} | "
            f"bridge {device.device_id} -> {switch}"
        )
    lines.append("Backbone:")
    for a in sorted(topo.switches):
        for b in sorted(topo.switches):
            if a < b:
                link = topo.switch_link(a, b)
                lines.append(
                    f"  {a} <-> {b}: {link.rate / MBIT:.2f} Mbps "
                    f"({link.propagation_delay * US_PER_S:.0f} us)"
                )
    return "\n".join(lines)


def _demo_controller() -> AdmissionController:
    topo = build_network()
    cac = AdmissionController(topo, cac_config=CACConfig(beta=0.5))
    for cid, src, dst, deadline in DEMO_REQUESTS:
        cac.request(ConnectionSpec(cid, src, dst, DEMO_TRAFFIC, deadline))
    return cac


def cmd_demo(args) -> str:
    del args
    cac = _demo_controller()
    lines = [network_state(cac).format(), "", "Per-hop budget of video-1:"]
    loads = [
        ConnectionLoad(r.spec, r.route, r.h_source, r.h_dest)
        for r in cac.connections.values()
    ]
    report = cac.analyzer.compute(loads)["video-1"]
    for hop, delay in report.per_hop:
        lines.append(f"  {hop:40s} {delay * US_PER_S:10.1f} us")
    lines.append(f"  {'TOTAL':40s} {report.total_delay * US_PER_S:10.1f} us")
    return "\n".join(lines)


def cmd_buffers(args) -> str:
    del args
    cac = _demo_controller()
    loads = [
        ConnectionLoad(r.spec, r.route, r.h_source, r.h_dest)
        for r in cac.connections.values()
    ]
    plan = dimension_buffers(cac.topology, loads, analyzer=cac.analyzer)
    return plan.format_report()


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["experiments"]:
        # Forward verbatim (argparse's REMAINDER would swallow a leading
        # "-h"/"--quick" and reject it at this level).
        from repro.experiments.__main__ import main as experiments_main

        return experiments_main(argv[1:])
    if argv[:1] == ["bench"]:
        from repro.bench import main as bench_main

        return bench_main(argv[1:])
    if argv[:1] == ["lint"]:
        from repro.lint.__main__ import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["service"]:
        from repro.service.__main__ import main as service_main

        return service_main(argv[1:])
    if argv[:1] == ["scenario"]:
        from repro.scenario.__main__ import main as scenario_main

        return scenario_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FDDI-ATM-FDDI real-time CAC — operator utilities.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("topology", help="print the reference network")
    p_topo.add_argument("--rings", type=int, default=3)
    p_topo.add_argument("--hosts", type=int, default=4)
    p_topo.set_defaults(func=cmd_topology)

    p_demo = sub.add_parser("demo", help="admit demo connections, print state")
    p_demo.set_defaults(func=cmd_demo)

    p_buf = sub.add_parser("buffers", help="buffer dimensioning for the demo")
    p_buf.set_defaults(func=cmd_buffers)

    sub.add_parser(
        "experiments",
        help="run the paper's experiments (see repro.experiments)",
        add_help=False,
    )

    sub.add_parser(
        "bench",
        help="run the tracked CAC benchmarks (writes BENCH_cac.json)",
        add_help=False,
    )

    sub.add_parser(
        "lint",
        help="run reprolint, the domain-aware static analyzer (see repro.lint)",
        add_help=False,
    )

    sub.add_parser(
        "service",
        help="standing admission-control service (serve/bench/soak/replay)",
        add_help=False,
    )

    sub.add_parser(
        "scenario",
        help="unified scenario specs + differential fuzzing "
        "(generate/replay/fuzz/manifest)",
        add_help=False,
    )

    args = parser.parse_args(argv)
    print(args.func(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
