"""Route computation.

The paper adopts existing routing solutions (Section 3.2); here a route is
the natural one: source ring -> its interface device -> shortest backbone
path -> destination ring's device -> destination ring.  Local routes (both
hosts on the same ring) skip the backbone entirely.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.errors import RoutingError
from repro.network.topology import NetworkTopology


@dataclasses.dataclass(frozen=True)
class Route:
    """The path of a connection through the heterogeneous network.

    ``switch_path`` is empty for ring-local routes; otherwise it lists the
    backbone switches in traversal order (at least one).
    """

    source_host: str
    dest_host: str
    source_ring: str
    dest_ring: str
    source_device: Optional[str]
    dest_device: Optional[str]
    switch_path: List[str]

    @property
    def crosses_backbone(self) -> bool:
        return bool(self.switch_path)

    def __str__(self) -> str:
        if not self.crosses_backbone:
            return f"{self.source_host} -> [{self.source_ring}] -> {self.dest_host}"
        hops = " -> ".join(self.switch_path)
        return (
            f"{self.source_host} -> [{self.source_ring}] -> "
            f"{self.source_device} -> ({hops}) -> {self.dest_device} -> "
            f"[{self.dest_ring}] -> {self.dest_host}"
        )


def compute_route(
    topology: NetworkTopology, source_host: str, dest_host: str
) -> Route:
    """The route from ``source_host`` to ``dest_host``.

    Raises :class:`RoutingError` when either host is unknown, the hosts
    coincide, or no backbone path exists.
    """
    if source_host == dest_host:
        raise RoutingError("source and destination hosts must differ")
    try:
        src = topology.hosts[source_host]
    except KeyError:
        raise RoutingError(f"unknown host {source_host!r}") from None
    try:
        dst = topology.hosts[dest_host]
    except KeyError:
        raise RoutingError(f"unknown host {dest_host!r}") from None

    if src.ring_id == dst.ring_id:
        return Route(
            source_host=source_host,
            dest_host=dest_host,
            source_ring=src.ring_id,
            dest_ring=dst.ring_id,
            source_device=None,
            dest_device=None,
            switch_path=[],
        )

    src_device = topology.device_of_ring(src.ring_id)
    dst_device = topology.device_of_ring(dst.ring_id)
    for device in (src_device, dst_device):
        if topology.is_node_failed(device.device_id):
            raise RoutingError(
                f"interface device {device.device_id!r} is down"
            )
    src_switch = topology.device_switch[src_device.device_id]
    dst_switch = topology.device_switch[dst_device.device_id]
    path = topology.backbone_path(src_switch, dst_switch)
    return Route(
        source_host=source_host,
        dest_host=dest_host,
        source_ring=src.ring_id,
        dest_ring=dst.ring_id,
        source_device=src_device.device_id,
        dest_device=dst_device.device_id,
        switch_path=path,
    )
