"""Network model: topology, routing, and connection objects."""

from repro.network.topology import Host, NetworkTopology
from repro.network.routing import Route, compute_route
from repro.network.connection import ConnectionRecord, ConnectionSpec

__all__ = [
    "ConnectionRecord",
    "ConnectionSpec",
    "Host",
    "NetworkTopology",
    "Route",
    "compute_route",
]
