"""Connection objects: the request spec and the admitted record."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.network.routing import Route
from repro.traffic.descriptor import TrafficDescriptor


@dataclasses.dataclass(frozen=True)
class ConnectionSpec:
    """A connection-establishment request (the application's contract offer).

    Attributes
    ----------
    conn_id:
        Unique identifier (the paper's ``M_{i,j}``).
    source_host, dest_host:
        Endpoint host ids.
    traffic:
        The source traffic descriptor (Section 4.2).
    deadline:
        ``D`` — the worst-case end-to-end delay bound requested, seconds.
    """

    conn_id: str
    source_host: str
    dest_host: str
    traffic: TrafficDescriptor
    deadline: float

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.source_host == self.dest_host:
            raise ValueError("source and destination must differ")


@dataclasses.dataclass
class ConnectionRecord:
    """An admitted connection and the resources the CAC granted it."""

    spec: ConnectionSpec
    route: Route
    #: Synchronous time allocated on the source ring (``H_S``), seconds.
    h_source: float
    #: Synchronous time allocated on the destination ring (``H_R``), seconds.
    h_dest: float
    #: The end-to-end worst-case delay bound at admission time, seconds.
    delay_bound: Optional[float] = None

    @property
    def conn_id(self) -> str:
        return self.spec.conn_id

    @property
    def slack(self) -> Optional[float]:
        """Deadline minus delay bound (None until a bound is computed)."""
        if self.delay_bound is None:
            return None
        return self.spec.deadline - self.delay_bound
