"""Network topology: FDDI rings, hosts, interface devices, ATM backbone.

The :class:`NetworkTopology` is the static description of an ABHN
(Figure 1): every FDDI ring is bridged to the ATM backbone by exactly one
interface device, and the backbone switches are joined by point-to-point
links (one directed link — and hence one output port — per direction).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Tuple

import networkx as nx

from repro.atm.link import AtmLink
from repro.atm.output_port import OutputPortServer
from repro.atm.switch import AtmSwitch
from repro.errors import TopologyError
from repro.fddi.ring import FDDIRing
from repro.interface_device.device import InterfaceDevice


@dataclasses.dataclass(frozen=True)
class Host:
    """A host attached to one FDDI ring."""

    host_id: str
    ring_id: str


class NetworkTopology:
    """The static FDDI-ATM-FDDI network description.

    Build order: add rings, then hosts, then switches, then interface
    devices (attaching each to a switch), then inter-switch links.
    """

    def __init__(self) -> None:
        self.rings: Dict[str, FDDIRing] = {}
        self.hosts: Dict[str, Host] = {}
        #: ring_id -> hosts in attachment order (kept by add_host so
        #: hosts_on_ring is O(ring population), not O(all hosts)).
        self._ring_hosts: Dict[str, List[Host]] = {}
        self.switches: Dict[str, AtmSwitch] = {}
        self.devices: Dict[str, InterfaceDevice] = {}
        #: ring_id -> device_id (exactly one bridge per ring).
        self.ring_device: Dict[str, str] = {}
        #: device_id -> switch_id its uplink connects to.
        self.device_switch: Dict[str, str] = {}
        #: (switch_id, switch_id) -> AtmLink for each directed backbone link.
        self._switch_links: Dict[Tuple[str, str], AtmLink] = {}
        #: (switch_id, device_id) -> AtmLink for each downlink.
        self._downlinks: Dict[Tuple[str, str], AtmLink] = {}
        self._backbone = nx.DiGraph()
        #: Directed backbone links currently failed (routing avoids them).
        self._failed_links: set = set()
        #: Switches / interface devices currently down (routing avoids them).
        self._failed_nodes: set = set()
        #: Monotonic mutation counter, bumped on every structural edit or
        #: fail/restore.  Derived caches (e.g. the incremental delay
        #: engine) compare it to decide whether their snapshots are stale.
        self.change_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_ring(self, ring: FDDIRing) -> FDDIRing:
        if ring.ring_id in self.rings:
            raise TopologyError(f"ring {ring.ring_id!r} already exists")
        self.rings[ring.ring_id] = ring
        self._ring_hosts[ring.ring_id] = []
        self.change_count += 1
        return ring

    def add_host(self, host_id: str, ring_id: str) -> Host:
        if host_id in self.hosts:
            raise TopologyError(f"host {host_id!r} already exists")
        if ring_id not in self.rings:
            raise TopologyError(f"unknown ring {ring_id!r}")
        host = Host(host_id, ring_id)
        self.hosts[host_id] = host
        self._ring_hosts[ring_id].append(host)
        self.change_count += 1
        return host

    def add_switch(self, switch: AtmSwitch) -> AtmSwitch:
        if switch.switch_id in self.switches:
            raise TopologyError(f"switch {switch.switch_id!r} already exists")
        self.switches[switch.switch_id] = switch
        self._backbone.add_node(switch.switch_id)
        self.change_count += 1
        return switch

    def add_device(
        self,
        device: InterfaceDevice,
        switch_id: str,
        uplink_rate: float,
        link_propagation: float = 0.0,
        downlink_buffer_bits: float = math.inf,
    ) -> InterfaceDevice:
        """Attach ``device`` to its ring and to ``switch_id``.

        Creates both directed links: the device's uplink into the switch
        (output port owned by the device) and the switch's downlink to the
        device (output port owned by the switch).
        """
        if device.device_id in self.devices:
            raise TopologyError(f"device {device.device_id!r} already exists")
        if device.ring_id not in self.rings:
            raise TopologyError(f"unknown ring {device.ring_id!r}")
        if device.ring_id in self.ring_device:
            raise TopologyError(f"ring {device.ring_id!r} already has a device")
        if switch_id not in self.switches:
            raise TopologyError(f"unknown switch {switch_id!r}")
        uplink = AtmLink(
            f"{device.device_id}->{switch_id}",
            rate=uplink_rate,
            propagation_delay=link_propagation,
        )
        device.attach_uplink(uplink)
        downlink = AtmLink(
            f"{switch_id}->{device.device_id}",
            rate=uplink_rate,
            propagation_delay=link_propagation,
        )
        self.switches[switch_id].attach_link(downlink)
        self.devices[device.device_id] = device
        self.ring_device[device.ring_id] = device.device_id
        self.device_switch[device.device_id] = switch_id
        self._downlinks[(switch_id, device.device_id)] = downlink
        self.change_count += 1
        return device

    def connect_switches(
        self,
        a: str,
        b: str,
        rate: float,
        propagation_delay: float = 0.0,
        bidirectional: bool = True,
    ) -> None:
        """Create the directed link(s) between two backbone switches.

        Transactional: every direction is validated before any state is
        touched, so a duplicate second direction cannot leave the first
        half-attached (port created, ``change_count`` bumped, edge added).
        """
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for src, dst in pairs:
            if src not in self.switches or dst not in self.switches:
                raise TopologyError(f"unknown switch in pair ({src!r}, {dst!r})")
            if (src, dst) in self._switch_links:
                raise TopologyError(f"link {src}->{dst} already exists")
        for src, dst in pairs:
            link = AtmLink(
                f"{src}->{dst}", rate=rate, propagation_delay=propagation_delay
            )
            self.switches[src].attach_link(link)
            self._switch_links[(src, dst)] = link
            self.change_count += 1
            self._backbone.add_edge(src, dst, weight=propagation_delay + 1.0)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def device_of_ring(self, ring_id: str) -> InterfaceDevice:
        try:
            return self.devices[self.ring_device[ring_id]]
        except KeyError:
            raise TopologyError(f"ring {ring_id!r} has no interface device") from None

    def switch_link(self, a: str, b: str) -> AtmLink:
        try:
            return self._switch_links[(a, b)]
        except KeyError:
            raise TopologyError(f"no backbone link {a}->{b}") from None

    def downlink(self, switch_id: str, device_id: str) -> AtmLink:
        try:
            return self._downlinks[(switch_id, device_id)]
        except KeyError:
            raise TopologyError(f"no downlink {switch_id}->{device_id}") from None

    def switch_port(self, a: str, b: str) -> OutputPortServer:
        """Output port on switch ``a`` feeding the link to switch ``b``."""
        return self.switches[a].port(self.switch_link(a, b).link_id)

    def downlink_port(self, switch_id: str, device_id: str) -> OutputPortServer:
        """Output port on ``switch_id`` feeding the downlink to the device."""
        return self.switches[switch_id].port(
            self.downlink(switch_id, device_id).link_id
        )

    # ------------------------------------------------------------------
    # Failure handling (fault tolerance, after ref [4])
    # ------------------------------------------------------------------

    def fail_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Mark the backbone link ``a -> b`` (and back) as failed.

        Failing an unknown link raises :class:`TopologyError`; failing a
        link that is already down is an idempotent no-op (a fault injector
        may fire a link failure while the link's endpoint switch is down).
        Routing refuses to traverse failed links; already-established
        connections are the caller's problem (see
        :class:`repro.core.failover.FailoverManager`).
        """
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for src, dst in pairs:
            if (src, dst) not in self._switch_links:
                raise TopologyError(f"no backbone link {src}->{dst}")
        for src, dst in pairs:
            if (src, dst) in self._failed_links:
                continue
            self._failed_links.add((src, dst))
            self.change_count += 1
            if self._backbone.has_edge(src, dst):
                self._backbone.remove_edge(src, dst)

    def restore_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Bring a failed backbone link back into service.

        Restoring an unknown link raises :class:`TopologyError`; restoring
        a link that is not failed is an idempotent no-op.  The routing edge
        only reappears once both endpoint switches are up as well.
        """
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for src, dst in pairs:
            if (src, dst) not in self._switch_links:
                raise TopologyError(f"no backbone link {src}->{dst}")
        for src, dst in pairs:
            if (src, dst) not in self._failed_links:
                continue
            self._failed_links.discard((src, dst))
            self.change_count += 1
            if src not in self._failed_nodes and dst not in self._failed_nodes:
                link = self._switch_links[(src, dst)]
                self._backbone.add_edge(
                    src, dst, weight=link.propagation_delay + 1.0
                )

    def is_link_failed(self, a: str, b: str) -> bool:
        return (a, b) in self._failed_links

    @property
    def failed_links(self) -> List[Tuple[str, str]]:
        return sorted(self._failed_links)

    def fail_node(self, node_id: str) -> None:
        """Take a backbone switch or interface device out of service.

        A failed switch removes every incident routing edge (its links stay
        merely *unreachable*, not failed, and come back with the switch); a
        failed device cuts its ring off from the backbone.  Failing an
        unknown node raises :class:`TopologyError`; failing a node that is
        already down is an idempotent no-op.
        """
        if node_id not in self.switches and node_id not in self.devices:
            raise TopologyError(f"unknown node {node_id!r}")
        if node_id in self._failed_nodes:
            return
        self._failed_nodes.add(node_id)
        self.change_count += 1
        if node_id in self.switches:
            for src, dst in self._switch_links:
                if node_id in (src, dst) and self._backbone.has_edge(src, dst):
                    self._backbone.remove_edge(src, dst)

    def restore_node(self, node_id: str) -> None:
        """Bring a failed switch or device back into service (idempotent).

        Incident routing edges reappear unless the link itself is failed or
        the far endpoint is still down.
        """
        if node_id not in self.switches and node_id not in self.devices:
            raise TopologyError(f"unknown node {node_id!r}")
        if node_id not in self._failed_nodes:
            return
        self._failed_nodes.discard(node_id)
        self.change_count += 1
        if node_id in self.switches:
            for (src, dst), link in self._switch_links.items():
                if (
                    node_id in (src, dst)
                    and (src, dst) not in self._failed_links
                    and src not in self._failed_nodes
                    and dst not in self._failed_nodes
                ):
                    self._backbone.add_edge(
                        src, dst, weight=link.propagation_delay + 1.0
                    )

    def is_node_failed(self, node_id: str) -> bool:
        return node_id in self._failed_nodes

    @property
    def failed_nodes(self) -> List[str]:
        return sorted(self._failed_nodes)

    def backbone_path(self, src_switch: str, dst_switch: str) -> List[str]:
        """Shortest backbone path (list of switch ids, inclusive)."""
        for sw in (src_switch, dst_switch):
            if sw in self._failed_nodes:
                raise TopologyError(f"backbone switch {sw!r} is down")
        if src_switch == dst_switch:
            return [src_switch]
        try:
            return nx.shortest_path(
                self._backbone, src_switch, dst_switch, weight="weight"
            )
        except nx.NetworkXNoPath:
            raise TopologyError(
                f"no backbone path from {src_switch} to {dst_switch}"
            ) from None

    def hosts_on_ring(self, ring_id: str) -> List[Host]:
        if ring_id not in self.rings:
            return []
        return list(self._ring_hosts[ring_id])

    def backbone_capacity(self) -> float:
        """Aggregate undirected backbone capacity, bits/second.

        Each bidirectional switch pair counts once (directed link rates
        averaged, so asymmetric-rate pairs still contribute their mean).
        Single-switch topologies have no inter-switch links; there the
        shared backbone resources are the device uplinks, each crossed by
        one side of a connection, so half the aggregate uplink rate stands
        in.
        """
        undirected: Dict[frozenset, List[float]] = {}
        for (src, dst), link in self._switch_links.items():
            undirected.setdefault(frozenset((src, dst)), []).append(link.rate)
        total = sum(sum(rates) / len(rates) for rates in undirected.values())
        if total > 0.0:
            return total
        uplinks = sum(d.uplink.rate for d in self.devices.values())
        return uplinks / 2.0

    def validate(self) -> None:
        """Check structural completeness (every ring bridged, backbone connected)."""
        for ring_id in self.rings:
            if ring_id not in self.ring_device:
                raise TopologyError(f"ring {ring_id!r} has no interface device")
        if len(self.switches) > 1 and not nx.is_strongly_connected(self._backbone):
            raise TopologyError("backbone is not strongly connected")

    def __repr__(self) -> str:
        return (
            f"NetworkTopology({len(self.rings)} rings, {len(self.hosts)} hosts, "
            f"{len(self.switches)} switches)"
        )
