"""The classic one-period traffic model: ``C`` bits every ``P`` seconds."""

from __future__ import annotations

import dataclasses
import math

from repro.envelopes.curve import Curve
from repro.envelopes.staircase import periodic_burst_staircase
from repro.errors import ConfigurationError
from repro.traffic.descriptor import TrafficDescriptor


@dataclasses.dataclass(frozen=True)
class PeriodicTraffic(TrafficDescriptor):
    """A periodic source delivering at most ``c`` bits in any ``p`` window.

    This is the single-period special case of the paper's dual-periodic
    model; it is also the standard synchronous-message model of the FDDI
    literature (refs [1, 11]).
    """

    c: float
    p: float
    peak: float = math.inf

    def __post_init__(self) -> None:
        if self.c <= 0:
            raise ConfigurationError("message size c must be positive")
        if self.p <= 0:
            raise ConfigurationError("period p must be positive")
        if self.peak <= 0:
            raise ConfigurationError("peak rate must be positive")

    @property
    def long_term_rate(self) -> float:
        return self.c / self.p

    @property
    def peak_rate(self) -> float:
        return self.peak

    def envelope(self, horizon: float) -> Curve:
        n = max(1, min(4096, int(math.ceil(horizon / self.p)) + 1))
        return periodic_burst_staircase(
            self.c, self.p, n_periods=n, peak_rate=self.peak
        )

    def describe(self) -> str:
        return f"Periodic(C={self.c:.3g}b / P={self.p:.3g}s)"
