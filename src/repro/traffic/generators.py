"""Random workload generation for the simulation experiments.

The paper's evaluation draws connection requests with dual-periodic source
traffic and a deadline; the exact distributions are not published, so the
generator exposes every knob (documented defaults live in
:mod:`repro.config`).  All randomness flows through an injected
``random.Random`` so simulations are reproducible.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Tuple

from repro.errors import ConfigurationError
from repro.traffic.dual_periodic import DualPeriodicTraffic


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Distribution of a randomly drawn real-time connection request.

    The source is dual-periodic with outer budget ``c1`` per ``p1`` and inner
    budget ``c2`` per ``p2``; each request scales ``c1``/``c2`` by a uniform
    jitter in ``[1 - jitter, 1 + jitter]``.  The deadline is drawn uniformly
    from ``[deadline_min, deadline_max]``.
    """

    c1: float
    p1: float
    c2: float
    p2: float
    deadline_min: float
    deadline_max: float
    jitter: float = 0.0
    peak: float = float("inf")

    def __post_init__(self) -> None:
        if not (0.0 <= self.jitter < 1.0):
            raise ConfigurationError("jitter must be in [0, 1)")
        if self.deadline_min <= 0 or self.deadline_max < self.deadline_min:
            raise ConfigurationError("deadline range must be positive and ordered")
        # Delegate traffic-parameter validation to the descriptor itself.
        DualPeriodicTraffic(self.c1, self.p1, self.c2, self.p2, self.peak)

    @property
    def mean_rate(self) -> float:
        """The expected long-term rate of a generated connection (C1/P1)."""
        return self.c1 / self.p1


class WorkloadGenerator:
    """Draws connection requests from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec, rng: random.Random) -> None:
        self.spec = spec
        self._rng = rng

    def sample(self) -> Tuple[DualPeriodicTraffic, float]:
        """Return ``(traffic, deadline)`` for one connection request."""
        spec = self.spec
        if spec.jitter > 0:
            factor = self._rng.uniform(1.0 - spec.jitter, 1.0 + spec.jitter)
        else:
            factor = 1.0
        traffic = DualPeriodicTraffic(
            c1=spec.c1 * factor,
            p1=spec.p1,
            c2=spec.c2 * factor,
            p2=spec.p2,
            peak=spec.peak,
        )
        deadline = self._rng.uniform(spec.deadline_min, spec.deadline_max)
        return traffic, deadline


class MixedWorkloadGenerator:
    """A weighted mixture of connection classes (video / audio / control…).

    Each draw first picks a class by weight, then samples that class's
    :class:`WorkloadSpec`.  The mixture's ``mean_rate`` (used by the
    utilization formula) is the weighted average of the classes'.
    """

    def __init__(
        self,
        classes: "list[Tuple[str, float, WorkloadSpec]]",
        rng: random.Random,
    ) -> None:
        """``classes`` is a list of ``(name, weight, spec)`` triples."""
        if not classes:
            raise ConfigurationError("need at least one workload class")
        total = sum(w for _, w, _ in classes)
        if total <= 0 or any(w < 0 for _, w, _ in classes):
            raise ConfigurationError("weights must be non-negative, sum > 0")
        self._names = [name for name, _, _ in classes]
        self._weights = [w / total for _, w, _ in classes]
        self._generators = {
            name: WorkloadGenerator(spec, rng) for name, _, spec in classes
        }
        self._specs = {name: spec for name, _, spec in classes}
        self._rng = rng

    @property
    def mean_rate(self) -> float:
        return sum(
            w * self._specs[name].mean_rate
            for name, w in zip(self._names, self._weights)
        )

    def sample(self) -> Tuple[DualPeriodicTraffic, float]:
        """Like :meth:`WorkloadGenerator.sample` (class chosen by weight)."""
        traffic, deadline, _ = self.sample_with_class()
        return traffic, deadline

    def sample_with_class(self) -> Tuple[DualPeriodicTraffic, float, str]:
        """Sample and also report which class the request belongs to."""
        name = self._rng.choices(self._names, weights=self._weights, k=1)[0]
        traffic, deadline = self._generators[name].sample()
        return traffic, deadline, name
