"""The abstract traffic-descriptor interface."""

from __future__ import annotations

import abc
import math
from typing import Iterator, Tuple

from repro.envelopes.curve import Curve


class TrafficDescriptor(abc.ABC):
    """A bound on a source's traffic: the maximum rate function Gamma(I).

    Subclasses describe concrete source models.  The central method is
    :meth:`envelope`, producing the cumulative arrival envelope
    ``A(I) = I * Gamma(I)`` as a piecewise-linear curve; :meth:`gamma`
    evaluates the rate form directly.
    """

    @abc.abstractmethod
    def envelope(self, horizon: float) -> Curve:
        """The arrival envelope ``A(I)``, exact at least up to ``horizon``.

        Beyond the horizon the returned curve must still *dominate* the true
        envelope (conservative continuation), so bounds computed from it
        remain valid.
        """

    @property
    @abc.abstractmethod
    def long_term_rate(self) -> float:
        """``rho = lim_{I -> inf} Gamma(I)`` in bits/second (Eq. 38)."""

    @property
    @abc.abstractmethod
    def peak_rate(self) -> float:
        """The instantaneous peak rate (may be ``math.inf``)."""

    def gamma(self, interval: float, horizon: float = None) -> float:
        """Evaluate the maximum rate function ``Gamma(I) = A(I) / I``.

        ``Gamma(0)`` is defined as the peak rate.
        """
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if interval == 0:
            return self.peak_rate
        if horizon is None:
            horizon = interval * 2.0
        return self.envelope(horizon)(interval) / interval

    def worst_case_arrivals(
        self, duration: float
    ) -> Iterator[Tuple[float, float]]:
        """Yield ``(time, bits)`` arrival events of a worst-case trajectory.

        The default implementation releases the envelope greedily: a burst at
        ``t = 0`` of ``A(0)`` bits, then at each envelope breakpoint the
        increment that keeps cumulative arrivals equal to the envelope.  The
        packet-level simulator uses these trajectories to stress the analytic
        bounds.
        """
        env = self.envelope(duration)
        sent = 0.0
        for x in env.breakpoints():
            t = float(x)
            if t > duration:
                break
            level = float(env(t))
            if level > sent + 1e-9:
                yield (t, level - sent)
                sent = level
        # Within sloped segments, release continuously in small chunks.
        # (Subclasses with pure staircase envelopes never reach this.)
        if env.final_slope > 0 and duration > env.last_breakpoint:
            t = max(0.0, float(env.last_breakpoint))
            step = max((duration - t) / 64.0, 1e-6)
            while t < duration:
                t = min(t + step, duration)
                level = float(env(t))
                if level > sent + 1e-9:
                    yield (t, level - sent)
                    sent = level

    def is_stable_at(self, service_rate: float) -> bool:
        """True if the long-term rate fits within ``service_rate``."""
        return self.long_term_rate <= service_rate + 1e-12

    def describe(self) -> str:
        """A one-line human-readable summary (used in logs and examples)."""
        peak = "inf" if math.isinf(self.peak_rate) else f"{self.peak_rate:.3g}"
        return (
            f"{type(self).__name__}(rho={self.long_term_rate:.3g} b/s, "
            f"peak={peak} b/s)"
        )
