"""Empirical traffic descriptor extracted from a packet trace.

Given a recorded sequence of ``(time, bits)`` arrivals, the tightest
maximum-rate function consistent with the trace is computed by sliding a
window over every pair of arrival instants.  This substitutes for the
proprietary application traces the original testbed would have used: any
recorded workload can be turned into a descriptor the CAC understands.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.envelopes.curve import Curve
from repro.errors import ConfigurationError
from repro.traffic.descriptor import TrafficDescriptor


class TraceTraffic(TrafficDescriptor):
    """Envelope of a finite packet trace.

    Parameters
    ----------
    arrivals:
        Sequence of ``(time, bits)`` pairs, non-decreasing in time.
    sustained_rate:
        Long-term rate used to extend the envelope beyond the trace span.
        Defaults to ``total_bits / span`` of the trace itself.
    """

    def __init__(
        self,
        arrivals: Sequence[Tuple[float, float]],
        sustained_rate: float = None,
    ) -> None:
        if not arrivals:
            raise ConfigurationError("trace must contain at least one arrival")
        times = np.asarray([t for t, _ in arrivals], dtype=float)
        bits = np.asarray([b for _, b in arrivals], dtype=float)
        if np.any(np.diff(times) < 0):
            raise ConfigurationError("trace times must be non-decreasing")
        if np.any(bits <= 0):
            raise ConfigurationError("every arrival must carry positive bits")
        self._times = times
        self._bits = bits
        self._total = float(np.sum(bits))
        span = float(times[-1] - times[0])
        if sustained_rate is None:
            sustained_rate = self._total / span if span > 0 else math.inf
        if sustained_rate <= 0:
            raise ConfigurationError("sustained rate must be positive")
        self._rate = float(sustained_rate)
        self._envelope_cache: Curve = None

    @property
    def long_term_rate(self) -> float:
        return self._rate

    @property
    def peak_rate(self) -> float:
        return math.inf

    def envelope(self, horizon: float) -> Curve:
        if self._envelope_cache is not None:
            return self._envelope_cache
        cum = np.concatenate([[0.0], np.cumsum(self._bits)])
        times = self._times
        n = len(times)
        # For every window length (t_j - t_i) the max bits are
        # cum[j+1] - cum[i]: the window [t_i, t_j] inclusive of both bursts.
        points: List[Tuple[float, float]] = [(0.0, float(np.max(self._bits)))]
        window_best = {}
        for i in range(n):
            lengths = times[i:] - times[i]
            gains = cum[i + 1 :] - cum[i]
            for length, gain in zip(lengths, gains):
                length = float(length)
                if gain > window_best.get(length, 0.0):
                    window_best[length] = float(gain)
        for length in sorted(window_best):
            if length == 0.0:
                points[0] = (0.0, max(points[0][1], window_best[length]))
            else:
                points.append((length, window_best[length]))
        # Enforce monotonicity (envelope of envelope).
        best = points[0][1]
        mono: List[Tuple[float, float]] = [points[0]]
        for x, y in points[1:]:
            best = max(best, y)
            mono.append((x, best))
        # Staircase through the points (right-continuous, dominating), then
        # the sustained-rate majorant past the trace span.
        xs = [x for x, _ in mono]
        ys = [y for _, y in mono]
        sigma = max(y - self._rate * x for x, y in mono)
        switch = xs[-1] + 1e-9
        xs.append(switch)
        ys.append(sigma + self._rate * switch)
        slopes = [0.0] * (len(xs) - 1) + [self._rate]
        curve = Curve(xs, np.maximum.accumulate(ys), slopes, validate=False).simplify()
        self._envelope_cache = curve
        return curve

    def worst_case_arrivals(self, duration: float):
        """Replay the trace itself (it is its own worst case)."""
        t0 = float(self._times[0])
        for t, b in zip(self._times, self._bits):
            if t - t0 > duration:
                break
            yield (float(t - t0), float(b))

    def describe(self) -> str:
        return (
            f"Trace({len(self._times)} arrivals, {self._total:.3g} bits, "
            f"rho={self._rate:.3g} b/s)"
        )
