"""An MPEG-style GOP traffic model.

Compressed video is the motivating real-time workload of the era's
literature: frames arrive at a fixed rate but their sizes cycle through a
group-of-pictures (GOP) pattern — large I frames, medium P frames, small B
frames.  The tightest envelope of such a source is periodic with the GOP:
the worst window of length ``I`` aligns with the largest run of frames.

The model composes with everything else: ``MPEGTraffic`` is a
:class:`~repro.traffic.descriptor.TrafficDescriptor` and can be handed to
the CAC like any other source.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.envelopes.curve import Curve
from repro.errors import ConfigurationError
from repro.traffic.descriptor import TrafficDescriptor


class MPEGTraffic(TrafficDescriptor):
    """Periodic GOP source: ``frame_bits[k]`` every ``1 / fps`` seconds.

    Parameters
    ----------
    frame_bits:
        The frame sizes of one GOP, in display order (e.g. I, B, B, P, ...).
    fps:
        Frame rate, frames/second.

    Notes
    -----
    Frames are modeled as instantaneous bursts at their display instants
    (the standard worst-case assumption; a finite peak can be imposed by
    regulating the source, see :class:`repro.servers.RegulatorServer`).
    """

    def __init__(self, frame_bits: Sequence[float], fps: float) -> None:
        if not frame_bits:
            raise ConfigurationError("need at least one frame in the GOP")
        if any(b <= 0 for b in frame_bits):
            raise ConfigurationError("every frame must have positive size")
        if fps <= 0:
            raise ConfigurationError("frame rate must be positive")
        self.frame_bits: Tuple[float, ...] = tuple(float(b) for b in frame_bits)
        self.fps = float(fps)
        self._envelope_cache: Curve = None

    # ------------------------------------------------------------------

    @property
    def gop_period(self) -> float:
        """Duration of one GOP, seconds."""
        return len(self.frame_bits) / self.fps

    @property
    def gop_bits(self) -> float:
        return float(sum(self.frame_bits))

    @property
    def long_term_rate(self) -> float:
        return self.gop_bits / self.gop_period

    @property
    def peak_rate(self) -> float:
        return math.inf

    def _window_maxima(self) -> List[float]:
        """``best[k]`` = most bits in any run of ``k+1`` consecutive frames
        (the pattern repeats, so runs wrap around the GOP)."""
        n = len(self.frame_bits)
        doubled = list(self.frame_bits) * 2
        prefix = np.concatenate([[0.0], np.cumsum(doubled)])
        best = []
        for k in range(1, n + 1):
            sums = prefix[k : k + n] - prefix[0:n]
            best.append(float(np.max(sums)))
        return best

    def envelope(self, horizon: float) -> Curve:
        """Exact periodic envelope with an affine majorant tail.

        A window of length slightly over ``k / fps`` can contain ``k + 1``
        frame instants; within one GOP the best (k+1)-run is precomputed,
        and whole extra GOPs add ``gop_bits`` each.
        """
        if self._envelope_cache is not None and (
            self._envelope_cache.last_breakpoint >= min(horizon, 64 * self.gop_period)
        ):
            return self._envelope_cache
        n = len(self.frame_bits)
        best = self._window_maxima()
        frame_gap = 1.0 / self.fps
        n_gops = max(1, min(256, int(math.ceil(horizon / self.gop_period)) + 1))
        xs: List[float] = []
        ys: List[float] = []
        for g in range(n_gops):
            for k in range(n):
                idx = g * n + k  # total extra frame instants covered
                window_frames = idx + 1
                full_gops, rem = divmod(window_frames, n)
                if rem == 0:
                    value = full_gops * self.gop_bits
                else:
                    value = full_gops * self.gop_bits + best[rem - 1]
                # Runs spanning GOP boundaries are covered by `best` (it
                # wraps); value is the max bits in any window catching
                # `window_frames` frame instants.
                xs.append(idx * frame_gap)
                ys.append(value)
        rho = self.long_term_rate
        sigma = max(y - rho * x for x, y in zip(xs, ys))
        switch = n_gops * self.gop_period
        xs.append(switch)
        ys.append(sigma + rho * switch)
        slopes = [0.0] * (len(xs) - 1) + [rho]
        ys_arr = np.maximum.accumulate(np.asarray(ys))
        curve = Curve(xs, ys_arr, slopes, validate=False).simplify()
        self._envelope_cache = curve
        return curve

    def worst_case_arrivals(self, duration: float):
        """The aligned worst case: start at the heaviest frame rotation."""
        n = len(self.frame_bits)
        # Rotation maximizing the first window values: start at the frame
        # that begins the best 1-run (the biggest frame).
        start = int(np.argmax(self.frame_bits))
        t = 0.0
        k = 0
        while t <= duration:
            yield (t, self.frame_bits[(start + k) % n])
            k += 1
            t = k / self.fps

    def describe(self) -> str:
        return (
            f"MPEG(GOP={len(self.frame_bits)} frames @ {self.fps:g} fps, "
            f"rho={self.long_term_rate:.3g} b/s)"
        )
