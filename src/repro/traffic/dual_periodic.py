"""The dual-periodic traffic model of the paper's evaluation (Eq. 37).

A dual-periodic source delivers at most ``C2`` bits in any window of length
``P2``, nested inside a budget of at most ``C1`` bits per window of length
``P1`` (``P2 <= P1``, ``C2 <= C1``).  The model "generalizes the one-period
model, allowing certain burstiness in source traffic": within each P1 window
the source may burst C2 every P2 until the C1 budget is exhausted, then must
stay silent until the next P1 window.

The long-term rate is ``rho = C1 / P1`` (Eq. 38).

Note on Eq. 37 as printed: the innermost term compares a bit count with a
time quantity, which is dimensionally inconsistent.  We parameterize the
source *peak rate*: within a P2 window, bits arrive at ``peak_rate`` (default
``inf``, the pure-staircase interpretation standard in network calculus).
See DESIGN.md §3.
"""

from __future__ import annotations

import dataclasses
import math

from repro.envelopes.curve import Curve
from repro.errors import ConfigurationError
from repro.traffic.descriptor import TrafficDescriptor


@dataclasses.dataclass(frozen=True)
class DualPeriodicTraffic(TrafficDescriptor):
    """Dual-periodic source: ``C2`` bits per ``P2`` inside ``C1`` per ``P1``.

    Parameters
    ----------
    c1:
        Budget (bits) per outer period ``p1``.
    p1:
        Outer period, seconds.
    c2:
        Budget (bits) per inner period ``p2``.
    p2:
        Inner period, seconds.
    peak:
        Source peak rate in bits/second (``inf`` = instantaneous bursts).
    """

    c1: float
    p1: float
    c2: float
    p2: float
    peak: float = math.inf

    def __post_init__(self) -> None:
        if self.p1 <= 0 or self.p2 <= 0:
            raise ConfigurationError("periods must be positive")
        if self.c1 <= 0 or self.c2 <= 0:
            raise ConfigurationError("budgets must be positive")
        if self.p2 > self.p1 + 1e-12:
            raise ConfigurationError("inner period P2 must not exceed P1")
        if self.c2 > self.c1 + 1e-9:
            raise ConfigurationError("inner budget C2 must not exceed C1")
        if self.c2 / self.p2 < self.c1 / self.p1 - 1e-9:
            raise ConfigurationError(
                "inner rate C2/P2 must be at least the outer rate C1/P1 "
                "(otherwise the C1 budget can never be consumed)"
            )
        if self.peak <= 0:
            raise ConfigurationError("peak rate must be positive")

    # ------------------------------------------------------------------

    @property
    def long_term_rate(self) -> float:
        """``rho = C1 / P1`` (Eq. 38)."""
        return self.c1 / self.p1

    @property
    def peak_rate(self) -> float:
        return self.peak

    @property
    def bursts_per_outer_period(self) -> int:
        """Number of inner bursts needed to exhaust the C1 budget."""
        return int(math.ceil(self.c1 / self.c2 - 1e-9))

    def envelope(self, horizon: float) -> Curve:
        """Arrival envelope per Eq. 37 (right-continuous form).

        Within each outer window ``k``: bursts of ``C2`` at offsets
        ``0, P2, 2*P2, ...`` (the last one possibly partial) until the
        cumulative reaches ``k*C1 + C1``.  Beyond the horizon the curve
        continues with the token-bucket majorant ``sigma + rho*I`` where
        ``sigma`` is the model's maximal burstiness, which dominates the true
        envelope for all time.
        """
        n_outer = max(1, int(math.ceil(horizon / self.p1)) + 1)
        n_outer = min(n_outer, 4096)
        xs = []
        ys = []
        slopes = []
        m_max = self.bursts_per_outer_period
        finite_peak = math.isfinite(self.peak)
        for k in range(n_outer):
            base_t = k * self.p1
            base_bits = k * self.c1
            for m in range(m_max):
                t = base_t + m * self.p2
                if t >= base_t + self.p1 - 1e-15 and m > 0:
                    break
                burst = min(self.c2, self.c1 - m * self.c2)
                if burst <= 0:
                    break
                if finite_peak:
                    ramp = burst / self.peak
                    xs.append(t)
                    ys.append(base_bits + m * self.c2)
                    slopes.append(self.peak)
                    xs.append(t + ramp)
                    ys.append(base_bits + m * self.c2 + burst)
                    slopes.append(0.0)
                else:
                    xs.append(t)
                    ys.append(base_bits + min(self.c1, (m + 1) * self.c2))
                    slopes.append(0.0)
        # Conservative affine tail: sigma + rho * I with sigma = max over the
        # exact prefix of (A(x) - rho * x).  Quasi-periodicity makes this max
        # stabilize after the first outer period.
        rho = self.long_term_rate
        sigma = max(
            (y - rho * x for x, y in zip(xs, ys)),
            default=self.c2,
        )
        switch_x = n_outer * self.p1
        xs.append(switch_x)
        ys.append(sigma + rho * switch_x)
        slopes.append(rho)
        import numpy as np

        order = np.argsort(np.asarray(xs), kind="stable")
        xs_arr = np.asarray(xs)[order]
        ys_arr = np.asarray(ys)[order]
        slopes_arr = np.asarray(slopes)[order]
        # De-duplicate coincident x (keep the larger y — right value).
        keep_x = []
        keep_y = []
        keep_s = []
        for x, y, s in zip(xs_arr, ys_arr, slopes_arr):
            if keep_x and abs(x - keep_x[-1]) < 1e-15:
                keep_y[-1] = max(keep_y[-1], y)
                keep_s[-1] = max(keep_s[-1], s)
            else:
                keep_x.append(float(x))
                keep_y.append(float(y))
                keep_s.append(float(s))
        ys_mono = np.maximum.accumulate(np.asarray(keep_y))
        return Curve(keep_x, ys_mono, keep_s, validate=False).simplify()

    def describe(self) -> str:
        return (
            f"DualPeriodic(C1={self.c1:.3g}b/P1={self.p1:.3g}s, "
            f"C2={self.c2:.3g}b/P2={self.p2:.3g}s, rho={self.long_term_rate:.3g}b/s)"
        )
