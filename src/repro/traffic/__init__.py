"""Traffic descriptors: the maximum-rate function Gamma(I) of Section 4.2.

A *traffic descriptor* bounds the behaviour of a connection's source: for
every interval length ``I``, ``Gamma(I)`` is the maximum arrival rate the
source may sustain over any window of that length.  Equivalently, the
cumulative *arrival envelope* ``A(I) = I * Gamma(I)`` bounds the bits
delivered in any window.  The library works with the envelope form
(a :class:`repro.envelopes.Curve`), which every descriptor can produce.

Implemented models:

* :class:`DualPeriodicTraffic` — the paper's evaluation model (Eq. 37):
  at most ``C2`` bits in any ``P2`` window nested inside at most ``C1`` bits
  per ``P1`` window.
* :class:`PeriodicTraffic` — the classic one-period model (``C`` per ``P``).
* :class:`LeakyBucketTraffic` — the (sigma, rho) regulator familiar from
  ATM usage parameter control.
* :class:`CBRTraffic` — constant bit rate with optional packetization.
* :class:`TraceTraffic` — empirical envelope extracted from a packet trace.
"""

from repro.traffic.descriptor import TrafficDescriptor
from repro.traffic.dual_periodic import DualPeriodicTraffic
from repro.traffic.periodic import PeriodicTraffic
from repro.traffic.leaky_bucket import LeakyBucketTraffic
from repro.traffic.cbr import CBRTraffic
from repro.traffic.trace import TraceTraffic
from repro.traffic.mpeg import MPEGTraffic
from repro.traffic.generators import (
    MixedWorkloadGenerator,
    WorkloadGenerator,
    WorkloadSpec,
)

__all__ = [
    "CBRTraffic",
    "DualPeriodicTraffic",
    "LeakyBucketTraffic",
    "MPEGTraffic",
    "MixedWorkloadGenerator",
    "PeriodicTraffic",
    "TraceTraffic",
    "TrafficDescriptor",
    "WorkloadGenerator",
    "WorkloadSpec",
]
