"""Leaky-bucket (sigma, rho) traffic descriptor.

The (sigma, rho) regulator of Cruz [refs 5, 6]: at most ``sigma + rho * I``
bits in any window of length ``I``, optionally capped by a peak rate.  ATM
usage parameter control (GCRA) polices exactly this shape, so the descriptor
is the natural bridge between the paper's Gamma(I) world and standard ATM
traffic contracts.
"""

from __future__ import annotations

import dataclasses
import math

from repro.envelopes.curve import Curve
from repro.errors import ConfigurationError
from repro.traffic.descriptor import TrafficDescriptor


@dataclasses.dataclass(frozen=True)
class LeakyBucketTraffic(TrafficDescriptor):
    """``A(I) = min(sigma + rho * I, peak * I)``."""

    sigma: float
    rho: float
    peak: float = math.inf

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError("burst sigma must be non-negative")
        if self.rho < 0:
            raise ConfigurationError("rate rho must be non-negative")
        if self.peak <= 0:
            raise ConfigurationError("peak rate must be positive")
        if math.isfinite(self.peak) and self.peak < self.rho:
            raise ConfigurationError("peak rate cannot be below sustained rate")

    @property
    def long_term_rate(self) -> float:
        return self.rho

    @property
    def peak_rate(self) -> float:
        return self.peak

    def envelope(self, horizon: float) -> Curve:
        bucket = Curve.affine(self.sigma, self.rho)
        if math.isinf(self.peak):
            return bucket
        return bucket.minimum(Curve.affine(0.0, self.peak))

    def describe(self) -> str:
        return f"LeakyBucket(sigma={self.sigma:.3g}b, rho={self.rho:.3g}b/s)"
