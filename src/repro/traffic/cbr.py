"""Constant-bit-rate traffic with optional packetization."""

from __future__ import annotations

import dataclasses
import math

from repro.envelopes.curve import Curve
from repro.errors import ConfigurationError
from repro.traffic.descriptor import TrafficDescriptor


@dataclasses.dataclass(frozen=True)
class CBRTraffic(TrafficDescriptor):
    """A constant-rate source of ``rate`` bits/second.

    With ``packet_bits > 0`` the stream is packetized: bits appear in whole
    packets, so any window can contain one extra packet's worth compared to
    the fluid rate line (``A(I) = rate * I + packet_bits``).  This models
    e.g. uncompressed audio over the FDDI ring.
    """

    rate: float
    packet_bits: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("rate must be positive")
        if self.packet_bits < 0:
            raise ConfigurationError("packet size must be non-negative")

    @property
    def long_term_rate(self) -> float:
        return self.rate

    @property
    def peak_rate(self) -> float:
        return math.inf if self.packet_bits > 0 else self.rate

    def envelope(self, horizon: float) -> Curve:
        return Curve.affine(self.packet_bits, self.rate)

    def describe(self) -> str:
        return f"CBR(rate={self.rate:.3g}b/s, packet={self.packet_bits:.3g}b)"
