"""repro — connection-oriented real-time communication over FDDI-ATM-FDDI.

A from-scratch reproduction of

    Chen, Sahoo, Zhao, Raha.  "Connection-Oriented Communications for
    Real-Time Applications in FDDI-ATM-FDDI Heterogeneous Networks."
    ICDCS 1997.

The package provides the paper's full stack:

* envelope algebra and Gamma(I) traffic descriptors (:mod:`repro.envelopes`,
  :mod:`repro.traffic`);
* the FDDI timed-token, ATM and interface-device substrates with their
  worst-case server analyses (:mod:`repro.fddi`, :mod:`repro.atm`,
  :mod:`repro.interface_device`);
* the decomposition delay engine and the beta-parameterized connection
  admission control — the paper's contribution (:mod:`repro.core`);
* discrete-event simulators and the experiment harness regenerating the
  paper's figures (:mod:`repro.sim`, :mod:`repro.experiments`).

Typical use::

    from repro import (AdmissionController, ConnectionSpec,
                       DualPeriodicTraffic, build_network)

    topology = build_network()                  # the paper's 3-ring network
    cac = AdmissionController(topology)
    traffic = DualPeriodicTraffic(c1=120e3, p1=0.015, c2=60e3, p2=0.005)
    result = cac.request(ConnectionSpec(
        "video", "host1-1", "host2-1", traffic, deadline=0.080))
    assert result.admitted
"""

from repro.config import (
    AnalysisConfig,
    CACConfig,
    NetworkConfig,
    SimulationConfig,
    build_network,
)
from repro.core import AdmissionController, AdmissionResult, DelayAnalyzer
from repro.errors import (
    AdmissionError,
    BufferOverflowError,
    ConfigurationError,
    ReproError,
    RoutingError,
    TopologyError,
    UnstableSystemError,
)
from repro.network import ConnectionRecord, ConnectionSpec, NetworkTopology, Route
from repro.traffic import (
    CBRTraffic,
    DualPeriodicTraffic,
    LeakyBucketTraffic,
    MPEGTraffic,
    PeriodicTraffic,
    TraceTraffic,
    TrafficDescriptor,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionResult",
    "AnalysisConfig",
    "BufferOverflowError",
    "CACConfig",
    "CBRTraffic",
    "ConfigurationError",
    "ConnectionRecord",
    "ConnectionSpec",
    "DelayAnalyzer",
    "DualPeriodicTraffic",
    "LeakyBucketTraffic",
    "MPEGTraffic",
    "NetworkConfig",
    "NetworkTopology",
    "PeriodicTraffic",
    "ReproError",
    "Route",
    "RoutingError",
    "SimulationConfig",
    "TopologyError",
    "TraceTraffic",
    "TrafficDescriptor",
    "UnstableSystemError",
    "build_network",
]
