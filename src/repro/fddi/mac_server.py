"""The FDDI_MAC server analysis — Theorem 1 of the paper.

A station (or interface device) holding synchronous allocation ``H`` on a
ring with rotation target TTRT is guaranteed the availability staircase

    ``avail(t) = max(0, (floor(t / TTRT) - 1) * H * BW)``.

Theorem 1 then gives, for an input envelope ``A(t) = t * Gamma(t)``:

1. the maximal busy interval ``B = min { t : A(t) <= avail(t) }``;
2. the buffer requirement ``F = max_{0 < t <= B} [A(t) - avail(t)]``;
3. the worst-case delay ``chi = max_{0 < t <= B} min { d : avail(t+d) >= A(t) }``
   (infinite if ``F`` exceeds the MAC buffer);
4. the output envelope ``Gamma'(I) = min(BW, Upsilon(I))`` with
   ``Upsilon(I) = max_{0 <= t <= B} [A(t + I) - avail(t)] / I``.

Each maps directly onto an exact envelope-algebra operation.
"""

from __future__ import annotations

import math

from repro.envelopes.curve import Curve
from repro.envelopes.operations import (
    busy_interval,
    deconvolve,
    horizontal_deviation,
    vertical_deviation,
)
from repro.envelopes.staircase import timed_token_staircase
from repro.errors import BufferOverflowError, ConfigurationError, UnstableSystemError
from repro.servers.base import DedicatedServer, ServerAnalysis
from repro.units import MS_PER_S


class FDDIMacServer(DedicatedServer):
    """Theorem-1 analysis of one station's synchronous MAC queue.

    Parameters
    ----------
    sync_time:
        ``H`` — the station's synchronous allocation, seconds per rotation.
    ttrt:
        Target token rotation time, seconds.
    bandwidth:
        Ring rate ``BW_FDDI``, bits/second.
    buffer_bits:
        MAC transmit buffer ``S`` in bits (``inf`` = unbounded).  Theorem 1
        declares the delay infinite on overflow; we raise
        :class:`BufferOverflowError` so the condition cannot be ignored.
    max_steps:
        Cap on the number of exact staircase steps used before the
        conservative affine tail takes over.
    service_segments:
        Optional segment cap on the availability staircase
        (``AnalysisConfig.coarsen_segments``).  Coarsening a *service*
        curve must round it **down** (``Curve.coarsen(direction="lower")``)
        so the analyzed service never exceeds the guaranteed one and every
        bound stays conservative.  ``None`` (default) = exact staircase.
    """

    def __init__(
        self,
        sync_time: float,
        ttrt: float,
        bandwidth: float,
        buffer_bits: float = math.inf,
        name: str = "fddi-mac",
        max_steps: int = 4096,
        service_segments: "int | None" = None,
    ) -> None:
        if sync_time < 0:
            raise ConfigurationError("synchronous allocation must be non-negative")
        if ttrt <= 0 or bandwidth <= 0:
            raise ConfigurationError("TTRT and bandwidth must be positive")
        if buffer_bits <= 0:
            raise ConfigurationError("buffer must be positive (or inf)")
        if service_segments is not None and service_segments < 8:
            raise ConfigurationError("service_segments must be >= 8 (or None)")
        self.sync_time = float(sync_time)
        self.ttrt = float(ttrt)
        self.bandwidth = float(bandwidth)
        self.buffer_bits = float(buffer_bits)
        self.name = name
        self.max_steps = int(max_steps)
        self.service_segments = service_segments

    # ------------------------------------------------------------------

    @property
    def guaranteed_rate(self) -> float:
        """Long-term synchronous service rate ``H * BW / TTRT`` (bits/s)."""
        return self.sync_time * self.bandwidth / self.ttrt

    def availability(self, n_steps: int) -> Curve:
        """The ``avail(t)`` staircase with ``n_steps`` exact steps.

        With ``service_segments`` set, the staircase is conservatively
        under-approximated (rounded down) to that many segments.
        """
        avail = timed_token_staircase(
            self.sync_time, self.ttrt, self.bandwidth, n_steps=n_steps
        )
        if (
            self.service_segments is not None
            and len(avail.xs) > self.service_segments
        ):
            avail = avail.coarsen(self.service_segments, direction="lower")
        return avail

    def analyze(self, arrival: Curve) -> ServerAnalysis:
        """Run Theorem 1 for ``arrival``; see class docstring.

        Raises
        ------
        UnstableSystemError
            If the long-term arrival rate exceeds the guaranteed service
            rate (the busy interval — and hence the delay — is unbounded).
        BufferOverflowError
            If the worst-case backlog exceeds ``buffer_bits`` (Theorem 1
            case ``F > S``: infinite delay).
        """
        if self.sync_time == 0.0:
            raise UnstableSystemError(
                f"{self.name}: zero synchronous allocation cannot serve traffic"
            )
        rate = self.guaranteed_rate
        if arrival.final_slope > rate * (1 + 1e-12):
            raise UnstableSystemError(
                f"{self.name}: arrival rate {arrival.final_slope:.6g} b/s exceeds "
                f"guaranteed synchronous rate {rate:.6g} b/s"
            )

        # Adaptively size the exact staircase horizon to cover the busy
        # interval.  The affine tail under-estimates service, so a busy
        # interval computed within the horizon is exact; one that lands in
        # the tail region prompts a larger horizon.
        n_steps = 32
        while True:
            avail = self.availability(n_steps)
            b = busy_interval(arrival, avail)
            if math.isinf(b):
                raise UnstableSystemError(
                    f"{self.name}: busy interval is unbounded"
                )
            if b <= (n_steps - 1) * self.ttrt or n_steps >= self.max_steps:
                break
            n_steps = min(self.max_steps, n_steps * 4)

        backlog = vertical_deviation(arrival, avail, t_max=b)
        if backlog > self.buffer_bits + 1e-9:
            raise BufferOverflowError(
                f"{self.name}: worst-case backlog {backlog:.6g} bits exceeds "
                f"buffer {self.buffer_bits:.6g} bits"
            )
        delay = horizontal_deviation(arrival, avail, t_max=b)
        if math.isinf(delay):
            raise UnstableSystemError(
                f"{self.name}: unbounded delay (service plateau below arrivals)"
            )

        # Theorem 1(4): output envelope, capped at the ring rate.
        raw_output = deconvolve(arrival, avail, t_limit=b)
        output = raw_output.minimum(Curve.affine(0.0, self.bandwidth))

        return ServerAnalysis(
            delay_bound=delay,
            output=output,
            backlog_bound=backlog,
            busy_interval=b,
        )

    def cache_key(self):
        return (
            "fddi-mac",
            self.sync_time,
            self.ttrt,
            self.bandwidth,
            self.buffer_bits,
            self.max_steps,
            self.service_segments,
        )

    def __repr__(self) -> str:
        return (
            f"FDDIMacServer({self.name!r}, H={self.sync_time * MS_PER_S:.4g}ms, "
            f"TTRT={self.ttrt * MS_PER_S:.4g}ms)"
        )
