"""The 802.5_MAC server — the paper's Section 7 extension.

Section 7: "if the LAN segments are IEEE 802.5 token rings, one only needs
to analyze an 802.5_MAC server in addition to the servers that have been
analyzed in this paper."  This module provides that server, so an
802.5-ATM-802.5 (or mixed) heterogeneous network can reuse the whole CAC
machinery unchanged.

Model (single-priority exhaustive-limited token ring with token-holding
timers, the standard real-time 802.5 configuration of ref [20]): station
``i`` may transmit for at most its token-holding time ``THT_i`` per token
visit, and the token must visit every station in turn, so consecutive
token arrivals at station ``i`` are separated by at most

    ``T_cycle = sum_j THT_j + walk_time``.

The guaranteed service is therefore the staircase

    ``avail(t) = max(0, floor(t / T_cycle) - 1) * THT_i * BW``

— the same shape as Theorem 1's timed-token staircase with ``T_cycle``
playing TTRT's role, which is why the rest of the analysis carries over
verbatim.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.envelopes.curve import Curve
from repro.envelopes.operations import (
    busy_interval,
    deconvolve,
    horizontal_deviation,
    vertical_deviation,
)
from repro.envelopes.staircase import timed_token_staircase
from repro.errors import BufferOverflowError, ConfigurationError, UnstableSystemError
from repro.servers.base import DedicatedServer, ServerAnalysis
from repro.units import MS_PER_S


class TokenRing8025MacServer(DedicatedServer):
    """Worst-case analysis of one station's queue on an 802.5 token ring.

    Parameters
    ----------
    holding_time:
        ``THT_i`` — this station's token-holding time, seconds per visit.
    cycle_time:
        Worst-case token cycle ``sum_j THT_j + walk_time``, seconds.
    bandwidth:
        Ring transmission rate, bits/second (4 or 16 Mbps classically).
    buffer_bits:
        Transmit buffer (``inf`` = unbounded).
    """

    def __init__(
        self,
        holding_time: float,
        cycle_time: float,
        bandwidth: float,
        buffer_bits: float = math.inf,
        name: str = "802.5-mac",
        max_steps: int = 4096,
    ) -> None:
        if holding_time < 0:
            raise ConfigurationError("holding time must be non-negative")
        if cycle_time <= 0 or bandwidth <= 0:
            raise ConfigurationError("cycle time and bandwidth must be positive")
        if holding_time > cycle_time:
            raise ConfigurationError("holding time cannot exceed the cycle time")
        if buffer_bits <= 0:
            raise ConfigurationError("buffer must be positive (or inf)")
        self.holding_time = float(holding_time)
        self.cycle_time = float(cycle_time)
        self.bandwidth = float(bandwidth)
        self.buffer_bits = float(buffer_bits)
        self.name = name
        self.max_steps = int(max_steps)

    @classmethod
    def for_ring(
        cls,
        holding_times: Sequence[float],
        station_index: int,
        bandwidth: float,
        walk_time: float = 0.0,
        **kwargs,
    ) -> "TokenRing8025MacServer":
        """Build the server for one station given the whole ring's timers."""
        if not (0 <= station_index < len(holding_times)):
            raise ConfigurationError("station index out of range")
        cycle = sum(holding_times) + walk_time
        return cls(
            holding_time=holding_times[station_index],
            cycle_time=cycle,
            bandwidth=bandwidth,
            **kwargs,
        )

    @property
    def guaranteed_rate(self) -> float:
        """Long-term service rate ``THT * BW / T_cycle`` (bits/second)."""
        return self.holding_time * self.bandwidth / self.cycle_time

    def availability(self, n_steps: int) -> Curve:
        """``avail(t)``: the timed-token staircase with T_cycle as TTRT."""
        return timed_token_staircase(
            self.holding_time, self.cycle_time, self.bandwidth, n_steps=n_steps
        )

    def analyze(self, arrival: Curve) -> ServerAnalysis:
        if self.holding_time == 0.0:
            raise UnstableSystemError(
                f"{self.name}: zero holding time cannot serve traffic"
            )
        rate = self.guaranteed_rate
        if arrival.final_slope > rate * (1 + 1e-12):
            raise UnstableSystemError(
                f"{self.name}: arrival rate {arrival.final_slope:.6g} b/s exceeds "
                f"guaranteed rate {rate:.6g} b/s"
            )
        n_steps = 32
        while True:
            avail = self.availability(n_steps)
            b = busy_interval(arrival, avail)
            if math.isinf(b):
                raise UnstableSystemError(f"{self.name}: unbounded busy interval")
            if b <= (n_steps - 1) * self.cycle_time or n_steps >= self.max_steps:
                break
            n_steps = min(self.max_steps, n_steps * 4)
        backlog = vertical_deviation(arrival, avail, t_max=b)
        if backlog > self.buffer_bits + 1e-9:
            raise BufferOverflowError(
                f"{self.name}: backlog {backlog:.6g} bits exceeds buffer"
            )
        delay = horizontal_deviation(arrival, avail, t_max=b)
        if math.isinf(delay):
            raise UnstableSystemError(f"{self.name}: unbounded delay")
        output = deconvolve(arrival, avail, t_limit=b).minimum(
            Curve.affine(0.0, self.bandwidth)
        )
        return ServerAnalysis(
            delay_bound=delay,
            output=output,
            backlog_bound=backlog,
            busy_interval=b,
        )

    def cache_key(self):
        return (
            "802.5-mac",
            self.holding_time,
            self.cycle_time,
            self.bandwidth,
            self.buffer_bits,
            self.max_steps,
        )

    def __repr__(self) -> str:
        return (
            f"TokenRing8025MacServer({self.name!r}, "
            f"THT={self.holding_time * MS_PER_S:.4g}ms, "
            f"cycle={self.cycle_time * MS_PER_S:.4g}ms)"
        )
