"""Classic FDDI-only synchronous-bandwidth allocation (SBA) schemes.

These are the schemes of refs [1] (Agrawal, Chen, Zhao, Davari) and [24]
(Zhang, Burns, Wellings) that the paper argues *cannot* be applied directly
to a heterogeneous network.  They are implemented here as ablation
baselines: the bench ``bench_ablation_policies`` compares the paper's
feasible-region/beta allocation against a CAC that sizes each ring's
allocation with one of these local rules.

All schemes take the set of periodic messages on one ring (message size
``c_i`` bits, period/deadline ``p_i`` seconds) and return per-message
synchronous times ``H_i`` (seconds per rotation).  A scheme may also return
allocations that fail the protocol constraint — callers must check
:func:`repro.fddi.timed_token.sync_capacity_check`.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


def _validate(messages: Sequence[Tuple[float, float]], ttrt: float, bandwidth: float):
    if ttrt <= 0 or bandwidth <= 0:
        raise ConfigurationError("TTRT and bandwidth must be positive")
    for c, p in messages:
        if c <= 0 or p <= 0:
            raise ConfigurationError("message sizes and periods must be positive")
        if p < 2 * ttrt:
            raise ConfigurationError(
                "the timed-token protocol cannot guarantee deadlines shorter "
                "than 2 * TTRT"
            )


def full_length_allocation(
    messages: Sequence[Tuple[float, float]], ttrt: float, bandwidth: float
) -> List[float]:
    """Allocate enough to send the whole message in one token visit.

    ``H_i = c_i / BW``: the simplest scheme — each message's entire payload
    fits in a single synchronous transmission.  Wasteful for long periods.
    """
    _validate(messages, ttrt, bandwidth)
    return [c / bandwidth for c, _ in messages]


def proportional_allocation(
    messages: Sequence[Tuple[float, float]], ttrt: float, bandwidth: float
) -> List[float]:
    """Allocate proportionally to each message's utilization.

    ``H_i = (c_i / (p_i * BW)) * TTRT``: the station gets a share of every
    rotation equal to its long-term utilization.  (Scheme from ref [1].)
    """
    _validate(messages, ttrt, bandwidth)
    return [(c / (p * bandwidth)) * ttrt for c, p in messages]


def normalized_proportional_allocation(
    messages: Sequence[Tuple[float, float]],
    ttrt: float,
    bandwidth: float,
    overhead: float = 0.0,
) -> List[float]:
    """Proportional allocation normalized to use the whole usable TTRT.

    ``H_i = (u_i / U) * (TTRT - Delta)`` with ``u_i = c_i / (p_i * BW)`` and
    ``U = sum(u_i)``: utilizations scaled so the allocations exactly fill
    the usable portion of the rotation.  (Scheme from ref [1].)
    """
    _validate(messages, ttrt, bandwidth)
    if overhead < 0 or overhead >= ttrt:
        raise ConfigurationError("overhead must be in [0, TTRT)")
    utils = [c / (p * bandwidth) for c, p in messages]
    total = sum(utils)
    if total == 0:
        return [0.0 for _ in messages]
    usable = ttrt - overhead
    return [(u / total) * usable for u in utils]


def equal_partition_allocation(
    messages: Sequence[Tuple[float, float]],
    ttrt: float,
    bandwidth: float,
    overhead: float = 0.0,
) -> List[float]:
    """Split the usable rotation equally among the stations.

    ``H_i = (TTRT - Delta) / n``: ignores message parameters entirely; the
    classic strawman baseline.
    """
    _validate(messages, ttrt, bandwidth)
    n = len(messages)
    if n == 0:
        return []
    return [(ttrt - overhead) / n] * n


def is_schedulable(
    messages: Sequence[Tuple[float, float]],
    allocations: Sequence[float],
    ttrt: float,
    bandwidth: float,
) -> bool:
    """The classical FDDI-only schedulability test.

    A periodic message (c, p) with allocation H meets its deadline (= its
    period) under the timed-token protocol iff the synchronous service
    guaranteed within the period covers the message:
    ``(floor(p / TTRT) - 1) * H * BW >= c``.
    """
    _validate(messages, ttrt, bandwidth)
    if len(allocations) != len(messages):
        raise ConfigurationError("one allocation per message required")
    for (c, p), h in zip(messages, allocations):
        granted = max(0.0, (math.floor(p / ttrt) - 1.0)) * h * bandwidth
        if granted < c - 1e-9:
            return False
    return True
