"""FDDI ring state: TTRT, protocol overhead, synchronous-bandwidth ledger."""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable

from repro.errors import ConfigurationError
from repro.units import MBIT, MS_PER_S


@dataclasses.dataclass
class FDDIRing:
    """One FDDI ring and its synchronous-bandwidth bookkeeping.

    The timed-token protocol requires that the sum of synchronous
    allocations plus the protocol-dependent overhead ``Delta`` not exceed
    the TTRT.  The CAC reads :attr:`available_sync_time` (Eqs. 26/27) before
    choosing an allocation, then records it here.

    Parameters
    ----------
    ring_id:
        Identifier used in topology and reporting.
    ttrt:
        Target token rotation time, seconds.
    bandwidth:
        Ring transmission rate ``BW_FDDI``, bits/second (100 Mbps standard).
    overhead:
        ``Delta`` — protocol-dependent per-rotation overhead (token capture,
        preambles, ring latency), seconds.
    propagation_delay:
        Worst-case bit propagation time between any two stations on the
        ring (the Delay_Line server bound, Eq. 14), seconds.
    """

    ring_id: str
    ttrt: float
    bandwidth: float = 100.0 * MBIT
    overhead: float = 0.0
    propagation_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.ttrt <= 0:
            raise ConfigurationError("TTRT must be positive")
        if self.bandwidth <= 0:
            raise ConfigurationError("ring bandwidth must be positive")
        if self.overhead < 0 or self.overhead >= self.ttrt:
            raise ConfigurationError("overhead must be in [0, TTRT)")
        if self.propagation_delay < 0:
            raise ConfigurationError("propagation delay must be non-negative")
        self._allocations: Dict[Hashable, float] = {}

    # ------------------------------------------------------------------
    # Ledger
    # ------------------------------------------------------------------

    @property
    def allocated_sync_time(self) -> float:
        """``Omega`` — total synchronous time currently allocated (s/rotation)."""
        return sum(self._allocations.values())

    @property
    def available_sync_time(self) -> float:
        """``H^max_avai = TTRT - (Omega + Delta)`` (Eqs. 26/27)."""
        return self.ttrt - (self.allocated_sync_time + self.overhead)

    def allocation_of(self, conn_id: Hashable) -> float:
        """The synchronous time held by ``conn_id`` (0.0 if none)."""
        return self._allocations.get(conn_id, 0.0)

    def allocate(self, conn_id: Hashable, sync_time: float) -> None:
        """Record an allocation of ``sync_time`` seconds/rotation.

        Raises :class:`ConfigurationError` if the allocation is not positive,
        the connection already holds one, or the TTRT budget would be
        exceeded.
        """
        if sync_time <= 0:
            raise ConfigurationError("allocation must be positive")
        if conn_id in self._allocations:
            raise ConfigurationError(f"{conn_id!r} already holds an allocation")
        if sync_time > self.available_sync_time + 1e-12:
            raise ConfigurationError(
                f"allocation {sync_time:.6g}s exceeds available "
                f"{self.available_sync_time:.6g}s on ring {self.ring_id}"
            )
        self._allocations[conn_id] = float(sync_time)

    def release(self, conn_id: Hashable) -> float:
        """Release and return the allocation held by ``conn_id``."""
        if conn_id not in self._allocations:
            raise ConfigurationError(f"{conn_id!r} holds no allocation here")
        return self._allocations.pop(conn_id)

    def sync_bits_per_rotation(self, conn_id: Hashable) -> float:
        """Bits per token rotation guaranteed to ``conn_id``."""
        return self.allocation_of(conn_id) * self.bandwidth

    def __repr__(self) -> str:
        return (
            f"FDDIRing({self.ring_id!r}, TTRT={self.ttrt * MS_PER_S:.3g}ms, "
            f"allocated={self.allocated_sync_time * MS_PER_S:.3g}ms, "
            f"{len(self._allocations)} connections)"
        )
