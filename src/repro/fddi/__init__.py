"""FDDI substrate: the timed-token ring model of the paper.

FDDI is a 100 Mbps fiber token ring using the timed-token MAC protocol: a
station with synchronous allocation ``H`` may transmit real-time traffic
for up to ``H`` seconds on every token visit, and the protocol constrains
the sum of allocations plus overhead to the target token rotation time
(TTRT).  The guaranteed service a connection receives is the staircase
``avail(t)`` of Theorem 1.

This package provides:

* :class:`FDDIRing` — ring state: TTRT, overhead, the synchronous-bandwidth
  ledger consulted by the CAC (Eqs. 26/27).
* :class:`FDDIMacServer` — the Theorem-1 analysis of a station's MAC queue.
* :mod:`repro.fddi.timed_token` — protocol timing facts (token rotation
  bounds, minimum useful allocation).
* :mod:`repro.fddi.allocation` — classic FDDI-only synchronous-bandwidth
  allocation schemes (refs [1, 24]) used as ablation baselines.
"""

from repro.fddi.ring import FDDIRing
from repro.fddi.mac_server import FDDIMacServer
from repro.fddi.timed_token import (
    max_token_rotation,
    min_sync_allocation,
    worst_case_token_wait,
)
from repro.fddi.allocation import (
    equal_partition_allocation,
    full_length_allocation,
    normalized_proportional_allocation,
    proportional_allocation,
)
from repro.fddi.token_ring_802_5 import TokenRing8025MacServer

__all__ = [
    "FDDIMacServer",
    "FDDIRing",
    "TokenRing8025MacServer",
    "equal_partition_allocation",
    "full_length_allocation",
    "max_token_rotation",
    "min_sync_allocation",
    "normalized_proportional_allocation",
    "proportional_allocation",
    "worst_case_token_wait",
]
