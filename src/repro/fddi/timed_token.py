"""Timed-token protocol timing facts.

These are standard properties of the FDDI MAC (Johnson & Sevcik's theorems,
used throughout refs [1, 11]): the token rotation time never exceeds
``2 * TTRT``, a station's synchronous service is guaranteed once per
rotation, and an allocation below the time to send one maximum frame is
useless (frame transmission is not preemptible).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import FDDI_MAX_FRAME_BYTES, bytes_to_bits

#: Maximum FDDI frame size in bits (4500 octets, per the standard).
MAX_FRAME_BITS = int(bytes_to_bits(FDDI_MAX_FRAME_BYTES))

#: Token + preamble + header overhead per capture, seconds (conservative
#: figure for 100 Mbps FDDI; a few microseconds in practice).
TOKEN_OVERHEAD = 5e-6


def max_token_rotation(ttrt: float) -> float:
    """Upper bound on the time between consecutive token arrivals.

    The timed-token protocol guarantees the token rotation time is at most
    ``2 * TTRT`` (Johnson's theorem); the average is at most TTRT.
    """
    if ttrt <= 0:
        raise ConfigurationError("TTRT must be positive")
    return 2.0 * ttrt


def min_sync_allocation(
    bandwidth: float, frame_bits: float = MAX_FRAME_BITS
) -> float:
    """``H^min_abs`` — the smallest useful synchronous allocation (seconds).

    An allocation must at least cover one maximum-size frame plus the token
    capture overhead; anything smaller cannot transmit a single frame per
    rotation and the overhead would "severely affect the throughput"
    (Section 5.2).
    """
    if bandwidth <= 0:
        raise ConfigurationError("bandwidth must be positive")
    if frame_bits <= 0:
        raise ConfigurationError("frame size must be positive")
    return frame_bits / bandwidth + TOKEN_OVERHEAD


def worst_case_token_wait(ttrt: float) -> float:
    """Longest a station can wait for the first usable token visit.

    In the worst case a station just misses the token and the next rotation
    is a full ``2 * TTRT`` one — this is why ``avail(t)`` in Theorem 1 only
    starts crediting service after the first full TTRT window has elapsed
    (the ``floor(t / TTRT) - 1`` term).
    """
    return max_token_rotation(ttrt)


def sync_capacity_check(
    allocations: "list[float]", ttrt: float, overhead: float
) -> bool:
    """The protocol constraint: ``sum(H_i) + Delta <= TTRT``."""
    if ttrt <= 0:
        raise ConfigurationError("TTRT must be positive")
    return sum(allocations) + overhead <= ttrt + 1e-12
