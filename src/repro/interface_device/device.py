"""The interface device joining one FDDI ring to the ATM backbone."""

from __future__ import annotations

import math
from typing import Optional

from repro.atm.link import AtmLink
from repro.atm.output_port import OutputPortServer
from repro.errors import ConfigurationError, TopologyError
from repro.servers.constant import ConstantDelayServer


class InterfaceDevice:
    """A LAN/ATM interface device (Figure 5 of the paper).

    On the send path a frame traverses the device's input port, frame
    switch, frame->cell converter and ATM output port; on the receive path,
    cells traverse the input port, cell->frame reassembly and frame switch,
    and the rebuilt frames are transmitted onto the destination ring by the
    device's timed-token MAC (with the connection's ``H_R`` allocation).

    The constant stage delays "can be measured or specified by the
    manufacturer" (Eqs. 18/20/22); they are configuration here.

    Parameters
    ----------
    device_id:
        Identifier.
    ring_id:
        The FDDI ring this device bridges.
    input_port_delay, frame_switch_delay:
        The constant delays of Eqs. (18) and (20), seconds.
    frame_processing_delay:
        Theorem 2's maximum frame (dis)assembly time, seconds.
    port_buffer_bits:
        Buffer of the device's ATM-side output port (payload bits).
    """

    def __init__(
        self,
        device_id: str,
        ring_id: str,
        input_port_delay: float = 0.0,
        frame_switch_delay: float = 0.0,
        frame_processing_delay: float = 0.0,
        port_buffer_bits: float = math.inf,
        port_latency: float = 0.0,
    ) -> None:
        for label, value in [
            ("input_port_delay", input_port_delay),
            ("frame_switch_delay", frame_switch_delay),
            ("frame_processing_delay", frame_processing_delay),
            ("port_latency", port_latency),
        ]:
            if value < 0:
                raise ConfigurationError(f"{label} must be non-negative")
        self.device_id = device_id
        self.ring_id = ring_id
        self.input_port_delay = float(input_port_delay)
        self.frame_switch_delay = float(frame_switch_delay)
        self.frame_processing_delay = float(frame_processing_delay)
        self._port_buffer_bits = port_buffer_bits
        self._port_latency = port_latency
        self._uplink: Optional[AtmLink] = None
        self._uplink_port: Optional[OutputPortServer] = None

    # ------------------------------------------------------------------
    # ATM attachment
    # ------------------------------------------------------------------

    def attach_uplink(self, link: AtmLink) -> OutputPortServer:
        """Attach the link into the ATM backbone; creates the egress port."""
        if self._uplink is not None:
            raise TopologyError(f"{self.device_id}: uplink already attached")
        self._uplink = link
        self._uplink_port = OutputPortServer(
            link,
            port_latency=self._port_latency,
            buffer_bits=self._port_buffer_bits,
            name=f"{self.device_id}:uplink",
        )
        return self._uplink_port

    @property
    def uplink(self) -> AtmLink:
        if self._uplink is None:
            raise TopologyError(f"{self.device_id}: no uplink attached")
        return self._uplink

    @property
    def uplink_port(self) -> OutputPortServer:
        """The Output_Port server of Figure 5 (shared across connections)."""
        if self._uplink_port is None:
            raise TopologyError(f"{self.device_id}: no uplink attached")
        return self._uplink_port

    # ------------------------------------------------------------------
    # Constant-delay stage servers
    # ------------------------------------------------------------------

    def input_port_server(self) -> ConstantDelayServer:
        """The Input_Port stage (Eq. 18) — constant delay, no reshaping."""
        return ConstantDelayServer(
            self.input_port_delay, name=f"{self.device_id}:input-port"
        )

    def frame_switch_server(self) -> ConstantDelayServer:
        """The Frame_Switch stage (Eq. 20) — constant delay, no reshaping."""
        return ConstantDelayServer(
            self.frame_switch_delay, name=f"{self.device_id}:frame-switch"
        )

    def __repr__(self) -> str:
        return f"InterfaceDevice({self.device_id!r} on ring {self.ring_id!r})"
