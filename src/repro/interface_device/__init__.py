"""Interface devices: the FDDI <-> ATM bridges of the ABHN architecture.

Section 4.3.2 decomposes the sender-side interface device (ID_S) into four
simple servers — input port, frame switch, frame->cell conversion
(Theorem 2), and the ATM output port — and the receiver-side device (ID_R)
is the mirror image with a cell->frame reassembly stage and a timed-token
MAC transmitting frames onto the destination ring.
"""

from repro.interface_device.frame_cell import FrameCellConversionServer
from repro.interface_device.cell_frame import CellFrameConversionServer
from repro.interface_device.device import InterfaceDevice

__all__ = [
    "CellFrameConversionServer",
    "FrameCellConversionServer",
    "InterfaceDevice",
]
