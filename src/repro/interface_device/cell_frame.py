"""Cell -> frame reassembly: the mirror of Theorem 2 at the receiving ID.

Cells arriving from the ATM backbone are reassembled into FDDI frames.  The
delay decomposition measures each compound server's delay at the *last bit*
(Fig. 3), so reassembly itself contributes only the constant per-frame
processing time; the envelope is re-quantized from cell payload bits back
to frame bits (removing the padding the converter added):

    ``A'(I) = ceil(A(I) / (F_C * C_S)) * F_S``
"""

from __future__ import annotations

from repro.atm.cell import CELL_PAYLOAD_BITS, cells_for_frame
from repro.envelopes.curve import Curve
from repro.envelopes.staircase import ceiling_quantize
from repro.errors import ConfigurationError
from repro.servers.base import DedicatedServer, ServerAnalysis


class CellFrameConversionServer(DedicatedServer):
    """Reassembles ATM cells into FDDI frames of ``frame_bits`` payload."""

    def __init__(
        self,
        frame_bits: float,
        processing_delay: float = 0.0,
        horizon: float = 1.0,
        name: str = "cell-frame",
    ) -> None:
        if frame_bits <= 0:
            raise ConfigurationError("frame size must be positive")
        if processing_delay < 0:
            raise ConfigurationError("processing delay must be non-negative")
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        self.frame_bits = float(frame_bits)
        self.processing_delay = float(processing_delay)
        self.horizon = float(horizon)
        self.name = name

    @property
    def bits_in_per_frame(self) -> float:
        """Cell payload bits that carry one frame (``F_C * C_S``)."""
        return cells_for_frame(self.frame_bits) * CELL_PAYLOAD_BITS

    def analyze(self, arrival: Curve) -> ServerAnalysis:
        t_max = max(self.horizon, float(arrival.last_breakpoint))
        output = ceiling_quantize(
            arrival,
            quantum_in=self.bits_in_per_frame,
            quantum_out=self.frame_bits,
            t_max=t_max,
        )
        return ServerAnalysis(
            delay_bound=self.processing_delay,
            output=output,
            backlog_bound=self.bits_in_per_frame,  # one frame being rebuilt
            busy_interval=0.0,
        )

    def cache_key(self):
        return ("cell-frame", self.frame_bits, self.processing_delay, self.horizon)

    def __repr__(self) -> str:
        return f"CellFrameConversionServer(F_S={self.frame_bits:.6g}b)"
