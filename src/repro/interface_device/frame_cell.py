"""Frame -> cell conversion: Theorem 2 of the paper.

The converter segments each incoming FDDI frame (``F_S`` payload bits) into
``F_C = ceil(F_S / C_S)`` ATM cells of ``C_S`` payload bits each, padding
the last cell.  Because the ATM side is faster than the FDDI side, a frame
is fully converted before the next one arrives: the stage contributes only
its (constant) maximum processing time, and reshapes the envelope by
ceiling quantization:

    ``Gamma'(I) = ceil(I * Gamma(I) / F_S) * F_C * C_S / I``   (Eq. 21)
"""

from __future__ import annotations

from repro.atm.cell import CELL_PAYLOAD_BITS, cells_for_frame
from repro.envelopes.curve import Curve
from repro.envelopes.staircase import ceiling_quantize
from repro.errors import ConfigurationError
from repro.servers.base import DedicatedServer, ServerAnalysis


class FrameCellConversionServer(DedicatedServer):
    """Theorem-2 conversion of FDDI frames into ATM cells.

    Parameters
    ----------
    frame_bits:
        ``F_S`` — the frame payload size in bits.  In the paper this is the
        sender's synchronous transmission budget per rotation
        (``F_S = H * BW_FDDI``), capped by the FDDI maximum frame size.
    processing_delay:
        Maximum time to segment one frame (Eq. 22), seconds.
    horizon:
        Time span over which the quantized envelope is computed exactly;
        beyond it a conservative affine majorant continues the curve.
    """

    def __init__(
        self,
        frame_bits: float,
        processing_delay: float = 0.0,
        horizon: float = 1.0,
        name: str = "frame-cell",
    ) -> None:
        if frame_bits <= 0:
            raise ConfigurationError("frame size must be positive")
        if processing_delay < 0:
            raise ConfigurationError("processing delay must be non-negative")
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        self.frame_bits = float(frame_bits)
        self.processing_delay = float(processing_delay)
        self.horizon = float(horizon)
        self.name = name

    @property
    def cells_per_frame(self) -> int:
        """``F_C`` of Eq. 21."""
        return cells_for_frame(self.frame_bits)

    @property
    def bits_out_per_frame(self) -> float:
        """``F_C * C_S`` — payload bits emitted per frame (with padding)."""
        return self.cells_per_frame * CELL_PAYLOAD_BITS

    def analyze(self, arrival: Curve) -> ServerAnalysis:
        t_max = max(self.horizon, float(arrival.last_breakpoint))
        output = ceiling_quantize(
            arrival,
            quantum_in=self.frame_bits,
            quantum_out=self.bits_out_per_frame,
            t_max=t_max,
        )
        return ServerAnalysis(
            delay_bound=self.processing_delay,
            output=output,
            backlog_bound=self.frame_bits,  # at most one frame in flight
            busy_interval=0.0,
        )

    def cache_key(self):
        return ("frame-cell", self.frame_bits, self.processing_delay, self.horizon)

    def __repr__(self) -> str:
        return (
            f"FrameCellConversionServer(F_S={self.frame_bits:.6g}b, "
            f"F_C={self.cells_per_frame})"
        )
