"""Graceful-degradation ladder driven by measured decision latency.

The admission decision is the expensive step (a binary search of delay
analyses), and its cost grows with the size of the interference component
it lands in.  Rather than letting the queue back up unboundedly, the
service climbs a ladder of progressively cheaper operating modes:

* ``EXACT`` — the default: bit-exact delay analysis;
* ``COARSENED`` — every propagated curve capped at
  ``ServiceConfig.degraded_segments`` breakpoints by *conservative*
  coarsening (arrival envelopes rounded up, service curves down), so all
  bounds remain valid — admission becomes strictly more conservative,
  never unsafe, just faster;
* ``FROZEN`` — new admissions are shed with ``BUSY`` (releases always
  pass; they shrink the problem).

Transitions use an EWMA of decision latency with hysteresis
(``degrade_hi`` to engage, ``degrade_lo`` to disengage, ``degrade_lo <
degrade_hi``) and a minimum dwell in decisions, so the ladder cannot flap
between rungs on a single outlier.  While FROZEN the ladder would observe
no latencies at all (everything is shed) and could never recover; instead
every ``freeze_probe_every``-th shed admission is decided anyway as a
**thaw probe**, feeding the EWMA so the ladder can step back down once
the component has drained.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.units import MS_PER_S

from repro.config import AnalysisConfig, ServiceConfig

EXACT = 0
COARSENED = 1
FROZEN = 2

LEVEL_NAMES = {EXACT: "EXACT", COARSENED: "COARSENED", FROZEN: "FROZEN"}


@dataclasses.dataclass(frozen=True)
class LadderTransition:
    """One recorded rung change (the metrics surface keeps all of them)."""

    #: Index of the decision whose latency triggered the change.
    decision_index: int
    from_level: int
    to_level: int
    #: EWMA latency at the moment of the transition, seconds.
    ewma: float

    def describe(self) -> str:
        return (
            f"decision {self.decision_index}: "
            f"{LEVEL_NAMES[self.from_level]} -> {LEVEL_NAMES[self.to_level]} "
            f"(ewma={self.ewma * MS_PER_S:.2f} ms)"
        )


class DegradationLadder:
    """Hysteretic EXACT -> COARSENED -> FROZEN controller."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.level = EXACT
        self._ewma: Optional[float] = None
        #: Smoothing factor of the standard N-observation EWMA.
        self._alpha = 2.0 / (config.latency_window + 1.0)
        #: Decisions observed since the last transition.
        self._dwell = config.min_dwell
        self._decisions = 0
        #: Shed admissions since freezing (drives thaw probing).
        self._frozen_sheds = 0
        self.transitions: List[LadderTransition] = []

    # -- observations ----------------------------------------------------

    @property
    def ewma(self) -> float:
        return 0.0 if self._ewma is None else self._ewma

    @property
    def frozen(self) -> bool:
        return self.level >= FROZEN

    def observe(self, latency: float) -> None:
        """Feed one decision latency (seconds); may change the level."""
        self._decisions += 1
        self._dwell += 1
        if self._ewma is None:
            self._ewma = latency
        else:
            self._ewma += self._alpha * (latency - self._ewma)
        if self._dwell < self.config.min_dwell:
            return
        if self._ewma > self.config.degrade_hi and self.level < FROZEN:
            self._step(self.level + 1)
        elif self._ewma < self.config.degrade_lo and self.level > EXACT:
            self._step(self.level - 1)

    def _step(self, to_level: int) -> None:
        self.transitions.append(
            LadderTransition(
                decision_index=self._decisions,
                from_level=self.level,
                to_level=to_level,
                ewma=self.ewma,
            )
        )
        self.level = to_level
        self._dwell = 0
        self._frozen_sheds = 0

    # -- freeze handling -------------------------------------------------

    def admit_allowed(self) -> bool:
        """Whether the next admission may be *decided* at all.

        While FROZEN, usually False — but every ``freeze_probe_every``-th
        call returns True (a thaw probe), so the EWMA keeps receiving
        observations and the freeze is not a trap state.
        """
        if not self.frozen:
            return True
        self._frozen_sheds += 1
        return self._frozen_sheds % self.config.freeze_probe_every == 0

    # -- analysis config -------------------------------------------------

    def analysis_for(self, base: AnalysisConfig) -> AnalysisConfig:
        """The analysis config decisions must run under at this rung."""
        if self.level == EXACT:
            return base
        return dataclasses.replace(
            base, coarsen_segments=self.config.degraded_segments
        )
