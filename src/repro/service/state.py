"""Canonical admission-state serialization and the recovery signature.

Recovery is verified by comparing *signatures*: a SHA-256 over the
canonical JSON of

* every active :class:`~repro.network.connection.ConnectionRecord` in
  **global admission order** (spec, verbatim route, both grants, delay
  bound — floats via ``repr`` so the comparison is bit-exact),
* each ring ledger's ``allocated_sync_time`` (``repr`` again — this is an
  insertion-ordered float *sum*, so it certifies not just the set of
  grants but the exact accumulation the ledger performed), and
* the service-level request/admission counters.

Two states with equal signatures are operationally indistinguishable:
same connections, same grants, same delay bounds, same ledger bit
patterns, same AP statistics.  The kill-and-restore property test demands
signature equality between a restored server and an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Sequence

from repro.network.connection import ConnectionRecord
from repro.network.topology import NetworkTopology
from repro.service.codec import record_to_dict


def _float_repr(value: Any) -> Any:
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        return {k: _float_repr(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_float_repr(v) for v in value]
    return value


def state_payload(
    records: Sequence[ConnectionRecord],
    n_requests: int,
    n_admitted: int,
    failed_nodes: Sequence[str] = (),
) -> Dict[str, Any]:
    """The snapshot body: ordered records, counters, topology health.

    ``records`` must be in global admission order — replaying them in
    list order re-inserts every ring-ledger entry in its original
    relative order, which is what makes the restored float sums
    bit-identical.  ``failed_nodes`` captures outage state so a restore
    taken mid-outage routes exactly as the dead process did.
    """
    return {
        "connections": [record_to_dict(rec) for rec in records],
        "counters": {"n_requests": n_requests, "n_admitted": n_admitted},
        "failed_nodes": sorted(failed_nodes),
    }


def state_signature(
    records: Sequence[ConnectionRecord],
    topology: NetworkTopology,
    n_requests: int,
    n_admitted: int,
) -> str:
    """SHA-256 hex digest of the full admission state (see module doc)."""
    ledger: Dict[str, List[str]] = {}
    for ring_id in sorted(topology.rings):
        ring = topology.rings[ring_id]
        ledger[ring_id] = [
            repr(ring.allocated_sync_time),
            repr(ring.available_sync_time),
        ]
    body = {
        "connections": _float_repr(
            [record_to_dict(rec) for rec in records]
        ),
        "rings": ledger,
        "counters": {"n_requests": n_requests, "n_admitted": n_admitted},
    }
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
