"""Write-ahead journal and snapshot store for the admission service.

The in-memory admission state dies with the process, so the journal is
the *sole* persistent truth.  Each decision that changes state appends
one JSON line::

    {"seq": 17, "op": "admit", "data": {...}, "sum": "9f2c4a0e1b7d"}

``sum`` is a SHA-256 prefix over the canonical encoding of the other
three fields.  The reader is **torn-tail tolerant**: a kill mid-append
leaves at most one partial final line, and the reader stops at the first
line that fails to parse, fails its checksum, or breaks the sequence
continuity — everything before it is trusted, everything after discarded.
Reopening for append first truncates the file back to the good prefix so
the torn bytes can never shadow later records.

Snapshots bound replay time: ``snapshot-<seq>.json`` captures the full
admission state *after* applying records ``1..seq`` and is written
atomically (temp file + ``os.replace``), so a kill during snapshotting
leaves the previous snapshot intact.  Recovery = newest valid snapshot +
replay of the journal tail.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import JournalError

JOURNAL_NAME = "journal.jsonl"
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d+)\.json$")
#: Journal ops that mutate admission state, counters, or topology health
#: (fault/repair events must replay too, or a restore taken mid-outage
#: would route around failures the dead process was still seeing).
OPS = ("admit", "reject", "release", "fault", "repair")


def _canonical(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:12]


@dataclasses.dataclass(frozen=True)
class JournalRecord:
    """One committed decision."""

    seq: int
    op: str
    data: Dict[str, Any]

    def encode(self) -> str:
        body = {"seq": self.seq, "op": self.op, "data": self.data}
        body["sum"] = _checksum(body)
        return _canonical(body)


def decode_line(line: str, expect_seq: Optional[int] = None) -> JournalRecord:
    """Parse and verify one journal line.

    Raises :class:`JournalError` on any corruption: unparsable JSON, wrong
    shape, unknown op, checksum mismatch, or (when ``expect_seq`` is
    given) a sequence-number gap.
    """
    try:
        raw = json.loads(line)
    except ValueError as exc:
        raise JournalError(f"unparsable journal line: {exc}") from None
    if not isinstance(raw, dict):
        raise JournalError("journal line is not an object")
    try:
        body = {"seq": raw["seq"], "op": raw["op"], "data": raw["data"]}
        declared = raw["sum"]
    except KeyError as exc:
        raise JournalError(f"journal line missing field {exc}") from None
    if body["op"] not in OPS:
        raise JournalError(f"unknown journal op {body['op']!r}")
    if not isinstance(body["seq"], int) or not isinstance(body["data"], dict):
        raise JournalError("journal line has wrong field types")
    if _checksum(body) != declared:
        raise JournalError(f"checksum mismatch on journal seq {body['seq']}")
    if expect_seq is not None and body["seq"] != expect_seq:
        raise JournalError(
            f"journal sequence gap: expected {expect_seq}, got {body['seq']}"
        )
    return JournalRecord(seq=body["seq"], op=body["op"], data=body["data"])


@dataclasses.dataclass
class JournalTail:
    """Result of scanning a journal file."""

    #: Records of the trusted prefix, in sequence order.
    records: List[JournalRecord]
    #: Byte length of the trusted prefix (truncate here before appending).
    good_bytes: int
    #: True when corrupted/torn bytes followed the trusted prefix.
    truncated: bool
    #: Human-readable description of the first corruption, if any.
    corruption: Optional[str] = None


def scan_journal(path: str, first_seq: int = 1) -> JournalTail:
    """Read the trusted prefix of a journal file (missing file = empty)."""
    if not os.path.exists(path):
        return JournalTail(records=[], good_bytes=0, truncated=False)
    records: List[JournalRecord] = []
    good = 0
    expect = first_seq
    with open(path, "rb") as fh:
        blob = fh.read()
    offset = 0
    while offset < len(blob):
        end = blob.find(b"\n", offset)
        if end < 0:
            # No newline: the tail was torn mid-append.
            return JournalTail(
                records, good, True, corruption="unterminated final line"
            )
        line = blob[offset:end]
        try:
            record = decode_line(line.decode("utf-8", "strict"), expect)
        except (JournalError, UnicodeDecodeError) as exc:
            return JournalTail(records, good, True, corruption=str(exc))
        records.append(record)
        expect = record.seq + 1
        offset = end + 1
        good = offset
    return JournalTail(records=records, good_bytes=good, truncated=False)


class JournalStore:
    """One service instance's journal + snapshots in a directory.

    Not thread-safe: the service serializes appends (journal order *is*
    the authoritative global decision order).
    """

    def __init__(self, directory: str, fsync: bool = False) -> None:
        self.directory = directory
        self.fsync = fsync
        os.makedirs(directory, exist_ok=True)
        self.journal_path = os.path.join(directory, JOURNAL_NAME)
        self._fh: Optional[Any] = None
        self.next_seq = 1
        #: Records appended since the last snapshot (drives snapshot cadence).
        self.since_snapshot = 0

    # -- journal -------------------------------------------------------

    def open_fresh(self) -> None:
        """Start a brand-new journal (truncates any existing one)."""
        self.close()
        self._fh = open(self.journal_path, "w", encoding="utf-8")
        self.next_seq = 1
        self.since_snapshot = 0

    def open_for_append(self, tail: JournalTail) -> None:
        """Reopen after recovery: truncate off torn bytes, continue the seq.

        ``tail`` must be the scan this recovery replayed — appending past
        un-truncated garbage would strand every later record behind the
        corruption.
        """
        self.close()
        if os.path.exists(self.journal_path):
            with open(self.journal_path, "r+b") as fh:
                fh.truncate(tail.good_bytes)
        self._fh = open(self.journal_path, "a", encoding="utf-8")
        last = tail.records[-1].seq if tail.records else 0
        self.next_seq = last + 1
        self.since_snapshot = 0

    def append(self, op: str, data: Dict[str, Any]) -> JournalRecord:
        """Durably append one decision; returns the committed record."""
        if self._fh is None:
            raise JournalError("journal is not open")
        record = JournalRecord(seq=self.next_seq, op=op, data=data)
        self._fh.write(record.encode() + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.next_seq += 1
        self.since_snapshot += 1
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- snapshots -----------------------------------------------------

    def snapshot_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"snapshot-{seq}.json")

    def write_snapshot(self, state: Dict[str, Any], seq: int) -> str:
        """Atomically persist ``state`` as the post-``seq`` snapshot."""
        payload = {"seq": seq, "state": state}
        payload["sum"] = _checksum(payload)
        path = self.snapshot_path(seq)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_canonical(payload))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.since_snapshot = 0
        # Older snapshots are superseded; keep the newest two for paranoia.
        seqs = sorted(self._snapshot_seqs(), reverse=True)
        for old in seqs[2:]:
            try:
                os.remove(self.snapshot_path(old))
            except OSError:
                pass
        return path

    def _snapshot_seqs(self) -> List[int]:
        out = []
        for name in os.listdir(self.directory):
            m = _SNAPSHOT_RE.match(name)
            if m:
                out.append(int(m.group(1)))
        return out

    def load_latest_snapshot(self) -> Tuple[Optional[Dict[str, Any]], int]:
        """Newest snapshot that verifies, as ``(state, seq)``.

        A snapshot that fails its checksum (or cannot be parsed) is
        skipped in favor of the next older one — the journal can always
        replay the difference.  Returns ``(None, 0)`` when no usable
        snapshot exists (replay the whole journal).
        """
        for seq in sorted(self._snapshot_seqs(), reverse=True):
            try:
                with open(self.snapshot_path(seq), encoding="utf-8") as fh:
                    raw = json.loads(fh.read())
                body = {"seq": raw["seq"], "state": raw["state"]}
                if _checksum(body) != raw["sum"] or raw["seq"] != seq:
                    continue
                if not isinstance(body["state"], dict):
                    continue
                return body["state"], seq
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return None, 0

    def scan_tail(self, after_seq: int) -> JournalTail:
        """The trusted journal records with ``seq > after_seq``.

        The journal file always starts at seq 1 (snapshots do not rotate
        it); the scan verifies the full chain from the start — cheap at
        these volumes and it validates continuity across the snapshot
        boundary — then drops the already-snapshotted prefix.  Raises
        :class:`JournalError` when the journal ends *before* ``after_seq``:
        snapshots are written only after those records were flushed, so a
        shorter journal means durable records vanished out-of-band.
        """
        tail = scan_journal(self.journal_path, first_seq=1)
        last_seq = tail.records[-1].seq if tail.records else 0
        if after_seq > last_seq:
            raise JournalError(
                f"snapshot seq {after_seq} is beyond the journal's last "
                f"trusted record (seq {last_seq}): durable journal entries "
                "are missing (file truncated or replaced out-of-band); "
                "refusing to restore from inconsistent storage"
            )
        tail.records = [r for r in tail.records if r.seq > after_seq]
        return tail
