"""JSON codecs for connection specs, routes and admitted records.

Everything the journal persists — and everything the JSON-lines front-end
accepts — round-trips through these functions.  Two properties matter:

* **bit-exactness**: floats are serialized by :mod:`json` via
  ``float.__repr__``, whose shortest-repr output parses back to the exact
  same IEEE-754 double.  A journaled allocation therefore restores to the
  identical bit pattern, which is what makes the recovery signature check
  (:mod:`repro.service.state`) meaningful.
* **closed type registry**: traffic descriptors are reconstructed only
  from an explicit allowlist of dataclass models, keyed by class name.
  Unknown types fail loudly with :class:`~repro.errors.JournalError`
  instead of guessing.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Type

from repro.errors import JournalError
from repro.network.connection import ConnectionRecord, ConnectionSpec
from repro.network.routing import Route
from repro.traffic.cbr import CBRTraffic
from repro.traffic.descriptor import TrafficDescriptor
from repro.traffic.dual_periodic import DualPeriodicTraffic
from repro.traffic.leaky_bucket import LeakyBucketTraffic
from repro.traffic.periodic import PeriodicTraffic

#: Traffic models the service can persist and accept over the wire.  All
#: are frozen dataclasses, so ``asdict``/constructor round-trips losslessly.
TRAFFIC_TYPES: Dict[str, Type[TrafficDescriptor]] = {
    cls.__name__: cls
    for cls in (
        DualPeriodicTraffic,
        PeriodicTraffic,
        LeakyBucketTraffic,
        CBRTraffic,
    )
}


def traffic_to_dict(traffic: TrafficDescriptor) -> Dict[str, Any]:
    name = type(traffic).__name__
    if name not in TRAFFIC_TYPES or not dataclasses.is_dataclass(traffic):
        raise JournalError(
            f"traffic type {name!r} is not journal-serializable "
            f"(known: {sorted(TRAFFIC_TYPES)})"
        )
    payload: Dict[str, Any] = {"type": name}
    payload.update(dataclasses.asdict(traffic))
    return payload


def dict_to_traffic(payload: Mapping[str, Any]) -> TrafficDescriptor:
    data = dict(payload)
    name = data.pop("type", None)
    cls = TRAFFIC_TYPES.get(str(name))
    if cls is None:
        raise JournalError(f"unknown traffic type {name!r}")
    try:
        return cls(**data)
    except TypeError as exc:
        raise JournalError(f"bad {name} payload: {exc}") from None


def spec_to_dict(spec: ConnectionSpec) -> Dict[str, Any]:
    return {
        "conn_id": spec.conn_id,
        "source_host": spec.source_host,
        "dest_host": spec.dest_host,
        "traffic": traffic_to_dict(spec.traffic),
        "deadline": spec.deadline,
    }


def dict_to_spec(payload: Mapping[str, Any]) -> ConnectionSpec:
    try:
        return ConnectionSpec(
            conn_id=str(payload["conn_id"]),
            source_host=str(payload["source_host"]),
            dest_host=str(payload["dest_host"]),
            traffic=dict_to_traffic(payload["traffic"]),
            deadline=float(payload["deadline"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(f"bad connection spec payload: {exc}") from None


def route_to_dict(route: Route) -> Dict[str, Any]:
    return {
        "source_host": route.source_host,
        "dest_host": route.dest_host,
        "source_ring": route.source_ring,
        "dest_ring": route.dest_ring,
        "source_device": route.source_device,
        "dest_device": route.dest_device,
        "switch_path": list(route.switch_path),
    }


def dict_to_route(payload: Mapping[str, Any]) -> Route:
    try:
        source_device = payload["source_device"]
        dest_device = payload["dest_device"]
        return Route(
            source_host=str(payload["source_host"]),
            dest_host=str(payload["dest_host"]),
            source_ring=str(payload["source_ring"]),
            dest_ring=str(payload["dest_ring"]),
            source_device=None if source_device is None else str(source_device),
            dest_device=None if dest_device is None else str(dest_device),
            switch_path=[str(s) for s in payload["switch_path"]],
        )
    except (KeyError, TypeError) as exc:
        raise JournalError(f"bad route payload: {exc}") from None


def record_to_dict(record: ConnectionRecord) -> Dict[str, Any]:
    """An admitted record, route included *verbatim*.

    The route is journaled rather than recomputed at restore time: an
    admission decided on a degraded topology may hold a route that the
    healthy topology's router would never produce, and replay must charge
    exactly the rings the original decision charged.
    """
    return {
        "spec": spec_to_dict(record.spec),
        "route": route_to_dict(record.route),
        "h_source": record.h_source,
        "h_dest": record.h_dest,
        "delay_bound": record.delay_bound,
    }


def dict_to_record(payload: Mapping[str, Any]) -> ConnectionRecord:
    try:
        bound = payload.get("delay_bound")
        return ConnectionRecord(
            spec=dict_to_spec(payload["spec"]),
            route=dict_to_route(payload["route"]),
            h_source=float(payload["h_source"]),
            h_dest=float(payload["h_dest"]),
            delay_bound=None if bound is None else float(bound),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(f"bad connection record payload: {exc}") from None
