"""The admission-service bench: churn, overload, kill-and-restore.

Four phases, mirroring the split :mod:`repro.bench_envelopes` uses —
bit-reproducible *trajectories* gate CI, wall-clock numbers inform:

1. **trajectory** (always the same fixed scenario, gated): a scripted
   admit/release/reject/error workload through a fully deterministic
   service (``workers=0``, tick clock, inert ladder, exact analysis).
   Every verdict, delay bound (``repr``-exact) and the final recovery
   signature must match the committed ``BENCH_service.json``.
2. **recovery** (gated booleans): the same workload killed at several
   journal offsets — plus a torn journal tail and a mid-run node failure
   — must restore bit-identically (prefix signature) and, continued to
   the end, converge to the uninterrupted final signature, with zero
   ledger leaks.
3. **ladder** (gated booleans): drive decision latency through the
   service's injectable clock — a step clock whose tick we inflate to
   simulate overload and shrink to simulate recovery — and verify the
   ladder walks up to FROZEN and back down to EXACT through the real
   measurement path.  Synthetic time makes the gate machine-independent.
4. **perf** (informational): sustained admit/release churn — decisions
   per second, p50/p99 decision latency.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.units import MS_PER_S

from repro.config import (
    CACConfig,
    NetworkConfig,
    ServiceConfig,
    build_network,
)
from repro.network.connection import ConnectionSpec
from repro.scenario.spec import ConnectionEntry, ScenarioSpec
from repro.service.degrade import EXACT
from repro.service.server import AdmissionService, ServiceResponse
from repro.traffic.dual_periodic import DualPeriodicTraffic

#: Fixed scenario of the gated phases: 6 rings, pairs (1,2)/(3,4)/(5,6).
N_RINGS = 6
PER_GROUP = 4
#: Background source: rho = 4 Mbps dual-periodic (fits many per ring).
BG = (60_000.0, 0.015, 30_000.0, 0.005)
BG_DEADLINE = 0.09
#: An unstable monster (rho = 133 Mbps > ring bandwidth): always rejected.
REJECT_TRAFFIC = (2_000_000.0, 0.015, 1_000_000.0, 0.005)

#: One scripted operation: ("admit", conn_id, src, dst, deadline, traffic4)
#: | ("release", conn_id) | ("fail", node) | ("repair", node).
Op = Tuple[Any, ...]


class TickClock:
    """Deterministic clock: every read advances by a fixed step."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def deterministic_config(snapshot_every: int = 7) -> ServiceConfig:
    """Service knobs for bit-reproducible runs: serial, ladder inert."""
    return ServiceConfig(
        queue_capacity=512,
        default_timeout=1e6,
        workers=0,
        snapshot_every=snapshot_every,
        degrade_hi=1e9,
        degrade_lo=1.0,
        seed=1,
    )


def scenario_spec() -> ScenarioSpec:
    """The bench's fixed network and standing population as a scenario spec.

    The bench (and the soak's default mode) is a *spec producer*: the
    topology and the background admissions come from this one declarative
    object, and ``python -m repro scenario replay`` can run the same
    standing population through the differential invariant suite.  The
    op-level parts of the bench (releases, duplicate admits, scripted node
    faults) stay in :func:`trajectory_ops` — a spec describes load, not an
    interactive session.
    """
    c1, p1, c2, p2 = BG
    traffic = DualPeriodicTraffic(c1=c1, p1=p1, c2=c2, p2=p2)
    entries = []
    for a, b in ((1, 2), (3, 4), (5, 6)):
        for j in range(PER_GROUP):
            entries.append(
                ConnectionEntry(
                    conn_id=f"bg{a}-{j}",
                    source_host=f"host{a}-{(j % 4) + 1}",
                    dest_host=f"host{b}-{((j + 1) % 4) + 1}",
                    traffic=traffic,
                    deadline=BG_DEADLINE,
                )
            )
    return ScenarioSpec(
        name="service-bench",
        topology=NetworkConfig(n_rings=N_RINGS, hosts_per_ring=4),
        connections=tuple(entries),
    )


def _network_config() -> NetworkConfig:
    return scenario_spec().topology


def _admit(
    conn_id: str,
    src: str,
    dst: str,
    deadline: float = BG_DEADLINE,
    traffic: Tuple[float, float, float, float] = BG,
) -> Op:
    return ("admit", conn_id, src, dst, deadline, traffic)


def trajectory_ops(with_faults: bool = False) -> List[Op]:
    """The fixed workload of the gated phases.

    Exercises every verdict: background admissions per ring pair, a
    guaranteed rejection, shard-bridging cross traffic, a duplicate admit
    (ERROR), an unknown release (UNKNOWN), and admit/release churn.  With
    ``with_faults`` a node failure displaces group 3 mid-run and is
    repaired before the end.
    """
    ops: List[Op] = []
    pairs = [(1, 2), (3, 4), (5, 6)]
    for a, b in pairs:
        for j in range(PER_GROUP):
            ops.append(
                _admit(
                    f"bg{a}-{j}",
                    f"host{a}-{(j % 4) + 1}",
                    f"host{b}-{((j + 1) % 4) + 1}",
                )
            )
    ops.append(
        _admit("reject-1", "host1-1", "host2-1", 0.05, REJECT_TRAFFIC)
    )
    # Bridge groups 1 and 2: shares ports with both -> shard merge.
    ops.append(_admit("x-1", "host1-1", "host3-1"))
    ops.append(_admit("x-1", "host1-1", "host3-1"))  # duplicate -> ERROR
    ops.append(("release", "ghost"))  # unknown -> UNKNOWN
    if with_faults:
        ops.append(("fail", "id5"))  # displaces every bg5-* connection
        ops.append(_admit("during-fault", "host5-1", "host6-1"))  # no route
    for r in range(3):
        ops.append(_admit(f"probe-{r}", "host1-2", "host2-3"))
        ops.append(("release", f"bg1-{r}"))
        ops.append(_admit(f"rb-{r}", "host1-3", "host2-4"))
        ops.append(("release", f"probe-{r}"))
    if with_faults:
        ops.append(("repair", "id5"))
        ops.append(_admit("after-repair", "host5-2", "host6-2"))
    ops.append(("release", "x-1"))
    ops.append(_admit("tail-1", "host3-2", "host4-2"))
    return ops


def _spec_of(op: Op) -> ConnectionSpec:
    _, conn_id, src, dst, deadline, traffic = op
    c1, p1, c2, p2 = traffic
    return ConnectionSpec(
        conn_id=conn_id,
        source_host=src,
        dest_host=dst,
        traffic=DualPeriodicTraffic(c1=c1, p1=p1, c2=c2, p2=p2),
        deadline=deadline,
    )


async def apply_ops(
    service: AdmissionService,
    ops: Sequence[Op],
    decisions: Optional[List[Dict[str, Any]]] = None,
    signatures: Optional[List[str]] = None,
) -> None:
    """Run scripted ops sequentially; optionally record each decision and
    the post-op recovery signature."""
    for op in ops:
        kind = op[0]
        response: Optional[ServiceResponse] = None
        if kind == "admit":
            response = await service.submit_admit(_spec_of(op))
        elif kind == "release":
            response = await service.submit_release(op[1])
        elif kind == "fail":
            await service.inject_node_failure(op[1])
        elif kind == "repair":
            await service.repair_node(op[1])
        else:  # pragma: no cover - scripted ops are internal
            raise ValueError(f"unknown scripted op {kind!r}")
        if decisions is not None and response is not None:
            bound = response.delay_bound
            decisions.append(
                {
                    "op": kind,
                    "conn_id": response.conn_id,
                    "verdict": response.verdict,
                    "delay_bound": None if bound is None else repr(bound),
                }
            )
        if signatures is not None:
            signatures.append(service.signature())


def _fresh_service(
    journal_dir: Optional[str],
    snapshot_every: int = 7,
) -> AdmissionService:
    return AdmissionService(
        build_network(_network_config()),
        network_config=_network_config(),
        cac_config=CACConfig(),
        service_config=deterministic_config(snapshot_every),
        journal_dir=journal_dir,
        clock=TickClock(),
    )


# ---------------------------------------------------------------------------
# Phase 1: deterministic trajectory
# ---------------------------------------------------------------------------


def run_trajectory() -> Dict[str, Any]:
    async def _run() -> Dict[str, Any]:
        with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
            service = _fresh_service(os.path.join(tmp, "wal"))
            decisions: List[Dict[str, Any]] = []
            await service.start()
            await apply_ops(service, trajectory_ops(), decisions)
            signature = service.signature()
            payload = {
                "decisions": decisions,
                "final_signature": signature,
                "n_requests": service.n_requests,
                "n_admitted": service.n_admitted,
                "n_active": len(service.state.active),
                "n_shards": len(service.state.shards),
                "n_merges": service.state.n_merges,
            }
            await service.stop()
            return payload

    return asyncio.run(_run())


# ---------------------------------------------------------------------------
# Phase 2: kill-and-restore recovery
# ---------------------------------------------------------------------------


def run_recovery(quick: bool) -> Dict[str, Any]:
    ops = trajectory_ops(with_faults=True)
    offsets = (
        [6, 15, len(ops) - 2]
        if quick
        else [4, 6, 10, 14, 15, 18, 22, len(ops) - 2]
    )

    async def _run() -> Dict[str, Any]:
        # Uninterrupted reference run, signature after every op.
        with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
            reference = _fresh_service(os.path.join(tmp, "ref"))
            ref_signatures: List[str] = []
            await reference.start()
            await apply_ops(reference, ops, signatures=ref_signatures)
            final_signature = reference.signature()
            await reference.stop()

            prefix_ok = True
            final_ok = True
            torn_ok = True
            for i, offset in enumerate(offsets):
                wal = os.path.join(tmp, f"kill-{i}")
                victim = _fresh_service(wal)
                await victim.start()
                await apply_ops(victim, ops[:offset])
                # Kill: no drain, no snapshot, no audit — the journal
                # file is already durable, the process state is lost.
                await victim.simulate_kill()
                del victim
                if i == 0:
                    # Torn tail: a partial record at the end of the file.
                    with open(
                        os.path.join(wal, "journal.jsonl"), "ab"
                    ) as fh:
                        fh.write(b'{"seq": 99999, "op": "adm')
                restored, report = AdmissionService.restore(
                    build_network(_network_config()),
                    wal,
                    network_config=_network_config(),
                    cac_config=CACConfig(),
                    service_config=deterministic_config(),
                    clock=TickClock(),
                )
                if i == 0 and not report.truncated_tail:
                    torn_ok = False
                if report.signature != ref_signatures[offset - 1]:
                    prefix_ok = False
                await restored.start(fresh_journal=False)
                await apply_ops(restored, ops[offset:])
                if restored.signature() != final_signature:
                    final_ok = False
                await restored.stop()

        return {
            "offsets": offsets,
            "prefix_signature_match": prefix_ok,
            "final_signature_match": final_ok,
            "torn_tail_ok": torn_ok,
            "final_signature": final_signature,
        }

    return asyncio.run(_run())


# ---------------------------------------------------------------------------
# Phase 3: degradation ladder under overload
# ---------------------------------------------------------------------------


#: Ladder-drill time steps (seconds per clock read).  The decision
#: latency the ladder observes is exactly one clock step (``workers=0``
#: brackets ``_decide`` with two adjacent reads), so these place the EWMA
#: decisively relative to the default hysteresis band (hi=0.5, lo=0.2).
_HEALTHY_STEP = 1e-6
_OVERLOAD_STEP = 1.0


def run_ladder(quick: bool) -> Dict[str, Any]:
    """Walk the degradation ladder up to FROZEN and back down to EXACT.

    Overload is simulated through the service's injectable clock: during
    the hot phase every clock read advances a full second, so each
    decision *measures* as taking one second — the real latency path
    (clock bracket around ``_decide`` → EWMA → ladder) runs unmodified,
    only time itself is synthetic.  That makes the engage/disengage
    booleans — the gated part — exact on any machine, and exercises the
    coarsened analysis config swap and the admission-freeze shed path
    for real (decisions during COARSENED run with ``coarsen_segments``).
    """
    hot = 12 if quick else 20
    cool = 40

    async def _run() -> Dict[str, Any]:
        clock = TickClock(step=_HEALTHY_STEP)
        config = ServiceConfig(
            queue_capacity=512,
            default_timeout=1e6,
            workers=0,
            snapshot_every=0,
            latency_window=4,
            min_dwell=4,
            degraded_segments=32,
            freeze_probe_every=4,
            seed=1,
        )
        service = AdmissionService(
            build_network(_network_config()),
            network_config=_network_config(),
            service_config=config,
            clock=clock,
        )
        await service.start()
        # Healthy warmup: EWMA settles near zero, ladder stays EXACT.
        for j in range(4):
            await service.submit_admit(
                _spec_of(_admit(f"warm-{j}", "host1-1", "host2-1"))
            )
        warm_level = service.ladder.level
        # Overload: every decision now observes a one-second latency.
        # EXACT -> COARSENED after the EWMA crosses hi, then (dwell
        # permitting) COARSENED -> FROZEN; once frozen, only every 4th
        # attempt is a thaw probe and the rest shed as BUSY.
        clock.step = _OVERLOAD_STEP
        shed = 0
        for j in range(hot):
            response = await service.submit_admit(
                _spec_of(
                    _admit(
                        f"hot-{j}",
                        f"host1-{(j % 4) + 1}",
                        f"host2-{((j + 1) % 4) + 1}",
                        0.15,
                        (30_000.0, 0.015, 15_000.0, 0.005),
                    )
                )
            )
            if response.verdict == "BUSY":
                shed += 1
        engaged_level = max(
            (t.to_level for t in service.ladder.transitions), default=EXACT
        )
        # Recovery: time heals; decisions measure fast again.  From
        # FROZEN, thaw probes (every 4th attempt) feed the EWMA until it
        # drops below lo; dwell gates each downward rung — 40 cycles is
        # ample for both transitions.
        clock.step = _HEALTHY_STEP
        for j in range(hot):
            await service.submit_release(f"hot-{j}")
        for j in range(cool):
            await service.submit_admit(
                _spec_of(_admit(f"cool-{j}", "host3-1", "host4-1"))
            )
            await service.submit_release(f"cool-{j}")
        result = {
            "engaged": engaged_level > EXACT,
            "disengaged": service.ladder.level == EXACT,
            "warm_level": warm_level,
            "max_level": engaged_level,
            "final_level": service.ladder.level,
            "n_shed_during_freeze": shed,
            "n_transitions": len(service.ladder.transitions),
            "transitions": [
                t.describe() for t in service.ladder.transitions
            ],
            "degrade_hi_s": config.degrade_hi,
            "degrade_lo_s": config.degrade_lo,
            "overload_step_s": _OVERLOAD_STEP,
        }
        await service.stop()
        return result

    return asyncio.run(_run())


# ---------------------------------------------------------------------------
# Phase 4: perf churn (informational)
# ---------------------------------------------------------------------------


def run_perf(quick: bool) -> Dict[str, Any]:
    rounds = 30 if quick else 120

    async def _run() -> Dict[str, Any]:
        with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
            service = AdmissionService(
                build_network(_network_config()),
                network_config=_network_config(),
                service_config=deterministic_config(snapshot_every=50),
                journal_dir=os.path.join(tmp, "wal"),
            )
            await service.start()
            # Standing background population, then admit/release churn.
            await apply_ops(service, trajectory_ops())
            t0 = time.perf_counter()
            n0 = service.metrics.decision_latency.n
            for r in range(rounds):
                await service.submit_admit(
                    _spec_of(
                        _admit(
                            f"churn-{r}",
                            f"host{(r % 3) * 2 + 1}-1",
                            f"host{(r % 3) * 2 + 2}-2",
                        )
                    )
                )
                await service.submit_release(f"churn-{r}")
            elapsed = time.perf_counter() - t0
            decided = service.metrics.decision_latency.n - n0
            payload = {
                "n_decisions": decided,
                "decisions_per_sec": decided / elapsed if elapsed else 0.0,
                "p50_ms": service.metrics.percentile(0.50) * MS_PER_S,
                "p99_ms": service.metrics.percentile(0.99) * MS_PER_S,
                "mean_ms": service.metrics.decision_latency.mean * MS_PER_S,
            }
            await service.stop()
            return payload

    return asyncio.run(_run())


# ---------------------------------------------------------------------------
# Suite driver and CI gate
# ---------------------------------------------------------------------------


def run_service_bench(quick: bool = False) -> Dict[str, Any]:
    return {
        "suite": "service",
        "quick": quick,
        "trajectory": run_trajectory(),
        "recovery": run_recovery(quick),
        "ladder": run_ladder(quick),
        "perf": run_perf(quick),
    }


def check_service_payload(
    current: Dict[str, Any], committed: Dict[str, Any]
) -> List[str]:
    """Gated comparison of a fresh run against the committed artifact.

    The trajectory (verdicts, ``repr``-exact delay bounds, signature) and
    counters must match field-by-field; the recovery and ladder booleans
    must hold in both payloads.  Perf numbers are never gated.
    """
    problems: List[str] = []
    mine = current.get("trajectory", {})
    theirs = committed.get("trajectory", {})
    my_d = mine.get("decisions", [])
    their_d = theirs.get("decisions", [])
    if len(my_d) != len(their_d):
        problems.append(
            f"trajectory length {len(my_d)} != committed {len(their_d)}"
        )
    for i, (a, b) in enumerate(zip(my_d, their_d)):
        for field in ("op", "conn_id", "verdict", "delay_bound"):
            if a.get(field) != b.get(field):
                problems.append(
                    f"decision {i} {field}: {a.get(field)!r} != "
                    f"committed {b.get(field)!r}"
                )
    for field in (
        "final_signature",
        "n_requests",
        "n_admitted",
        "n_active",
        "n_shards",
        "n_merges",
    ):
        if mine.get(field) != theirs.get(field):
            problems.append(
                f"trajectory {field}: {mine.get(field)!r} != "
                f"committed {theirs.get(field)!r}"
            )
    for section, flags in (
        ("recovery", ("prefix_signature_match", "final_signature_match", "torn_tail_ok")),
        ("ladder", ("engaged", "disengaged")),
    ):
        for payload, who in ((current, "current"), (committed, "committed")):
            for flag in flags:
                if payload.get(section, {}).get(flag) is not True:
                    problems.append(f"{who} {section}.{flag} is not true")
    return problems


def run_and_check(
    quick: bool, committed_path: str
) -> Tuple[Dict[str, Any], List[str]]:
    payload = run_service_bench(quick)
    try:
        with open(committed_path, encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError) as exc:
        return payload, [f"cannot read committed payload: {exc}"]
    return payload, check_service_payload(payload, committed)
