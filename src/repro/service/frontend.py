"""JSON-lines TCP front-end for the admission service.

One request object per line, one response object per line, in order::

    {"op": "admit", "conn_id": "c1", "source_host": "host1-1",
     "dest_host": "host2-1", "traffic": {"type": "DualPeriodicTraffic",
     "c1": 120000, "p1": 0.015, "c2": 60000, "p2": 0.005},
     "deadline": 0.09, "priority": 0}
    {"op": "release", "conn_id": "c1"}
    {"op": "metrics"}
    {"op": "ping"}

Responses carry at least ``verdict`` (``ADMITTED``/``REJECTED``/``BUSY``/
``TIMEOUT``/``RELEASED``/``UNKNOWN``/``ERROR`` — or ``OK`` for
``ping``/``metrics``).  Malformed input never kills the connection: the
offending line is answered with an ``ERROR`` verdict and parsing
continues at the next line.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from repro.errors import JournalError, ReproError
from repro.network.connection import ConnectionSpec
from repro.service.codec import dict_to_traffic
from repro.service.server import AdmissionService


def _error(reason: str, conn_id: str = "") -> Dict[str, Any]:
    return {"verdict": "ERROR", "conn_id": conn_id, "reason": reason}


async def handle_request(
    service: AdmissionService, payload: Dict[str, Any]
) -> Dict[str, Any]:
    """Dispatch one parsed request object to the service."""
    op = payload.get("op")
    conn_id = str(payload.get("conn_id", ""))
    if op == "ping":
        return {"verdict": "OK", "op": "ping"}
    if op == "metrics":
        return {"verdict": "OK", "metrics": service.metrics_snapshot()}
    if op == "release":
        if not conn_id:
            return _error("release needs conn_id")
        timeout = payload.get("timeout")
        response = await service.submit_release(
            conn_id, timeout=None if timeout is None else float(timeout)
        )
        return response.to_dict()
    if op == "admit":
        try:
            spec = ConnectionSpec(
                conn_id=conn_id,
                source_host=str(payload["source_host"]),
                dest_host=str(payload["dest_host"]),
                traffic=dict_to_traffic(payload["traffic"]),
                deadline=float(payload["deadline"]),
            )
        except (KeyError, TypeError, ValueError, JournalError) as exc:
            return _error(f"bad admit request: {exc}", conn_id)
        timeout = payload.get("timeout")
        response = await service.submit_admit(
            spec,
            priority=int(payload.get("priority", 0)),
            timeout=None if timeout is None else float(timeout),
        )
        return response.to_dict()
    return _error(f"unknown op {op!r}", conn_id)


async def handle_connection(
    service: AdmissionService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client: read JSON lines, answer JSON lines."""
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", "replace").strip()
            if not text:
                continue
            try:
                payload = json.loads(text)
                if not isinstance(payload, dict):
                    raise ValueError("request must be a JSON object")
                answer = await handle_request(service, payload)
            except ValueError as exc:
                answer = _error(f"unparsable request: {exc}")
            except ReproError as exc:
                answer = _error(f"{type(exc).__name__}: {exc}")
            writer.write((json.dumps(answer) + "\n").encode())
            await writer.drain()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass


async def serve(
    service: AdmissionService,
    host: str = "127.0.0.1",
    port: int = 8642,
    ready: Optional["asyncio.Event"] = None,
) -> None:
    """Run the TCP front-end until cancelled (service must be started)."""

    async def _client(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await handle_connection(service, reader, writer)

    server = await asyncio.start_server(_client, host, port)
    if ready is not None:
        ready.set()
    async with server:
        await server.serve_forever()
