"""Standing admission-control service over the CAC of Section 5.3.

The experiments drive :class:`~repro.core.cac.AdmissionController` as a
library inside one process and throw it away afterwards.  This package
turns the same controller into a *service* an operator could actually run
against live connection signalling, hardened end-to-end for faults:

* :mod:`repro.service.server` — the asyncio :class:`AdmissionService`:
  bounded priority queue with load shedding, per-request deadlines with
  ``TIMEOUT`` verdicts, write-ahead journaling, and a graceful-degradation
  ladder (exact analysis -> conservative coarsening -> admission freeze)
  driven by measured decision latency;
* :mod:`repro.service.shard` — the active set sharded by the interference
  partition (plus ring-ledger coupling) so independent shards can decide
  concurrently;
* :mod:`repro.service.journal` — the crash-recovery journal and snapshot
  store: a killed server restores bit-identically;
* :mod:`repro.service.frontend` — a JSON-lines TCP front-end;
* :mod:`repro.service.bench` — the churn/overload/kill-recovery bench
  behind ``python -m repro service bench`` and ``BENCH_service.json``.
"""

from __future__ import annotations

from repro.service.degrade import COARSENED, EXACT, FROZEN, DegradationLadder
from repro.service.journal import JournalStore
from repro.service.server import (
    ADMITTED,
    BUSY,
    ERROR,
    REJECTED,
    RELEASED,
    TIMEOUT,
    UNKNOWN,
    AdmissionService,
    ServiceResponse,
)
from repro.service.shard import ShardedAdmissionState

__all__ = [
    "ADMITTED",
    "BUSY",
    "COARSENED",
    "ERROR",
    "EXACT",
    "FROZEN",
    "REJECTED",
    "RELEASED",
    "TIMEOUT",
    "UNKNOWN",
    "AdmissionService",
    "DegradationLadder",
    "JournalStore",
    "ServiceResponse",
    "ShardedAdmissionState",
]
