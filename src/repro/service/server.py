"""The standing admission-control service.

:class:`AdmissionService` wraps the sharded CAC state behind an asyncio
request queue and hardens the whole decision path:

* **bounded queue with priority shedding** — admits past
  ``ServiceConfig.queue_capacity`` shed the lowest-priority queued admit
  (or the newcomer itself) with a ``BUSY`` verdict carrying a
  deterministic exponential ``retry_after`` hint.  Releases always pass:
  they free resources and shrink every queue behind them.
* **per-request deadlines** — a request that waits or computes past its
  timeout is answered ``TIMEOUT``; an admission that completed too late
  is rolled back first, so ``TIMEOUT`` always means "nothing changed".
* **write-ahead journal** — every state-changing decision is appended to
  the :class:`~repro.service.journal.JournalStore` *before* the response
  is released, so a crash can lose at most decisions whose verdict no
  client ever saw.  :meth:`AdmissionService.restore` rebuilds the exact
  admission state (snapshot + tail replay) and proves it with the
  recovery signature and a ledger audit.
* **graceful degradation** — the
  :class:`~repro.service.degrade.DegradationLadder` watches decision
  latency and steps the analysis from exact to conservative coarsening to
  an admission freeze, with hysteresis and thaw probes.

Concurrency modes: ``workers == 0`` decides inline on the event loop in
strict arrival order — fully deterministic, the mode every bit-identity
check runs in.  ``workers > 0`` dispatches decisions to a thread pool,
one in flight per shard (shards share no rings or ports, so concurrent
decisions commute); the journal append happens under the deciding
shard's lock, which keeps each ring's ledger insertion order equal to
the journal order — the property replay depends on.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import CACConfig, NetworkConfig, ServiceConfig
from repro.core.cac import AdmissionResult
from repro.errors import AuditError, JournalError, ReproError, RoutingError
from repro.faults.retry import RetryPolicy
from repro.network.connection import ConnectionSpec
from repro.network.topology import NetworkTopology
from repro.service import codec
from repro.service.degrade import DegradationLadder
from repro.service.journal import JournalStore, JournalTail
from repro.service.shard import Shard, ShardedAdmissionState, shard_footprint
from repro.service.state import state_payload, state_signature
from repro.sim.metrics import RunningStats
from repro.sim.random import RandomStreams

# Verdicts of the service API (strings so they serialize as themselves).
ADMITTED = "ADMITTED"
REJECTED = "REJECTED"
RELEASED = "RELEASED"
TIMEOUT = "TIMEOUT"
BUSY = "BUSY"
UNKNOWN = "UNKNOWN"
ERROR = "ERROR"

#: Ledger discrepancies below this are float noise, not leaks (matches
#: the survivability audit's tolerance).
LEAK_TOLERANCE = 1e-9


@dataclasses.dataclass(frozen=True)
class ServiceResponse:
    """The service's answer to one request."""

    verdict: str
    conn_id: str
    reason: str = ""
    #: End-to-end worst-case delay bound granted (``ADMITTED`` only).
    delay_bound: Optional[float] = None
    #: Suggested client backoff before retrying (``BUSY``/``TIMEOUT``).
    retry_after: Optional[float] = None
    #: Decision latency in seconds (0 when no decision ran).
    latency: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "verdict": self.verdict,
            "conn_id": self.conn_id,
            "reason": self.reason,
            "latency": self.latency,
        }
        if self.delay_bound is not None:
            out["delay_bound"] = self.delay_bound
        if self.retry_after is not None:
            out["retry_after"] = self.retry_after
        return out


@dataclasses.dataclass
class _Queued:
    """One request waiting in the bounded queue."""

    seq: int
    kind: str  # "admit" | "release"
    conn_id: str
    priority: int
    deadline: float
    spec: Optional[ConnectionSpec]
    future: "asyncio.Future[ServiceResponse]"


@dataclasses.dataclass(frozen=True)
class RestoreReport:
    """What :meth:`AdmissionService.restore` rebuilt and verified."""

    snapshot_seq: int
    n_snapshot_records: int
    n_replayed: int
    truncated_tail: bool
    corruption: Optional[str]
    signature: str
    n_requests: int
    n_admitted: int
    n_active: int


class ServiceMetrics:
    """Counters and latency statistics of one service instance."""

    #: Latency samples kept for percentile estimates.
    SAMPLE_CAP = 65_536

    def __init__(self) -> None:
        self.verdicts: Dict[str, int] = {
            v: 0
            for v in (ADMITTED, REJECTED, RELEASED, TIMEOUT, BUSY, UNKNOWN, ERROR)
        }
        self.decision_latency = RunningStats()
        self._samples: List[float] = []
        self.queue_high_water = 0
        self.n_shed = 0
        self.n_snapshots = 0
        self.n_displaced = 0
        self.n_thaw_probes = 0

    def observe_latency(self, latency: float) -> None:
        self.decision_latency.add(latency)
        if len(self._samples) < self.SAMPLE_CAP:
            self._samples.append(latency)

    def count(self, verdict: str) -> None:
        self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1

    def percentile(self, q: float) -> float:
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "verdicts": dict(self.verdicts),
            "decisions": self.decision_latency.n,
            "latency_mean": self.decision_latency.mean,
            "latency_p50": self.percentile(0.50),
            "latency_p99": self.percentile(0.99),
            "queue_high_water": self.queue_high_water,
            "n_shed": self.n_shed,
            "n_snapshots": self.n_snapshots,
            "n_displaced": self.n_displaced,
            "n_thaw_probes": self.n_thaw_probes,
        }


class AdmissionService:
    """Asyncio admission-control server over a sharded CAC state."""

    def __init__(
        self,
        topology: NetworkTopology,
        network_config: Optional[NetworkConfig] = None,
        cac_config: Optional[CACConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        journal_dir: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = service_config or ServiceConfig()
        self.state = ShardedAdmissionState(topology, network_config, cac_config)
        self.ladder = DegradationLadder(self.config)
        self.metrics = ServiceMetrics()
        self.clock: Callable[[], float] = clock or time.monotonic
        self.journal: Optional[JournalStore] = (
            JournalStore(journal_dir, fsync=self.config.fsync)
            if journal_dir is not None
            else None
        )
        #: Aggregate AP counters (the per-shard controllers each count only
        #: their own slice; these are the journaled, restorable totals).
        self.n_requests = 0
        self.n_admitted = 0
        self._base_analysis = self.state.cac_config.analysis
        self._retry_policy = RetryPolicy(
            base_delay=self.config.retry_base_delay,
            factor=self.config.retry_factor,
            max_delay=self.config.retry_max_delay,
            max_attempts=64,
            jitter=0.1,
        )
        self._streams = RandomStreams(self.config.seed)
        self._busy_counts: Dict[str, int] = {}
        # Queue machinery.
        self._queue: List[_Queued] = []
        self._queue_seq = 0
        self._wake = asyncio.Event()
        self._running = False
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        # workers > 0 machinery.
        self._executor: Optional[ThreadPoolExecutor] = None
        self._structure_lock = asyncio.Lock()
        self._journal_lock = asyncio.Lock()
        self._inflight: "set[asyncio.Task[None]]" = set()

    # -- lifecycle -------------------------------------------------------

    async def start(self, fresh_journal: bool = True) -> None:
        """Open the journal and start dispatching."""
        if self._running:
            return
        if self.journal is not None and fresh_journal:
            self.journal.open_fresh()
        if self.config.workers > 0:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="cac-decide",
            )
        self._running = True
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def stop(self) -> None:
        """Drain, snapshot, audit — raises :class:`AuditError` on leaks."""
        if not self._running:
            return
        self._running = False
        self._wake.set()
        # Claim-then-await: null the shared handle *before* suspending so
        # a concurrent stop() cannot await (or re-null) the same task.
        dispatcher = self._dispatcher
        self._dispatcher = None
        if dispatcher is not None:
            await dispatcher
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        for queued in self._queue:
            if not queued.future.done():
                queued.future.set_result(
                    ServiceResponse(
                        verdict=BUSY,
                        conn_id=queued.conn_id,
                        reason="service shutting down",
                    )
                )
        self._queue.clear()
        if self.journal is not None:
            self._write_snapshot()
            self.journal.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        leaks = {
            rid: diff
            for rid, diff in self.state.audit_allocations().items()
            if abs(diff) > LEAK_TOLERANCE
        }
        if leaks:
            raise AuditError(
                "service shutdown audit found leaked synchronous bandwidth: "
                + ", ".join(f"{rid}: {diff:+.3e}s" for rid, diff in leaks.items())
            )

    async def simulate_kill(self) -> None:
        """Die abruptly: no drain, no final snapshot, no audit.

        Mimics ``kill -9`` for the recovery drills — the journal file is
        left exactly as the last append flushed it, and the only cleanup
        is what process death would do anyway (the event loop reaps the
        dispatcher; file handles drop).
        """
        self._running = False
        dispatcher = self._dispatcher
        self._dispatcher = None
        if dispatcher is not None:
            dispatcher.cancel()
            try:
                await dispatcher
            except asyncio.CancelledError:
                pass
        if self.journal is not None:
            self.journal.close()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    async def __aenter__(self) -> "AdmissionService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- public API ------------------------------------------------------

    async def submit_admit(
        self,
        spec: ConnectionSpec,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> ServiceResponse:
        """Request admission; resolves when the verdict is durable."""
        return await self._submit("admit", spec.conn_id, spec, priority, timeout)

    async def submit_release(
        self, conn_id: str, timeout: Optional[float] = None
    ) -> ServiceResponse:
        """Request teardown.  Never shed: releases shrink the backlog."""
        return await self._submit("release", conn_id, None, 0, timeout)

    async def _submit(
        self,
        kind: str,
        conn_id: str,
        spec: Optional[ConnectionSpec],
        priority: int,
        timeout: Optional[float],
    ) -> ServiceResponse:
        if not self._running:
            return ServiceResponse(
                verdict=BUSY, conn_id=conn_id, reason="service not running"
            )
        now = self.clock()
        self._queue_seq += 1
        queued = _Queued(
            seq=self._queue_seq,
            kind=kind,
            conn_id=conn_id,
            priority=priority,
            deadline=now + (timeout or self.config.default_timeout),
            spec=spec,
            future=asyncio.get_running_loop().create_future(),
        )
        if kind == "admit":
            shed = self._make_room(queued)
            if shed is not None and shed is queued:
                return self._busy_response(conn_id, "admission queue full")
        self._queue.append(queued)
        self.metrics.queue_high_water = max(
            self.metrics.queue_high_water, len(self._queue)
        )
        self._wake.set()
        return await queued.future

    def _make_room(self, incoming: _Queued) -> Optional[_Queued]:
        """Enforce the admit-queue bound; returns the shed request, if any.

        The victim is the lowest-priority queued admit, youngest first —
        but only if its priority is strictly below the newcomer's;
        otherwise the newcomer itself is shed.
        """
        admits = [q for q in self._queue if q.kind == "admit"]
        if len(admits) < self.config.queue_capacity:
            return None
        victim = min(admits, key=lambda q: (q.priority, -q.seq))
        if victim.priority >= incoming.priority:
            self.metrics.n_shed += 1
            return incoming
        self._queue.remove(victim)
        self.metrics.n_shed += 1
        if not victim.future.done():
            victim.future.set_result(
                self._busy_response(victim.conn_id, "shed by higher priority")
            )
        return victim

    def _busy_response(self, conn_id: str, reason: str) -> ServiceResponse:
        response = ServiceResponse(
            verdict=BUSY,
            conn_id=conn_id,
            reason=reason,
            retry_after=self._retry_hint(conn_id),
        )
        self.metrics.count(BUSY)
        return response

    def _retry_hint(self, conn_id: str) -> float:
        """Deterministic exponential backoff hint, one substream per id."""
        attempt = self._busy_counts.get(conn_id, 0) + 1
        self._busy_counts[conn_id] = attempt
        rng = self._streams.stream(f"retry:{conn_id}")
        return self._retry_policy.delay(
            min(attempt, self._retry_policy.max_attempts), rng
        )

    # -- dispatching -----------------------------------------------------

    def _pop_next(self) -> Optional[_Queued]:
        if not self._queue:
            return None
        best = min(self._queue, key=lambda q: (-q.priority, q.seq))
        self._queue.remove(best)
        return best

    async def _dispatch_loop(self) -> None:
        while self._running:
            if not self._queue:
                self._wake.clear()
                await self._wake.wait()
                continue
            if (
                self.journal is not None
                and self.config.snapshot_every > 0
                and self.journal.since_snapshot >= self.config.snapshot_every
            ):
                await self._snapshot_quiesced()
            queued = self._pop_next()
            if queued is None:
                continue
            if self.config.workers == 0:
                await self._serve_one(queued)
            else:
                task = asyncio.get_running_loop().create_task(
                    self._serve_one(queued)
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    async def _serve_one(self, queued: _Queued) -> None:
        try:
            response = await self._handle(queued)
        except ReproError as exc:
            self.metrics.count(ERROR)
            response = ServiceResponse(
                verdict=ERROR,
                conn_id=queued.conn_id,
                reason=f"{type(exc).__name__}: {exc}",
            )
        if not queued.future.done():
            queued.future.set_result(response)

    async def _handle(self, queued: _Queued) -> ServiceResponse:
        if self.clock() > queued.deadline:
            self.metrics.count(TIMEOUT)
            return ServiceResponse(
                verdict=TIMEOUT,
                conn_id=queued.conn_id,
                reason="request expired while queued",
                retry_after=self._retry_hint(queued.conn_id),
            )
        if queued.kind == "release":
            return await self._handle_release(queued)
        return await self._handle_admit(queued)

    async def _handle_release(self, queued: _Queued) -> ServiceResponse:
        conn_id = queued.conn_id
        async with self._structure_lock:
            shard = self.state.shard_of(conn_id)
            if shard is None:
                self.metrics.count(UNKNOWN)
                return ServiceResponse(
                    verdict=UNKNOWN,
                    conn_id=conn_id,
                    reason="no such active connection",
                )
            async with shard.lock:
                self.state.release(conn_id)
                await self._journal("release", {"conn_id": conn_id})
        self.metrics.count(RELEASED)
        return ServiceResponse(verdict=RELEASED, conn_id=conn_id)

    async def _handle_admit(self, queued: _Queued) -> ServiceResponse:
        spec = queued.spec
        assert spec is not None
        conn_id = spec.conn_id
        if not self.ladder.admit_allowed():
            return self._busy_response(conn_id, "admissions frozen (overload)")
        if self.ladder.frozen:
            self.metrics.n_thaw_probes += 1

        # Lock discipline (workers > 0): structure lock -> shard locks in
        # ascending id -> journal lock, globally consistent, so merges,
        # decisions, snapshots and fault injection can never deadlock.
        # Merging only ever happens while every involved shard's lock is
        # held here, so a merge cannot move records out from under a
        # decision running in the executor.
        async with self._structure_lock:
            # Duplicate check under the structure lock: between an
            # unguarded check and the decision another task could admit
            # the same id (the controller would catch it, but only after
            # shards were merged for nothing).
            if conn_id in self.state.active:
                self.metrics.count(ERROR)
                return ServiceResponse(
                    verdict=ERROR,
                    conn_id=conn_id,
                    reason="connection id already active",
                )
            try:
                route = self.state.route_of(spec)
            except RoutingError as exc:
                return await self._finish_reject(
                    conn_id, f"no route: {exc}", latency=0.0
                )
            footprint = shard_footprint(self.state.topology, route)
            overlap = self.state.overlapping(footprint)
            for other in overlap:
                await other.lock.acquire()
            try:
                shard, footprint = self.state.resolve(route)
            except BaseException:
                for other in overlap:
                    other.lock.release()
                raise
            # Hand off: drop every overlap lock (one of them may *be*
            # the merged shard's), then take the deciding shard's lock
            # unconditionally.  The structure lock is still held, so no
            # other task can touch the shard map in between — and every
            # path now provably exits this block holding shard.lock.
            for other in overlap:
                other.lock.release()
            await shard.lock.acquire()
        try:
            shard.controller.set_analysis_config(
                self.ladder.analysis_for(self._base_analysis)
            )
            t0 = self.clock()
            result = await self._decide(shard, spec)
            latency = self.clock() - t0
            self.ladder.observe(latency)
            self.metrics.observe_latency(latency)
            if self.clock() > queued.deadline:
                # Too late to matter: undo a successful admission so
                # TIMEOUT always means "no state changed".
                if result.admitted:
                    shard.controller.release(conn_id)
                self.metrics.count(TIMEOUT)
                return ServiceResponse(
                    verdict=TIMEOUT,
                    conn_id=conn_id,
                    reason="decision exceeded request deadline",
                    retry_after=self._retry_hint(conn_id),
                    latency=latency,
                )
            if not result.admitted:
                return await self._finish_reject(
                    conn_id, result.reason, latency
                )
            self.state.commit_admit(shard, footprint, result)
            record = result.record
            assert record is not None
            await self._journal("admit", codec.record_to_dict(record))
            self.n_requests += 1
            self.n_admitted += 1
        finally:
            shard.lock.release()
        self._busy_counts.pop(conn_id, None)
        self.metrics.count(ADMITTED)
        return ServiceResponse(
            verdict=ADMITTED,
            conn_id=conn_id,
            reason=result.reason,
            delay_bound=record.delay_bound,
            latency=latency,
        )

    async def _decide(
        self, shard: Shard, spec: ConnectionSpec
    ) -> AdmissionResult:
        if self._executor is None:
            return shard.controller.request(spec)
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, shard.controller.request, spec
        )

    async def _finish_reject(
        self, conn_id: str, reason: str, latency: float
    ) -> ServiceResponse:
        await self._journal("reject", {"conn_id": conn_id})
        self.n_requests += 1
        self.metrics.count(REJECTED)
        return ServiceResponse(
            verdict=REJECTED, conn_id=conn_id, reason=reason, latency=latency
        )

    # -- journaling ------------------------------------------------------

    async def _journal(self, op: str, data: Dict[str, Any]) -> None:
        # Bind once: the None check and the append must agree on the
        # same object even if the handle were swapped across the await.
        journal = self.journal
        if journal is None:
            return
        async with self._journal_lock:
            journal.append(op, data)

    def _write_snapshot(self) -> None:
        if self.journal is None or self.journal.next_seq == 1:
            return
        payload = state_payload(
            self.state.records_in_order(),
            self.n_requests,
            self.n_admitted,
            failed_nodes=self.state.topology.failed_nodes,
        )
        self.journal.write_snapshot(payload, seq=self.journal.next_seq - 1)
        self.metrics.n_snapshots += 1

    async def _snapshot_quiesced(self) -> None:
        """Write a snapshot with every shard quiesced (workers > 0 safe)."""
        async with self._structure_lock:
            shards = sorted(self.state.shards.values(), key=lambda s: s.shard_id)
            for shard in shards:
                await shard.lock.acquire()
            try:
                self._write_snapshot()
            finally:
                for shard in shards:
                    shard.lock.release()

    # -- fault handling --------------------------------------------------

    async def inject_node_failure(self, node_id: str) -> List[str]:
        """Fail a switch/device; force-release every connection riding it.

        The forced teardowns are journaled as ordinary releases, so a
        recovery replays them and the restored state matches.  Returns
        the displaced connection ids (a retry layer would re-admit them).
        """
        async with self._structure_lock:
            shards = sorted(self.state.shards.values(), key=lambda s: s.shard_id)
            for shard in shards:
                await shard.lock.acquire()
            try:
                self.state.topology.fail_node(node_id)
                await self._journal("fault", {"node": node_id})
                displaced = [
                    rec.conn_id
                    for rec in self.state.records_in_order()
                    if node_id
                    in (rec.route.source_device, rec.route.dest_device)
                    or node_id in rec.route.switch_path
                ]
                for conn_id in displaced:
                    self.state.release(conn_id)
                    await self._journal("release", {"conn_id": conn_id})
                    self.metrics.n_displaced += 1
            finally:
                for shard in shards:
                    shard.lock.release()
        return displaced

    async def repair_node(self, node_id: str) -> None:
        async with self._structure_lock:
            self.state.topology.restore_node(node_id)
            await self._journal("repair", {"node": node_id})

    # -- recovery --------------------------------------------------------

    def signature(self) -> str:
        """The current recovery signature (see :mod:`repro.service.state`)."""
        return state_signature(
            self.state.records_in_order(),
            self.state.topology,
            self.n_requests,
            self.n_admitted,
        )

    @classmethod
    def restore(
        cls,
        topology: NetworkTopology,
        journal_dir: str,
        network_config: Optional[NetworkConfig] = None,
        cac_config: Optional[CACConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> Tuple["AdmissionService", RestoreReport]:
        """Rebuild a killed service from its journal directory.

        ``topology`` must be a *fresh* instance of the network the dead
        process ran (empty ledgers); the snapshot and journal tail are
        replayed onto it in global admission order, bounds are refreshed,
        and the rebuilt ledgers are audited — any leak raises
        :class:`AuditError`, as does journal corruption before the torn
        tail.  The service is returned un-started; its journal continues
        from the trusted prefix (torn bytes truncated).
        """
        service = cls(
            topology,
            network_config=network_config,
            cac_config=cac_config,
            service_config=service_config,
            journal_dir=journal_dir,
            clock=clock,
        )
        store = service.journal
        assert store is not None
        snapshot, snap_seq = store.load_latest_snapshot()
        n_snapshot_records = 0
        if snapshot is not None:
            counters = snapshot.get("counters", {})
            service.n_requests = int(counters.get("n_requests", 0))
            service.n_admitted = int(counters.get("n_admitted", 0))
            for node_id in snapshot.get("failed_nodes", []):
                topology.fail_node(str(node_id))
            for payload in snapshot.get("connections", []):
                record = codec.dict_to_record(payload)
                service.state.restore_record(
                    record.spec,
                    record.h_source,
                    record.h_dest,
                    route=record.route,
                    delay_bound=record.delay_bound,
                )
                n_snapshot_records += 1
        tail = store.scan_tail(after_seq=snap_seq)
        for journal_record in tail.records:
            service._replay(journal_record.op, journal_record.data)
        service.state.refresh_all_bounds()
        store.open_for_append(
            JournalTail(
                records=tail.records,
                good_bytes=tail.good_bytes,
                truncated=tail.truncated,
                corruption=tail.corruption,
            )
        )
        # open_for_append derives the next seq from the (filtered) tail;
        # when the tail is empty the snapshot seq is the high-water mark.
        if not tail.records:
            store.next_seq = snap_seq + 1
        leaks = {
            rid: diff
            for rid, diff in service.state.audit_allocations().items()
            if abs(diff) > LEAK_TOLERANCE
        }
        if leaks:
            raise AuditError(
                "restored state leaks synchronous bandwidth: "
                + ", ".join(f"{rid}: {diff:+.3e}s" for rid, diff in leaks.items())
            )
        report = RestoreReport(
            snapshot_seq=snap_seq,
            n_snapshot_records=n_snapshot_records,
            n_replayed=len(tail.records),
            truncated_tail=tail.truncated,
            corruption=tail.corruption,
            signature=service.signature(),
            n_requests=service.n_requests,
            n_admitted=service.n_admitted,
            n_active=len(service.state.active),
        )
        return service, report

    def _replay(self, op: str, data: Dict[str, Any]) -> None:
        if op == "admit":
            record = codec.dict_to_record(data)
            self.state.restore_record(
                record.spec,
                record.h_source,
                record.h_dest,
                route=record.route,
                delay_bound=record.delay_bound,
            )
            self.n_requests += 1
            self.n_admitted += 1
        elif op == "reject":
            self.n_requests += 1
        elif op == "release":
            conn_id = str(data["conn_id"])
            if self.state.shard_of(conn_id) is None:
                raise JournalError(
                    f"journal releases unknown connection {conn_id!r}"
                )
            self.state.release(conn_id)
        elif op == "fault":
            self.state.topology.fail_node(str(data["node"]))
        elif op == "repair":
            self.state.topology.restore_node(str(data["node"]))
        else:  # pragma: no cover - scan_journal rejects unknown ops
            raise JournalError(f"unknown journal op {op!r}")

    # -- metrics ---------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The full metrics surface (front-end ``metrics`` op, benches)."""
        out = self.metrics.to_dict()
        out.update(
            {
                "n_requests": self.n_requests,
                "n_admitted": self.n_admitted,
                "n_active": len(self.state.active),
                "queue_depth": len(self._queue),
                "ladder_level": self.ladder.level,
                "ladder_ewma": self.ladder.ewma,
                "ladder_transitions": [
                    t.describe() for t in self.ladder.transitions
                ],
                "shards": self.state.stats(),
                "journal_seq": (
                    0 if self.journal is None else self.journal.next_seq - 1
                ),
            }
        )
        return out
