"""Command-line entry points: ``python -m repro service <command>``.

* ``serve``  — run the JSON-lines TCP front-end on a fresh network;
* ``bench``  — the churn/overload/kill-recovery bench (``BENCH_service.json``);
* ``soak``   — a time-boxed churn soak with one injected node failure and
  one kill/restore cycle (the CI smoke job); exits non-zero on any leak,
  recovery mismatch, or missed degradation.  ``--scenario SPEC`` soaks the
  topology, analysis knobs and standing population of a scenario-spec file
  (e.g. a fuzz reproducer) instead of the built-in 6-ring setup;
* ``replay`` — inspect a journal directory: restore it and report.
  ``--scenario SPEC`` restores against a scenario-spec file's topology.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time
from typing import List, Optional

from repro.config import CACConfig, NetworkConfig, ServiceConfig, build_network
from repro.service import frontend
from repro.service.bench import (
    _admit,
    _spec_of,
    run_and_check,
    run_service_bench,
    trajectory_ops,
)
from repro.service.server import AdmissionService


def _network(n_rings: int) -> NetworkConfig:
    return NetworkConfig(n_rings=n_rings, hosts_per_ring=4)


def _load_scenario(path: str):
    """A scenario-spec file as (spec, network config, CAC config).

    Lets ``soak`` and ``replay`` run against the exact topology and
    analysis knobs of a serialized :class:`~repro.scenario.spec.ScenarioSpec`
    (e.g. a fuzz reproducer) instead of the built-in defaults.
    """
    from repro.scenario import codec as scenario_codec
    from repro.scenario import loader as scenario_loader

    spec = scenario_codec.load_file(path)
    cac_cfg = scenario_loader.cac_config(spec)
    if cac_cfg is None:
        cac_cfg = CACConfig(beta=spec.cac.beta)
    return spec, spec.topology, cac_cfg


def cmd_serve(args: argparse.Namespace) -> int:
    config = _network(args.rings)

    async def _run() -> None:
        service = AdmissionService(
            build_network(config),
            network_config=config,
            service_config=ServiceConfig(workers=args.workers),
            journal_dir=args.journal_dir,
        )
        await service.start()
        print(
            f"admission service on {args.host}:{args.port} "
            f"({args.rings} rings, workers={args.workers}, "
            f"journal={args.journal_dir or 'off'})",
            flush=True,
        )
        try:
            await frontend.serve(service, args.host, args.port)
        finally:
            await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.check:
        payload, problems = run_and_check(args.quick, args.check)
    else:
        payload, problems = run_service_bench(args.quick), []
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"[service bench written to {args.output}]")
    else:
        print(text)
    for problem in problems:
        print(f"CHECK FAILED: {problem}", file=sys.stderr)
    if args.check and not problems:
        print("service bench check: OK")
    return 1 if problems else 0


def cmd_soak(args: argparse.Namespace) -> int:
    """Churn for ~``--seconds``, fail/repair a node, kill and restore."""
    scenario = None
    if args.scenario:
        scenario, config, cac_cfg = _load_scenario(args.scenario)
        print(f"[soak] scenario {scenario.name!r} from {args.scenario}")
    else:
        config = _network(6)
        cac_cfg = CACConfig()
    problems: List[str] = []
    n_rings = config.n_rings
    fail_node = f"id{max(2, n_rings - 1)}"
    host_idx = min(2, config.hosts_per_ring)

    def _churn_op(r: int):
        if scenario is None:
            # The historical 6-ring pattern (rings 1/3/5 -> 2/4/6).
            return _admit(
                f"soak-{r}",
                f"host{(r % 3) * 2 + 1}-1",
                f"host{(r % 3) * 2 + 2}-2",
            )
        src_ring = (r % n_rings) + 1
        dst_ring = (src_ring % n_rings) + 1
        return _admit(
            f"soak-{r}",
            f"host{src_ring}-1",
            f"host{dst_ring}-{host_idx}",
        )

    async def _run() -> None:
        with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
            wal = os.path.join(tmp, "wal")
            service = AdmissionService(
                build_network(config),
                network_config=config,
                cac_config=cac_cfg,
                service_config=ServiceConfig(
                    workers=args.workers, snapshot_every=25
                ),
                journal_dir=wal,
            )
            await service.start()
            from repro.service.bench import apply_ops

            if scenario is None:
                await apply_ops(service, trajectory_ops())
            else:
                # Standing population: the spec's explicit connections.
                from repro.scenario.loader import offered_connections

                for conn in offered_connections(scenario):
                    await service.submit_admit(conn)
            deadline = time.monotonic() + args.seconds
            r = 0
            failed = repaired = False
            while time.monotonic() < deadline:
                await service.submit_admit(_spec_of(_churn_op(r)))
                await service.submit_release(f"soak-{r}")
                r += 1
                if not failed and time.monotonic() > deadline - args.seconds / 2:
                    displaced = await service.inject_node_failure(fail_node)
                    print(
                        f"[soak] failed {fail_node}, "
                        f"displaced {len(displaced)}"
                    )
                    failed = True
                elif failed and not repaired and time.monotonic() > (
                    deadline - args.seconds / 4
                ):
                    await service.repair_node(fail_node)
                    print(f"[soak] repaired {fail_node}")
                    repaired = True
            if not failed:
                displaced = await service.inject_node_failure(fail_node)
                print(
                    f"[soak] failed {fail_node}, displaced {len(displaced)}"
                )
            if not repaired:
                await service.repair_node(fail_node)
                print(f"[soak] repaired {fail_node}")
            pre_kill = service.signature()
            decided = service.metrics.decision_latency.n
            # Kill: abandon without stop(); the journal is the survivor.
            await service.simulate_kill()
            restored, report = AdmissionService.restore(
                build_network(config),
                wal,
                network_config=config,
                cac_config=cac_cfg,
                service_config=ServiceConfig(workers=args.workers),
            )
            print(
                f"[soak] {r} churn rounds, {decided} decisions; restore: "
                f"snapshot seq {report.snapshot_seq}, "
                f"{report.n_replayed} replayed, {report.n_active} active"
            )
            if report.signature != pre_kill:
                problems.append(
                    "restored signature differs from pre-kill state"
                )
            await restored.start(fresh_journal=False)
            await apply_ops(
                restored,
                [
                    _admit(
                        "post-restore",
                        f"host1-{config.hosts_per_ring}",
                        "host2-1",
                    )
                ],
            )
            await restored.stop()  # raises AuditError on any leak

    asyncio.run(_run())
    for problem in problems:
        print(f"SOAK FAILED: {problem}", file=sys.stderr)
    if not problems:
        print("service soak: OK (recovered bit-identically, zero leaks)")
    return 1 if problems else 0


def cmd_replay(args: argparse.Namespace) -> int:
    if args.scenario:
        _, config, cac_cfg = _load_scenario(args.scenario)
        service, report = AdmissionService.restore(
            build_network(config),
            args.journal_dir,
            network_config=config,
            cac_config=cac_cfg,
        )
    else:
        config = _network(args.rings)
        service, report = AdmissionService.restore(
            build_network(config),
            args.journal_dir,
            network_config=config,
        )
    print(
        json.dumps(
            {
                "snapshot_seq": report.snapshot_seq,
                "n_snapshot_records": report.n_snapshot_records,
                "n_replayed": report.n_replayed,
                "truncated_tail": report.truncated_tail,
                "corruption": report.corruption,
                "signature": report.signature,
                "n_requests": report.n_requests,
                "n_admitted": report.n_admitted,
                "n_active": report.n_active,
                "shards": service.state.stats(),
            },
            indent=2,
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro service",
        description="Standing admission-control service over the CAC.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the JSON-lines TCP front-end")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--rings", type=int, default=3)
    serve.add_argument("--workers", type=int, default=0)
    serve.add_argument("--journal-dir", default=None)
    serve.set_defaults(func=cmd_serve)

    bench = sub.add_parser("bench", help="churn/overload/recovery bench")
    bench.add_argument("--quick", action="store_true")
    bench.add_argument(
        "--output",
        default=None,
        help="write the JSON payload here ('-' or omitted: stdout)",
    )
    bench.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help="compare against a committed BENCH_service.json; non-zero "
        "exit on trajectory or robustness-gate mismatch",
    )
    bench.set_defaults(func=cmd_bench)

    soak = sub.add_parser(
        "soak", help="time-boxed churn with a node failure and kill/restore"
    )
    soak.add_argument("--seconds", type=float, default=60.0)
    soak.add_argument("--workers", type=int, default=0)
    soak.add_argument(
        "--scenario",
        default=None,
        metavar="SPEC",
        help="soak the topology/knobs/standing-population of a scenario "
        "spec file instead of the built-in 6-ring setup",
    )
    soak.set_defaults(func=cmd_soak)

    replay = sub.add_parser("replay", help="inspect a journal directory")
    replay.add_argument("journal_dir")
    replay.add_argument("--rings", type=int, default=3)
    replay.add_argument(
        "--scenario",
        default=None,
        metavar="SPEC",
        help="restore against the topology/knobs of a scenario spec file "
        "(overrides --rings)",
    )
    replay.set_defaults(func=cmd_replay)

    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    raise SystemExit(main())
