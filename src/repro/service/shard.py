"""The active connection set, sharded by the interference partition.

Concurrent admission decisions are safe only when they touch disjoint
resources.  Two connections interact through exactly two mechanisms:

* **delay coupling** — they share an ATM output port (transitively), the
  interference partition of :mod:`repro.core.incremental`;
* **ledger coupling** — they draw synchronous bandwidth from the same
  FDDI ring's TTRT budget.  This is *not* implied by port sharing: a
  connection sourcing on ring X and one terminating on ring X compete for
  ring X's ledger while their routes can share no port at all.

A connection's **shard footprint** is therefore its route's port names
plus a ``ring:<id>`` token for each endpoint ring.  Shards are the
transitive closure of footprint overlap: two shards never share a port
*or* a ring, so their decisions commute — the delay fixed points
factorize (the engine's interference-partition invariant) and the ring
ledgers they charge are disjoint.  The service may decide on distinct
shards concurrently and the result is identical to some serial order.

Shards only ever grow (a bridging connection merges them); releases can
leave a shard transitively over-merged, which :meth:`rebalance` repairs
by recomputing the partition from the live set.  All membership moves go
through the controller's ``forget_record``/``adopt_record`` pair, which
never touch the ring ledgers — the ledgers are global, owned by the
shared topology, and only admit/restore/release mutate them.

Determinism: every structure here iterates in **global admission order**
(the insertion order of :attr:`ShardedAdmissionState.active`), so a state
rebuilt by journal replay produces the same shard controllers with the
same internal orderings — and hence bit-identical delay analyses — as
the process that wrote the journal.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from repro.config import CACConfig, NetworkConfig
from repro.core.cac import AdmissionController, AdmissionResult
from repro.core.delay import route_port_names
from repro.core.incremental import interference_components
from repro.errors import ConfigurationError
from repro.network.connection import ConnectionRecord, ConnectionSpec
from repro.network.routing import Route, compute_route
from repro.network.topology import NetworkTopology


def shard_footprint(topology: NetworkTopology, route: Route) -> Tuple[str, ...]:
    """Port names plus endpoint-ring tokens (sorted, deduplicated)."""
    tokens = set(route_port_names(topology, route))
    tokens.add(f"ring:{route.source_ring}")
    tokens.add(f"ring:{route.dest_ring}")
    return tuple(sorted(tokens))


class Shard:
    """One independent slice of the active set with its own controller."""

    def __init__(
        self,
        shard_id: int,
        topology: NetworkTopology,
        network_config: NetworkConfig,
        cac_config: CACConfig,
    ) -> None:
        self.shard_id = shard_id
        self.controller = AdmissionController(
            topology, network_config, cac_config
        )
        #: Footprint tokens this shard owns (ports + ring:<id>).
        self.tokens: set = set()
        #: False once merged into another shard (stale references must
        #: re-resolve).
        self.alive = True
        #: Decision mutex for ``workers > 0`` mode.
        self.lock = asyncio.Lock()

    def __repr__(self) -> str:
        return (
            f"Shard({self.shard_id}, conns={len(self.controller.connections)},"
            f" tokens={len(self.tokens)})"
        )


class ShardedAdmissionState:
    """All active connections, partitioned into independent shards."""

    def __init__(
        self,
        topology: NetworkTopology,
        network_config: Optional[NetworkConfig] = None,
        cac_config: Optional[CACConfig] = None,
    ) -> None:
        self.topology = topology
        self.network_config = network_config or NetworkConfig()
        self.cac_config = cac_config or CACConfig()
        self.shards: Dict[int, Shard] = {}
        self._next_shard_id = 1
        #: token -> shard id owning it.
        self._token_shard: Dict[str, int] = {}
        #: Active records in global admission order (dicts preserve
        #: insertion order; deletion keeps the survivors' relative order).
        self.active: Dict[str, ConnectionRecord] = {}
        self._conn_shard: Dict[str, int] = {}
        #: Shard merges performed (metrics surface).
        self.n_merges = 0

    # -- shard resolution ----------------------------------------------

    def _new_shard(self) -> Shard:
        shard = Shard(
            self._next_shard_id,
            self.topology,
            self.network_config,
            self.cac_config,
        )
        self._next_shard_id += 1
        self.shards[shard.shard_id] = shard
        return shard

    def _merge(self, target: Shard, source: Shard) -> None:
        """Fold ``source`` into ``target`` in global admission order."""
        moving = [
            cid
            for cid in self.active
            if self._conn_shard.get(cid) == source.shard_id
        ]
        for cid in moving:
            record = source.controller.forget_record(cid)
            target.controller.adopt_record(record)
            self._conn_shard[cid] = target.shard_id
        target.tokens |= source.tokens
        for token in source.tokens:
            self._token_shard[token] = target.shard_id
        source.alive = False
        del self.shards[source.shard_id]
        self.n_merges += 1
        if moving:
            # Adopted records join the target's next fixed point; compute
            # it now so stale bounds never linger across decisions.
            target.controller.refresh_bounds()

    def resolve(self, route: Route) -> Tuple[Shard, Tuple[str, ...]]:
        """The shard that must decide for ``route`` (merging as needed)."""
        footprint = shard_footprint(self.topology, route)
        overlap_ids: List[int] = []
        for token in footprint:
            sid = self._token_shard.get(token)
            if sid is not None and sid not in overlap_ids:
                overlap_ids.append(sid)
        if not overlap_ids:
            return self._new_shard(), footprint
        overlap_ids.sort()
        target = self.shards[overlap_ids[0]]
        for sid in overlap_ids[1:]:
            self._merge(target, self.shards[sid])
        return target, footprint

    def resolve_for(
        self, spec: ConnectionSpec
    ) -> Tuple[Shard, Tuple[str, ...], Route]:
        """Route the spec and resolve its deciding shard."""
        route = compute_route(
            self.topology, spec.source_host, spec.dest_host
        )
        shard, footprint = self.resolve(route)
        return shard, footprint, route

    def route_of(self, spec: ConnectionSpec) -> Route:
        return compute_route(self.topology, spec.source_host, spec.dest_host)

    def overlapping(self, footprint: Tuple[str, ...]) -> List[Shard]:
        """Live shards touching any footprint token, ascending shard id.

        The concurrent server locks exactly these before calling
        :meth:`resolve`, so a merge never moves records out from under an
        in-flight decision.
        """
        ids = sorted(
            {
                self._token_shard[token]
                for token in footprint
                if token in self._token_shard
            }
        )
        return [self.shards[sid] for sid in ids]

    # -- state mutation -------------------------------------------------

    def commit_admit(
        self,
        shard: Shard,
        footprint: Tuple[str, ...],
        result: AdmissionResult,
    ) -> None:
        """Record a successful admission decided by ``shard``."""
        record = result.record
        if record is None:
            raise ConfigurationError("commit_admit needs an admitted result")
        self.active[record.conn_id] = record
        self._conn_shard[record.conn_id] = shard.shard_id
        shard.tokens.update(footprint)
        for token in footprint:
            self._token_shard[token] = shard.shard_id

    def admit(self, spec: ConnectionSpec) -> AdmissionResult:
        """Serial-mode admission: resolve, decide, commit."""
        shard, footprint, _route = self.resolve_for(spec)
        result = shard.controller.request(spec)
        if result.admitted:
            self.commit_admit(shard, footprint, result)
        return result

    def restore_record(
        self,
        spec: ConnectionSpec,
        h_source: float,
        h_dest: float,
        *,
        route: Route,
        delay_bound: Optional[float] = None,
    ) -> ConnectionRecord:
        """Replay primitive: re-apply a journaled admission verbatim."""
        shard, footprint = self.resolve(route)
        record = shard.controller.restore(
            spec, h_source, h_dest, route=route, delay_bound=delay_bound
        )
        self.active[record.conn_id] = record
        self._conn_shard[record.conn_id] = shard.shard_id
        shard.tokens.update(footprint)
        for token in footprint:
            self._token_shard[token] = shard.shard_id
        return record

    def shard_of(self, conn_id: str) -> Optional[Shard]:
        sid = self._conn_shard.get(conn_id)
        return None if sid is None else self.shards[sid]

    def release(self, conn_id: str) -> ConnectionRecord:
        """Tear one connection down; empty shards are garbage-collected."""
        shard = self.shard_of(conn_id)
        if shard is None:
            raise ConfigurationError(f"unknown connection {conn_id!r}")
        record = shard.controller.release(conn_id)
        del self.active[conn_id]
        del self._conn_shard[conn_id]
        if not shard.controller.connections:
            for token in list(shard.tokens):
                if self._token_shard.get(token) == shard.shard_id:
                    del self._token_shard[token]
            shard.alive = False
            del self.shards[shard.shard_id]
        return record

    # -- maintenance -----------------------------------------------------

    def rebalance(self) -> int:
        """Recompute the partition from the live set; returns shard count.

        Releases never split shards online (tokens are shed only when a
        shard empties), so long-running churn drifts toward one giant
        shard.  Rebalancing rebuilds minimal shards deterministically:
        footprints in global admission order, components via
        :func:`~repro.core.incremental.interference_components`, members
        adopted in global order.  Ring ledgers are untouched.
        """
        records = list(self.active.values())
        old_shards = list(self.shards.values())
        self.shards.clear()
        self._token_shard.clear()
        self._conn_shard.clear()
        for shard in old_shards:
            shard.alive = False
        if not records:
            return 0
        footprints = [
            shard_footprint(self.topology, rec.route) for rec in records
        ]
        roots = interference_components(footprints)
        by_root: Dict[int, Shard] = {}
        for rec, fp, root in zip(records, footprints, roots):
            shard = by_root.get(root)
            if shard is None:
                shard = self._new_shard()
                by_root[root] = shard
            old = next(
                s for s in old_shards if rec.conn_id in s.controller.connections
            )
            shard.controller.adopt_record(
                old.controller.forget_record(rec.conn_id)
            )
            self._conn_shard[rec.conn_id] = shard.shard_id
            shard.tokens.update(fp)
            for token in fp:
                self._token_shard[token] = shard.shard_id
        for shard in by_root.values():
            shard.controller.refresh_bounds()
        return len(self.shards)

    def refresh_all_bounds(self) -> None:
        for shard in self.shards.values():
            shard.controller.refresh_bounds()

    # -- inspection ------------------------------------------------------

    def records_in_order(self) -> List[ConnectionRecord]:
        """Active records in global admission order."""
        return list(self.active.values())

    def audit_allocations(self) -> Dict[str, float]:
        """Cross-shard ledger audit: ring totals minus all live grants.

        The per-shard ``audit_allocations`` is meaningless here (each
        ledger holds every shard's grants), so the expectation is summed
        over the whole active set before diffing against the ledgers.
        """
        expected: Dict[str, float] = {rid: 0.0 for rid in self.topology.rings}
        for rec in self.active.values():
            expected[rec.route.source_ring] += rec.h_source
            if rec.route.crosses_backbone:
                expected[rec.route.dest_ring] += rec.h_dest
        return {
            rid: ring.allocated_sync_time - expected[rid]
            for rid, ring in self.topology.rings.items()
        }

    def stats(self) -> Dict[str, int]:
        return {
            "n_shards": len(self.shards),
            "n_active": len(self.active),
            "n_merges": self.n_merges,
            "largest_shard": max(
                (len(s.controller.connections) for s in self.shards.values()),
                default=0,
            ),
        }
