"""Validated configuration objects and the paper's reference parameters.

The paper specifies: 3 FDDI rings of 4 hosts each, 3 interface devices,
3 ATM switches, 155 Mbps backbone links, Poisson connection requests,
exponentially distributed lifetimes, dual-periodic sources, and routes that
always cross the backbone.  It does not publish TTRT, deadlines, traffic
magnitudes or device latencies; the defaults below are documented choices
of the same order as contemporaneous FDDI/ATM literature (see DESIGN.md §3)
and every one of them is overridable.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.atm.switch import AtmSwitch
from repro.errors import ConfigurationError
from repro.fddi.ring import FDDIRing
from repro.fddi.timed_token import MAX_FRAME_BITS
from repro.interface_device.device import InterfaceDevice
from repro.network.topology import NetworkTopology
from repro.traffic.generators import WorkloadSpec
from repro.units import MBIT, MS, US


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """Static parameters of the FDDI-ATM-FDDI network."""

    n_rings: int = 3
    hosts_per_ring: int = 4

    # --- FDDI side -----------------------------------------------------
    fddi_bandwidth: float = 100 * MBIT
    ttrt: float = 8 * MS
    #: Per-rotation protocol overhead Delta (token, preambles, latency).
    ring_overhead: float = 80 * US
    #: Worst-case bit propagation between stations (the Delay_Line bound).
    ring_propagation: float = 50 * US
    #: Station MAC transmit buffer, bits.
    mac_buffer_bits: float = 4 * MBIT

    # --- ATM side --------------------------------------------------------
    atm_link_rate: float = 155.52 * MBIT
    link_propagation: float = 10 * US
    switch_fabric_delay: float = 10 * US
    port_latency: float = 3 * US
    port_buffer_bits: float = math.inf

    # --- Interface devices ----------------------------------------------
    id_input_port_delay: float = 10 * US
    id_frame_switch_delay: float = 10 * US
    id_frame_processing_delay: float = 20 * US

    #: Maximum FDDI frame payload, bits (caps F_S = H * BW).
    max_frame_bits: float = float(MAX_FRAME_BITS)

    def __post_init__(self) -> None:
        if self.n_rings < 1 or self.hosts_per_ring < 1:
            raise ConfigurationError("need at least one ring and one host")
        if self.ttrt <= 0 or self.fddi_bandwidth <= 0 or self.atm_link_rate <= 0:
            raise ConfigurationError("rates and TTRT must be positive")
        if not (0 <= self.ring_overhead < self.ttrt):
            raise ConfigurationError("ring overhead must be in [0, TTRT)")


@dataclasses.dataclass(frozen=True)
class AnalysisConfig:
    """Knobs of the delay-analysis engine."""

    #: Time span over which source envelopes are computed exactly, seconds.
    envelope_horizon: float = 0.5
    #: Breakpoint budget per envelope between stages (coarsening keeps the
    #: analysis conservative; see Curve.coarsen).
    max_envelope_segments: int = 96
    #: Port delays are rounded *up* to this quantum before being used to
    #: advance output envelopes (the reported delay bound itself stays
    #: exact).  Rounding up keeps envelopes conservative and makes them
    #: identical across nearby binary-search probes — a large cache win.
    output_delay_quantum: float = 1e-4
    #: Entry budget of the analyzer's stage/envelope caches.  Eviction is
    #: least-recently-used, so long sweeps degrade gracefully instead of
    #: falling off a cold-cache cliff at the limit.
    stage_cache_size: int = 20_000
    #: Optional accuracy-for-speed trade: cap every curve the analysis
    #: propagates at this many segments via conservative coarsening
    #: (arrival/output envelopes are rounded *up*, availability/service
    #: curves rounded *down* — see ``Curve.coarsen``), so all delay and
    #: backlog bounds remain valid upper bounds, merely looser.  ``None``
    #: (the default) is exact mode: results are bit-identical to the
    #: uncapped analysis and the figure-7/8 artifacts are unchanged.
    coarsen_segments: Optional[int] = None
    #: Cap on the cyclic fixed-point iteration (see repro.core.delay):
    #: cyclic port-dependency graphs are solved by iterating the monotone
    #: per-port shift map until the quantized shift vector repeats
    #: exactly; exceeding this cap raises FixedPointDivergenceError
    #: (treated as instability, i.e. automatic CAC rejection).
    fixed_point_max_iterations: int = 100
    #: Convergence tolerance used only when ``output_delay_quantum`` is 0
    #: (shifts are then continuous, so exact repetition is replaced by a
    #: relative-change test).
    fixed_point_rtol: float = 1e-9
    #: **Test-only.**  Route every analysis through the fixed-point
    #: solver, even on feed-forward topologies, so equivalence with the
    #: chain analysis can be asserted bit-for-bit.
    force_fixed_point: bool = False

    def __post_init__(self) -> None:
        if self.envelope_horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.max_envelope_segments < 8:
            raise ConfigurationError("need at least 8 envelope segments")
        if self.output_delay_quantum < 0:
            raise ConfigurationError("delay quantum must be non-negative")
        if self.stage_cache_size < 4:
            raise ConfigurationError("stage cache needs at least 4 entries")
        if self.coarsen_segments is not None and self.coarsen_segments < 8:
            raise ConfigurationError("coarsen_segments must be >= 8 (or None)")
        if self.fixed_point_max_iterations < 1:
            raise ConfigurationError("fixed_point_max_iterations must be >= 1")
        if self.fixed_point_rtol <= 0:
            raise ConfigurationError("fixed_point_rtol must be positive")


@dataclasses.dataclass(frozen=True)
class CACConfig:
    """Parameters of the CAC algorithm of Section 5.3."""

    #: The allocation interpolation parameter of Eqs. 35/36.
    beta: float = 0.5
    #: Binary searches stop when the H interval shrinks below this fraction
    #: of the feasible segment's length.
    search_tolerance: float = 0.01
    #: Two delay values count as "equal" for the H^max_need search (Eqs.
    #: 31/32) when they differ by less than this relative amount.
    delay_equality_rtol: float = 1e-3
    #: Search along the ray through the origin (Rule 2 literally) instead of
    #: the segment from the min_abs point (Step 3 literally).  See DESIGN.md.
    use_origin_ray: bool = False
    #: Reuse previous fixed-point reports for connections whose shared-port
    #: inputs a probe cannot change (interference-partition analysis; see
    #: repro.core.incremental).  Bit-identical to the full recomputation —
    #: disable only to benchmark against it or to debug the engine.
    incremental: bool = True
    analysis: AnalysisConfig = dataclasses.field(default_factory=AnalysisConfig)

    def __post_init__(self) -> None:
        if not (0.0 <= self.beta <= 1.0):
            raise ConfigurationError("beta must be in [0, 1]")
        if not (0.0 < self.search_tolerance < 0.5):
            raise ConfigurationError("search tolerance must be in (0, 0.5)")
        if self.delay_equality_rtol <= 0:
            raise ConfigurationError("delay equality tolerance must be positive")


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the standing admission-control service (:mod:`repro.service`).

    The service wraps the CAC behind a bounded, priority-aware request
    queue, journals every decision to a write-ahead log, and degrades
    gracefully (exact analysis -> conservative coarsening -> admission
    freeze) when measured decision latency climbs.  All thresholds are in
    wall-clock seconds of *decision latency*, not simulated time.
    """

    #: Bounded admission-queue capacity.  When full, low-priority admit
    #: requests are shed with ``BUSY`` verdicts (releases always pass —
    #: they free resources and shrink the backlog).
    queue_capacity: int = 256
    #: Default per-request service deadline, seconds: a request that waits
    #: or computes past this is answered ``TIMEOUT`` (and an admission that
    #: completed too late is rolled back before the verdict is returned).
    default_timeout: float = 30.0
    #: Decision executor threads.  0 = decide inline on the event loop
    #: (strictly ordered, deterministic); N > 0 = up to N shards decide
    #: concurrently (shards share no rings or ports, so their decisions
    #: are independent by the interference-partition invariant).
    workers: int = 0
    #: Journal records between admission-state snapshots (0 = never).
    snapshot_every: int = 1000
    #: fsync the journal after every record (survives OS crash, not just
    #: process death; costs one fsync per decision).
    fsync: bool = False
    # --- degradation ladder ------------------------------------------
    #: EWMA window (in decisions) of the decision-latency estimate.
    latency_window: int = 8
    #: Engage the next rung when the EWMA latency exceeds this, seconds.
    degrade_hi: float = 0.5
    #: Disengage a rung when the EWMA falls below this, seconds
    #: (hysteresis: must be < ``degrade_hi``).
    degrade_lo: float = 0.2
    #: Decisions a rung must dwell before it may transition again (keeps
    #: the ladder from flapping between adjacent rungs).
    min_dwell: int = 16
    #: ``AnalysisConfig.coarsen_segments`` applied at the COARSENED rung
    #: (admission gets strictly more conservative, never unsafe).
    degraded_segments: int = 32
    #: While FROZEN, every Nth shed admit is decided anyway as a thaw
    #: probe, so the ladder can observe latency and step back down.
    freeze_probe_every: int = 8
    # --- backpressure retry hints ------------------------------------
    #: Base/factor/cap of the exponential ``retry_after`` hint attached to
    #: ``BUSY``/``TIMEOUT`` verdicts (see ``RetryPolicy``), seconds.
    retry_base_delay: float = 0.05
    retry_factor: float = 2.0
    retry_max_delay: float = 5.0
    #: Master seed of the service's backoff-jitter substreams (one
    #: substream per connection id -> deterministic retry schedules).
    seed: int = 1

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        if self.default_timeout <= 0:
            raise ConfigurationError("default timeout must be positive")
        if self.workers < 0:
            raise ConfigurationError("workers must be non-negative")
        if self.snapshot_every < 0:
            raise ConfigurationError("snapshot_every must be non-negative")
        if self.latency_window < 1:
            raise ConfigurationError("latency window must be >= 1")
        if not (0.0 < self.degrade_lo < self.degrade_hi):
            raise ConfigurationError(
                "need 0 < degrade_lo < degrade_hi for hysteresis"
            )
        if self.min_dwell < 1:
            raise ConfigurationError("min_dwell must be >= 1")
        if self.degraded_segments < 8:
            raise ConfigurationError("degraded_segments must be >= 8")
        if self.freeze_probe_every < 1:
            raise ConfigurationError("freeze_probe_every must be >= 1")
        if self.retry_base_delay <= 0 or self.retry_max_delay <= 0:
            raise ConfigurationError("retry delays must be positive")
        if self.retry_factor < 1.0:
            raise ConfigurationError("retry factor must be >= 1")


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Workload of the paper's evaluation (Section 6)."""

    #: Mean connection lifetime 1/mu, seconds.
    mean_lifetime: float = 600.0
    #: Dual-periodic source defaults: C1/P1 = 8 Mbps with 1.5x inner bursts.
    #: Deadlines are chosen tight enough that the minimum-needed allocation
    #: is deadline-constrained (not merely stability-constrained) — the
    #: regime in which the paper's beta trade-off is visible.
    workload: WorkloadSpec = dataclasses.field(
        default_factory=lambda: WorkloadSpec(
            c1=120_000.0,   # 120 kbit per 15 ms  -> rho = 8 Mbps
            p1=0.015,
            c2=60_000.0,    # 60 kbit per 5 ms    -> inner rate 12 Mbps
            p2=0.005,
            deadline_min=0.040,
            deadline_max=0.100,
            jitter=0.2,
        )
    )
    #: Count requests that find no inactive source host as rejections.
    count_host_blocked: bool = False
    #: Offered-load calibration: the paper's traffic constants are not
    #: published, and with our documented workload the network's carrying
    #: capacity corresponds to a lower backbone utilization than theirs.
    #: ``load_scale`` multiplies the arrival rate derived from U so that the
    #: AP *levels* can be aligned with Figures 7/8 (one scalar, fitted once,
    #: held fixed across every experiment point); ``1.0`` uses the paper's
    #: formula verbatim.  See EXPERIMENTS.md.
    load_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_lifetime <= 0:
            raise ConfigurationError("mean lifetime must be positive")
        if self.load_scale <= 0:
            raise ConfigurationError("load scale must be positive")

    def arrival_rate_for_utilization(
        self,
        utilization: float,
        network: Optional[NetworkConfig],
        backbone_capacity: Optional[float] = None,
    ) -> float:
        """Invert the paper's load formula ``U = (lambda / (3 mu)) * rho / C``.

        ``rho`` is the workload's mean long-term rate and ``C`` the backbone
        link capacity; the 3 is the paper's three backbone links.  The
        pairwise mesh has ``n (n - 1) / 2`` bidirectional backbone links
        (3 exactly for the paper's triangle; earlier revisions miscounted
        this as ``n``, so 2- and 4-ring scenarios calibrated offered load
        against the wrong capacity — see EXPERIMENTS.md).  Topologies that
        are not pairwise meshes pass their aggregate backbone capacity in
        ``backbone_capacity`` (see ``NetworkTopology.backbone_capacity``),
        which replaces ``n_links * C`` outright.
        """
        if not (0.0 < utilization):
            raise ConfigurationError("utilization must be positive")
        rho = self.workload.mean_rate
        mu = 1.0 / self.mean_lifetime
        if backbone_capacity is not None:
            if backbone_capacity <= 0:
                raise ConfigurationError("backbone capacity must be positive")
            return utilization * mu * backbone_capacity / rho * self.load_scale
        if network is None:
            network = NetworkConfig()
        n_links = max(1, network.n_rings * (network.n_rings - 1) // 2)
        rate = utilization * n_links * mu * network.atm_link_rate / rho
        return rate * self.load_scale


def build_network(config: Optional[NetworkConfig] = None) -> NetworkTopology:
    """Construct the paper's topology (Figure 1 instantiated for Section 6).

    ``n_rings`` rings named ``ring1..ringN`` with hosts ``host<i>-<j>``,
    one interface device ``id<i>`` per ring attached to switch ``s<i>``,
    and backbone switches connected pairwise (a triangle for N=3 — every
    inter-ring route crosses exactly one inter-switch link).
    """
    cfg = config if config is not None else NetworkConfig()
    topo = NetworkTopology()
    for i in range(1, cfg.n_rings + 1):
        ring = FDDIRing(
            ring_id=f"ring{i}",
            ttrt=cfg.ttrt,
            bandwidth=cfg.fddi_bandwidth,
            overhead=cfg.ring_overhead,
            propagation_delay=cfg.ring_propagation,
        )
        topo.add_ring(ring)
        for j in range(1, cfg.hosts_per_ring + 1):
            topo.add_host(f"host{i}-{j}", ring.ring_id)
    for i in range(1, cfg.n_rings + 1):
        topo.add_switch(
            AtmSwitch(
                f"s{i}",
                fabric_delay=cfg.switch_fabric_delay,
                port_buffer_bits=cfg.port_buffer_bits,
                port_latency=cfg.port_latency,
            )
        )
    for i in range(1, cfg.n_rings + 1):
        device = InterfaceDevice(
            device_id=f"id{i}",
            ring_id=f"ring{i}",
            input_port_delay=cfg.id_input_port_delay,
            frame_switch_delay=cfg.id_frame_switch_delay,
            frame_processing_delay=cfg.id_frame_processing_delay,
            port_buffer_bits=cfg.port_buffer_bits,
            port_latency=cfg.port_latency,
        )
        topo.add_device(
            device,
            switch_id=f"s{i}",
            uplink_rate=cfg.atm_link_rate,
            link_propagation=cfg.link_propagation,
        )
    for i in range(1, cfg.n_rings + 1):
        for j in range(i + 1, cfg.n_rings + 1):
            topo.connect_switches(
                f"s{i}",
                f"s{j}",
                rate=cfg.atm_link_rate,
                propagation_delay=cfg.link_propagation,
            )
    topo.validate()
    return topo
