"""Tracked envelope-algebra benchmarks: ``python -m repro bench --suite envelopes``.

Micro tier: each vectorized hot kernel (pointwise minimum, addition, n-ary
sum, horizontal deviation, batched pseudo-inverse) timed on deterministic
curve pairs at 10 / 100 / 1000 segments, against the pure-Python reference
implementation of :mod:`repro.envelopes.reference`.  The committed
``BENCH_envelopes.json`` records ``speedup_vs_reference`` — the acceptance
gate is >= 3x on the 100-segment min/add/deviation kernels.

Macro tier: a figure-7-shaped slice (three 20-request admission
simulations at beta = 0, 0.5, 1) whose decision trajectory — admitted /
rejected counts and the admission probability, exactly — is committed with
the JSON.  In exact mode (the default ``AnalysisConfig``) the trajectory is
bit-reproducible, so CI re-runs the macro and fails on any divergence from
the committed file (``--check``).
"""

from __future__ import annotations

import dataclasses
import statistics
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.envelopes import reference as ref
from repro.envelopes.curve import Curve, sum_curves
from repro.envelopes.operations import horizontal_deviation
from repro.units import US_PER_S

#: Micro-bench segment counts (the quick tier drops the largest).
SEGMENT_SIZES = (10, 100, 1000)
#: The macro tier's beta sweep (figure 7's x-axis, coarsened).
MACRO_BETAS = (0.0, 0.5, 1.0)
MACRO_UTILIZATION = 0.6
MACRO_REQUESTS = 20
MACRO_WARMUP = 4
MACRO_SEED = 1


@dataclasses.dataclass(frozen=True)
class EnvelopeBenchResult:
    """One kernel at one size: vectorized vs reference medians (seconds)."""

    name: str
    segments: int
    rounds: int
    median_s: float
    p90_s: float
    ref_median_s: float
    speedup_vs_reference: float


def _time_rounds(fn: Callable[[], object], rounds: int, warmup: int) -> List[float]:
    times: List[float] = []
    for _ in range(rounds + warmup):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return times[warmup:]


def _p90(times: List[float]) -> float:
    ordered = sorted(times)
    return ordered[min(len(ordered) - 1, int(0.9 * len(ordered)))]


# ----------------------------------------------------------------------
# Deterministic curve fixtures
# ----------------------------------------------------------------------

def _staircase(n: int, gap: float, burst: float, rate: float) -> Curve:
    """A deterministic n-segment staircase with mildly irregular jumps."""
    ks = np.arange(float(n))
    xs = ks * gap
    ys = (ks + 1.0) * burst + 37.0 * (ks % 5)
    slopes = np.zeros(n)
    slopes[-1] = rate
    return Curve(xs, ys, slopes, validate=False)


def _ramped(n: int, gap: float, step: float, rate: float) -> Curve:
    """A continuous piecewise-linear curve with alternating slopes."""
    ks = np.arange(float(n))
    xs = ks * gap
    seg_slopes = np.where(ks % 2 == 0, rate * 1.6, rate * 0.4)
    ys = np.concatenate([[step], step + np.cumsum(seg_slopes[:-1]) * gap])
    return Curve(xs, ys, seg_slopes, validate=False)


def _fixtures(n: int) -> Dict[str, Curve]:
    arrival = _staircase(n, gap=0.0021, burst=1200.0, rate=4.0e5)
    other = _ramped(n, gap=0.0017, step=900.0, rate=4.5e5)
    # Service staircase: strictly faster long-term rate, zero at the origin,
    # so busy interval and deviations are finite and non-trivial.
    ks = np.arange(float(n))
    service = Curve(
        ks * 0.0019,
        ks * 1900.0,
        np.concatenate([np.zeros(n - 1), [1.1e6]]),
        validate=False,
    )
    return {"arrival": arrival, "other": other, "service": service}


# ----------------------------------------------------------------------
# Micro tier
# ----------------------------------------------------------------------

def _micro_kernels(fx: Dict[str, Curve]) -> Dict[str, Dict[str, Callable[[], object]]]:
    a, b, s = fx["arrival"], fx["other"], fx["service"]
    sum_inputs = [a, b, a.shift_right(0.0013), b.shift_right(0.0007)]
    inv_values = np.linspace(0.0, float(a(0.5)), 256)
    return {
        "min": {
            "vec": lambda: a.minimum(b),
            "ref": lambda: ref.ref_minimum(a, b),
        },
        "add": {
            "vec": lambda: a + b,
            "ref": lambda: ref.ref_add(a, b),
        },
        "deviation": {
            "vec": lambda: horizontal_deviation(a, s),
            "ref": lambda: ref.ref_horizontal_deviation(a, s),
        },
        "sum4": {
            "vec": lambda: sum_curves(sum_inputs),
            "ref": lambda: ref.ref_sum(sum_inputs),
        },
        "pseudo_inverse_many": {
            "vec": lambda: a.pseudo_inverse_many(inv_values),
            "ref": lambda: [ref.ref_pseudo_inverse(a, float(y)) for y in inv_values],
        },
    }


def run_micro_benches(quick: bool = False) -> List[EnvelopeBenchResult]:
    sizes = SEGMENT_SIZES[:-1] if quick else SEGMENT_SIZES
    results: List[EnvelopeBenchResult] = []
    for n in sizes:
        fx = _fixtures(n)
        kernels = _micro_kernels(fx)
        # The reference implementations are O(n^2) or worse; keep their
        # round counts small at the largest size.
        rounds, warmup = (5, 1) if n >= 1000 else (9, 2)
        for name, impls in kernels.items():
            t_vec = _time_rounds(impls["vec"], rounds, warmup)
            ref_rounds = 3 if n >= 1000 else rounds
            t_ref = _time_rounds(impls["ref"], ref_rounds, 1)
            median = statistics.median(t_vec)
            ref_median = statistics.median(t_ref)
            results.append(
                EnvelopeBenchResult(
                    name=name,
                    segments=n,
                    rounds=rounds,
                    median_s=median,
                    p90_s=_p90(t_vec),
                    ref_median_s=ref_median,
                    speedup_vs_reference=ref_median / median if median > 0 else 0.0,
                )
            )
    return results


# ----------------------------------------------------------------------
# Macro tier: figure-7-shaped decision trajectory
# ----------------------------------------------------------------------

def run_macro_bench() -> Dict[str, Any]:
    """Three small figure-7 points (beta sweep); exact-mode trajectory.

    The returned ``trajectory`` is deterministic in exact mode: the same
    seed, workload, and analysis produce bit-identical admission decisions,
    so CI compares it field-by-field against the committed JSON.
    """
    from repro.sim.connection_sim import ConnectionSimConfig, ConnectionSimulator

    trajectory: List[Dict[str, Any]] = []
    t0 = time.perf_counter()
    for beta in MACRO_BETAS:
        cfg = ConnectionSimConfig(
            utilization=MACRO_UTILIZATION,
            beta=beta,
            seed=MACRO_SEED,
            n_requests=MACRO_REQUESTS,
            warmup_requests=MACRO_WARMUP,
        )
        res = ConnectionSimulator(cfg).run()
        m = res.metrics
        trajectory.append(
            {
                "beta": beta,
                "utilization": MACRO_UTILIZATION,
                "n_requests": m.n_requests,
                "n_admitted": m.n_admitted,
                "n_rejected_cac": m.n_rejected_cac,
                # Full float repr — exact-mode runs must reproduce this bit
                # for bit; any drift means the refactor changed a decision.
                "admission_probability": repr(res.admission_probability),
            }
        )
    elapsed = time.perf_counter() - t0
    return {
        "scenario": (
            f"figure7-shaped: U={MACRO_UTILIZATION}, "
            f"{MACRO_REQUESTS} requests, seed={MACRO_SEED}"
        ),
        "total_s": elapsed,
        "trajectory": trajectory,
    }


def check_macro_trajectory(
    current: Dict[str, Any], committed: Dict[str, Any]
) -> List[str]:
    """Field-by-field divergence list between two macro payloads."""
    problems: List[str] = []
    cur = current.get("trajectory")
    ref_traj = committed.get("trajectory")
    if not isinstance(cur, list) or not isinstance(ref_traj, list):
        return ["macro payload missing 'trajectory' list"]
    if len(cur) != len(ref_traj):
        return [f"trajectory length {len(cur)} != committed {len(ref_traj)}"]
    for i, (got, want) in enumerate(zip(cur, ref_traj)):
        for field in (
            "beta",
            "utilization",
            "n_requests",
            "n_admitted",
            "n_rejected_cac",
            "admission_probability",
        ):
            if got.get(field) != want.get(field):
                problems.append(
                    f"trajectory[{i}].{field}: {got.get(field)!r} != "
                    f"committed {want.get(field)!r}"
                )
    return problems


# ----------------------------------------------------------------------
# Entry point (dispatched from repro.bench)
# ----------------------------------------------------------------------

def run_benches(quick: bool = False) -> Dict[str, Any]:
    results = run_micro_benches(quick=quick)
    macro = run_macro_bench()
    return {
        "benchmark": "repro-envelopes",
        "quick": quick,
        "results": [dataclasses.asdict(r) for r in results],
        "macro": macro,
    }


def format_report(payload: Dict[str, Any]) -> str:
    lines = [
        "Envelope-kernel benchmarks"
        + (" (quick)" if payload["quick"] else "")
        + " — vectorized vs pure-Python reference",
        "",
        f"  {'kernel':22s} {'segs':>5s} {'median':>10s} {'reference':>11s} {'speedup':>8s}",
    ]
    for r in payload["results"]:
        lines.append(
            f"  {r['name']:22s} {r['segments']:5d} "
            f"{r['median_s'] * US_PER_S:8.1f}us "
            f"{r['ref_median_s'] * US_PER_S:9.1f}us "
            f"{r['speedup_vs_reference']:7.1f}x"
        )
    macro = payload["macro"]
    lines.append("")
    lines.append(f"  macro ({macro['scenario']}): {macro['total_s']:.2f}s")
    for point in macro["trajectory"]:
        lines.append(
            f"    beta={point['beta']}: {point['n_admitted']}/{point['n_requests']}"
            f" admitted, AP={point['admission_probability']}"
        )
    return "\n".join(lines)


def gate_failures(payload: Dict[str, Any]) -> List[str]:
    """Acceptance-gate violations (the >=3x rule on 100-segment kernels)."""
    problems: List[str] = []
    for r in payload["results"]:
        if r["segments"] == 100 and r["name"] in ("min", "add", "deviation"):
            if r["speedup_vs_reference"] < 3.0:
                problems.append(
                    f"{r['name']}@100 segments: speedup "
                    f"{r['speedup_vs_reference']:.2f}x < 3x"
                )
    return problems


def run_and_check(
    quick: bool = False, committed: Optional[Dict[str, Any]] = None
) -> Tuple[Dict[str, Any], List[str]]:
    """Run the suite; return (payload, problems) where problems fail CI."""
    payload = run_benches(quick=quick)
    problems = list(gate_failures(payload))
    if committed is not None:
        problems.extend(
            check_macro_trajectory(payload["macro"], committed.get("macro", {}))
        )
    return payload, problems
