"""ATM cell constants and frame-to-cell arithmetic.

An ATM cell is 53 octets on the wire, 48 of which are payload.  Envelopes
inside the library count *payload* bits (that is what Theorem 2's
``F_C * C_S`` counts); the output-port analysis converts to wire occupancy
with :data:`WIRE_EXPANSION`.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.units import CELL_BITS, CELL_PAYLOAD_BITS

__all__ = [
    "CELL_BITS",
    "CELL_PAYLOAD_BITS",
    "WIRE_EXPANSION",
    "cells_for_frame",
    "payload_bits_for_frame",
]
#: Wire bits transmitted per payload bit carried.
WIRE_EXPANSION = CELL_BITS / CELL_PAYLOAD_BITS


def cells_for_frame(frame_bits: float) -> int:
    """``F_C`` — the number of cells one LAN frame converts into."""
    if frame_bits <= 0:
        raise ConfigurationError("frame size must be positive")
    return int(math.ceil(frame_bits / CELL_PAYLOAD_BITS - 1e-12))


def payload_bits_for_frame(frame_bits: float) -> float:
    """``F_C * C_S`` — payload bits (with padding) carrying one frame."""
    return cells_for_frame(frame_bits) * CELL_PAYLOAD_BITS
