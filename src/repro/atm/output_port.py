"""The FIFO output-port server: the shared multiplexer of the ATM fabric.

An output port queues the cells of every connection routed over its link
and transmits them FIFO at the link rate.  For a *tagged* connection with
envelope ``A_tag`` sharing the port with cross-traffic ``A_1..A_n``
(envelopes taken at the port's entrance), the classical busy-period results
used by refs [2, 14] give:

* worst-case delay = port latency + horizontal deviation between the
  *aggregate* envelope and the link service curve;
* worst-case backlog = vertical deviation of the aggregate;
* the tagged connection's output envelope = its input envelope advanced by
  the delay bound, capped by the link rate (a FIFO server cannot reorder,
  so a bit leaving at ``t`` entered within the last ``d`` seconds).

Envelopes count cell-payload bits; the service rate is the link's payload
rate (wire rate scaled by 48/53).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.atm.link import AtmLink
from repro.envelopes.curve import Curve, sum_curves
from repro.envelopes.operations import (
    busy_interval,
    horizontal_deviation,
    vertical_deviation,
)
from repro.errors import BufferOverflowError, ConfigurationError, UnstableSystemError
from repro.servers.base import ServerAnalysis, SharedServer


class OutputPortServer(SharedServer):
    """FIFO multiplexer onto one ATM link.

    Parameters
    ----------
    link:
        The outgoing :class:`AtmLink` (provides the service rate).
    port_latency:
        Fixed per-cell processing latency at the port, seconds.
    buffer_bits:
        Port buffer in payload bits (``inf`` = unbounded).  Overflow means
        cell loss — infinite delay for a hard real-time connection — so it
        raises :class:`BufferOverflowError`.
    """

    def __init__(
        self,
        link: AtmLink,
        port_latency: float = 0.0,
        buffer_bits: float = math.inf,
        name: str = None,
    ) -> None:
        if port_latency < 0:
            raise ConfigurationError("port latency must be non-negative")
        if buffer_bits <= 0:
            raise ConfigurationError("buffer must be positive (or inf)")
        self.link = link
        self.port_latency = float(port_latency)
        self.buffer_bits = float(buffer_bits)
        self.name = name if name is not None else f"port:{link.link_id}"

    @property
    def service_rate(self) -> float:
        """Payload service rate of the outgoing link (bits/second)."""
        return self.link.payload_rate

    def service_curve(self) -> Curve:
        """The port's service curve: rate-latency with the port latency."""
        return Curve.rate_latency(self.service_rate, self.port_latency)

    def analyze_tagged(
        self, tagged: Curve, cross: Sequence[Curve]
    ) -> ServerAnalysis:
        """Busy-period FIFO analysis for the tagged connection.

        Raises
        ------
        UnstableSystemError
            If the aggregate long-term rate exceeds the link payload rate.
        BufferOverflowError
            If the worst-case aggregate backlog exceeds the port buffer.
        """
        aggregate = sum_curves([tagged, *cross])
        service = self.service_curve()
        if aggregate.final_slope > self.service_rate * (1 + 1e-12):
            raise UnstableSystemError(
                f"{self.name}: aggregate rate {aggregate.final_slope:.6g} b/s "
                f"exceeds link payload rate {self.service_rate:.6g} b/s"
            )
        b = busy_interval(aggregate, service)
        if math.isinf(b):
            raise UnstableSystemError(f"{self.name}: unbounded busy period")
        backlog = vertical_deviation(aggregate, service, t_max=b)
        if backlog > self.buffer_bits + 1e-9:
            raise BufferOverflowError(
                f"{self.name}: worst-case backlog {backlog:.6g} bits exceeds "
                f"buffer {self.buffer_bits:.6g} bits"
            )
        delay = horizontal_deviation(aggregate, service, t_max=b)
        if math.isinf(delay):
            raise UnstableSystemError(f"{self.name}: unbounded delay")

        # FIFO output bound: the tagged envelope advanced by the delay bound,
        # capped at the link payload rate (cells leave serialized).
        output = tagged.shift_left(delay).minimum(
            Curve.affine(0.0, self.service_rate)
        )
        return ServerAnalysis(
            delay_bound=delay,
            output=output,
            backlog_bound=backlog,
            busy_interval=b,
        )

    def __repr__(self) -> str:
        return f"OutputPortServer({self.name!r}, rate={self.link.rate:.4g} b/s)"
