"""ATM virtual-circuit management.

"Connection-oriented" service over ATM means every admitted connection owns
a switched virtual circuit: a VPI/VCI label allocated on *every* directed
link of its backbone path, plus translation entries in each switch's VC
table.  The CAC decides *whether* a connection may enter; this module does
the label bookkeeping that makes the connection real — and enforces the
hardware's finite label space (a mid-90s switch supported a few thousand
VCs per port).

The manager is deliberately independent of the admission controller: setup
happens after a positive CAC decision, teardown after release, and a label
shortage is just one more admission-failure mode
(:class:`VcExhaustedError`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError, TopologyError
from repro.network.routing import Route
from repro.network.topology import NetworkTopology


class VcExhaustedError(ReproError):
    """A link's VCI space is fully allocated."""


@dataclasses.dataclass(frozen=True)
class VcHop:
    """One hop of a virtual circuit: a directed link and its VCI label."""

    link_id: str
    vci: int


@dataclasses.dataclass(frozen=True)
class VirtualCircuit:
    """The label chain of one connection across the backbone."""

    conn_id: str
    hops: Tuple[VcHop, ...]

    @property
    def path_links(self) -> List[str]:
        return [hop.link_id for hop in self.hops]


class _LinkLabelSpace:
    """VCI allocator for one directed link (smallest-free-label policy)."""

    def __init__(self, capacity: int, first_vci: int) -> None:
        self.capacity = capacity
        self.first_vci = first_vci
        self._in_use: Dict[int, str] = {}

    def allocate(self, conn_id: str) -> int:
        if len(self._in_use) >= self.capacity:
            raise VcExhaustedError("no free VCI on link")
        vci = self.first_vci
        while vci in self._in_use:
            vci += 1
        self._in_use[vci] = conn_id
        return vci

    def release(self, vci: int) -> None:
        self._in_use.pop(vci, None)

    @property
    def used(self) -> int:
        return len(self._in_use)


class VirtualCircuitManager:
    """Allocates and tears down VCs over a topology's backbone links.

    Parameters
    ----------
    topology:
        The network; VC label spaces are created lazily per directed link.
    vcis_per_link:
        Label capacity of each link (the switch-port VC table size).
    first_vci:
        Lowest assignable VCI (0-31 are reserved by the ATM standard).
    """

    def __init__(
        self,
        topology: NetworkTopology,
        vcis_per_link: int = 4096,
        first_vci: int = 32,
    ) -> None:
        if vcis_per_link <= 0:
            raise TopologyError("need a positive VC capacity")
        if first_vci < 0:
            raise TopologyError("first VCI must be non-negative")
        self.topology = topology
        self.vcis_per_link = int(vcis_per_link)
        self.first_vci = int(first_vci)
        self._spaces: Dict[str, _LinkLabelSpace] = {}
        self._circuits: Dict[str, VirtualCircuit] = {}

    # ------------------------------------------------------------------

    def _space(self, link_id: str) -> _LinkLabelSpace:
        if link_id not in self._spaces:
            self._spaces[link_id] = _LinkLabelSpace(
                self.vcis_per_link, self.first_vci
            )
        return self._spaces[link_id]

    def _route_links(self, route: Route) -> List[str]:
        """Every directed ATM link the route traverses, in order."""
        if not route.crosses_backbone:
            return []
        topo = self.topology
        links = [topo.devices[route.source_device].uplink.link_id]
        path = route.switch_path
        for a, b in zip(path, path[1:]):
            links.append(topo.switch_link(a, b).link_id)
        links.append(topo.downlink(path[-1], route.dest_device).link_id)
        return links

    def setup(self, conn_id: str, route: Route) -> VirtualCircuit:
        """Allocate a VCI on every link of ``route`` (all-or-nothing).

        Raises :class:`VcExhaustedError` (after rolling back any partial
        allocation) when some link has no free label.
        """
        if conn_id in self._circuits:
            raise TopologyError(f"{conn_id!r} already has a circuit")
        hops: List[VcHop] = []
        try:
            for link_id in self._route_links(route):
                vci = self._space(link_id).allocate(conn_id)
                hops.append(VcHop(link_id=link_id, vci=vci))
        except VcExhaustedError:
            for hop in hops:
                self._space(hop.link_id).release(hop.vci)
            raise VcExhaustedError(
                f"VC setup for {conn_id!r} failed: label space exhausted"
            ) from None
        circuit = VirtualCircuit(conn_id=conn_id, hops=tuple(hops))
        self._circuits[conn_id] = circuit
        return circuit

    def teardown(self, conn_id: str) -> VirtualCircuit:
        """Release every label of ``conn_id``'s circuit."""
        if conn_id not in self._circuits:
            raise TopologyError(f"{conn_id!r} has no circuit")
        circuit = self._circuits.pop(conn_id)
        for hop in circuit.hops:
            self._space(hop.link_id).release(hop.vci)
        return circuit

    def circuit_of(self, conn_id: str) -> Optional[VirtualCircuit]:
        return self._circuits.get(conn_id)

    def labels_in_use(self, link_id: str) -> int:
        return self._space(link_id).used

    def translation_table(self, switch_id: str) -> List[Tuple[int, str, int, str]]:
        """The switch's VC table: (in-VCI, in-link, out-VCI, out-link) rows.

        Built from the circuits that traverse ``switch_id``: the hop whose
        link *enters* the switch pairs with the hop that *leaves* it.
        """
        rows: List[Tuple[int, str, int, str]] = []
        for circuit in self._circuits.values():
            hops = circuit.hops
            for prev, nxt in zip(hops, hops[1:]):
                # prev's link ends at the switch nxt's link leaves from.
                if prev.link_id.endswith(f"->{switch_id}") and nxt.link_id.startswith(
                    f"{switch_id}->"
                ):
                    rows.append((prev.vci, prev.link_id, nxt.vci, nxt.link_id))
        return sorted(rows)
