"""Static-priority output port: a scheduling extension of the FIFO analysis.

The paper's references ([2, 14]) analyze ATM output ports under several
scheduling disciplines; the repository's default chain uses FIFO (what the
paper's evaluation assumes).  This module adds the non-preemptive
static-priority discipline so mixed-criticality traffic can be studied:
real-time cells in a high-priority class, best-effort in lower ones.

Analysis (classical leftover-service argument):

* higher-priority traffic is summarized by its token-bucket majorant
  ``(sigma_h, rho_h)``;
* the service left for class ``k`` is then the rate-latency curve with rate
  ``C - rho_h`` and latency ``(sigma_h + L_cell) / (C - rho_h)`` — the
  ``L_cell`` term is the non-preemption blocking of one cell already on the
  wire;
* within a class, cells are served FIFO, so the class delay bound is the
  horizontal deviation between the class aggregate and the leftover curve.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Mapping, Optional, Sequence

from repro.atm.cell import CELL_BITS
from repro.atm.link import AtmLink
from repro.envelopes.curve import Curve, sum_curves
from repro.envelopes.operations import (
    busy_interval,
    horizontal_deviation,
    token_bucket_majorant,
    vertical_deviation,
)
from repro.errors import ConfigurationError, UnstableSystemError
from repro.servers.base import ServerAnalysis


@dataclasses.dataclass(frozen=True)
class ClassAnalysis:
    """Per-priority-class result of a priority-port analysis."""

    priority: int
    delay_bound: float
    backlog_bound: float
    leftover_rate: float
    leftover_latency: float


class PriorityOutputPortServer:
    """A non-preemptive static-priority multiplexer onto one ATM link.

    Priorities are integers; **lower number = higher priority**.
    """

    def __init__(
        self,
        link: AtmLink,
        port_latency: float = 0.0,
        name: Optional[str] = None,
        blocking_bits: float = float(CELL_BITS),
    ) -> None:
        if port_latency < 0:
            raise ConfigurationError("port latency must be non-negative")
        if blocking_bits < 0:
            raise ConfigurationError("blocking size must be non-negative")
        self.link = link
        self.port_latency = float(port_latency)
        self.blocking_bits = float(blocking_bits)
        self.name = name if name is not None else f"prio-port:{link.link_id}"

    @property
    def service_rate(self) -> float:
        return self.link.payload_rate

    def analyze_classes(
        self, envelopes_by_priority: Mapping[int, Sequence[Curve]]
    ) -> Dict[int, ClassAnalysis]:
        """Analyze every priority class.

        Parameters
        ----------
        envelopes_by_priority:
            For each priority level, the envelopes of the connections in
            that class (at the port entrance).

        Raises
        ------
        UnstableSystemError
            When the cumulative rate of a class and everything above it
            exceeds the link rate.
        """
        rate = self.service_rate
        results: Dict[int, ClassAnalysis] = {}
        higher: List[Curve] = []
        for priority in sorted(envelopes_by_priority):
            class_aggregate = sum_curves(envelopes_by_priority[priority])
            if higher:
                sigma_h, rho_h = token_bucket_majorant(sum_curves(higher))
            else:
                sigma_h, rho_h = 0.0, 0.0
            leftover_rate = rate - rho_h
            if leftover_rate <= 0 or (
                class_aggregate.final_slope > leftover_rate * (1 + 1e-12)
            ):
                raise UnstableSystemError(
                    f"{self.name}: priority {priority} and above overload the "
                    f"link ({class_aggregate.final_slope + rho_h:.6g} b/s of "
                    f"{rate:.6g} b/s)"
                )
            latency = (sigma_h + self.blocking_bits) / leftover_rate
            leftover = Curve.rate_latency(leftover_rate, latency)
            b = busy_interval(class_aggregate, leftover)
            if math.isinf(b):
                raise UnstableSystemError(
                    f"{self.name}: unbounded busy period at priority {priority}"
                )
            delay = horizontal_deviation(class_aggregate, leftover, t_max=b)
            backlog = vertical_deviation(class_aggregate, leftover, t_max=b)
            results[priority] = ClassAnalysis(
                priority=priority,
                delay_bound=delay + self.port_latency,
                backlog_bound=backlog,
                leftover_rate=leftover_rate,
                leftover_latency=latency,
            )
            higher.extend(envelopes_by_priority[priority])
        return results

    def analyze_tagged(
        self,
        tagged: Curve,
        same_class: Sequence[Curve],
        higher_class: Sequence[Curve],
        lower_class: Sequence[Curve] = (),
    ) -> ServerAnalysis:
        """Analysis for one tagged connection in a given class.

        ``lower_class`` traffic only contributes the single-cell blocking
        term (already included), so it is accepted and ignored.
        """
        del lower_class
        classes = {0: list(higher_class), 1: [tagged, *same_class]}
        if not classes[0]:
            classes.pop(0)
        result = self.analyze_classes(classes)[1]
        output = tagged.shift_left(result.delay_bound).minimum(
            Curve.affine(0.0, self.service_rate)
        )
        return ServerAnalysis(
            delay_bound=result.delay_bound,
            output=output,
            backlog_bound=result.backlog_bound,
            busy_interval=0.0,
        )

    def __repr__(self) -> str:
        return f"PriorityOutputPortServer({self.name!r})"
