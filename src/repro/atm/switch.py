"""ATM switches: a constant-delay fabric feeding per-link output ports."""

from __future__ import annotations

import math
from typing import Dict

from repro.atm.link import AtmLink
from repro.atm.output_port import OutputPortServer
from repro.errors import ConfigurationError, TopologyError


class AtmSwitch:
    """One ATM switch.

    The switch fabric moves a cell from any input to its output port in a
    bounded, load-independent time (``fabric_delay``); contention happens
    only at the output ports, one per attached link — the standard
    output-queued switch model the paper's references analyze.
    """

    def __init__(
        self,
        switch_id: str,
        fabric_delay: float = 0.0,
        port_buffer_bits: float = math.inf,
        port_latency: float = 0.0,
    ) -> None:
        if fabric_delay < 0:
            raise ConfigurationError("fabric delay must be non-negative")
        self.switch_id = switch_id
        self.fabric_delay = float(fabric_delay)
        self._port_buffer_bits = port_buffer_bits
        self._port_latency = port_latency
        self._ports: Dict[str, OutputPortServer] = {}
        self._links: Dict[str, AtmLink] = {}

    def attach_link(self, link: AtmLink) -> OutputPortServer:
        """Attach an outgoing link; creates and returns its output port."""
        if link.link_id in self._ports:
            raise TopologyError(
                f"switch {self.switch_id}: link {link.link_id} already attached"
            )
        port = OutputPortServer(
            link,
            port_latency=self._port_latency,
            buffer_bits=self._port_buffer_bits,
            name=f"{self.switch_id}:{link.link_id}",
        )
        self._ports[link.link_id] = port
        self._links[link.link_id] = link
        return port

    def port(self, link_id: str) -> OutputPortServer:
        """The output port feeding ``link_id``."""
        try:
            return self._ports[link_id]
        except KeyError:
            raise TopologyError(
                f"switch {self.switch_id} has no port for link {link_id!r}"
            ) from None

    def link(self, link_id: str) -> AtmLink:
        """The attached link ``link_id``."""
        try:
            return self._links[link_id]
        except KeyError:
            raise TopologyError(
                f"switch {self.switch_id} has no link {link_id!r}"
            ) from None

    @property
    def ports(self) -> Dict[str, OutputPortServer]:
        """All output ports, keyed by link id (read-only view by convention)."""
        return self._ports

    def __repr__(self) -> str:
        return f"AtmSwitch({self.switch_id!r}, {len(self._ports)} ports)"
