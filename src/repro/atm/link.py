"""Physical ATM links."""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.atm.cell import WIRE_EXPANSION


@dataclasses.dataclass(frozen=True)
class AtmLink:
    """A point-to-point ATM link.

    Parameters
    ----------
    link_id:
        Identifier (also names the output port that feeds the link).
    rate:
        Wire transmission rate in bits/second (155.52 Mbps for OC-3).
    propagation_delay:
        One-way propagation time, seconds.
    """

    link_id: str
    rate: float
    propagation_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("link rate must be positive")
        if self.propagation_delay < 0:
            raise ConfigurationError("propagation delay must be non-negative")

    @property
    def payload_rate(self) -> float:
        """Effective payload bits/second (wire rate divided by cell overhead).

        Envelopes count cell-payload bits, so a link serving them drains at
        ``rate / WIRE_EXPANSION``.
        """
        return self.rate / WIRE_EXPANSION
