"""ATM substrate: cells, links, switches and the output-port analysis.

The ATM backbone of the paper is a collection of switches joined by
155 Mbps links.  Cells of different connections share each link; the switch
output port multiplexes them FIFO.  The worst-case delay a tagged
connection suffers at a port, and its reshaped output envelope, follow the
busy-period analysis of refs [2, 14] — implemented exactly in
:class:`OutputPortServer` on top of the envelope algebra.
"""

from repro.atm.cell import (
    CELL_BITS,
    CELL_PAYLOAD_BITS,
    WIRE_EXPANSION,
    cells_for_frame,
    payload_bits_for_frame,
)
from repro.atm.link import AtmLink
from repro.atm.output_port import OutputPortServer
from repro.atm.priority_port import PriorityOutputPortServer
from repro.atm.gcra import GCRA
from repro.atm.switch import AtmSwitch
from repro.atm.vc import VirtualCircuit, VirtualCircuitManager

__all__ = [
    "AtmLink",
    "AtmSwitch",
    "GCRA",
    "PriorityOutputPortServer",
    "VirtualCircuit",
    "VirtualCircuitManager",
    "CELL_BITS",
    "CELL_PAYLOAD_BITS",
    "OutputPortServer",
    "WIRE_EXPANSION",
    "cells_for_frame",
    "payload_bits_for_frame",
]
