"""The Generic Cell Rate Algorithm (GCRA) — ATM usage parameter control.

The network side of the paper's connection "contract" (Section 3.2): the
application declares its traffic and the network *polices* it.  In ATM the
standard policer is the GCRA — the continuous-state ("virtual scheduling")
leaky bucket of ITU-T I.371: a cell arriving at time ``t`` conforms iff it
is no earlier than ``TAT - tau`` (theoretical arrival time minus the
tolerance), and each conforming cell advances ``TAT`` by the increment
``T`` (the reciprocal of the policed cell rate).

A stream that conforms to ``GCRA(T, tau)`` is exactly leaky-bucket
constrained: at most ``1 + floor((I + tau) / T)`` cells in any window of
length ``I`` — the bridge between the descriptor world
(:class:`repro.traffic.LeakyBucketTraffic`) and cell-by-cell enforcement at
the interface devices.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Tuple

from repro.atm.cell import CELL_PAYLOAD_BITS
from repro.errors import ConfigurationError
from repro.traffic.leaky_bucket import LeakyBucketTraffic


@dataclasses.dataclass
class GCRA:
    """Continuous-state leaky-bucket policer for one cell stream.

    Parameters
    ----------
    increment:
        ``T`` — seconds per conforming cell (1 / peak cell rate).
    tolerance:
        ``tau`` — cell delay variation tolerance, seconds.
    """

    increment: float
    tolerance: float

    def __post_init__(self) -> None:
        if self.increment <= 0:
            raise ConfigurationError("GCRA increment must be positive")
        if self.tolerance < 0:
            raise ConfigurationError("GCRA tolerance must be non-negative")
        self._tat = 0.0
        self._last_time = -math.inf

    def check(self, arrival_time: float) -> bool:
        """Police one cell; returns True iff it conforms (and commits it).

        Arrival times must be non-decreasing.
        """
        if arrival_time < self._last_time - 1e-12:
            raise ConfigurationError("GCRA arrivals must be time-ordered")
        self._last_time = arrival_time
        if arrival_time < self._tat - self.tolerance - 1e-15:
            return False  # too early: non-conforming, state unchanged
        self._tat = max(arrival_time, self._tat) + self.increment
        return True

    def reset(self) -> None:
        """Forget all state (new connection on the same policer)."""
        self._tat = 0.0
        self._last_time = -math.inf

    # ------------------------------------------------------------------
    # Contract <-> descriptor bridges
    # ------------------------------------------------------------------

    def max_cells_in_window(self, window: float) -> int:
        """Cells a conforming stream can put in any window of length ``window``."""
        if window < 0:
            raise ConfigurationError("window must be non-negative")
        return 1 + int(math.floor((window + self.tolerance) / self.increment))

    def equivalent_descriptor(
        self, cell_bits: float = CELL_PAYLOAD_BITS
    ) -> LeakyBucketTraffic:
        """The tightest leaky-bucket descriptor of a conforming stream.

        ``sigma = (1 + tau / T) * cell_bits`` and ``rho = cell_bits / T``.
        """
        rho = cell_bits / self.increment
        sigma = (1.0 + self.tolerance / self.increment) * cell_bits
        return LeakyBucketTraffic(sigma=sigma, rho=rho)

    @classmethod
    def for_rate(
        cls,
        cell_rate: float,
        burst_cells: float = 1.0,
    ) -> "GCRA":
        """Build a policer for ``cell_rate`` cells/second allowing a burst
        of ``burst_cells`` back-to-back cells (tau = (N-1) * T)."""
        if cell_rate <= 0:
            raise ConfigurationError("cell rate must be positive")
        if burst_cells < 1:
            raise ConfigurationError("burst must be at least one cell")
        increment = 1.0 / cell_rate
        tolerance = (burst_cells - 1.0) * increment
        return cls(increment=increment, tolerance=tolerance)


def police_stream(
    gcra: GCRA, arrivals: Iterable[float]
) -> Tuple[List[float], List[float]]:
    """Split a cell arrival sequence into (conforming, dropped) times."""
    ok: List[float] = []
    dropped: List[float] = []
    for t in arrivals:
        (ok if gcra.check(t) else dropped).append(t)
    return ok, dropped
