"""Ablations E4 and E5.

E4 (allocation policies): the paper's beta rule against the strawmen its
Section 5.3 discusses — grant-everything (max-available), the pure
min-need/max-need extremes, the origin-ray variant of the search line, and
an FDDI-only local allocation rule in the spirit of refs [1, 24].

E5 (workload sensitivity): how deadline tightness and source burstiness
move the admission probability, holding the CAC at beta = 0.5.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import CACConfig, SimulationConfig
from repro.core.policies import AllocationPolicy, FDDILocalPolicy, MaxAvailPolicy
from repro.experiments.common import (
    ExperimentSettings,
    SeriesResult,
    format_table,
    mean_and_spread,
)
from repro.experiments.parallel import SimTask, run_sims
from repro.sim.connection_sim import ConnectionSimConfig
from repro.traffic.generators import WorkloadSpec


# ----------------------------------------------------------------------
# E4: allocation policies
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class PolicyVariant:
    name: str
    #: Builds a fresh policy (None = the CAC's default BetaPolicy).
    make_policy: Optional[Callable[[], AllocationPolicy]] = None
    cac_config: Optional[CACConfig] = None


POLICY_VARIANTS: Sequence[PolicyVariant] = (
    PolicyVariant("beta=0.5", cac_config=CACConfig(beta=0.5)),
    PolicyVariant("min-need (beta=0)", cac_config=CACConfig(beta=0.0)),
    PolicyVariant("max-need (beta=1)", cac_config=CACConfig(beta=1.0)),
    PolicyVariant("max-avail", make_policy=MaxAvailPolicy),
    PolicyVariant(
        "origin-ray beta=0.5", cac_config=CACConfig(beta=0.5, use_origin_ray=True)
    ),
    PolicyVariant("fddi-local x3", make_policy=lambda: FDDILocalPolicy(headroom=3.0)),
)


def run_policy_ablation(
    settings: Optional[ExperimentSettings] = None,
    utilizations: Sequence[float] = (0.3, 0.9),
    variants: Sequence[PolicyVariant] = POLICY_VARIANTS,
    jobs: int = 1,
) -> List[SeriesResult]:
    """AP per policy variant at light and heavy load."""
    settings = settings or ExperimentSettings()
    sim_cfg = settings.simulation_config()
    # Policies are instantiated here (one fresh instance per run, exactly
    # as the serial loop did) so only picklable objects enter the tasks —
    # a closure in make_policy never crosses the process boundary.
    tasks = [
        SimTask(
            ConnectionSimConfig(
                utilization=u,
                beta=0.5,
                seed=seed,
                n_requests=settings.n_requests,
                warmup_requests=settings.warmup_requests,
                network=settings.network,
                simulation=sim_cfg,
                cac=variant.cac_config,
            ),
            policy=variant.make_policy() if variant.make_policy else None,
        )
        for variant in variants
        for u in utilizations
        for seed in settings.seeds
    ]
    results = iter(run_sims(tasks, jobs=jobs))
    series: List[SeriesResult] = []
    for variant in variants:
        s = SeriesResult(label=variant.name)
        for u in utilizations:
            aps = [next(results).admission_probability for _ in settings.seeds]
            mean, spread = mean_and_spread(aps)
            s.add(u, mean, spread)
        series.append(s)
    return series


# ----------------------------------------------------------------------
# E5: workload sensitivity
# ----------------------------------------------------------------------

def _workload(deadline_scale: float = 1.0, burst_ratio: float = 2.0) -> WorkloadSpec:
    """The default workload with scaled deadlines / inner-burst intensity.

    ``burst_ratio`` is C2's inner rate relative to the sustained rate
    (1.0 = smooth periodic; larger = burstier inside each outer window).
    """
    p1, p2 = 0.015, 0.005
    c1 = 120_000.0
    # The 1.001 headroom keeps C2/P2 strictly above C1/P1 at burst_ratio=1
    # (the descriptor rejects inner rates below the sustained rate, and an
    # exact float equality can land a hair under it).
    c2 = min(c1, max(c1 * (p2 / p1) * 1.001, burst_ratio * (c1 / p1) * p2))
    return WorkloadSpec(
        c1=c1,
        p1=p1,
        c2=c2,
        p2=p2,
        deadline_min=0.040 * deadline_scale,
        deadline_max=0.100 * deadline_scale,
        jitter=0.2,
    )


def run_workload_ablation(
    settings: Optional[ExperimentSettings] = None,
    utilization: float = 0.6,
    deadline_scales: Sequence[float] = (0.75, 1.0, 1.5, 2.0),
    burst_ratios: Sequence[float] = (1.0, 1.5, 2.0),
    jobs: int = 1,
) -> Dict[str, List[SeriesResult]]:
    """AP vs deadline tightness and vs burstiness at fixed load."""
    settings = settings or ExperimentSettings()
    scale = settings.simulation_config().load_scale

    def task_for(workload: WorkloadSpec, seed: int) -> SimTask:
        sim_cfg = SimulationConfig(workload=workload, load_scale=scale)
        return SimTask(
            ConnectionSimConfig(
                utilization=utilization,
                beta=0.5,
                seed=seed,
                n_requests=settings.n_requests,
                warmup_requests=settings.warmup_requests,
                network=settings.network,
                simulation=sim_cfg,
            )
        )

    tasks = [
        task_for(_workload(deadline_scale=ds), seed)
        for ds in deadline_scales
        for seed in settings.seeds
    ] + [
        task_for(_workload(burst_ratio=br), seed)
        for br in burst_ratios
        for seed in settings.seeds
    ]
    results = iter(run_sims(tasks, jobs=jobs))

    deadline_series = SeriesResult(label=f"AP (U={utilization:g})")
    for ds in deadline_scales:
        aps = [next(results).admission_probability for _ in settings.seeds]
        mean, spread = mean_and_spread(aps)
        deadline_series.add(ds, mean, spread)

    burst_series = SeriesResult(label=f"AP (U={utilization:g})")
    for br in burst_ratios:
        aps = [next(results).admission_probability for _ in settings.seeds]
        mean, spread = mean_and_spread(aps)
        burst_series.add(br, mean, spread)

    return {"deadline": [deadline_series], "burstiness": [burst_series]}


def main_policies(
    settings: Optional[ExperimentSettings] = None, jobs: int = 1
) -> str:
    series = run_policy_ablation(settings, jobs=jobs)
    out = ["E4 — Allocation-policy ablation (AP by backbone load)", ""]
    out.append(format_table("U", series))
    return "\n".join(out)


def main_workload(
    settings: Optional[ExperimentSettings] = None, jobs: int = 1
) -> str:
    results = run_workload_ablation(settings, jobs=jobs)
    out = ["E5 — Workload sensitivity at U=0.6, beta=0.5", ""]
    out.append("Deadline scale sweep (1.0 = paper-default 40-100 ms):")
    out.append(format_table("scale", results["deadline"]))
    out.append("")
    out.append("Inner-burst intensity sweep (inner rate / sustained rate):")
    out.append(format_table("ratio", results["burstiness"]))
    return "\n".join(out)
