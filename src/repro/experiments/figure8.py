"""Figure 8: sensitivity of the admission probability to the system load.

The paper fixes beta in {0, 0.5, 1.0} and sweeps the backbone utilization
U across (0, 1): AP decreases monotonically with load, and beta = 0.5
clearly beats both extremes under heavy load.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.common import (
    ExperimentSettings,
    SeriesResult,
    format_table,
    mean_and_spread,
)
from repro.experiments.parallel import SimTask, run_sims
from repro.scenario.loader import connection_sim_config

#: The beta values of Figure 8.
BETAS = (0.0, 0.5, 1.0)
#: The load sweep.
UTILIZATIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def run_figure8(
    settings: Optional[ExperimentSettings] = None,
    betas: Sequence[float] = BETAS,
    utilizations: Sequence[float] = UTILIZATIONS,
    jobs: int = 1,
) -> List[SeriesResult]:
    """Regenerate the Figure 8 series (one per beta)."""
    settings = settings or ExperimentSettings()
    tasks = [
        SimTask(connection_sim_config(settings.scenario(u, beta, seed)))
        for beta in betas
        for u in utilizations
        for seed in settings.seeds
    ]
    results = iter(run_sims(tasks, jobs=jobs))
    series: List[SeriesResult] = []
    for beta in betas:
        s = SeriesResult(label=f"beta={beta:g}")
        for u in utilizations:
            aps = [next(results).admission_probability for _ in settings.seeds]
            mean, spread = mean_and_spread(aps)
            s.add(u, mean, spread)
        series.append(s)
    return series


def main(
    settings: Optional[ExperimentSettings] = None,
    csv_dir: Optional[str] = None,
    jobs: int = 1,
) -> str:
    series = run_figure8(settings, jobs=jobs)
    out = ["Figure 8 — Admission probability vs system load", ""]
    out.append(format_table("U", series))
    if csv_dir:
        from repro.experiments.artifacts import write_series_csv
        import os

        path = write_series_csv(os.path.join(csv_dir, "figure8.csv"), "U", series)
        out.append(f"\n[series written to {path}]")
    out.append("")
    by_label = {s.label: s for s in series}
    mid = by_label.get("beta=0.5")
    if mid is not None and len(mid.ys) >= 2:
        out.append(
            f"  beta=0.5 at heaviest load: AP={mid.ys[-1]:.3f} "
            f"(beta=0: {by_label['beta=0'].ys[-1]:.3f}, "
            f"beta=1: {by_label['beta=1'].ys[-1]:.3f})"
        )
    return "\n".join(out)
