"""Experiment E3: the analytic worst-case bound dominates observed delays.

Admits a connection set through the CAC, then executes the data path with
the packet-level simulator (greedy worst-case sources) and compares, per
connection, the observed maximum end-to-end delay against the analytic
bound the CAC computed at admission time.  The bound must dominate; the
ratio indicates how much of the bound's pessimism comes from worst-case
token phasing the simulator does not reproduce.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.config import CACConfig, NetworkConfig, build_network
from repro.core.cac import AdmissionController
from repro.core.delay import ConnectionLoad
from repro.network.connection import ConnectionSpec
from repro.sim.packet_sim import PacketLevelSimulator
from repro.units import MS_PER_S
from repro.traffic import DualPeriodicTraffic

#: Connection endpoints used for the validation scenario (two per ring).
DEFAULT_PAIRS = (
    ("host1-1", "host2-1"),
    ("host1-2", "host3-1"),
    ("host2-2", "host3-2"),
    ("host2-3", "host1-3"),
    ("host3-3", "host1-4"),
    ("host3-4", "host2-4"),
)


@dataclasses.dataclass(frozen=True)
class ValidationRow:
    conn_id: str
    analytic_bound: float
    observed_max: float
    observed_mean: float
    batches: int

    @property
    def holds(self) -> bool:
        return self.observed_max <= self.analytic_bound + 1e-9

    @property
    def tightness(self) -> float:
        """observed / bound (1.0 would mean the bound is exactly attained)."""
        return self.observed_max / self.analytic_bound if self.analytic_bound else 0.0


def run_validation(
    beta: float = 0.5,
    deadline: float = 0.09,
    duration: float = 0.5,
    pairs=DEFAULT_PAIRS,
    network: Optional[NetworkConfig] = None,
    adversarial_phase: bool = False,
) -> List[ValidationRow]:
    """Admit ``pairs`` and compare packet-level delays with the bounds.

    With ``adversarial_phase`` the simulated rings assume a worst-phase
    token whenever they wake from idle, which closes part of the gap
    between observation and bound.
    """
    net_cfg = network or NetworkConfig()
    topo = build_network(net_cfg)
    cac = AdmissionController(topo, network_config=net_cfg, cac_config=CACConfig(beta=beta))
    traffic = DualPeriodicTraffic(c1=120_000.0, p1=0.015, c2=60_000.0, p2=0.005)
    for i, (src, dst) in enumerate(pairs):
        res = cac.request(ConnectionSpec(f"c{i}", src, dst, traffic, deadline))
        if not res.admitted:
            raise RuntimeError(f"validation setup failed to admit c{i}: {res.reason}")
    loads = [
        ConnectionLoad(r.spec, r.route, r.h_source, r.h_dest)
        for r in cac.connections.values()
    ]
    result = PacketLevelSimulator(
        topo, loads, network_config=net_cfg, adversarial_phase=adversarial_phase
    ).run(duration)
    rows = []
    for cid, rec in sorted(cac.connections.items()):
        rows.append(
            ValidationRow(
                conn_id=cid,
                analytic_bound=rec.delay_bound,
                observed_max=result.max_delay.get(cid, 0.0),
                observed_mean=result.mean_delay.get(cid, 0.0),
                batches=result.delivered_batches.get(cid, 0),
            )
        )
    return rows


def main() -> str:
    out = ["E3 — Analytic bound vs packet-level simulation"]
    all_hold = True
    for adversarial in (False, True):
        rows = run_validation(adversarial_phase=adversarial)
        label = "adversarial token phase" if adversarial else "benign token phase"
        out += [
            "",
            f"--- {label} ---",
            f"{'conn':8s} {'bound(ms)':>10s} {'max obs(ms)':>12s} "
            f"{'mean obs(ms)':>13s} {'obs/bound':>10s} {'holds':>6s}",
            "-" * 64,
        ]
        for r in rows:
            out.append(
                f"{r.conn_id:8s} {r.analytic_bound * MS_PER_S:10.3f} "
                f"{r.observed_max * MS_PER_S:12.3f} {r.observed_mean * MS_PER_S:13.3f} "
                f"{r.tightness:10.3f} {str(r.holds):>6s}"
            )
        all_hold &= all(r.holds for r in rows)
    out.append("")
    out.append(f"All bounds dominate observed delays: {all_hold}")
    return "\n".join(out)
