"""Process-parallel execution of independent simulation runs.

Every experiment sweep (Figures 7/8, the ablations, the survivability
study) is an embarrassingly parallel grid: each point runs one
:class:`~repro.sim.connection_sim.ConnectionSimulator` with its own seeded
random streams and no shared mutable state.  This module fans those runs
out over worker processes while keeping the results **bit-identical** to a
serial sweep:

* each task carries a fully-specified, picklable ``ConnectionSimConfig``
  (and optionally a policy instance), so a worker reproduces exactly the
  run the serial loop would have performed;
* results come back in task order (``Pool.map`` preserves ordering), so
  aggregation code consumes them exactly as the serial loops did;
* ``jobs <= 1`` short-circuits to a plain in-process loop — the parallel
  path is opt-in via ``--jobs N`` and never changes default behavior.

Tasks that cannot be pickled (e.g. a closure-built policy) silently fall
back to the serial path rather than failing the sweep.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
from typing import List, Optional, Sequence

from repro.core.policies import AllocationPolicy
from repro.sim.connection_sim import (
    ConnectionSimConfig,
    ConnectionSimulator,
    SimResult,
)


@dataclasses.dataclass(frozen=True)
class SimTask:
    """One simulation run: a config plus an optional allocation policy."""

    config: ConnectionSimConfig
    policy: Optional[AllocationPolicy] = None


def _run_task(task: SimTask) -> SimResult:
    """Worker entry point (module-level so it pickles under spawn)."""
    return ConnectionSimulator(task.config, policy=task.policy).run()


def default_jobs() -> int:
    """A reasonable worker count: physical parallelism minus headroom."""
    return max(1, (os.cpu_count() or 2) - 1)


def run_sims(tasks: Sequence[SimTask], jobs: int = 1) -> List[SimResult]:
    """Run every task and return their results *in task order*.

    With ``jobs <= 1`` (or a single task) this is a plain loop.  Otherwise
    the tasks are mapped over a process pool with ``chunksize=1`` — runs
    in a sweep have very uneven durations (heavy-load points take far
    longer), so fine-grained dispatch keeps the workers balanced.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [_run_task(t) for t in tasks]
    try:
        pickle.dumps(tasks)
    except Exception:
        return [_run_task(t) for t in tasks]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(_run_task, tasks, chunksize=1)
