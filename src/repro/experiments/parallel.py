"""Process-parallel execution of independent simulation runs.

Every experiment sweep (Figures 7/8, the ablations, the survivability
study) is an embarrassingly parallel grid: each point runs one
:class:`~repro.sim.connection_sim.ConnectionSimulator` with its own seeded
random streams and no shared mutable state.  This module fans those runs
out over worker processes while keeping the results **bit-identical** to a
serial sweep:

* each task carries a fully-specified, picklable ``ConnectionSimConfig``
  (and optionally a policy instance), so a worker reproduces exactly the
  run the serial loop would have performed;
* results come back in task order (``Pool.map`` preserves ordering), so
  aggregation code consumes them exactly as the serial loops did;
* ``jobs <= 1`` short-circuits to a plain in-process loop — the parallel
  path is opt-in via ``--jobs N`` and never changes default behavior.

Tasks that cannot be pickled (e.g. a closure-built policy) silently fall
back to the serial path rather than failing the sweep.

Failure semantics: a worker exception does not hang the sweep or discard
its traceback.  Each worker wraps its run and ships failures back as data;
the parent terminates the pool and raises :class:`SweepCellError` naming
the failed cell (index + config summary) with the worker's formatted
traceback attached.  A ``KeyboardInterrupt`` in the parent also terminates
the pool before propagating, so Ctrl-C never leaves orphaned workers.
"""

from __future__ import annotations

import dataclasses
import functools
import multiprocessing
import os
import pickle
import traceback
from typing import (
    Any,
    Callable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.core.policies import AllocationPolicy
from repro.errors import ReproError
from repro.sim.connection_sim import (
    ConnectionSimConfig,
    ConnectionSimulator,
    SimResult,
)


class SweepCellError(ReproError):
    """One cell of a parallel sweep failed in its worker process.

    Carries the cell index, a human-readable description of the cell's
    configuration, and the worker's formatted traceback (the original
    exception object may not survive pickling, its traceback never does).
    """

    def __init__(
        self, index: int, cell: str, exc_name: str, message: str, tb: str
    ) -> None:
        super().__init__(
            f"sweep cell {index} ({cell}) failed in worker: "
            f"{exc_name}: {message}\n--- worker traceback ---\n{tb}"
        )
        self.index = index
        self.cell = cell
        self.exc_name = exc_name


@dataclasses.dataclass(frozen=True)
class SimTask:
    """One simulation run: a config plus an optional allocation policy."""

    config: ConnectionSimConfig
    policy: Optional[AllocationPolicy] = None

    def describe(self) -> str:
        """Short cell label for failure reports."""
        cfg = self.config
        label = f"U={cfg.utilization:g} beta={cfg.beta:g} seed={cfg.seed}"
        if self.policy is not None:
            label += f" policy={type(self.policy).__name__}"
        return label


def _run_task(task: SimTask) -> SimResult:
    """Worker entry point (module-level so it pickles under spawn)."""
    return ConnectionSimulator(task.config, policy=task.policy).run()


#: (index, result) on success; (index, (exc name, message, traceback)) on
#: failure — plain strings so every failure survives pickling.
_SafeOutcome = Tuple[int, Union[SimResult, Tuple[str, str, str]]]


def _run_task_safe(item: Tuple[int, SimTask]) -> _SafeOutcome:
    """Worker entry point that ships failures back as data.

    Catches ``BaseException``: a ``KeyboardInterrupt`` delivered to a
    worker must surface as that cell's failure, not kill the pool from
    within (the parent decides how to unwind).
    """
    index, task = item
    try:
        return index, _run_task(task)
    except BaseException as exc:  # noqa: BLE001 — see docstring
        return index, (type(exc).__name__, str(exc), traceback.format_exc())


def default_jobs() -> int:
    """A reasonable worker count: physical parallelism minus headroom."""
    return max(1, (os.cpu_count() or 2) - 1)


def run_sims(tasks: Sequence[SimTask], jobs: int = 1) -> List[SimResult]:
    """Run every task and return their results *in task order*.

    With ``jobs <= 1`` (or a single task) this is a plain loop.  Otherwise
    the tasks are mapped over a process pool with ``chunksize=1`` — runs
    in a sweep have very uneven durations (heavy-load points take far
    longer), so fine-grained dispatch keeps the workers balanced.

    Raises :class:`SweepCellError` when a worker fails, naming the cell;
    terminates the pool on any error or interrupt instead of hanging.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [_run_task(t) for t in tasks]
    try:
        pickle.dumps(tasks)
    except Exception:
        return [_run_task(t) for t in tasks]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    pool = ctx.Pool(processes=min(jobs, len(tasks)))
    try:
        outcomes = pool.map(_run_task_safe, list(enumerate(tasks)), chunksize=1)
        pool.close()
    except BaseException:
        # Ctrl-C or a pool-machinery error: kill the workers before
        # unwinding so the sweep never hangs on a half-dead pool.
        pool.terminate()
        raise
    finally:
        pool.join()

    results: List[SimResult] = []
    for index, outcome in outcomes:
        if isinstance(outcome, tuple):
            exc_name, message, tb = outcome
            raise SweepCellError(
                index, tasks[index].describe(), exc_name, message, tb
            )
        results.append(outcome)
    return results


# ----------------------------------------------------------------------
# Generic fan-out (scenario fuzzing, corpus validation, ...)
# ----------------------------------------------------------------------

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

#: (index, ("ok", result)) or (index, ("err", (name, message, traceback))).
#: Tagged because a generic result may itself be a tuple.
_TaggedOutcome = Tuple[int, Tuple[str, Any]]


def _run_item_safe(
    fn: Callable[[Any], Any], item: Tuple[int, Any]
) -> _TaggedOutcome:
    """Generic worker entry point; failures ship back as data."""
    index, payload = item
    try:
        return index, ("ok", fn(payload))
    except BaseException as exc:  # noqa: BLE001 — same contract as above
        return index, (
            "err",
            (type(exc).__name__, str(exc), traceback.format_exc()),
        )


def run_parallel(
    fn: Callable[[_ItemT], _ResultT],
    items: Sequence[_ItemT],
    jobs: int = 1,
    describe: Callable[[_ItemT], str] = repr,
) -> List[_ResultT]:
    """Map ``fn`` over ``items`` with :func:`run_sims`'s exact semantics,
    for arbitrary picklable work (the scenario fuzzer's corpus fan-out).

    Results come back in item order; ``jobs <= 1`` or unpicklable work
    degrades to a serial loop; a worker failure raises
    :class:`SweepCellError` naming the item via ``describe``.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        pickle.dumps((fn, items))
    except Exception:
        return [fn(item) for item in items]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    pool = ctx.Pool(processes=min(jobs, len(items)))
    try:
        outcomes = pool.map(
            functools.partial(_run_item_safe, fn),
            list(enumerate(items)),
            chunksize=1,
        )
        pool.close()
    except BaseException:
        pool.terminate()
        raise
    finally:
        pool.join()

    results: List[_ResultT] = []
    for index, (tag, payload) in outcomes:
        if tag == "err":
            exc_name, message, tb = payload
            raise SweepCellError(
                index, describe(items[index]), exc_name, message, tb
            )
        results.append(payload)
    return results
