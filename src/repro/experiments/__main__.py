"""Command-line experiment runner: ``python -m repro.experiments <name>``."""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.experiments import (
    ablations,
    figure7,
    figure8,
    multihop,
    survivability,
    validation,
)
from repro.experiments.common import ExperimentSettings


def build_settings(args) -> ExperimentSettings:
    if args.quick:
        base = ExperimentSettings.quick()
    else:
        base = ExperimentSettings()
    overrides = {}
    if args.no_calibration:
        overrides["calibrate_load"] = False
    if args.coarsen is not None:
        overrides["coarsen_segments"] = args.coarsen
    if overrides:
        base = dataclasses.replace(base, **overrides)
    return base


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and the extra experiments.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "figure7",
            "figure8",
            "validation",
            "ablation-policies",
            "ablation-workload",
            "survivability",
            "multihop",
            "all",
        ],
    )
    parser.add_argument(
        "--quick", action="store_true", help="fewer requests / one seed"
    )
    parser.add_argument(
        "--no-calibration",
        action="store_true",
        help="use the paper's load formula verbatim (load_scale=1)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write the figure series as CSV into DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run sweep points over N worker processes (results are "
        "bit-identical to a serial run; default 1)",
    )
    parser.add_argument(
        "--coarsen",
        type=int,
        default=None,
        metavar="SEGMENTS",
        help="cap analysis curves at SEGMENTS breakpoints via one-sided "
        "conservative coarsening (faster, strictly more conservative "
        "admission; default: exact mode, bit-reproducible output)",
    )
    args = parser.parse_args(argv)
    settings = build_settings(args)
    jobs = args.jobs

    runners = {
        "figure7": lambda: figure7.main(settings, csv_dir=args.csv, jobs=jobs),
        "figure8": lambda: figure8.main(settings, csv_dir=args.csv, jobs=jobs),
        "validation": lambda: validation.main(),
        "ablation-policies": lambda: ablations.main_policies(settings, jobs=jobs),
        "ablation-workload": lambda: ablations.main_workload(settings, jobs=jobs),
        "survivability": lambda: survivability.main(
            settings, csv_dir=args.csv, jobs=jobs
        ),
        "multihop": lambda: multihop.main(
            settings, csv_dir=args.csv, jobs=jobs
        ),
    }
    names = list(runners) if args.experiment == "all" else [args.experiment]
    for name in names:
        # perf_counter: monotonic, reporting-only (whitelisted under RL001).
        t0 = time.perf_counter()
        print(runners[name]())
        print(f"\n[{name} finished in {time.perf_counter() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
