"""Multi-hop admission sweep over declarative line topologies.

The paper's evaluation (Figures 7/8) fixes the three-ring triangle, where
every inter-ring route crosses exactly one backbone link.  The
declarative topology layer removes that restriction; this experiment asks
the natural follow-up: how does admission probability degrade as routes
get *longer*?  It sweeps the backbone utilization ``U`` over line
topologies ``s1 - s2 - ... - sN`` of increasing depth (routes cross up to
``N - 1`` backbone links, each adding queueing, fabric and propagation
stages to the delay bound), at the paper's recommended interior
allocation point ``beta = 0.5``.

Offered load is calibrated against each topology's own aggregate backbone
capacity (``NetworkTopology.backbone_capacity``), so a point ``U`` means
the same *relative* backbone load on every line — the AP differences
between series isolate the effect of route depth, not of raw capacity.

A companion single point runs the 12-ring unidirectional ring of
switches, whose wrap-around routes create cyclic port interference: its
bounds come from the fixed-point solver rather than the feed-forward
chain, demonstrating the cyclic regime end-to-end (admission control
included) rather than only in unit tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import (
    ExperimentSettings,
    SeriesResult,
    format_table,
    mean_and_spread,
)
from repro.experiments.parallel import SimTask, run_sims
from repro.scenario.loader import connection_sim_config
from repro.scenario.spec import ScenarioSpec
from repro.topo import generators

#: Load sweep (same axis as Figure 8).
UTILIZATIONS = (0.1, 0.3, 0.5, 0.7, 0.9)
#: The paper's recommended interior allocation point.
BETA = 0.5
#: Line depths: 3 matches the triangle's ring count (but chained), then
#: progressively longer backbones.
LINE_DEPTHS = (3, 6, 10)
#: Hosts per ring for the generated lines (smaller rings keep the host
#: population comparable across depths).
HOSTS_PER_RING = 2


def _line_scenario(
    settings: ExperimentSettings,
    n_rings: int,
    utilization: float,
    seed: int,
) -> ScenarioSpec:
    base = settings.scenario(
        utilization,
        BETA,
        seed,
        name=f"line{n_rings}-U{utilization:g}-seed{seed}",
    )
    return ScenarioSpec(
        name=base.name,
        topology=base.topology,
        topo=generators.line(n_rings, hosts_per_ring=HOSTS_PER_RING),
        cac=base.cac,
        arrivals=base.arrivals,
    )


def run_multihop(
    settings: Optional[ExperimentSettings] = None,
    utilizations: Sequence[float] = UTILIZATIONS,
    depths: Sequence[int] = LINE_DEPTHS,
    jobs: int = 1,
) -> List[SeriesResult]:
    """AP vs U, one series per line depth."""
    settings = settings or ExperimentSettings()
    tasks = []
    for n_rings in depths:
        for u in utilizations:
            for seed in settings.seeds:
                spec = _line_scenario(settings, n_rings, u, seed)
                tasks.append(SimTask(connection_sim_config(spec)))
    results = iter(run_sims(tasks, jobs=jobs))
    series: List[SeriesResult] = []
    for n_rings in depths:
        ap = SeriesResult(label=f"AP line-{n_rings}")
        for u in utilizations:
            aps = [next(results).admission_probability for _ in settings.seeds]
            ap.add(u, *mean_and_spread(aps))
        series.append(ap)
    return series


def run_cyclic_point(
    settings: Optional[ExperimentSettings] = None,
    utilization: float = 0.3,
    n_rings: int = 12,
) -> Tuple[float, float]:
    """(AP, spread) on the unidirectional ring of switches at one load.

    Every cross-ring route wraps around the one-way backbone, so the CAC's
    delay bounds for this point are produced by the fixed-point solver.
    """
    settings = settings or ExperimentSettings()
    tasks = []
    for seed in settings.seeds:
        base = settings.scenario(
            utilization, BETA, seed, name=f"oneway{n_rings}-seed{seed}"
        )
        spec = ScenarioSpec(
            name=base.name,
            topology=base.topology,
            topo=generators.ring_of_switches(
                n_rings, hosts_per_ring=HOSTS_PER_RING, unidirectional=True
            ),
            cac=base.cac,
            arrivals=base.arrivals,
        )
        tasks.append(SimTask(connection_sim_config(spec)))
    aps = [r.admission_probability for r in run_sims(tasks, jobs=1)]
    return mean_and_spread(aps)


def main(
    settings: Optional[ExperimentSettings] = None,
    csv_dir: Optional[str] = None,
    utilizations: Sequence[float] = UTILIZATIONS,
    jobs: int = 1,
) -> str:
    settings = settings or ExperimentSettings()
    series = run_multihop(settings, utilizations, jobs=jobs)
    cyclic_ap, cyclic_spread = run_cyclic_point(settings)
    out = [
        "Multi-hop admission — line topologies of increasing backbone "
        f"depth (beta={BETA:g}, {HOSTS_PER_RING} hosts/ring, load "
        "calibrated per-topology against aggregate backbone capacity)",
        "",
        format_table("U", series),
        "",
        f"Cyclic regime (12-ring one-way backbone, U=0.3): "
        f"AP={cyclic_ap:.3f} +/- {cyclic_spread:.3f} "
        "(bounds from the fixed-point solver)",
    ]
    if csv_dir:
        import os

        from repro.experiments.artifacts import write_series_csv

        path = write_series_csv(
            os.path.join(csv_dir, "multihop.csv"), "U", series
        )
        out.append(f"\n[series written to {path}]")
    return "\n".join(out)
