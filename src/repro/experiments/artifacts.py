"""Experiment artifacts: persist series as CSV for external plotting.

The paper's figures are line plots; this module writes each regenerated
series to a plain CSV so any plotting tool can redraw them.  Files land in
a ``results/`` directory by default.
"""

from __future__ import annotations

import csv
import os
from typing import Sequence

from repro.experiments.common import SeriesResult


def write_series_csv(
    path: str,
    x_label: str,
    series: Sequence[SeriesResult],
) -> str:
    """Write ``series`` to ``path`` (one row per x, one column per series).

    Returns the path written.  Columns carry the series labels; each series
    gets a companion ``<label>_spread`` column with the across-seed
    half-range.
    """
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    xs = sorted({x for s in series for x in s.xs})
    lookup = {
        (s.label, x): (y, sp)
        for s in series
        for x, y, sp in zip(s.xs, s.ys, s.spreads)
    }
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        header = [x_label]
        for s in series:
            header.extend([s.label, f"{s.label}_spread"])
        writer.writerow(header)
        for x in xs:
            row = [f"{x:.6g}"]
            for s in series:
                if (s.label, x) in lookup:
                    y, sp = lookup[(s.label, x)]
                    row.extend([f"{y:.6f}", f"{sp:.6f}"])
                else:
                    row.extend(["", ""])
            writer.writerow(row)
    return path


def read_series_csv(path: str):
    """Read back a CSV written by :func:`write_series_csv`.

    Returns ``(x_label, series_list)`` — used by tests and by downstream
    plotting scripts.
    """
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    if not rows:
        raise ValueError(f"{path}: empty CSV")
    header = rows[0]
    x_label = header[0]
    labels = header[1::2]
    series = [SeriesResult(label=lab) for lab in labels]
    for row in rows[1:]:
        x = float(row[0])
        for i, s in enumerate(series):
            y_cell = row[1 + 2 * i]
            sp_cell = row[2 + 2 * i]
            if y_cell:
                s.add(x, float(y_cell), float(sp_cell) if sp_cell else 0.0)
    return x_label, series
